#include "net/router.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace dhisq::net {

const char *
toString(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::Paper: return "paper";
      case RouterPolicy::Robust: return "robust";
    }
    return "?";
}

bool
parseRouterPolicy(std::string_view text, RouterPolicy &out)
{
    for (RouterPolicy policy : {RouterPolicy::Paper, RouterPolicy::Robust}) {
        if (text == toString(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

SyncRouter::SyncRouter(const RouterNode &node, const Topology &topo,
                       sim::Scheduler &sched, TelfLog *telf,
                       RouterPolicy policy)
    : _node(node), _topo(topo), _sched(sched), _telf(telf), _policy(policy),
      _name(prefixedNumber("R", node.id)),
      _pending(node.child_controllers.size() + node.child_routers.size())
{
}

std::size_t
SyncRouter::slotOfController(ControllerId child) const
{
    auto it = std::find(_node.child_controllers.begin(),
                        _node.child_controllers.end(), child);
    DHISQ_ASSERT(it != _node.child_controllers.end(), _name,
                 ": not my child controller: C", child);
    return std::size_t(it - _node.child_controllers.begin());
}

std::size_t
SyncRouter::slotOfRouter(RouterId child) const
{
    auto it = std::find(_node.child_routers.begin(),
                        _node.child_routers.end(), child);
    DHISQ_ASSERT(it != _node.child_routers.end(), _name,
                 ": not my child router: R", child);
    return _node.child_controllers.size() +
           std::size_t(it - _node.child_routers.begin());
}

void
SyncRouter::onControllerRequest(ControllerId child, RouterId target,
                                Cycle t_i)
{
    _stats.inc("controller_requests");
    bufferRequest(slotOfController(child), target, t_i);
}

void
SyncRouter::onRouterRequest(RouterId child, RouterId target, Cycle t_max)
{
    _stats.inc("router_requests");
    bufferRequest(slotOfRouter(child), target, t_max);
}

void
SyncRouter::bufferRequest(std::size_t slot, RouterId target, Cycle t)
{
    _pending[slot].push_back(Request{target, t});
    tryCompleteRound();
}

void
SyncRouter::tryCompleteRound()
{
    for (const auto &q : _pending) {
        if (q.empty())
            return; // Still waiting for some child (Figure 8, "All Received?").
    }

    RouterId target = kNoRouter;
    Cycle t_max = 0;
    for (auto &q : _pending) {
        const Request req = q.front();
        q.pop_front();
        if (target == kNoRouter)
            target = req.target;
        DHISQ_ASSERT(target == req.target, _name,
                     ": children disagree on the sync destination router");
        t_max = std::max(t_max, req.t);
    }
    _stats.inc("rounds_completed");

    if (target == _node.id) {
        Cycle t_final = t_max;
        if (_policy == RouterPolicy::Robust) {
            const Cycle worst_arrival =
                _sched.now() + _topo.maxDownstreamLatency(_node.id);
            t_final = std::max(t_final, worst_arrival);
        }
        if (t_final > t_max)
            _stats.inc("robust_margin_cycles", t_final - t_max);
        broadcast(t_final);
    } else {
        DHISQ_ASSERT(_node.parent != kNoRouter, _name,
                     ": sync destination R", target,
                     " is not an ancestor of this subtree");
        DHISQ_ASSERT(_forward_up, "router without uplink wiring");
        _forward_up(_node.parent, target, t_max);
        _stats.inc("forwards_up");
    }
}

void
SyncRouter::onParentNotify(Cycle t_final)
{
    _stats.inc("parent_notifies");
    broadcast(t_final);
}

void
SyncRouter::broadcast(Cycle t_final)
{
    if (_telf) {
        _telf->record(_sched.now(), _name, TelfKind::SyncDone, -1,
                      std::int64_t(t_final), "broadcast");
    }
    for (ControllerId child : _node.child_controllers) {
        DHISQ_ASSERT(_notify_controller, "router without controller wiring");
        _notify_controller(child, t_final);
    }
    for (RouterId child : _node.child_routers) {
        DHISQ_ASSERT(_broadcast_down, "router without downlink wiring");
        _broadcast_down(child, t_final);
    }
    _stats.inc("broadcasts");
}

} // namespace dhisq::net
