/**
 * @file
 * Hybrid network topology (Section 5.1), generalized to arbitrary graphs.
 *
 * The intra-layer network is an explicit adjacency graph: every controller
 * keeps a list of (peer, link latency) edges carrying BISP's 1-bit sync
 * signals and neighbour feedback. Named shape generators build the graphs
 * the paper and related distributed-QC work evaluate — `line`, `grid`
 * (the original implicit W x H mesh, bit-compatible), `ring`, `torus`,
 * `heavy_hex` (IBM-style bridged rows) and `star` (an explicit central hub
 * for the lock-step baseline). On top of any controller set a balanced
 * tree of routers (minimum edges, 2*h diameter) provides region-level
 * synchronization and long-distance messages.
 *
 * Each topology also exposes a *placement order*: a permutation of the
 * controllers that embeds a path into the graph as far as the shape allows
 * (identity on a line, boustrophedon snake on grids/tori, row snake through
 * descending bridges on heavy-hex). The compiler maps consecutive qubit
 * blocks along this order so line-coupled circuits land on adjacent
 * controllers wherever the shape has the edges for it.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace dhisq::net {

/** Sentinel router id (root's parent). */
inline constexpr RouterId kNoRouter = 0xFFFFFFFF;

/** Named intra-layer graph shapes. */
enum class TopologyShape : std::uint8_t
{
    kLine,     ///< 1 x n chain
    kGrid,     ///< W x H mesh, 4-connected (the paper's qubit-grid mirror)
    kRing,     ///< n-cycle (line + wraparound edge)
    kTorus,    ///< W x H mesh with wraparound in both dimensions
    kHeavyHex, ///< IBM-style rows bridged by degree-2 coupler nodes
    kStar,     ///< explicit central hub (lock-step baseline interconnect)
};

/** Human-readable shape name ("line", "heavy_hex", ...). */
const char *toString(TopologyShape shape);

/** Parse a shape name; false when `text` names no shape. */
bool parseTopologyShape(std::string_view text, TopologyShape &out);

/** Every shape in canonical sweep order. */
const std::vector<TopologyShape> &allTopologyShapes();

/** Topology parameters. */
struct TopologyConfig
{
    TopologyShape shape = TopologyShape::kGrid;
    unsigned width = 1;        ///< Columns (line/ring/star: width*height = n).
    unsigned height = 1;       ///< Rows (heavy_hex: data rows).
    unsigned tree_arity = 4;   ///< Router fan-out.
    Cycle neighbor_latency = 2; ///< Nearest-neighbour link latency (N).
    Cycle hop_latency = 4;      ///< Tree-edge latency per hop.
    Cycle hub_latency = 25;     ///< Star spoke-link latency (shape kStar).
};

/** One router of the inter-layer tree. */
struct RouterNode
{
    RouterId id = 0;
    RouterId parent = kNoRouter;
    std::vector<RouterId> child_routers;
    std::vector<ControllerId> child_controllers;
    unsigned level = 0;       ///< 0 = leaf-adjacent routers.
};

/** Immutable topology: controller graph + balanced router tree. */
class Topology
{
  public:
    /** One directed half of an intra-layer link. */
    struct Link
    {
        ControllerId peer = kNoController;
        Cycle latency = 0;
    };

    /** Build the shape selected by `config.shape`. */
    static Topology build(const TopologyConfig &config);

    /** Build a width x height controller grid with its router tree. */
    static Topology grid(const TopologyConfig &config);

    /** Convenience: a 1 x n line of controllers. */
    static Topology line(unsigned n, const TopologyConfig &base = {});

    /** An n-cycle (wraparound line; n < 3 degrades to a line). */
    static Topology ring(unsigned n, const TopologyConfig &base = {});

    /** A width x height torus (wraparound only where it adds an edge). */
    static Topology torus(const TopologyConfig &config);

    /**
     * A heavy-hex-style lattice: `height` rows of `width` line-coupled
     * controllers, consecutive rows joined by degree-2 bridge controllers
     * at every fourth column (offset alternating 0/2 per row pair, the
     * IBM pattern). Bridges get ids after the row controllers.
     */
    static Topology heavyHex(const TopologyConfig &config);

    /** A star: controller 0 is the hub, 1..n-1 are spokes. */
    static Topology star(unsigned n, const TopologyConfig &base = {});

    const TopologyConfig &config() const { return _config; }
    TopologyShape shape() const { return _config.shape; }

    unsigned numControllers() const { return unsigned(_links.size()); }
    unsigned numRouters() const { return unsigned(_routers.size()); }
    RouterId rootRouter() const { return _root; }

    /** True when an intra-layer link joins `a` and `b`. */
    bool areNeighbors(ControllerId a, ControllerId b) const;

    /** All graph neighbours of a controller, in generator order. */
    std::vector<ControllerId> neighborsOf(ControllerId c) const;

    /** The adjacency list of a controller (peers + link latencies). */
    const std::vector<Link> &linksOf(ControllerId c) const;

    /** Calibrated link latency between two adjacent controllers (BISP's N). */
    Cycle neighborLatency(ControllerId a, ControllerId b) const;

    Cycle hopLatency() const { return _config.hop_latency; }

    /**
     * Qubit-placement embedding: a permutation of the controllers whose
     * consecutive entries are graph-adjacent wherever the shape allows.
     */
    const std::vector<ControllerId> &placementOrder() const
    {
        return _placement;
    }

    /** Leaf router that parents a controller. */
    RouterId parentRouter(ControllerId c) const;

    const RouterNode &router(RouterId r) const;

    /** True when controller `c` lies in the subtree of router `r`. */
    bool inSubtree(ControllerId c, RouterId r) const;

    /** All controllers in the subtree of `r`. */
    std::vector<ControllerId> controllersUnder(RouterId r) const;

    /** Hops from router `r` down to its deepest controller (>= 1). */
    unsigned maxDepthBelow(RouterId r) const;

    /** Worst-case latency from `r` down to any controller in its subtree. */
    Cycle maxDownstreamLatency(RouterId r) const
    {
        return maxDepthBelow(r) * _config.hop_latency;
    }

    /** Tree hop count between two controllers (up to the LCA and down). */
    unsigned treeHops(ControllerId a, ControllerId b) const;

    /**
     * Point-to-point message latency: the direct link when adjacent in the
     * graph, otherwise the router-tree path.
     */
    Cycle messageLatency(ControllerId a, ControllerId b) const;

    /** Graph (BFS hop) distance between two controllers. */
    unsigned graphDistance(ControllerId a, ControllerId b) const;

    /** Manhattan distance on grid-family shapes (line/grid only). */
    unsigned gridDistance(ControllerId a, ControllerId b) const;

  private:
    Topology() = default;

    /** Size the graph to `n` isolated controllers. */
    void allocControllers(unsigned n);

    /** Append the directed halves of an undirected link. */
    void addLink(ControllerId a, ControllerId b, Cycle latency);

    /** Build the balanced router tree over all controllers. */
    void buildRouterTree();

    TopologyConfig _config;
    std::vector<std::vector<Link>> _links;
    std::vector<ControllerId> _placement;
    std::vector<RouterNode> _routers;
    std::vector<RouterId> _controller_parent;
    RouterId _root = kNoRouter;
};

} // namespace dhisq::net
