/**
 * @file
 * Hybrid network topology (Section 5.1): a mesh-like intra-layer topology
 * that mirrors the qubit grid (nearest-neighbour links carry BISP's 1-bit
 * sync signals and neighbour feedback), plus a balanced tree of routers
 * (minimum edges, 2*h diameter) for region-level synchronization and
 * long-distance messages.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dhisq::net {

/** Sentinel router id (root's parent). */
inline constexpr RouterId kNoRouter = 0xFFFFFFFF;

/** Topology parameters. */
struct TopologyConfig
{
    unsigned width = 1;        ///< Controller-grid width.
    unsigned height = 1;       ///< Controller-grid height.
    unsigned tree_arity = 4;   ///< Router fan-out.
    Cycle neighbor_latency = 2; ///< Nearest-neighbour link latency (N).
    Cycle hop_latency = 4;      ///< Tree-edge latency per hop.
};

/** One router of the inter-layer tree. */
struct RouterNode
{
    RouterId id = 0;
    RouterId parent = kNoRouter;
    std::vector<RouterId> child_routers;
    std::vector<ControllerId> child_controllers;
    unsigned level = 0;       ///< 0 = leaf-adjacent routers.
};

/** Immutable topology: controller mesh + balanced router tree. */
class Topology
{
  public:
    /** Build a width x height controller grid with its router tree. */
    static Topology grid(const TopologyConfig &config);

    /** Convenience: a 1 x n line of controllers. */
    static Topology line(unsigned n, const TopologyConfig &base = {});

    const TopologyConfig &config() const { return _config; }

    unsigned numControllers() const { return _config.width * _config.height; }
    unsigned numRouters() const { return unsigned(_routers.size()); }
    RouterId rootRouter() const { return _root; }

    /** 4-neighbourhood adjacency on the controller grid. */
    bool areNeighbors(ControllerId a, ControllerId b) const;

    /** All mesh neighbours of a controller. */
    std::vector<ControllerId> neighborsOf(ControllerId c) const;

    /** Calibrated nearest-neighbour link latency (BISP's N). */
    Cycle neighborLatency(ControllerId a, ControllerId b) const;

    Cycle hopLatency() const { return _config.hop_latency; }

    /** Leaf router that parents a controller. */
    RouterId parentRouter(ControllerId c) const;

    const RouterNode &router(RouterId r) const;

    /** True when controller `c` lies in the subtree of router `r`. */
    bool inSubtree(ControllerId c, RouterId r) const;

    /** All controllers in the subtree of `r`. */
    std::vector<ControllerId> controllersUnder(RouterId r) const;

    /** Hops from router `r` down to its deepest controller (>= 1). */
    unsigned maxDepthBelow(RouterId r) const;

    /** Worst-case latency from `r` down to any controller in its subtree. */
    Cycle maxDownstreamLatency(RouterId r) const
    {
        return maxDepthBelow(r) * _config.hop_latency;
    }

    /** Tree hop count between two controllers (up to the LCA and down). */
    unsigned treeHops(ControllerId a, ControllerId b) const;

    /**
     * Point-to-point message latency: neighbour link when adjacent in the
     * mesh, otherwise the router-tree path.
     */
    Cycle messageLatency(ControllerId a, ControllerId b) const;

    /** Manhattan distance on the controller grid. */
    unsigned gridDistance(ControllerId a, ControllerId b) const;

  private:
    Topology() = default;

    TopologyConfig _config;
    std::vector<RouterNode> _routers;
    std::vector<RouterId> _controller_parent;
    RouterId _root = kNoRouter;
};

} // namespace dhisq::net
