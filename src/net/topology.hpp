/**
 * @file
 * Hybrid network topology (Section 5.1), generalized to arbitrary graphs.
 *
 * The intra-layer network is an explicit adjacency graph: every controller
 * keeps a list of (peer, link latency) edges carrying BISP's 1-bit sync
 * signals and neighbour feedback. Named shape generators build the graphs
 * the paper and related distributed-QC work evaluate — `line`, `grid`
 * (the original implicit W x H mesh, bit-compatible), `ring`, `torus`,
 * `heavy_hex` (IBM-style bridged rows) and `star` (an explicit central hub
 * for the lock-step baseline). On top of any controller set a balanced
 * tree of routers (minimum edges, 2*h diameter) provides region-level
 * synchronization and long-distance messages.
 *
 * Each topology also exposes a *placement order*: a permutation of the
 * controllers that embeds a path into the graph as far as the shape allows
 * (identity on a line, boustrophedon snake on grids/tori, row snake through
 * descending bridges on heavy-hex). The compiler maps consecutive qubit
 * blocks along this order so line-coupled circuits land on adjacent
 * controllers wherever the shape has the edges for it.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace dhisq::net {

/** Sentinel router id (root's parent). */
inline constexpr RouterId kNoRouter = 0xFFFFFFFF;

/** Named intra-layer graph shapes. */
enum class TopologyShape : std::uint8_t
{
    kLine,     ///< 1 x n chain
    kGrid,     ///< W x H mesh, 4-connected (the paper's qubit-grid mirror)
    kRing,     ///< n-cycle (line + wraparound edge)
    kTorus,    ///< W x H mesh with wraparound in both dimensions
    kHeavyHex, ///< IBM-style rows bridged by degree-2 coupler nodes
    kStar,     ///< explicit central hub (lock-step baseline interconnect)
};

/** Human-readable shape name ("line", "heavy_hex", ...). */
const char *toString(TopologyShape shape);

/** Parse a shape name; false when `text` names no shape. */
bool parseTopologyShape(std::string_view text, TopologyShape &out);

/** Every shape in canonical sweep order. */
const std::vector<TopologyShape> &allTopologyShapes();

/**
 * Per-link latency heterogeneity applied by the shape generators.
 *
 *  - kUniform         every link carries its base latency (the PR 3
 *                     behaviour, bit-compatible).
 *  - kDistanceScaled  a link's latency scales with its physical cable
 *                     length in lattice units (wraparound links on
 *                     rings/tori span the whole row/column), capped at
 *                     4x the base so the model stays in BISP's regime.
 *  - kSeededJitter    deterministic per-link calibration spread in
 *                     [base, 2*base), seeded by `latency_seed` — models a
 *                     rack whose cables were cut, not designed.
 */
enum class LinkLatencyModel : std::uint8_t
{
    kUniform,
    kDistanceScaled,
    kSeededJitter,
};

/** Human-readable model name ("uniform", "distance_scaled", "jitter"). */
const char *toString(LinkLatencyModel model);

/** Parse a latency-model name; false when `text` names no model. */
bool parseLinkLatencyModel(std::string_view text, LinkLatencyModel &out);

/** Every latency model in canonical sweep order. */
const std::vector<LinkLatencyModel> &allLinkLatencyModels();

/**
 * How level-0 routers group controllers (and upper levels group routers).
 *
 *  - kIdBlocks  consecutive-id blocks of `tree_arity` (the PR 3 behaviour,
 *               bit-compatible; spatially local only along the id order).
 *  - kLocality  BFS regions over the controller graph: each leaf router
 *               parents a connected neighbourhood, and upper levels group
 *               routers whose regions share a graph edge — subtree syncs
 *               on non-line shapes stop spanning the whole machine.
 */
enum class RouterClustering : std::uint8_t { kIdBlocks, kLocality };

/** Human-readable clustering name ("id_blocks", "locality"). */
const char *toString(RouterClustering clustering);

/** Parse a clustering name; false when `text` names no clustering. */
bool parseRouterClustering(std::string_view text, RouterClustering &out);

/** Every clustering in canonical sweep order. */
const std::vector<RouterClustering> &allRouterClusterings();

/** Topology parameters. */
struct TopologyConfig
{
    TopologyShape shape = TopologyShape::kGrid;
    unsigned width = 1;        ///< Columns (line/ring/star: width*height = n).
    unsigned height = 1;       ///< Rows (heavy_hex: data rows).
    unsigned tree_arity = 4;   ///< Router fan-out.
    Cycle neighbor_latency = 2; ///< Nearest-neighbour link latency (N).
    Cycle hop_latency = 4;      ///< Tree-edge latency per hop.
    Cycle hub_latency = 25;     ///< Star spoke-link latency; also the
                                ///< abstract central-hub constant the
                                ///< lock-step baseline broadcasts through
                                ///< on every shape (single source of truth).
    LinkLatencyModel latency_model = LinkLatencyModel::kUniform;
    std::uint64_t latency_seed = 2025; ///< Seed for kSeededJitter.
    RouterClustering clustering = RouterClustering::kIdBlocks;
};

/** One router of the inter-layer tree. */
struct RouterNode
{
    RouterId id = 0;
    RouterId parent = kNoRouter;
    std::vector<RouterId> child_routers;
    std::vector<ControllerId> child_controllers;
    unsigned level = 0;       ///< 0 = leaf-adjacent routers.
};

/** Immutable topology: controller graph + balanced router tree. */
class Topology
{
  public:
    /** One directed half of an intra-layer link. */
    struct Link
    {
        ControllerId peer = kNoController;
        Cycle latency = 0;
    };

    /** Build the shape selected by `config.shape`. */
    static Topology build(const TopologyConfig &config);

    /** Build a width x height controller grid with its router tree. */
    static Topology grid(const TopologyConfig &config);

    /** Convenience: a 1 x n line of controllers. */
    static Topology line(unsigned n, const TopologyConfig &base = {});

    /** An n-cycle (wraparound line; n < 3 degrades to a line). */
    static Topology ring(unsigned n, const TopologyConfig &base = {});

    /** A width x height torus (wraparound only where it adds an edge). */
    static Topology torus(const TopologyConfig &config);

    /**
     * A heavy-hex-style lattice: `height` rows of `width` line-coupled
     * controllers, consecutive rows joined by degree-2 bridge controllers
     * at every fourth column (offset alternating 0/2 per row pair, the
     * IBM pattern). Bridges get ids after the row controllers.
     */
    static Topology heavyHex(const TopologyConfig &config);

    /** A star: controller 0 is the hub, 1..n-1 are spokes. */
    static Topology star(unsigned n, const TopologyConfig &base = {});

    const TopologyConfig &config() const { return _config; }
    TopologyShape shape() const { return _config.shape; }

    unsigned numControllers() const { return unsigned(_links.size()); }
    unsigned numRouters() const { return unsigned(_routers.size()); }
    RouterId rootRouter() const { return _root; }

    /** True when an intra-layer link joins `a` and `b`. */
    bool areNeighbors(ControllerId a, ControllerId b) const;

    /** All graph neighbours of a controller, in generator order. */
    std::vector<ControllerId> neighborsOf(ControllerId c) const;

    /** The adjacency list of a controller (peers + link latencies). */
    const std::vector<Link> &linksOf(ControllerId c) const;

    /** Calibrated link latency between two adjacent controllers (BISP's N). */
    Cycle neighborLatency(ControllerId a, ControllerId b) const;

    Cycle hopLatency() const { return _config.hop_latency; }

    /**
     * Qubit-placement embedding: a permutation of the controllers whose
     * consecutive entries are graph-adjacent wherever the shape allows.
     */
    const std::vector<ControllerId> &placementOrder() const
    {
        return _placement;
    }

    /** Leaf router that parents a controller. */
    RouterId parentRouter(ControllerId c) const;

    const RouterNode &router(RouterId r) const;

    /** True when controller `c` lies in the subtree of router `r`. */
    bool inSubtree(ControllerId c, RouterId r) const;

    /** All controllers in the subtree of `r`. */
    std::vector<ControllerId> controllersUnder(RouterId r) const;

    /** Hops from router `r` down to its deepest controller (>= 1). */
    unsigned maxDepthBelow(RouterId r) const;

    /** Worst-case latency from `r` down to any controller in its subtree. */
    Cycle maxDownstreamLatency(RouterId r) const
    {
        return maxDepthBelow(r) * _config.hop_latency;
    }

    /** Tree hop count between two controllers (up to the LCA and down). */
    unsigned treeHops(ControllerId a, ControllerId b) const;

    /**
     * Point-to-point message latency: the direct link when adjacent in the
     * graph, otherwise the router-tree path.
     */
    Cycle messageLatency(ControllerId a, ControllerId b) const;

    /** Graph (BFS hop) distance between two controllers. */
    unsigned graphDistance(ControllerId a, ControllerId b) const;

    /**
     * Cheapest sum of link latencies between two controllers (Dijkstra
     * over the intra-layer graph). Equals graphDistance * neighbor
     * latency under the uniform model; with heterogeneous links this is
     * the cost the placement optimizer prices a cut edge at.
     */
    Cycle latencyDistance(ControllerId a, ControllerId b) const;

    /**
     * The controller sequence (a, ..., b) realizing latencyDistance(a, b):
     * consecutive entries are graph-adjacent and the summed link
     * latencies equal the cheapest latency distance. Deterministic for
     * fixed inputs (ties resolve toward the first-discovered relaxation
     * in generator link order). The routing pass walks SWAP chains
     * along this path.
     */
    std::vector<ControllerId> cheapestPath(ControllerId a,
                                           ControllerId b) const;

    /**
     * Up to `k` cheapest loopless paths a -> b in ascending cost order
     * (Yen's algorithm over the Dijkstra core). The first entry always
     * equals cheapestPath(a, b); cost ties order lexicographically by
     * controller sequence, so the list is deterministic for fixed
     * inputs. Fewer than `k` entries when the graph has fewer simple
     * paths. The windowed Route pass scores these as the candidate
     * SWAP chains per two-qubit gate.
     */
    std::vector<std::vector<ControllerId>>
    kCheapestPaths(ControllerId a, ControllerId b, unsigned k) const;

    /** Manhattan distance on grid-family shapes (line/grid only). */
    unsigned gridDistance(ControllerId a, ControllerId b) const;

  private:
    Topology() = default;

    /** Size the graph to `n` isolated controllers. */
    void allocControllers(unsigned n);

    /** Append the directed halves of an undirected link. */
    void addLink(ControllerId a, ControllerId b, Cycle latency);

    /**
     * Latency of the (a, b) link under the configured model; `base` is the
     * shape's nominal latency for the link and `distance` its physical
     * length in lattice units (1 for lattice neighbours, the span for
     * wraparounds).
     */
    Cycle modeledLatency(Cycle base, unsigned distance, ControllerId a,
                         ControllerId b) const;

    /** Build the balanced router tree over all controllers. */
    void buildRouterTree();

    /** Discard and rebuild the router tree (for generators that add
     *  links after a base shape already built one — locality clustering
     *  must see the final graph). */
    void rebuildRouterTree();

    /** Locality variant: BFS-region leaf groups, adjacency-clustered
     *  upper levels. */
    void buildLocalityRouterTree();

    /** Shared Dijkstra core of latencyDistance/cheapestPath: returns the
     *  cheapest latency a -> b and, when `path` is non-null, fills the
     *  realizing controller walk. */
    Cycle cheapestTo(ControllerId a, ControllerId b,
                     std::vector<ControllerId> *path) const;

    /** Masked Dijkstra for the Yen spur searches: nodes flagged in
     *  `banned_nodes` and undirected edges listed in `banned_edges` are
     *  skipped. Returns kNoCycle when no path survives the mask. */
    Cycle maskedCheapest(
        ControllerId a, ControllerId b,
        const std::vector<char> &banned_nodes,
        const std::vector<std::pair<ControllerId, ControllerId>>
            &banned_edges,
        std::vector<ControllerId> &path) const;

    TopologyConfig _config;
    std::vector<std::vector<Link>> _links;
    std::vector<ControllerId> _placement;
    std::vector<RouterNode> _routers;
    std::vector<RouterId> _controller_parent;
    RouterId _root = kNoRouter;
};

} // namespace dhisq::net
