/**
 * @file
 * Region-synchronization router (Section 5.2, Figure 8).
 *
 * Algorithm per router:
 *  1. A message from a child is buffered; a message from the parent is
 *     broadcast to all children.
 *  2. Once every child has contributed, the maximum time-point is computed.
 *  3. If this router is the sync destination it broadcasts the result to
 *     its children; otherwise it forwards the maximum to its parent.
 *
 * Two notification variants (DESIGN.md Section 2):
 *  - Paper:  broadcast T_m = max(T_i) directly. Zero overhead iff
 *            max(B_i + L_i) <= max(T_i) (Section 4.4); may desynchronize
 *            when booking leads are too small.
 *  - Robust: broadcast T_final = max(T_m, decision_time + worst downstream
 *            latency), which provably reaches every leaf before T_final.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::net {

/** Notification policy for region synchronization. */
enum class RouterPolicy : std::uint8_t { Paper, Robust };

/** Human-readable policy name ("paper", "robust"). */
const char *toString(RouterPolicy policy);

/** Parse a policy name; false when `text` names no policy. */
bool parseRouterPolicy(std::string_view text, RouterPolicy &out);

/** One router of the inter-layer tree. */
class SyncRouter
{
  public:
    /** Deliver a notification time-point to a child controller. */
    using NotifyControllerFn =
        std::function<void(ControllerId child, Cycle t_final)>;
    /** Forward an aggregated request to the parent router. */
    using ForwardUpFn =
        std::function<void(RouterId parent, RouterId target, Cycle t_max)>;
    /** Broadcast a time-point to a child router. */
    using BroadcastDownFn =
        std::function<void(RouterId child, Cycle t_final)>;

    SyncRouter(const RouterNode &node, const Topology &topo,
               sim::Scheduler &sched, TelfLog *telf, RouterPolicy policy);

    void setNotifyControllerFn(NotifyControllerFn fn)
    {
        _notify_controller = std::move(fn);
    }
    void setForwardUpFn(ForwardUpFn fn) { _forward_up = std::move(fn); }
    void setBroadcastDownFn(BroadcastDownFn fn)
    {
        _broadcast_down = std::move(fn);
    }

    RouterId id() const { return _node.id; }

    /** A booking request arrived from child controller `child`. */
    void onControllerRequest(ControllerId child, RouterId target, Cycle t_i);

    /** An aggregated request arrived from child router `child`. */
    void onRouterRequest(RouterId child, RouterId target, Cycle t_max);

    /** A notification arrived from the parent; broadcast it downward. */
    void onParentNotify(Cycle t_final);

    const StatSet &stats() const { return _stats; }

  private:
    /** Index of a child in the unified child slot table. */
    std::size_t slotOfController(ControllerId child) const;
    std::size_t slotOfRouter(RouterId child) const;

    void bufferRequest(std::size_t slot, RouterId target, Cycle t);
    void tryCompleteRound();
    void broadcast(Cycle t_final);

    RouterNode _node;
    const Topology &_topo;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    RouterPolicy _policy;
    std::string _name;

    /** Per child slot, a FIFO of pending (target, t) requests. */
    struct Request
    {
        RouterId target;
        Cycle t;
    };
    std::vector<std::deque<Request>> _pending;

    NotifyControllerFn _notify_controller;
    ForwardUpFn _forward_up;
    BroadcastDownFn _broadcast_down;
    StatSet _stats;
};

} // namespace dhisq::net
