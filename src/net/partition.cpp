#include "net/partition.hpp"

#include "common/logging.hpp"

namespace dhisq::net {

sim::PartitionPlan
makePartitionPlan(const Topology &topo, unsigned regions)
{
    const unsigned n = topo.numControllers();
    DHISQ_ASSERT(n >= 1, "cannot partition an empty topology");
    if (regions < 1)
        regions = 1;
    if (regions > n)
        regions = n;

    sim::PartitionPlan plan;
    plan.num_regions = regions;
    plan.region_of.resize(n);
    // Balanced contiguous-id blocks. Controller ids follow the shape
    // generators' row-major layout, so consecutive ids are spatially
    // close on every shape and most links stay region-internal.
    for (unsigned c = 0; c < n; ++c)
        plan.region_of[c] = std::uint32_t((std::uint64_t(c) * regions) / n);

    // Lookahead: the cheapest link crossing a region boundary bounds how
    // soon one region can affect another. A single region (or a
    // linkless graph) falls back to the cheapest link / the configured
    // neighbour latency; the window is never below one cycle.
    Cycle lookahead = kNoCycle;
    bool crossing_found = false;
    Cycle any_link_min = kNoCycle;
    for (ControllerId c = 0; c < n; ++c) {
        for (const Topology::Link &link : topo.linksOf(c)) {
            if (link.latency < any_link_min)
                any_link_min = link.latency;
            if (plan.region_of[c] != plan.region_of[link.peer] &&
                link.latency < lookahead) {
                lookahead = link.latency;
                crossing_found = true;
            }
        }
    }
    if (!crossing_found)
        lookahead = any_link_min != kNoCycle
                        ? any_link_min
                        : topo.config().neighbor_latency;
    if (lookahead < 1)
        lookahead = 1;
    plan.lookahead = lookahead;
    return plan;
}

} // namespace dhisq::net
