#include "net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dhisq::net {

Topology
Topology::grid(const TopologyConfig &config)
{
    DHISQ_ASSERT(config.width >= 1 && config.height >= 1,
                 "empty controller grid");
    DHISQ_ASSERT(config.tree_arity >= 2, "tree arity must be >= 2");

    Topology topo;
    topo._config = config;

    const unsigned n = config.width * config.height;
    topo._controller_parent.assign(n, kNoRouter);

    // Level-0 routers parent groups of `arity` consecutive controllers
    // (grouping by grid blocks keeps regions spatially local on the line /
    // row-major grid, which is what Insight #2 asks of the topology).
    std::vector<RouterId> level;
    for (unsigned base = 0; base < n; base += config.tree_arity) {
        RouterNode node;
        node.id = RouterId(topo._routers.size());
        node.level = 0;
        for (unsigned c = base; c < std::min(n, base + config.tree_arity);
             ++c) {
            node.child_controllers.push_back(c);
            topo._controller_parent[c] = node.id;
        }
        level.push_back(node.id);
        topo._routers.push_back(std::move(node));
    }

    // Stack balanced levels of routers until a single root remains.
    unsigned depth = 1;
    while (level.size() > 1) {
        std::vector<RouterId> next;
        for (std::size_t base = 0; base < level.size();
             base += config.tree_arity) {
            RouterNode node;
            node.id = RouterId(topo._routers.size());
            node.level = depth;
            for (std::size_t i = base;
                 i < std::min(level.size(), base + config.tree_arity); ++i) {
                node.child_routers.push_back(level[i]);
            }
            next.push_back(node.id);
            topo._routers.push_back(std::move(node));
            for (RouterId child : topo._routers.back().child_routers)
                topo._routers[child].parent = topo._routers.back().id;
        }
        level = std::move(next);
        ++depth;
    }
    topo._root = level.front();
    return topo;
}

Topology
Topology::line(unsigned n, const TopologyConfig &base)
{
    TopologyConfig config = base;
    config.width = n;
    config.height = 1;
    return grid(config);
}

bool
Topology::areNeighbors(ControllerId a, ControllerId b) const
{
    if (a == b)
        return false;
    return gridDistance(a, b) == 1;
}

std::vector<ControllerId>
Topology::neighborsOf(ControllerId c) const
{
    DHISQ_ASSERT(c < numControllers(), "controller out of range");
    const unsigned w = _config.width;
    const unsigned x = c % w;
    const unsigned y = c / w;
    std::vector<ControllerId> out;
    if (x > 0)
        out.push_back(c - 1);
    if (x + 1 < w)
        out.push_back(c + 1);
    if (y > 0)
        out.push_back(c - w);
    if (y + 1 < _config.height)
        out.push_back(c + w);
    return out;
}

Cycle
Topology::neighborLatency(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(areNeighbors(a, b), "controllers ", a, " and ", b,
                 " are not mesh neighbours");
    return _config.neighbor_latency;
}

RouterId
Topology::parentRouter(ControllerId c) const
{
    DHISQ_ASSERT(c < numControllers(), "controller out of range");
    return _controller_parent[c];
}

const RouterNode &
Topology::router(RouterId r) const
{
    DHISQ_ASSERT(r < _routers.size(), "router out of range");
    return _routers[r];
}

bool
Topology::inSubtree(ControllerId c, RouterId r) const
{
    RouterId cur = parentRouter(c);
    while (cur != kNoRouter) {
        if (cur == r)
            return true;
        cur = _routers[cur].parent;
    }
    return false;
}

std::vector<ControllerId>
Topology::controllersUnder(RouterId r) const
{
    std::vector<ControllerId> out;
    std::vector<RouterId> stack{r};
    while (!stack.empty()) {
        const RouterNode &node = router(stack.back());
        stack.pop_back();
        out.insert(out.end(), node.child_controllers.begin(),
                   node.child_controllers.end());
        stack.insert(stack.end(), node.child_routers.begin(),
                     node.child_routers.end());
    }
    std::sort(out.begin(), out.end());
    return out;
}

unsigned
Topology::maxDepthBelow(RouterId r) const
{
    const RouterNode &node = router(r);
    if (node.child_routers.empty())
        return node.child_controllers.empty() ? 0 : 1;
    unsigned deepest = 0;
    for (RouterId child : node.child_routers)
        deepest = std::max(deepest, maxDepthBelow(child));
    if (!node.child_controllers.empty())
        deepest = std::max(deepest, 0u);
    return deepest + 1;
}

unsigned
Topology::treeHops(ControllerId a, ControllerId b) const
{
    // Climb both parent chains to the least common ancestor.
    std::vector<RouterId> chain_a;
    for (RouterId r = parentRouter(a); r != kNoRouter;
         r = _routers[r].parent) {
        chain_a.push_back(r);
    }
    unsigned hops_b = 1;
    for (RouterId r = parentRouter(b); r != kNoRouter;
         r = _routers[r].parent) {
        auto it = std::find(chain_a.begin(), chain_a.end(), r);
        if (it != chain_a.end()) {
            const unsigned hops_a =
                unsigned(it - chain_a.begin()) + 1;
            return hops_a + hops_b;
        }
        ++hops_b;
    }
    DHISQ_PANIC("controllers share no ancestor router");
}

Cycle
Topology::messageLatency(ControllerId a, ControllerId b) const
{
    if (a == b)
        return 1;
    if (areNeighbors(a, b))
        return _config.neighbor_latency;
    return treeHops(a, b) * _config.hop_latency;
}

unsigned
Topology::gridDistance(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    const unsigned w = _config.width;
    const int ax = int(a % w), ay = int(a / w);
    const int bx = int(b % w), by = int(b / w);
    return unsigned(std::abs(ax - bx) + std::abs(ay - by));
}

} // namespace dhisq::net
