#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hpp"

namespace dhisq::net {

const char *
toString(TopologyShape shape)
{
    switch (shape) {
      case TopologyShape::kLine: return "line";
      case TopologyShape::kGrid: return "grid";
      case TopologyShape::kRing: return "ring";
      case TopologyShape::kTorus: return "torus";
      case TopologyShape::kHeavyHex: return "heavy_hex";
      case TopologyShape::kStar: return "star";
    }
    return "?";
}

bool
parseTopologyShape(std::string_view text, TopologyShape &out)
{
    for (TopologyShape shape : allTopologyShapes()) {
        if (text == toString(shape)) {
            out = shape;
            return true;
        }
    }
    return false;
}

const std::vector<TopologyShape> &
allTopologyShapes()
{
    static const std::vector<TopologyShape> shapes = {
        TopologyShape::kLine,     TopologyShape::kGrid,
        TopologyShape::kRing,     TopologyShape::kTorus,
        TopologyShape::kHeavyHex, TopologyShape::kStar,
    };
    return shapes;
}

const char *
toString(LinkLatencyModel model)
{
    switch (model) {
      case LinkLatencyModel::kUniform: return "uniform";
      case LinkLatencyModel::kDistanceScaled: return "distance_scaled";
      case LinkLatencyModel::kSeededJitter: return "jitter";
    }
    return "?";
}

bool
parseLinkLatencyModel(std::string_view text, LinkLatencyModel &out)
{
    for (LinkLatencyModel model : allLinkLatencyModels()) {
        if (text == toString(model)) {
            out = model;
            return true;
        }
    }
    return false;
}

const std::vector<LinkLatencyModel> &
allLinkLatencyModels()
{
    static const std::vector<LinkLatencyModel> models = {
        LinkLatencyModel::kUniform,
        LinkLatencyModel::kDistanceScaled,
        LinkLatencyModel::kSeededJitter,
    };
    return models;
}

const char *
toString(RouterClustering clustering)
{
    switch (clustering) {
      case RouterClustering::kIdBlocks: return "id_blocks";
      case RouterClustering::kLocality: return "locality";
    }
    return "?";
}

bool
parseRouterClustering(std::string_view text, RouterClustering &out)
{
    for (RouterClustering c : allRouterClusterings()) {
        if (text == toString(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

const std::vector<RouterClustering> &
allRouterClusterings()
{
    static const std::vector<RouterClustering> clusterings = {
        RouterClustering::kIdBlocks,
        RouterClustering::kLocality,
    };
    return clusterings;
}

void
Topology::allocControllers(unsigned n)
{
    DHISQ_ASSERT(n >= 1, "empty controller set");
    _links.assign(n, {});
    _controller_parent.assign(n, kNoRouter);
}

void
Topology::addLink(ControllerId a, ControllerId b, Cycle latency)
{
    DHISQ_ASSERT(a < _links.size() && b < _links.size() && a != b,
                 "bad link ", a, " <-> ", b);
    DHISQ_ASSERT(latency > 0, "zero link latency");
    _links[a].push_back(Link{b, latency});
    _links[b].push_back(Link{a, latency});
}

Cycle
Topology::modeledLatency(Cycle base, unsigned distance, ControllerId a,
                         ControllerId b) const
{
    DHISQ_ASSERT(distance >= 1, "link of zero physical length");
    switch (_config.latency_model) {
      case LinkLatencyModel::kUniform:
        return base;
      case LinkLatencyModel::kDistanceScaled:
        return base * Cycle(std::min(distance, 4u));
      case LinkLatencyModel::kSeededJitter: {
        // SplitMix64 over (seed, undirected edge id): deterministic,
        // order-independent, in [base, 2 * base).
        const std::uint64_t lo = std::min(a, b);
        const std::uint64_t hi = std::max(a, b);
        std::uint64_t x = _config.latency_seed + (lo << 32 | hi);
        x += 0x9E3779B97F4A7C15ull;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        x ^= x >> 31;
        return base + Cycle(x % base);
      }
    }
    DHISQ_PANIC("unknown link latency model");
}

namespace {

/**
 * Greedy compact-region clustering: partition items 0..n-1 into groups of
 * up to `arity` members. Each group grows from the lowest-indexed
 * unassigned item by repeatedly absorbing the frontier item with the most
 * edges into the region so far (ties to the lowest index) — BFS regions
 * with a compactness bias, so grids grow squares instead of snakes.
 * Every group is a connected region of `adjacency` whenever the graph has
 * the edges for it. Deterministic.
 */
std::vector<std::vector<unsigned>>
clusterByBfsRegions(const std::vector<std::vector<unsigned>> &adjacency,
                    unsigned arity)
{
    const unsigned n = unsigned(adjacency.size());
    std::vector<char> grouped(n, 0);
    // Edges from each item into the region currently being grown; reset
    // lazily via a generation stamp.
    std::vector<unsigned> region_links(n, 0);
    std::vector<unsigned> stamp(n, 0);
    unsigned generation = 0;
    std::vector<std::vector<unsigned>> groups;
    for (unsigned seed = 0; seed < n; ++seed) {
        if (grouped[seed])
            continue;
        ++generation;
        std::vector<unsigned> members;
        std::vector<unsigned> frontier;
        auto absorb = [&](unsigned item) {
            grouped[item] = 1;
            members.push_back(item);
            for (unsigned peer : adjacency[item]) {
                if (grouped[peer])
                    continue;
                if (stamp[peer] != generation) {
                    stamp[peer] = generation;
                    region_links[peer] = 0;
                    frontier.push_back(peer);
                }
                ++region_links[peer];
            }
        };
        absorb(seed);
        while (members.size() < arity && !frontier.empty()) {
            unsigned best = unsigned(-1);
            unsigned best_links = 0;
            for (unsigned cand : frontier) {
                if (grouped[cand])
                    continue;
                if (region_links[cand] > best_links ||
                    (region_links[cand] == best_links && cand < best)) {
                    best = cand;
                    best_links = region_links[cand];
                }
            }
            if (best == unsigned(-1))
                break;
            absorb(best);
        }
        groups.push_back(std::move(members));
    }
    return groups;
}

} // namespace

void
Topology::buildLocalityRouterTree()
{
    const unsigned n = numControllers();
    const unsigned arity = _config.tree_arity;

    // Level 0: BFS regions of the controller graph.
    std::vector<std::vector<unsigned>> adjacency(n);
    for (ControllerId c = 0; c < n; ++c) {
        for (const Link &link : _links[c])
            adjacency[c].push_back(link.peer);
    }
    const auto regions = clusterByBfsRegions(adjacency, arity);

    std::vector<RouterId> level;
    // Which level-router currently tops each controller (for adjacency
    // between upper-level groups).
    std::vector<unsigned> top_of(n, 0);
    for (const auto &region : regions) {
        RouterNode node;
        node.id = RouterId(_routers.size());
        node.level = 0;
        for (unsigned c : region) {
            node.child_controllers.push_back(c);
            _controller_parent[c] = node.id;
            top_of[c] = unsigned(level.size());
        }
        level.push_back(node.id);
        _routers.push_back(std::move(node));
    }

    // Upper levels: group routers whose regions share a graph edge.
    unsigned depth = 1;
    while (level.size() > 1) {
        const unsigned m = unsigned(level.size());
        std::vector<std::vector<unsigned>> router_adj(m);
        for (ControllerId c = 0; c < n; ++c) {
            for (const Link &link : _links[c]) {
                const unsigned ga = top_of[c];
                const unsigned gb = top_of[link.peer];
                if (ga == gb)
                    continue;
                auto &row = router_adj[ga];
                if (std::find(row.begin(), row.end(), gb) == row.end())
                    row.push_back(gb);
            }
        }
        auto clusters = clusterByBfsRegions(router_adj, arity);
        if (clusters.size() >= m) {
            // Degenerate (edge-less) router graph: group consecutively so
            // the level still shrinks. Unreachable on connected shapes.
            clusters.clear();
            for (unsigned base = 0; base < m; base += arity) {
                std::vector<unsigned> run;
                for (unsigned i = base; i < std::min(m, base + arity); ++i)
                    run.push_back(i);
                clusters.push_back(std::move(run));
            }
        }

        std::vector<RouterId> next;
        std::vector<unsigned> next_top_group(m, 0);
        for (const auto &cluster : clusters) {
            RouterNode node;
            node.id = RouterId(_routers.size());
            node.level = depth;
            for (unsigned i : cluster) {
                node.child_routers.push_back(level[i]);
                next_top_group[i] = unsigned(next.size());
            }
            next.push_back(node.id);
            _routers.push_back(std::move(node));
            for (RouterId child : _routers.back().child_routers)
                _routers[child].parent = _routers.back().id;
        }
        for (ControllerId c = 0; c < n; ++c)
            top_of[c] = next_top_group[top_of[c]];
        level = std::move(next);
        ++depth;
    }
    _root = level.front();
}

void
Topology::rebuildRouterTree()
{
    _routers.clear();
    _controller_parent.assign(numControllers(), kNoRouter);
    _root = kNoRouter;
    buildRouterTree();
}

void
Topology::buildRouterTree()
{
    DHISQ_ASSERT(_config.tree_arity >= 2, "tree arity must be >= 2");
    if (_config.clustering == RouterClustering::kLocality) {
        buildLocalityRouterTree();
        return;
    }
    const unsigned n = numControllers();
    const unsigned arity = _config.tree_arity;

    // Level-0 routers parent groups of `arity` consecutive controllers
    // (grouping by id blocks keeps regions spatially local along the
    // placement order, which is what Insight #2 asks of the topology).
    std::vector<RouterId> level;
    for (unsigned base = 0; base < n; base += arity) {
        RouterNode node;
        node.id = RouterId(_routers.size());
        node.level = 0;
        for (unsigned c = base; c < std::min(n, base + arity); ++c) {
            node.child_controllers.push_back(c);
            _controller_parent[c] = node.id;
        }
        level.push_back(node.id);
        _routers.push_back(std::move(node));
    }

    // Stack balanced levels of routers until a single root remains.
    unsigned depth = 1;
    while (level.size() > 1) {
        std::vector<RouterId> next;
        for (std::size_t base = 0; base < level.size(); base += arity) {
            RouterNode node;
            node.id = RouterId(_routers.size());
            node.level = depth;
            for (std::size_t i = base;
                 i < std::min(level.size(), base + arity); ++i) {
                node.child_routers.push_back(level[i]);
            }
            next.push_back(node.id);
            _routers.push_back(std::move(node));
            for (RouterId child : _routers.back().child_routers)
                _routers[child].parent = _routers.back().id;
        }
        level = std::move(next);
        ++depth;
    }
    _root = level.front();
}

Topology
Topology::build(const TopologyConfig &config)
{
    switch (config.shape) {
      case TopologyShape::kLine:
        return line(config.width * config.height, config);
      case TopologyShape::kGrid:
        return grid(config);
      case TopologyShape::kRing:
        return ring(config.width * config.height, config);
      case TopologyShape::kTorus:
        return torus(config);
      case TopologyShape::kHeavyHex:
        return heavyHex(config);
      case TopologyShape::kStar:
        return star(config.width * config.height, config);
    }
    DHISQ_PANIC("unknown topology shape");
}

namespace {

/** Boustrophedon snake over a W x H row-major grid. */
std::vector<ControllerId>
snakeOrder(unsigned w, unsigned h)
{
    std::vector<ControllerId> order;
    order.reserve(std::size_t(w) * h);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            const unsigned col = (y % 2 == 0) ? x : w - 1 - x;
            order.push_back(y * w + col);
        }
    }
    return order;
}

} // namespace

Topology
Topology::grid(const TopologyConfig &config)
{
    DHISQ_ASSERT(config.width >= 1 && config.height >= 1,
                 "empty controller grid");

    Topology topo;
    topo._config = config;
    topo._config.shape = TopologyShape::kGrid;

    const unsigned w = config.width;
    const unsigned h = config.height;
    topo.allocControllers(w * h);

    // 4-neighbourhood in the legacy left/right/up/down adjacency order;
    // per-node construction keeps neighborsOf() bit-identical to the
    // implicit-mesh implementation this replaced. Lattice neighbours sit
    // one unit apart, so only the jitter model changes their latencies.
    auto lat = [&](ControllerId a, ControllerId b) {
        return topo.modeledLatency(config.neighbor_latency, 1, a, b);
    };
    for (ControllerId c = 0; c < w * h; ++c) {
        const unsigned x = c % w;
        const unsigned y = c / w;
        auto &links = topo._links[c];
        if (x > 0)
            links.push_back(Link{c - 1, lat(c, c - 1)});
        if (x + 1 < w)
            links.push_back(Link{c + 1, lat(c, c + 1)});
        if (y > 0)
            links.push_back(Link{c - w, lat(c, c - w)});
        if (y + 1 < h)
            links.push_back(Link{c + w, lat(c, c + w)});
    }
    topo._placement = snakeOrder(w, h);
    topo.buildRouterTree();
    return topo;
}

Topology
Topology::line(unsigned n, const TopologyConfig &base)
{
    TopologyConfig config = base;
    config.width = n;
    config.height = 1;
    Topology topo = grid(config);
    topo._config.shape = TopologyShape::kLine;
    return topo;
}

Topology
Topology::ring(unsigned n, const TopologyConfig &base)
{
    TopologyConfig config = base;
    config.width = n;
    config.height = 1;
    // n < 3 has no wraparound edge to add: the ring degrades to a line.
    Topology topo = grid(config);
    topo._config.shape = TopologyShape::kRing;
    if (n >= 3) {
        // The wraparound cable spans the whole row of the rack.
        topo.addLink(n - 1, 0,
                     topo.modeledLatency(config.neighbor_latency, n - 1,
                                         n - 1, 0));
        // grid() already built the tree; locality clustering must see
        // the wrap edge.
        topo.rebuildRouterTree();
    }
    return topo;
}

Topology
Topology::torus(const TopologyConfig &config)
{
    Topology topo = grid(config);
    topo._config.shape = TopologyShape::kTorus;
    const unsigned w = config.width;
    const unsigned h = config.height;
    // Wraparound edges only where they join non-adjacent endpoints
    // (w or h of 2 already has the direct edge); their cables span the
    // full row/column under the distance-scaled model.
    if (w >= 3) {
        for (unsigned y = 0; y < h; ++y) {
            topo.addLink(y * w + w - 1, y * w,
                         topo.modeledLatency(config.neighbor_latency,
                                             w - 1, y * w + w - 1, y * w));
        }
    }
    if (h >= 3) {
        for (unsigned x = 0; x < w; ++x) {
            topo.addLink((h - 1) * w + x, x,
                         topo.modeledLatency(config.neighbor_latency,
                                             h - 1, (h - 1) * w + x, x));
        }
    }
    // grid() built the tree before the wraparounds existed; locality
    // clustering must see the final graph.
    if (w >= 3 || h >= 3)
        topo.rebuildRouterTree();
    return topo;
}

Topology
Topology::heavyHex(const TopologyConfig &config)
{
    const unsigned w = config.width;
    const unsigned h = config.height;
    DHISQ_ASSERT(w >= 1 && h >= 1, "empty heavy-hex lattice");

    // Bridge coupler between rows r and r+1 at column x (IBM pattern:
    // every fourth column, offset alternating 0/2 per row pair). Narrow
    // lattices clamp the offset into range so every row pair keeps at
    // least one bridge — the graph must stay connected.
    auto bridge_at = [&](unsigned r, unsigned x) {
        const unsigned offset =
            (r % 2 == 0) ? 0 : std::min(2u, w - 1);
        return x >= offset && (x - offset) % 4 == 0;
    };

    unsigned bridges = 0;
    for (unsigned r = 0; r + 1 < h; ++r) {
        for (unsigned x = 0; x < w; ++x)
            bridges += bridge_at(r, x) ? 1 : 0;
    }

    Topology topo;
    topo._config = config;
    topo._config.shape = TopologyShape::kHeavyHex;
    topo.allocControllers(w * h + bridges);

    for (unsigned r = 0; r < h; ++r) {
        for (unsigned x = 0; x + 1 < w; ++x) {
            topo.addLink(r * w + x, r * w + x + 1,
                         topo.modeledLatency(config.neighbor_latency, 1,
                                             r * w + x, r * w + x + 1));
        }
    }
    // Bridge ids follow the row controllers, allocated row-major; remember
    // each one so the placement snake can descend through it.
    std::vector<std::vector<ControllerId>> bridge_of(
        std::size_t(h), std::vector<ControllerId>(w, kNoController));
    ControllerId next_bridge = w * h;
    for (unsigned r = 0; r + 1 < h; ++r) {
        for (unsigned x = 0; x < w; ++x) {
            if (!bridge_at(r, x))
                continue;
            const ControllerId b = next_bridge++;
            bridge_of[r][x] = b;
            topo.addLink(r * w + x, b,
                         topo.modeledLatency(config.neighbor_latency, 1,
                                             r * w + x, b));
            topo.addLink(b, (r + 1) * w + x,
                         topo.modeledLatency(config.neighbor_latency, 1, b,
                                             (r + 1) * w + x));
        }
    }

    // Placement: snake the rows, descending through the turning column's
    // bridge when the pattern provides one; leftover bridges go last.
    std::vector<bool> placed(topo.numControllers(), false);
    auto &order = topo._placement;
    order.reserve(topo.numControllers());
    for (unsigned r = 0; r < h; ++r) {
        for (unsigned x = 0; x < w; ++x) {
            const unsigned col = (r % 2 == 0) ? x : w - 1 - x;
            order.push_back(r * w + col);
            placed[order.back()] = true;
        }
        const unsigned turn = (r % 2 == 0) ? w - 1 : 0;
        if (r + 1 < h && bridge_of[r][turn] != kNoController) {
            order.push_back(bridge_of[r][turn]);
            placed[order.back()] = true;
        }
    }
    for (ControllerId c = 0; c < topo.numControllers(); ++c) {
        if (!placed[c])
            order.push_back(c);
    }

    topo.buildRouterTree();
    return topo;
}

Topology
Topology::star(unsigned n, const TopologyConfig &base)
{
    TopologyConfig config = base;
    config.shape = TopologyShape::kStar;
    config.width = n;
    config.height = 1;

    Topology topo;
    topo._config = config;
    topo.allocControllers(n);
    for (ControllerId spoke = 1; spoke < n; ++spoke) {
        topo.addLink(0, spoke,
                     topo.modeledLatency(config.hub_latency, 1, 0, spoke));
    }
    topo._placement.resize(n);
    for (ControllerId c = 0; c < n; ++c)
        topo._placement[c] = c;
    topo.buildRouterTree();
    return topo;
}

bool
Topology::areNeighbors(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    if (a == b)
        return false;
    for (const Link &link : _links[a]) {
        if (link.peer == b)
            return true;
    }
    return false;
}

std::vector<ControllerId>
Topology::neighborsOf(ControllerId c) const
{
    DHISQ_ASSERT(c < numControllers(), "controller out of range");
    std::vector<ControllerId> out;
    out.reserve(_links[c].size());
    for (const Link &link : _links[c])
        out.push_back(link.peer);
    return out;
}

const std::vector<Topology::Link> &
Topology::linksOf(ControllerId c) const
{
    DHISQ_ASSERT(c < numControllers(), "controller out of range");
    return _links[c];
}

Cycle
Topology::neighborLatency(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    for (const Link &link : _links[a]) {
        if (link.peer == b)
            return link.latency;
    }
    DHISQ_PANIC("controllers ", a, " and ", b, " share no link");
}

RouterId
Topology::parentRouter(ControllerId c) const
{
    DHISQ_ASSERT(c < numControllers(), "controller out of range");
    return _controller_parent[c];
}

const RouterNode &
Topology::router(RouterId r) const
{
    DHISQ_ASSERT(r < _routers.size(), "router out of range");
    return _routers[r];
}

bool
Topology::inSubtree(ControllerId c, RouterId r) const
{
    RouterId cur = parentRouter(c);
    while (cur != kNoRouter) {
        if (cur == r)
            return true;
        cur = _routers[cur].parent;
    }
    return false;
}

std::vector<ControllerId>
Topology::controllersUnder(RouterId r) const
{
    std::vector<ControllerId> out;
    std::vector<RouterId> stack{r};
    while (!stack.empty()) {
        const RouterNode &node = router(stack.back());
        stack.pop_back();
        out.insert(out.end(), node.child_controllers.begin(),
                   node.child_controllers.end());
        stack.insert(stack.end(), node.child_routers.begin(),
                     node.child_routers.end());
    }
    std::sort(out.begin(), out.end());
    return out;
}

unsigned
Topology::maxDepthBelow(RouterId r) const
{
    const RouterNode &node = router(r);
    if (node.child_routers.empty())
        return node.child_controllers.empty() ? 0 : 1;
    unsigned deepest = 0;
    for (RouterId child : node.child_routers)
        deepest = std::max(deepest, maxDepthBelow(child));
    if (!node.child_controllers.empty())
        deepest = std::max(deepest, 0u);
    return deepest + 1;
}

unsigned
Topology::treeHops(ControllerId a, ControllerId b) const
{
    // Climb both parent chains to the least common ancestor.
    std::vector<RouterId> chain_a;
    for (RouterId r = parentRouter(a); r != kNoRouter;
         r = _routers[r].parent) {
        chain_a.push_back(r);
    }
    unsigned hops_b = 1;
    for (RouterId r = parentRouter(b); r != kNoRouter;
         r = _routers[r].parent) {
        auto it = std::find(chain_a.begin(), chain_a.end(), r);
        if (it != chain_a.end()) {
            const unsigned hops_a =
                unsigned(it - chain_a.begin()) + 1;
            return hops_a + hops_b;
        }
        ++hops_b;
    }
    DHISQ_PANIC("controllers share no ancestor router");
}

Cycle
Topology::messageLatency(ControllerId a, ControllerId b) const
{
    if (a == b)
        return 1;
    for (const Link &link : _links[a]) {
        if (link.peer == b)
            return link.latency;
    }
    return treeHops(a, b) * _config.hop_latency;
}

unsigned
Topology::graphDistance(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    if (a == b)
        return 0;
    std::vector<unsigned> dist(numControllers(), unsigned(-1));
    std::deque<ControllerId> queue{a};
    dist[a] = 0;
    while (!queue.empty()) {
        const ControllerId cur = queue.front();
        queue.pop_front();
        for (const Link &link : _links[cur]) {
            if (dist[link.peer] != unsigned(-1))
                continue;
            dist[link.peer] = dist[cur] + 1;
            if (link.peer == b)
                return dist[link.peer];
            queue.push_back(link.peer);
        }
    }
    DHISQ_PANIC("controllers ", a, " and ", b, " are graph-disconnected");
}

Cycle
Topology::latencyDistance(ControllerId a, ControllerId b) const
{
    return cheapestTo(a, b, nullptr);
}

std::vector<ControllerId>
Topology::cheapestPath(ControllerId a, ControllerId b) const
{
    std::vector<ControllerId> path;
    cheapestTo(a, b, &path);
    return path;
}

Cycle
Topology::cheapestTo(ControllerId a, ControllerId b,
                     std::vector<ControllerId> *path) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    if (a == b) {
        if (path != nullptr)
            *path = {a};
        return 0;
    }
    // Dijkstra with parent tracking; strict relaxation keeps the first
    // minimal predecessor (generator link order), so ties are stable.
    std::vector<Cycle> dist(numControllers(), kNoCycle);
    std::vector<ControllerId> parent(numControllers(), kNoController);
    using Entry = std::pair<Cycle, ControllerId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    dist[a] = 0;
    frontier.emplace(0, a);
    while (!frontier.empty()) {
        const auto [d, cur] = frontier.top();
        frontier.pop();
        if (d > dist[cur])
            continue;
        if (cur == b)
            break;
        for (const Link &link : _links[cur]) {
            const Cycle cand = d + link.latency;
            if (cand < dist[link.peer]) {
                dist[link.peer] = cand;
                parent[link.peer] = cur;
                frontier.emplace(cand, link.peer);
            }
        }
    }
    DHISQ_ASSERT(dist[b] != kNoCycle, "controllers ", a, " and ", b,
                 " are graph-disconnected");
    if (path != nullptr) {
        path->clear();
        for (ControllerId cur = b; cur != kNoController;
             cur = parent[cur]) {
            path->push_back(cur);
        }
        std::reverse(path->begin(), path->end());
    }
    return dist[b];
}

Cycle
Topology::maskedCheapest(
    ControllerId a, ControllerId b, const std::vector<char> &banned_nodes,
    const std::vector<std::pair<ControllerId, ControllerId>> &banned_edges,
    std::vector<ControllerId> &path) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    path.clear();
    if (banned_nodes[a] || banned_nodes[b])
        return kNoCycle;
    auto edge_banned = [&](ControllerId u, ControllerId v) {
        for (const auto &[x, y] : banned_edges) {
            if ((x == u && y == v) || (x == v && y == u))
                return true;
        }
        return false;
    };
    std::vector<Cycle> dist(numControllers(), kNoCycle);
    std::vector<ControllerId> parent(numControllers(), kNoController);
    using Entry = std::pair<Cycle, ControllerId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    dist[a] = 0;
    frontier.emplace(0, a);
    while (!frontier.empty()) {
        const auto [d, cur] = frontier.top();
        frontier.pop();
        if (d > dist[cur])
            continue;
        if (cur == b)
            break;
        for (const Link &link : _links[cur]) {
            if (banned_nodes[link.peer] || edge_banned(cur, link.peer))
                continue;
            const Cycle cand = d + link.latency;
            if (cand < dist[link.peer]) {
                dist[link.peer] = cand;
                parent[link.peer] = cur;
                frontier.emplace(cand, link.peer);
            }
        }
    }
    if (dist[b] == kNoCycle)
        return kNoCycle;
    for (ControllerId cur = b; cur != kNoController; cur = parent[cur])
        path.push_back(cur);
    std::reverse(path.begin(), path.end());
    return dist[b];
}

std::vector<std::vector<ControllerId>>
Topology::kCheapestPaths(ControllerId a, ControllerId b, unsigned k) const
{
    std::vector<std::vector<ControllerId>> result;
    if (k == 0)
        return result;
    result.push_back(cheapestPath(a, b));
    if (a == b || k == 1)
        return result;

    auto path_cost = [&](const std::vector<ControllerId> &p) {
        Cycle c = 0;
        for (std::size_t i = 0; i + 1 < p.size(); ++i)
            c += neighborLatency(p[i], p[i + 1]);
        return c;
    };

    // Yen's algorithm: spur off every prefix of the last accepted path,
    // banning the edges other accepted paths take out of that prefix and
    // the prefix's interior nodes, then promote the cheapest candidate.
    std::vector<std::pair<Cycle, std::vector<ControllerId>>> candidates;
    while (result.size() < k) {
        const std::vector<ControllerId> prev = result.back();
        for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
            const std::vector<ControllerId> root(prev.begin(),
                                                 prev.begin() + long(i) + 1);
            std::vector<std::pair<ControllerId, ControllerId>> banned_edges;
            for (const auto &p : result) {
                if (p.size() > i + 1 &&
                    std::equal(root.begin(), root.end(), p.begin()))
                    banned_edges.emplace_back(p[i], p[i + 1]);
            }
            std::vector<char> banned_nodes(numControllers(), 0);
            for (std::size_t j = 0; j < i; ++j)
                banned_nodes[root[j]] = 1;

            std::vector<ControllerId> spur;
            if (maskedCheapest(prev[i], b, banned_nodes, banned_edges,
                               spur) == kNoCycle)
                continue;
            std::vector<ControllerId> total = root;
            total.insert(total.end(), spur.begin() + 1, spur.end());
            const auto dup = [&total](const auto &entry) {
                return entry.second == total;
            };
            if (std::find(result.begin(), result.end(), total) !=
                    result.end() ||
                std::any_of(candidates.begin(), candidates.end(), dup))
                continue;
            candidates.emplace_back(path_cost(total), std::move(total));
        }
        if (candidates.empty())
            break;
        auto best = candidates.begin();
        for (auto it = std::next(best); it != candidates.end(); ++it) {
            if (it->first < best->first ||
                (it->first == best->first && it->second < best->second))
                best = it;
        }
        result.push_back(std::move(best->second));
        candidates.erase(best);
    }
    return result;
}

unsigned
Topology::gridDistance(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < numControllers() && b < numControllers(),
                 "controller out of range");
    DHISQ_ASSERT(_config.shape == TopologyShape::kGrid ||
                     _config.shape == TopologyShape::kLine,
                 "gridDistance needs a grid-family shape, not ",
                 toString(_config.shape));
    const unsigned w = _config.width;
    const int ax = int(a % w), ay = int(a / w);
    const int bx = int(b % w), by = int(b / w);
    return unsigned(std::abs(ax - bx) + std::abs(ay - by));
}

} // namespace dhisq::net
