/**
 * @file
 * Region partitioning for the conservative parallel scheduler.
 *
 * The parallel mode's correctness window comes from the machine's own
 * interconnect: controllers only interact over net::Topology links (sync
 * signals, feedback messages, router-tree traffic), every link has a
 * known minimum latency, and therefore a region of controllers cannot be
 * affected by another region sooner than the cheapest link crossing the
 * boundary — the classic PDES lookahead. makePartitionPlan extracts
 * exactly that: a balanced controller -> region map plus the minimum
 * cross-region link latency.
 */
#pragma once

#include "net/topology.hpp"
#include "sim/parallel.hpp"

namespace dhisq::net {

/**
 * Partition the controllers of `topo` into (up to) `regions` balanced
 * contiguous-id blocks and derive the conservative lookahead: the minimum
 * latency of any graph link joining two different regions (with a single
 * region, the minimum over all links; never below 1 cycle). Deterministic
 * for fixed inputs.
 */
sim::PartitionPlan makePartitionPlan(const Topology &topo, unsigned regions);

} // namespace dhisq::net
