#include "net/fabric.hpp"

#include "common/logging.hpp"

namespace dhisq::net {

Fabric::Fabric(const Topology &topo, sim::Scheduler &sched, TelfLog *telf,
               const FabricConfig &config)
    : _topo(topo), _sched(sched), _telf(telf), _config(config),
      _cores(topo.numControllers(), nullptr)
{
    // Instantiate every router of the inter-layer tree and wire the edges.
    _routers.reserve(topo.numRouters());
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        _routers.push_back(std::make_unique<SyncRouter>(
            topo.router(r), topo, sched, telf, config.policy));
    }
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        SyncRouter *router = _routers[r].get();
        router->setForwardUpFn(
            [this, r](RouterId parent, RouterId target, Cycle t_max) {
                _sched.scheduleIn(_topo.hopLatency(),
                                  [this, parent, r, target, t_max] {
                                      _routers[parent]->onRouterRequest(
                                          r, target, t_max);
                                  });
            });
        router->setBroadcastDownFn([this](RouterId child, Cycle t_final) {
            _sched.scheduleIn(_topo.hopLatency(), [this, child, t_final] {
                _routers[child]->onParentNotify(t_final);
            });
        });
        router->setNotifyControllerFn(
            [this](ControllerId child, Cycle t_final) {
                // Tag with the receiving controller: deliveries drive the
                // destination's state machine, so the parallel scheduler
                // files them under the destination's region.
                _sched.scheduleIn(
                    _topo.hopLatency(),
                    [this, child, t_final] {
                        coreAt(child)->deliverRegionNotify(t_final);
                    },
                    child);
            });
    }
}

void
Fabric::registerCore(core::HisqCore *c)
{
    DHISQ_ASSERT(c->id() < _cores.size(), "controller id out of range: ",
                 c->id());
    DHISQ_ASSERT(_cores[c->id()] == nullptr, "duplicate controller id ",
                 c->id());
    _cores[c->id()] = c;
}

core::HisqCore *
Fabric::coreAt(ControllerId id)
{
    DHISQ_ASSERT(id < _cores.size() && _cores[id] != nullptr,
                 "no core registered for controller ", id);
    return _cores[id];
}

core::CoreHooks
Fabric::hooksFor(ControllerId id)
{
    core::CoreHooks hooks;
    hooks.on_send = [this, id](ControllerId dst, std::uint32_t payload) {
        if (dst == kBroadcastDst)
            broadcast(id, payload);
        else
            sendMessage(id, dst, payload);
    };
    hooks.sync.send_nearby_signal = [this, id](ControllerId peer) {
        const Cycle latency = _topo.neighborLatency(id, peer);
        _stats.inc("nearby_signals");
        _sched.scheduleIn(
            latency, [this, id, peer] { coreAt(peer)->deliverSyncSignal(id); },
            peer);
    };
    hooks.sync.send_region_request = [this, id](RouterId target, Cycle t_i) {
        const RouterId parent = _topo.parentRouter(id);
        _stats.inc("region_requests");
        _sched.scheduleIn(_topo.hopLatency(), [this, id, parent, target,
                                               t_i] {
            _routers[parent]->onControllerRequest(id, target, t_i);
        });
    };
    hooks.sync.link_latency = [this, id](ControllerId peer) {
        const auto actual =
            std::int64_t(_topo.neighborLatency(id, peer));
        const auto believed = actual + _config.nearby_calibration_error;
        DHISQ_ASSERT(believed > 0, "calibration error yields latency <= 0");
        return Cycle(believed);
    };
    return hooks;
}

Cycle
Fabric::hubLatency() const
{
    // The topology owns the hub constant (the paper's optimistic baseline
    // assumption, Section 6.4.3): explicit star spokes are generated from
    // the same field, so abstract and explicit hubs always agree.
    return _topo.config().hub_latency;
}

void
Fabric::sendMessage(ControllerId src, ControllerId dst,
                    std::uint32_t payload)
{
    const Cycle latency = _config.star_messages
                              ? 2 * hubLatency()
                              : _topo.messageLatency(src, dst);
    _stats.inc("messages");
    _stats.sample("message_latency", double(latency));
    _sched.scheduleIn(
        latency,
        [this, src, dst, payload] { coreAt(dst)->deliverMessage(src, payload); },
        dst);
}

void
Fabric::broadcast(ControllerId src, std::uint32_t payload)
{
    const Cycle latency = 2 * hubLatency();
    _stats.inc("broadcasts");
    _sched.scheduleIn(latency, [this, src, payload] {
        for (core::HisqCore *c : _cores) {
            if (c != nullptr)
                c->deliverMessage(src, payload);
        }
    });
}

SyncRouter &
Fabric::router(RouterId id)
{
    DHISQ_ASSERT(id < _routers.size(), "router out of range");
    return *_routers[id];
}

} // namespace dhisq::net
