/**
 * @file
 * The communication fabric: wires HISQ cores to the topology's graph
 * links, the router tree and (for the lock-step baseline) a central hub.
 *
 * Latency model:
 *  - direct graph link: the link's calibrated latency (BISP's N);
 *  - router-tree path: hops * hop_latency;
 *  - central hub broadcast: constant 2 * TopologyConfig::hub_latency
 *    regardless of system size — deliberately matching the paper's
 *    optimistic baseline assumption (Section 6.4.3). The topology is the
 *    single source of truth: on an explicit `star` shape the spoke links
 *    carry the same constant, and the compiler's static lock-step
 *    schedule reads the identical field.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "core/core.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::net {

/** Destination id that broadcasts through the central hub. */
inline constexpr ControllerId kBroadcastDst = 0xFFD;

/** Fabric configuration. */
struct FabricConfig
{
    RouterPolicy policy = RouterPolicy::Robust;
    /** Route every point-to-point message via the hub (baseline mode);
     *  the hub's latency is TopologyConfig::hub_latency. */
    bool star_messages = false;
    /**
     * Calibration error injected into the SyncU's notion of the nearby link
     * latency N (signals still physically take the topology latency).
     * 0 = correctly calibrated. Used by failure-injection tests to show
     * that BISP's cycle alignment depends on the one-time calibration the
     * paper describes in Section 4.1.
     */
    std::int32_t nearby_calibration_error = 0;
};

/** Message/sync interconnect between controllers and routers. */
class Fabric
{
  public:
    Fabric(const Topology &topo, sim::Scheduler &sched, TelfLog *telf,
           const FabricConfig &config);

    const Topology &topology() const { return _topo; }
    const FabricConfig &config() const { return _config; }

    /** Register a core; its id indexes the controller table. */
    void registerCore(core::HisqCore *c);

    /**
     * Build the network-facing hooks for controller `id`; the caller adds
     * the board-facing on_codeword hook itself.
     */
    core::CoreHooks hooksFor(ControllerId id);

    /** Point-to-point classical message. */
    void sendMessage(ControllerId src, ControllerId dst,
                     std::uint32_t payload);

    /** Broadcast through the central hub to every controller. */
    void broadcast(ControllerId src, std::uint32_t payload);

    SyncRouter &router(RouterId id);

    const StatSet &stats() const { return _stats; }

  private:
    core::HisqCore *coreAt(ControllerId id);

    /** One-way hub latency (TopologyConfig::hub_latency on every shape). */
    Cycle hubLatency() const;

    const Topology &_topo;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    FabricConfig _config;

    std::vector<core::HisqCore *> _cores;
    std::vector<std::unique_ptr<SyncRouter>> _routers;
    StatSet _stats;
};

} // namespace dhisq::net
