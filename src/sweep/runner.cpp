#include "sweep/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/logging.hpp"

namespace dhisq::sweep {

void
listTasks(const std::vector<SweepTask> &tasks)
{
    for (const auto &task : tasks)
        std::printf("%s\n", task.label.c_str());
    std::printf("(%zu points)\n", tasks.size());
}

Json
PointResult::toJson() const
{
    Json j = Json::object();
    j["label"] = label;
    j["params"] = params;
    j["metrics"] = metrics;
    j["healthy"] = healthy;
    j["health"] = health;
    return j;
}

std::vector<PointResult>
SweepRunner::run(const std::vector<SweepTask> &tasks)
{
    std::vector<PointResult> results(tasks.size());
    std::vector<char> done(tasks.size(), 0);

    const unsigned workers = std::min<unsigned>(
        std::max(1u, _options.threads),
        static_cast<unsigned>(std::max<std::size_t>(1, tasks.size())));

    const auto runOne = [&](std::size_t i) {
        results[i] = tasks[i].fn();
        if (results[i].label.empty())
            results[i].label = tasks[i].label;
        done[i] = 1;
        if (_options.progress) {
            std::fprintf(stderr, "[sweep] %zu/%zu %s (%s)\n", i + 1,
                         tasks.size(), results[i].label.c_str(),
                         results[i].health.c_str());
        }
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            runOne(i);
    } else {
        // Workers pull indices from a shared counter; each index is
        // claimed exactly once, so each result slot is written exactly
        // once and the aggregate order equals the grid order.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= tasks.size())
                        return;
                    runOne(i);
                }
            });
        }
        for (auto &t : pool)
            t.join();

        // Determinism assertion: a point must not care which thread (or
        // how many siblings) ran it. Re-run a prefix serially and demand
        // bit-identical serialized results.
        const std::size_t verify = std::min<std::size_t>(
            _options.verify_points, tasks.size());
        for (std::size_t i = 0; i < verify; ++i) {
            PointResult again = tasks[i].fn();
            if (again.label.empty())
                again.label = tasks[i].label;
            DHISQ_ASSERT(
                again.toJson().dump() == results[i].toJson().dump(),
                "non-deterministic sweep point '", tasks[i].label,
                "': parallel run disagrees with serial re-run");
        }
    }

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        DHISQ_ASSERT(done[i] != 0, "sweep task ", i, " ('",
                     tasks[i].label, "') never ran");
    }
    return results;
}

bool
SweepRunner::allHealthy(const std::vector<PointResult> &results)
{
    for (const auto &r : results) {
        if (!r.healthy)
            return false;
    }
    return true;
}

} // namespace dhisq::sweep
