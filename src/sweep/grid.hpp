/**
 * @file
 * Declarative experiment grids: a data-only description of (circuit
 * generator x sync scheme x seed x qubits-per-controller) points that
 * expands into SweepTasks for the runner.
 *
 * Points are data, not closures, so a grid can be echoed verbatim into the
 * emitted JSON and a point's identity never depends on ambient state —
 * the foundation of the thread-count-independence guarantee.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "sweep/exec.hpp"
#include "sweep/runner.hpp"
#include "workloads/generators.hpp"

namespace dhisq::sweep {

/**
 * Default router fan-out. Labels and emitted params omit axis values at
 * their defaults (byte-stable json), so cell-grouping code in benches
 * must fall back to the same constants — keep them shared.
 */
inline constexpr unsigned kDefaultTreeArity = 4;

/** How to produce the circuit for one experiment point. */
struct CircuitSpec
{
    enum class Kind
    {
        kFigure15,      ///< named Figure 15 benchmark (adder_n577, ...)
        kRandomDynamic, ///< workloads::randomDynamic(random)
        kLrCnotChain,   ///< Figure 14 long-range-CNOT chain on `qubits`
        kGhzFanout,     ///< star-shaped GHZ fan-out on `qubits`
        kRoutingStress, ///< workloads::routingStress(routing_stress)
        kVqeSweep,      ///< workloads::vqeSweep(vqe) — one VQE iteration
    };

    Kind kind = Kind::kFigure15;
    /** Figure 15 benchmark name (kFigure15). */
    std::string name;
    /** Options for kRandomDynamic. */
    workloads::RandomDynamicOptions random;
    /** Options for kRoutingStress. */
    workloads::RoutingStressOptions routing_stress;
    /** Options for kVqeSweep. */
    workloads::VqeSweepOptions vqe;
    /** Line length for kLrCnotChain / kGhzFanout. */
    unsigned qubits = 9;
    /** If > 0, expandNonAdjacentGates(fraction) with `expand_seed`. */
    double expand_fraction = 0.0;
    std::uint64_t expand_seed = 2025;

    /** Stable human-readable identity ("adder_n577", "rand_q24_f0.4"). */
    std::string id() const;

    /** Materialize the (dynamic) circuit. Deterministic. */
    compiler::Circuit build() const;
};

/** One fully-specified experiment point. */
struct ExperimentPoint
{
    CircuitSpec circuit;
    /** Scheme, placement, qubits_per_controller... (scheme included). */
    compiler::CompilerConfig config;
    /** Interconnect shape the point runs on. */
    net::TopologyShape topology = net::TopologyShape::kLine;
    /** Per-link latency heterogeneity of the interconnect. */
    net::LinkLatencyModel latency_model = net::LinkLatencyModel::kUniform;
    /** Router-tree construction (id blocks vs graph locality). */
    net::RouterClustering clustering = net::RouterClustering::kIdBlocks;
    /** Region-sync notification policy. */
    net::RouterPolicy policy = net::RouterPolicy::Robust;
    /** Router fan-out. */
    unsigned tree_arity = kDefaultTreeArity;
    /** One-way central-hub constant (12 = the paper's baseline). */
    Cycle hub_latency = 12;
    /** Machine controller count; 0 = sized to fit the circuit. A value
     *  below the fit makes the point over-capacity (needs routing). */
    unsigned controllers = 0;
    std::uint64_t seed = 1;
    bool state_vector = false;
    /** Scheduler worker threads. NOT part of the point's identity: the
     *  parallel scheduler is bit-identical to the serial one, so this is
     *  excluded from label() and the emitted params — artifacts produced
     *  at different thread counts must compare byte-identical. */
    unsigned sim_threads = 1;

    std::string label() const;
};

/** Cartesian grid over the declarative axes. */
struct GridSpec
{
    std::vector<CircuitSpec> circuits;
    std::vector<compiler::SyncScheme> schemes;
    /** Interconnect shapes (the topology axis). */
    std::vector<net::TopologyShape> topologies = {net::TopologyShape::kLine};
    /** Placement strategies (compiler mapping axis). */
    std::vector<place::PlacementStrategy> placements = {
        place::PlacementStrategy::kPath};
    /** Qubit-routing modes (SWAP insertion axis). */
    std::vector<compiler::RoutingMode> routings = {
        compiler::RoutingMode::kNone};
    /** Routing lookahead windows (1 = greedy; kSwap points only). */
    std::vector<unsigned> route_windows = {1};
    /** Route -> place feedback settings (kSwap points only). */
    std::vector<bool> route_feedbacks = {false};
    /** Functional-backend tiers (state-vector mode only; the stochastic
     *  device ignores the tier). */
    std::vector<q::BackendTier> backends = {q::BackendTier::kAuto};
    /** Lazy 1q gate-fusion modes (dense functional backend only). */
    std::vector<q::FusionMode> fusions = {q::FusionMode::kOff};
    /** Link-latency heterogeneity models. */
    std::vector<net::LinkLatencyModel> latency_models = {
        net::LinkLatencyModel::kUniform};
    /** Router-tree clusterings. */
    std::vector<net::RouterClustering> clusterings = {
        net::RouterClustering::kIdBlocks};
    /** Region-sync notification policies. */
    std::vector<net::RouterPolicy> policies = {net::RouterPolicy::Robust};
    /** Router fan-outs. */
    std::vector<unsigned> tree_arities = {kDefaultTreeArity};
    std::vector<std::uint64_t> seeds = {1};
    std::vector<unsigned> qubits_per_controller = {1};
    /** Base knobs applied to every point before the axes override. */
    compiler::CompilerConfig base_config;
    /** Fixed machine controller count (0 = per-point fit; see
     *  ExperimentPoint::controllers). Not an axis. */
    unsigned controllers = 0;
    bool state_vector = false;
    /** Scheduler worker threads per point (not an axis, not serialized;
     *  see ExperimentPoint::sim_threads). */
    unsigned sim_threads = 1;
};

/**
 * Expand a grid in deterministic order: circuit-major, then scheme,
 * topology shape, placement, routing mode, routing window, routing
 * feedback, backend tier, fusion mode, latency model, clustering,
 * policy, tree arity, qubits-per-controller, seed.
 */
std::vector<ExperimentPoint> expandGrid(const GridSpec &grid);

/** Hook to derive extra metrics from the raw execution of a point. */
using MetricsHook =
    std::function<void(const ExecResult &, PointResult &)>;

/**
 * Execute one point and package the standard metrics. `extend` (optional)
 * runs after the standard metrics are filled and may add bench-specific
 * ones (e.g. the Figure 16 infidelity sweep needs per-qubit activity,
 * which is not serialized by default).
 */
PointResult runPoint(const ExperimentPoint &point,
                     const MetricsHook &extend = nullptr);

/** Wrap points into SweepTasks for SweepRunner::run. */
std::vector<SweepTask> makeTasks(const std::vector<ExperimentPoint> &points,
                                 const MetricsHook &extend = nullptr);

} // namespace dhisq::sweep
