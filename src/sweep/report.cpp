#include "sweep/report.hpp"

#include <cstdio>

namespace dhisq::sweep {

bool
BenchReport::allHealthy() const
{
    return SweepRunner::allHealthy(points);
}

Json
BenchReport::toJson() const
{
    Json j = Json::object();
    j["schema"] = "dhisq-bench-v1";
    j["bench"] = bench;
    j["config"] = config;
    Json point_array = Json::array();
    for (const auto &p : points)
        point_array.push(p.toJson());
    j["points"] = std::move(point_array);
    j["derived"] = derived;
    j["healthy"] = allHealthy();
    return j;
}

Status
writeBenchJson(const std::string &path, const BenchReport &report)
{
    const std::string text = report.toJson().dump(2) + "\n";
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return Status::ok();
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error("cannot open " + path + " for writing");
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const bool closed = (std::fclose(f) == 0);
    if (written != text.size() || !closed)
        return Status::error("short write to " + path);
    return Status::ok();
}

} // namespace dhisq::sweep
