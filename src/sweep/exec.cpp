#include "sweep/exec.hpp"

#include "runtime/machine.hpp"

namespace dhisq::sweep {

net::TopologyConfig
lineTopology(unsigned controllers)
{
    net::TopologyConfig topo;
    topo.width = controllers;
    topo.height = 1;
    topo.tree_arity = 4;
    topo.neighbor_latency = 2;
    topo.hop_latency = 4;
    return topo;
}

net::TopologyConfig
shapeTopology(net::TopologyShape shape, unsigned controllers)
{
    net::TopologyConfig topo = lineTopology(controllers);
    topo.shape = shape;
    switch (shape) {
      case net::TopologyShape::kLine:
      case net::TopologyShape::kRing:
      case net::TopologyShape::kStar:
        break; // width * height == controllers already
      case net::TopologyShape::kGrid:
      case net::TopologyShape::kTorus:
      case net::TopologyShape::kHeavyHex: {
        // Square the count up: width x height >= controllers with the
        // smallest near-square footprint (heavy-hex bridges come on top).
        unsigned w = 1;
        while (w * w < controllers)
            ++w;
        topo.width = w;
        topo.height = (controllers + w - 1) / w;
        break;
      }
    }
    return topo;
}

ExecResult
executeWith(const compiler::Circuit &circuit,
            const compiler::CompilerConfig &cc, const ExecOptions &opts)
{
    const unsigned controllers =
        opts.controllers != 0
            ? opts.controllers
            : (circuit.numQubits() + cc.qubits_per_controller - 1) /
                  cc.qubits_per_controller;
    auto topo_cfg = shapeTopology(opts.topology, controllers);
    // The topology owns the hub constant: the compiler's static lock-step
    // schedule and the fabric's broadcast both read it from here.
    topo_cfg.hub_latency = opts.hub_latency;
    topo_cfg.latency_model = opts.latency_model;
    topo_cfg.latency_seed = opts.latency_seed;
    topo_cfg.clustering = opts.clustering;
    topo_cfg.tree_arity = opts.tree_arity;
    net::Topology topo = net::Topology::build(topo_cfg);

    compiler::Compiler comp(topo, cc);
    auto compile_result = comp.tryCompile(circuit);
    if (!compile_result) {
        ExecResult rejected;
        rejected.rejected = true;
        rejected.reject_reason = compile_result.message();
        return rejected;
    }
    auto compiled = compile_result.take();

    // Size the machine from the compiled slot geometry: SWAP routing may
    // use more ports/device qubits than the circuit's own count.
    auto mc = compiler::machineConfigFor(topo_cfg, cc, compiled,
                                         opts.state_vector, opts.seed);
    mc.fabric.policy = opts.policy;
    mc.fabric.star_messages =
        (cc.scheme == compiler::SyncScheme::kLockStep);
    mc.sim_threads = opts.sim_threads;
    runtime::Machine machine(mc);
    compiled.applyTo(machine);

    const auto report = machine.run();
    ExecResult result;
    result.makespan = report.makespan;
    result.makespan_us = cyclesToNs(report.makespan) / 1000.0;
    result.violations =
        report.timing_violations + report.coincidence_violations;
    result.coincidence = report.coincidence_violations;
    result.syncs = report.syncs_completed;
    result.deadlock = report.deadlock;
    result.activity = machine.device().activity();
    result.events = report.events_executed;
    result.controllers = compiled.usedControllers();
    result.swaps = compiled.stats.counter("swaps_inserted");
    result.measurements = machine.device().measurements();
    return result;
}

ExecResult
executeWith(const compiler::Circuit &circuit,
            const compiler::CompilerConfig &cc, bool state_vector,
            std::uint64_t seed, net::TopologyShape topology)
{
    ExecOptions opts;
    opts.state_vector = state_vector;
    opts.seed = seed;
    opts.topology = topology;
    return executeWith(circuit, cc, opts);
}

ExecResult
execute(const compiler::Circuit &circuit, compiler::SyncScheme scheme,
        bool state_vector, std::uint64_t seed,
        unsigned qubits_per_controller)
{
    compiler::CompilerConfig cc;
    cc.scheme = scheme;
    cc.qubits_per_controller = qubits_per_controller;
    return executeWith(circuit, cc, state_vector, seed);
}

} // namespace dhisq::sweep
