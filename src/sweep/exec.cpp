#include "sweep/exec.hpp"

#include "runtime/machine.hpp"

namespace dhisq::sweep {

net::TopologyConfig
lineTopology(unsigned controllers)
{
    net::TopologyConfig topo;
    topo.width = controllers;
    topo.height = 1;
    topo.tree_arity = 4;
    topo.neighbor_latency = 2;
    topo.hop_latency = 4;
    return topo;
}

ExecResult
executeWith(const compiler::Circuit &circuit,
            const compiler::CompilerConfig &cc, bool state_vector,
            std::uint64_t seed)
{
    const unsigned controllers =
        (circuit.numQubits() + cc.qubits_per_controller - 1) /
        cc.qubits_per_controller;
    const auto topo_cfg = lineTopology(controllers);
    net::Topology topo = net::Topology::grid(topo_cfg);

    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);

    auto mc = compiler::machineConfigFor(topo_cfg, cc, circuit.numQubits(),
                                         state_vector, seed);
    mc.fabric.star_messages =
        (cc.scheme == compiler::SyncScheme::kLockStep);
    runtime::Machine machine(mc);
    compiled.applyTo(machine);

    const auto report = machine.run();
    ExecResult result;
    result.makespan = report.makespan;
    result.makespan_us = cyclesToNs(report.makespan) / 1000.0;
    result.violations =
        report.timing_violations + report.coincidence_violations;
    result.coincidence = report.coincidence_violations;
    result.syncs = report.syncs_completed;
    result.deadlock = report.deadlock;
    result.activity = machine.device().activity();
    result.events = report.events_executed;
    result.controllers = compiled.usedControllers();
    return result;
}

ExecResult
execute(const compiler::Circuit &circuit, compiler::SyncScheme scheme,
        bool state_vector, std::uint64_t seed,
        unsigned qubits_per_controller)
{
    compiler::CompilerConfig cc;
    cc.scheme = scheme;
    cc.qubits_per_controller = qubits_per_controller;
    return executeWith(circuit, cc, state_vector, seed);
}

} // namespace dhisq::sweep
