/**
 * @file
 * Parallel sweep harness (the tentpole of the CI benchmark platform).
 *
 * The paper's evaluation is a grid of (workload x sync-scheme x topology x
 * seed) simulations. Each point owns an independent Machine + Scheduler,
 * so the grid is embarrassingly parallel — but the *output* must not
 * depend on the thread count:
 *
 *  - results land in a pre-sized vector indexed by task order, so
 *    aggregation order is the grid order no matter which worker ran what;
 *  - no wall-clock or environment data enters a PointResult;
 *  - determinism is *asserted*, not assumed: after a parallel run the
 *    runner re-executes the first `verify_points` tasks serially and
 *    panics if any metric differs from what the pool produced.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace dhisq::sweep {

/** Serializable outcome of one experiment point. */
struct PointResult
{
    std::string label;
    /** Echo of the point's grid coordinates (workload, scheme, seed...). */
    Json params = Json::object();
    /** Measured values (makespan, violations, events...). */
    Json metrics = Json::object();
    /** False on deadlock or a coincidence (commitment-guarantee) break. */
    bool healthy = true;
    /** "ok", "deadlock" or "coincidence". */
    std::string health = "ok";

    Json toJson() const;
};

/** One schedulable unit of a sweep. */
struct SweepTask
{
    std::string label;
    std::function<PointResult()> fn;
};

/** Print one task label per line (the --list dry run; nothing executes). */
void listTasks(const std::vector<SweepTask> &tasks);

/** Executes a sweep across a worker pool with deterministic aggregation. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 or 1 runs inline on the caller's thread. */
        unsigned threads = 1;
        /**
         * After a parallel run, re-run this many leading tasks serially
         * and assert the results are identical (0 disables the check).
         */
        unsigned verify_points = 1;
        /** Print one progress line per completed point to stderr. */
        bool progress = false;
    };

    SweepRunner();
    explicit SweepRunner(Options options);

    /**
     * Run every task; returns results in task order regardless of the
     * thread count. Panics if a worker leaves a hole or the determinism
     * re-check fails.
     */
    std::vector<PointResult> run(const std::vector<SweepTask> &tasks);

    /** True if every result in `results` is healthy. */
    static bool allHealthy(const std::vector<PointResult> &results);

  private:
    Options _options;
};

// Out-of-line so the nested Options' default member initializers are
// complete when first used (GCC rejects them in in-class default args).
inline SweepRunner::SweepRunner() : _options(Options{}) {}
inline SweepRunner::SweepRunner(Options options) : _options(options) {}

} // namespace dhisq::sweep
