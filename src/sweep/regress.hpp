/**
 * @file
 * Benchmark regression gate: compares a freshly-emitted dhisq-bench-v1
 * document against a committed baseline and flags points whose tracked
 * metrics moved past a relative threshold in the bad direction.
 *
 * The simulator is deterministic, so baseline and current values are
 * normally identical; the threshold exists to absorb intentional small
 * scheduling changes while catching real makespan/throughput regressions.
 *
 * Tracked metrics (compared only when present in both points):
 *   - makespan_cycles, makespan_us, overhead_cycles: higher is worse
 *   - points_per_sec, throughput: lower is worse
 * A point that is healthy in the baseline but unhealthy in the current
 * run, or missing from the current run, is always a regression. Points
 * new in the current run are reported as notes, never failures.
 */
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace dhisq::sweep {

/** One metric that moved past the threshold in the bad direction. */
struct RegressFinding
{
    std::string label;  ///< point label ("" for document-level findings)
    std::string metric; ///< metric key or the failure kind
    double baseline = 0.0;
    double current = 0.0;
    /** current/baseline (or its inverse for lower-is-worse metrics). */
    double ratio = 0.0;

    std::string describe() const;
};

/** Outcome of one baseline comparison. */
struct RegressReport
{
    std::vector<RegressFinding> regressions;
    /** Informational only: new points, skipped metrics... */
    std::vector<std::string> notes;
    /** Points matched between baseline and current. */
    std::size_t compared_points = 0;
    /** Metric values compared across all matched points. */
    std::size_t compared_metrics = 0;

    bool ok() const { return regressions.empty(); }
};

/**
 * Compare two parsed dhisq-bench-v1 documents. `threshold` is the
 * tolerated relative worsening (0.15 = +15%). Errors on schema mismatch
 * or structurally invalid documents.
 */
Result<RegressReport> compareBenchReports(const Json &baseline,
                                          const Json &current,
                                          double threshold);

} // namespace dhisq::sweep
