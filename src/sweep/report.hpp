/**
 * @file
 * BENCH_<name>.json emission: the machine-readable benchmark artifact CI
 * uploads and tracks across commits.
 *
 * Schema "dhisq-bench-v1" (see bench/README.md):
 *
 * {
 *   "schema":  "dhisq-bench-v1",
 *   "bench":   "<benchmark name>",
 *   "config":  { ...free-form grid echo... },
 *   "points":  [ {"label", "params", "metrics", "healthy", "health"} ],
 *   "derived": { ...benchmark-level summary values... },
 *   "healthy": true
 * }
 *
 * Everything in the file is a pure function of the grid, so a file written
 * with --threads 8 is byte-identical to one written with --threads 1 — CI
 * diffs rely on this.
 */
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "sweep/runner.hpp"

namespace dhisq::sweep {

/** One benchmark's complete, serializable outcome. */
struct BenchReport
{
    std::string bench;
    /** Free-form echo of the grid / fixed knobs. */
    Json config = Json::object();
    std::vector<PointResult> points;
    /** Benchmark-level summary (averages, ratios...). */
    Json derived = Json::object();

    bool allHealthy() const;
    Json toJson() const;
};

/** Pretty-print `report` to `path` ("-" writes to stdout). */
Status writeBenchJson(const std::string &path, const BenchReport &report);

} // namespace dhisq::sweep
