/**
 * @file
 * Compile-and-simulate execution helpers for one experiment point.
 *
 * Promoted from bench/bench_util.hpp so the sweep runner, the tests and
 * every bench binary share one definition of "run this circuit under this
 * sync scheme and report the paper's health counters".
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "quantum/device.hpp"
#include "quantum/noise.hpp"

namespace dhisq::sweep {

/** Result of one compiled-and-simulated execution. */
struct ExecResult
{
    Cycle makespan = 0;
    double makespan_us = 0.0;
    std::uint64_t violations = 0;  ///< timing slips + coincidence
    std::uint64_t coincidence = 0; ///< two-qubit half misalignments
    std::uint64_t syncs = 0;
    bool deadlock = false;
    /** Per-qubit live-window activity for the fidelity model. */
    q::ActivityTracker activity{0};
    std::uint64_t events = 0;
    /** Controllers that executed code. */
    unsigned controllers = 0;
    /** SWAPs the routing pass inserted (0 with routing disabled). */
    std::uint64_t swaps = 0;
    /** True when the compiler rejected the point (e.g. over-capacity
     *  with routing disabled); `reject_reason` carries the diagnostic
     *  and no simulation ran. */
    bool rejected = false;
    std::string reject_reason;
    /**
     * The device's measurement log (qubit, bit, start, ready), in commit
     * order — the run's observable outcome stream. Deterministic for a
     * given point, so the service tier serializes it to prove cache-on
     * and cache-off runs are bit-identical.
     */
    std::vector<q::QuantumDevice::MeasurementRecord> measurements;

    /** True when the run completed with the paper's guarantees intact. */
    bool healthy() const
    {
        return !rejected && !deadlock && coincidence == 0;
    }
};

/** Standard line-topology config for n controllers. */
net::TopologyConfig lineTopology(unsigned controllers);

/**
 * Topology config of `shape` sized to host at least `controllers`
 * controllers with the standard latencies (grids/tori are squared up,
 * heavy-hex rows are filled column-first).
 */
net::TopologyConfig shapeTopology(net::TopologyShape shape,
                                  unsigned controllers);

/**
 * Interconnect + machine knobs of one execution beyond the compiler
 * config. Defaults reproduce the PR 3 bench environment exactly.
 */
struct ExecOptions
{
    bool state_vector = false;
    std::uint64_t seed = 1;
    net::TopologyShape topology = net::TopologyShape::kLine;
    net::LinkLatencyModel latency_model = net::LinkLatencyModel::kUniform;
    net::RouterClustering clustering = net::RouterClustering::kIdBlocks;
    net::RouterPolicy policy = net::RouterPolicy::Robust;
    unsigned tree_arity = 4;
    /** One-way central-hub constant (TopologyConfig::hub_latency); 12 is
     *  the paper's deliberately-optimistic baseline (Section 6.4.3). */
    Cycle hub_latency = 12;
    std::uint64_t latency_seed = 2025; ///< Seed for the jitter model.
    /**
     * Controller count of the machine; 0 (the default) sizes it to fit
     * the circuit at qubits_per_controller. A non-zero value smaller
     * than the fit makes the point over-capacity — compilable only
     * under RoutingMode::kSwap's oversubscribed mapping.
     */
    unsigned controllers = 0;
    /**
     * Scheduler worker threads for the simulation (MachineConfig::
     * sim_threads): 1 = serial event loop, >= 2 = conservative parallel
     * mode. Never part of a point's identity — results are bit-identical
     * across values, so it is excluded from labels and emitted params.
     */
    unsigned sim_threads = 1;
};

/** Compile + run with explicit compiler and interconnect configuration. */
ExecResult executeWith(const compiler::Circuit &circuit,
                       const compiler::CompilerConfig &cc,
                       const ExecOptions &opts);

/** Legacy signature (standard interconnect knobs). */
ExecResult executeWith(
    const compiler::Circuit &circuit, const compiler::CompilerConfig &cc,
    bool state_vector = false, std::uint64_t seed = 1,
    net::TopologyShape topology = net::TopologyShape::kLine);

/**
 * Compile `circuit` for `scheme` with default knobs and execute it.
 * @param state_vector functional device (small circuits only).
 */
ExecResult execute(const compiler::Circuit &circuit,
                   compiler::SyncScheme scheme, bool state_vector = false,
                   std::uint64_t seed = 1,
                   unsigned qubits_per_controller = 1);

} // namespace dhisq::sweep
