#include "sweep/regress.hpp"

#include <cmath>
#include <cstdio>

namespace dhisq::sweep {

namespace {

/** A tracked metric and the direction in which it regresses. */
struct TrackedMetric
{
    const char *key;
    bool higher_is_worse;
};

constexpr TrackedMetric kTracked[] = {
    {"makespan_cycles", true}, {"makespan_us", true},
    {"overhead_cycles", true}, {"points_per_sec", false},
    {"throughput", false},
};

Status
checkSchema(const Json &doc, const char *which)
{
    if (!doc.isObject())
        return Status::error(std::string(which) + ": not a JSON object");
    const Json *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != "dhisq-bench-v1") {
        return Status::error(std::string(which) +
                             ": schema is not dhisq-bench-v1");
    }
    const Json *points = doc.find("points");
    if (points == nullptr || !points->isArray())
        return Status::error(std::string(which) + ": no points array");
    return Status::ok();
}

const Json *
pointByLabel(const Json &points, const std::string &label)
{
    for (const Json &p : points.asArray()) {
        const Json *l = p.find("label");
        if (l != nullptr && l->isString() && l->asString() == label)
            return &p;
    }
    return nullptr;
}

bool
isHealthy(const Json &point)
{
    const Json *h = point.find("healthy");
    return h != nullptr && h->isBool() && h->asBool();
}

} // namespace

std::string
RegressFinding::describe() const
{
    char buf[256];
    if (ratio > 0.0) {
        std::snprintf(buf, sizeof(buf), "%s: %s %.6g -> %.6g (%+.1f%%)",
                      label.empty() ? "<report>" : label.c_str(),
                      metric.c_str(), baseline, current,
                      (ratio - 1.0) * 100.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%s: %s",
                      label.empty() ? "<report>" : label.c_str(),
                      metric.c_str());
    }
    return buf;
}

Result<RegressReport>
compareBenchReports(const Json &baseline, const Json &current,
                    double threshold)
{
    if (!(threshold >= 0.0)) {
        return Result<RegressReport>::error(
            "threshold must be non-negative");
    }
    if (auto st = checkSchema(baseline, "baseline"); !st)
        return Result<RegressReport>::error(st.message());
    if (auto st = checkSchema(current, "current"); !st)
        return Result<RegressReport>::error(st.message());

    RegressReport out;
    const Json &base_points = *baseline.find("points");
    const Json &cur_points = *current.find("points");

    for (const Json &base_point : base_points.asArray()) {
        const Json *label_value = base_point.find("label");
        if (label_value == nullptr || !label_value->isString()) {
            return Result<RegressReport>::error(
                "baseline point without a label");
        }
        const std::string &label = label_value->asString();
        const Json *cur_point = pointByLabel(cur_points, label);
        if (cur_point == nullptr) {
            out.regressions.push_back(
                RegressFinding{label, "point missing from current run"});
            continue;
        }
        ++out.compared_points;

        if (isHealthy(base_point) && !isHealthy(*cur_point)) {
            out.regressions.push_back(
                RegressFinding{label, "healthy -> unhealthy"});
            continue;
        }

        // A point with no metrics object is compared as if it had an
        // empty one, so a tracked metric present on only one side is
        // still reported below.
        static const Json kEmptyMetrics = Json::object();
        const Json *base_metrics = base_point.find("metrics");
        const Json *cur_metrics = cur_point->find("metrics");
        if (base_metrics == nullptr)
            base_metrics = &kEmptyMetrics;
        if (cur_metrics == nullptr)
            cur_metrics = &kEmptyMetrics;
        for (const TrackedMetric &tracked : kTracked) {
            const Json *b = base_metrics->find(tracked.key);
            const Json *c = cur_metrics->find(tracked.key);
            const bool in_base = b != nullptr && b->isNumber();
            const bool in_cur = c != nullptr && c->isNumber();
            if (!in_base && !in_cur)
                continue;
            // A tracked metric present on one side only is a mismatch in
            // EITHER direction: vanished-from-current hides a regression,
            // vanished-from-baseline un-gates future ones.
            if (in_base != in_cur) {
                out.regressions.push_back(RegressFinding{
                    label, std::string(tracked.key) +
                               (in_base ? " present only in baseline"
                                        : " present only in current")});
                continue;
            }
            const double bv = b->asDouble();
            const double cv = c->asDouble();
            ++out.compared_metrics;
            // A relative gate needs a positive denominator; tiny or
            // negative baselines (zero-overhead cells) are skipped, which
            // the note trail makes visible.
            if (!(bv > 0.0)) {
                if (cv > bv) {
                    out.notes.push_back(
                        label + ": " + tracked.key +
                        " moved off a non-positive baseline (" +
                        std::to_string(bv) + " -> " + std::to_string(cv) +
                        "), not gated");
                }
                continue;
            }
            const double ratio =
                tracked.higher_is_worse ? cv / bv : bv / cv;
            if (ratio > 1.0 + threshold) {
                out.regressions.push_back(
                    RegressFinding{label, tracked.key, bv, cv, ratio});
            }
        }
    }

    for (const Json &cur_point : cur_points.asArray()) {
        const Json *label_value = cur_point.find("label");
        if (label_value == nullptr || !label_value->isString())
            continue;
        if (pointByLabel(base_points, label_value->asString()) == nullptr) {
            out.notes.push_back("new point (no baseline): " +
                                label_value->asString());
        }
    }
    return out;
}

} // namespace dhisq::sweep
