#include "sweep/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace dhisq::sweep {

Result<CliOptions>
parseCli(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--json needs a path");
            opts.json_path = argv[++i];
        } else if (arg == "--threads") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--threads needs a count");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
                return Result<CliOptions>::error(
                    std::string("bad --threads value: ") + argv[i]);
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (arg == "--topology") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--topology needs a shape");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.topologies = net::allTopologyShapes();
                continue;
            }
            net::TopologyShape shape;
            if (!net::parseTopologyShape(name, shape)) {
                return Result<CliOptions>::error(
                    std::string("unknown --topology shape: ") + argv[i]);
            }
            if (std::find(opts.topologies.begin(), opts.topologies.end(),
                          shape) == opts.topologies.end()) {
                opts.topologies.push_back(shape);
            }
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--help" || arg == "-h") {
            return Result<CliOptions>::error("help");
        } else {
            return Result<CliOptions>::error(std::string("unknown flag: ") +
                                             std::string(arg));
        }
    }
    return opts;
}

void
printUsage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--json <path>] [--threads N] [--quick]\n"
        "          [--topology <shape>]... [--list]\n"
        "  --json <path>      write the dhisq-bench-v1 report "
        "(\"-\" = stdout)\n"
        "  --threads N        sweep worker threads (default 1)\n"
        "  --quick            reduced grid for CI smoke runs\n"
        "  --topology <shape> restrict the topology axis (line, grid, "
        "ring,\n"
        "                     torus, heavy_hex, star or \"all\"; "
        "repeatable;\n"
        "                     grids without the axis ignore it)\n"
        "  --list             print the expanded grid points, run "
        "nothing\n",
        prog);
}

CliOptions
parseCliOrExit(int argc, char **argv)
{
    auto parsed = parseCli(argc, argv);
    if (!parsed) {
        if (parsed.message() != "help")
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         parsed.message().c_str());
        printUsage(argv[0]);
        std::exit(parsed.message() == "help" ? 0 : 2);
    }
    return parsed.take();
}

} // namespace dhisq::sweep
