#include "sweep/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace dhisq::sweep {

Result<CliOptions>
parseCli(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--json needs a path");
            opts.json_path = argv[++i];
        } else if (arg == "--threads") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--threads needs a count");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
                return Result<CliOptions>::error(
                    std::string("bad --threads value: ") + argv[i]);
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (arg == "--sim-threads") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error(
                    "--sim-threads needs a count");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
                return Result<CliOptions>::error(
                    std::string("bad --sim-threads value: ") + argv[i]);
            }
            opts.sim_threads = static_cast<unsigned>(n);
        } else if (arg == "--topology") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--topology needs a shape");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.topologies = net::allTopologyShapes();
                continue;
            }
            net::TopologyShape shape;
            if (!net::parseTopologyShape(name, shape)) {
                return Result<CliOptions>::error(
                    std::string("unknown --topology shape: ") + argv[i]);
            }
            if (std::find(opts.topologies.begin(), opts.topologies.end(),
                          shape) == opts.topologies.end()) {
                opts.topologies.push_back(shape);
            }
        } else if (arg == "--placement") {
            if (i + 1 >= argc) {
                return Result<CliOptions>::error(
                    "--placement needs a strategy");
            }
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.placements = place::allPlacementStrategies();
                continue;
            }
            place::PlacementStrategy strategy;
            if (!place::parsePlacementStrategy(name, strategy)) {
                return Result<CliOptions>::error(
                    std::string("unknown --placement strategy: ") + argv[i]);
            }
            if (std::find(opts.placements.begin(), opts.placements.end(),
                          strategy) == opts.placements.end()) {
                opts.placements.push_back(strategy);
            }
        } else if (arg == "--latency-model") {
            if (i + 1 >= argc) {
                return Result<CliOptions>::error(
                    "--latency-model needs a model");
            }
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.latency_models = net::allLinkLatencyModels();
                continue;
            }
            net::LinkLatencyModel model;
            if (!net::parseLinkLatencyModel(name, model)) {
                return Result<CliOptions>::error(
                    std::string("unknown --latency-model: ") + argv[i]);
            }
            if (std::find(opts.latency_models.begin(),
                          opts.latency_models.end(),
                          model) == opts.latency_models.end()) {
                opts.latency_models.push_back(model);
            }
        } else if (arg == "--clustering") {
            if (i + 1 >= argc) {
                return Result<CliOptions>::error(
                    "--clustering needs a clustering");
            }
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.clusterings = net::allRouterClusterings();
                continue;
            }
            net::RouterClustering clustering;
            if (!net::parseRouterClustering(name, clustering)) {
                return Result<CliOptions>::error(
                    std::string("unknown --clustering: ") + argv[i]);
            }
            if (std::find(opts.clusterings.begin(), opts.clusterings.end(),
                          clustering) == opts.clusterings.end()) {
                opts.clusterings.push_back(clustering);
            }
        } else if (arg == "--routing") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--routing needs a mode");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.routings = compiler::allRoutingModes();
                continue;
            }
            compiler::RoutingMode mode;
            if (!compiler::parseRoutingMode(name, mode)) {
                return Result<CliOptions>::error(
                    std::string("unknown --routing mode: ") + argv[i]);
            }
            if (std::find(opts.routings.begin(), opts.routings.end(),
                          mode) == opts.routings.end()) {
                opts.routings.push_back(mode);
            }
        } else if (arg == "--route-window") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error(
                    "--route-window needs a size");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
                return Result<CliOptions>::error(
                    std::string("bad --route-window value: ") + argv[i]);
            }
            const unsigned window = static_cast<unsigned>(n);
            if (std::find(opts.route_windows.begin(),
                          opts.route_windows.end(),
                          window) == opts.route_windows.end()) {
                opts.route_windows.push_back(window);
            }
        } else if (arg == "--route-feedback") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error(
                    "--route-feedback needs on|off");
            const std::string_view name = argv[++i];
            bool feedback;
            if (name == "on") {
                feedback = true;
            } else if (name == "off") {
                feedback = false;
            } else {
                return Result<CliOptions>::error(
                    std::string("bad --route-feedback value (on|off): ") +
                    argv[i]);
            }
            if (std::find(opts.route_feedbacks.begin(),
                          opts.route_feedbacks.end(),
                          feedback) == opts.route_feedbacks.end()) {
                opts.route_feedbacks.push_back(feedback);
            }
        } else if (arg == "--backend") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--backend needs a tier");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.backends = q::allBackendTiers();
                continue;
            }
            q::BackendTier tier;
            if (!q::parseBackendTier(name, tier)) {
                return Result<CliOptions>::error(
                    std::string("unknown --backend tier: ") + argv[i]);
            }
            if (std::find(opts.backends.begin(), opts.backends.end(),
                          tier) == opts.backends.end()) {
                opts.backends.push_back(tier);
            }
        } else if (arg == "--fusion") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--fusion needs a mode");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.fusions = q::allFusionModes();
                continue;
            }
            q::FusionMode mode;
            if (!q::parseFusionMode(name, mode)) {
                return Result<CliOptions>::error(
                    std::string("unknown --fusion mode: ") + argv[i]);
            }
            if (std::find(opts.fusions.begin(), opts.fusions.end(),
                          mode) == opts.fusions.end()) {
                opts.fusions.push_back(mode);
            }
        } else if (arg == "--policy") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--policy needs a policy");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.policies = {net::RouterPolicy::Paper,
                                 net::RouterPolicy::Robust};
                continue;
            }
            net::RouterPolicy policy;
            if (!net::parseRouterPolicy(name, policy)) {
                return Result<CliOptions>::error(
                    std::string("unknown --policy: ") + argv[i]);
            }
            if (std::find(opts.policies.begin(), opts.policies.end(),
                          policy) == opts.policies.end()) {
                opts.policies.push_back(policy);
            }
        } else if (arg == "--tree-arity") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--tree-arity needs a count");
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || n < 2 || n > 256) {
                return Result<CliOptions>::error(
                    std::string("bad --tree-arity value: ") + argv[i]);
            }
            const unsigned arity = static_cast<unsigned>(n);
            if (std::find(opts.tree_arities.begin(), opts.tree_arities.end(),
                          arity) == opts.tree_arities.end()) {
                opts.tree_arities.push_back(arity);
            }
        } else if (arg == "--cache") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--cache needs a mode");
            const std::string_view name = argv[++i];
            if (name == "all") {
                opts.cache_modes = compiler::allCacheModes();
                continue;
            }
            compiler::CacheMode mode;
            if (!compiler::parseCacheMode(name, mode)) {
                return Result<CliOptions>::error(
                    std::string("unknown --cache mode: ") + argv[i]);
            }
            if (std::find(opts.cache_modes.begin(), opts.cache_modes.end(),
                          mode) == opts.cache_modes.end()) {
                opts.cache_modes.push_back(mode);
            }
        } else if (arg == "--results") {
            if (i + 1 >= argc)
                return Result<CliOptions>::error("--results needs a path");
            opts.results_path = argv[++i];
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--help" || arg == "-h") {
            return Result<CliOptions>::error("help");
        } else {
            return Result<CliOptions>::error(std::string("unknown flag: ") +
                                             std::string(arg));
        }
    }
    return opts;
}

void
printUsage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--json <path>] [--threads N] [--sim-threads N] "
        "[--quick]\n"
        "          [--topology <shape>]... [--placement <strategy>]...\n"
        "          [--routing <mode>]... [--route-window N]...\n"
        "          [--route-feedback on|off]... [--backend <tier>]...\n"
        "          [--fusion <mode>]... [--latency-model <model>]...\n"
        "          [--clustering <c>]... [--policy <policy>]...\n"
        "          [--tree-arity N]... [--list]\n"
        "  --json <path>      write the dhisq-bench-v1 report "
        "(\"-\" = stdout)\n"
        "  --threads N        sweep worker threads (default 1)\n"
        "  --sim-threads N    scheduler threads per simulation (default 1;\n"
        "                     >= 2 engages the parallel event loop, which\n"
        "                     is bit-identical to serial)\n"
        "  --quick            reduced grid for CI smoke runs\n"
        "  --topology <shape> restrict the topology axis (line, grid, "
        "ring,\n"
        "                     torus, heavy_hex, star or \"all\"; "
        "repeatable;\n"
        "                     grids without the axis ignore it)\n"
        "  --placement <s>    restrict the placement axis (path,\n"
        "                     greedy-affinity, kl-mincut or \"all\"; "
        "repeatable)\n"
        "  --routing <mode>   restrict the qubit-routing axis (none, "
        "swap\n"
        "                     or \"all\"; repeatable)\n"
        "  --route-window N   restrict the routing-lookahead-window axis\n"
        "                     (1 = greedy, bit-identical to the historical\n"
        "                     router; repeatable)\n"
        "  --route-feedback on|off\n"
        "                     restrict the route->place feedback axis\n"
        "                     (repeatable)\n"
        "  --backend <tier>   restrict the functional-backend axis "
        "(auto,\n"
        "                     dense, tableau or \"all\"; repeatable; "
        "auto\n"
        "                     picks tableau for Clifford-only programs)\n"
        "  --fusion <mode>    restrict the lazy 1q gate-fusion axis (off,\n"
        "                     1q or \"all\"; repeatable; dense functional\n"
        "                     backend only, default off)\n"
        "  --latency-model <m> restrict the link-latency axis (uniform,\n"
        "                     distance_scaled, jitter or \"all\"; "
        "repeatable)\n"
        "  --clustering <c>   restrict the router-clustering axis "
        "(id_blocks,\n"
        "                     locality or \"all\"; repeatable)\n"
        "  --policy <p>       restrict the router-policy axis (paper, "
        "robust\n"
        "                     or \"all\"; repeatable)\n"
        "  --tree-arity N     restrict the router fan-out axis "
        "(repeatable)\n"
        "  --cache <mode>     restrict the compile-cache axis (off, "
        "memory,\n"
        "                     disk or \"all\"; repeatable; grids without "
        "the\n"
        "                     axis ignore it)\n"
        "  --results <path>   write the deterministic per-job results\n"
        "                     artifact (measurement streams; benches "
        "compare\n"
        "                     it byte-for-byte across cache modes)\n"
        "  --list             print the expanded grid points, run "
        "nothing\n"
        "Axis flags only restrict grids that sweep that axis; a bench\n"
        "whose grid fixes an axis ignores the flag (check --list).\n",
        prog);
}

CliOptions
parseCliOrExit(int argc, char **argv)
{
    auto parsed = parseCli(argc, argv);
    if (!parsed) {
        if (parsed.message() != "help")
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         parsed.message().c_str());
        printUsage(argv[0]);
        std::exit(parsed.message() == "help" ? 0 : 2);
    }
    return parsed.take();
}

} // namespace dhisq::sweep
