#include "sweep/grid.hpp"

#include <cstdio>

#include "common/rng.hpp"
#include "workloads/lrcnot.hpp"

namespace dhisq::sweep {

namespace {

std::string
fractionTag(double f)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", f);
    return buf;
}

} // namespace

std::string
CircuitSpec::id() const
{
    switch (kind) {
      case Kind::kFigure15: return name;
      case Kind::kRandomDynamic:
        return "rand_q" + std::to_string(random.qubits) + "_l" +
               std::to_string(random.layers) + "_f" +
               fractionTag(random.feedback_fraction) + "_s" +
               std::to_string(random.seed);
      case Kind::kLrCnotChain:
        return "lrcnot_chain_n" + std::to_string(qubits);
      case Kind::kGhzFanout:
        return "ghz_fanout_n" + std::to_string(qubits);
      case Kind::kRoutingStress:
        return "routing_stress_n" + std::to_string(routing_stress.qubits) +
               "_d" + std::to_string(routing_stress.stride) + "_s" +
               std::to_string(routing_stress.seed);
      case Kind::kVqeSweep:
        // Matches the circuit's own name (workloads::vqeSweep) so labels
        // and compiled program names agree.
        return "vqe_q" + std::to_string(vqe.qubits) + "_l" +
               std::to_string(vqe.layers) + "_i" +
               std::to_string(vqe.iteration) + "_s" +
               std::to_string(vqe.seed);
    }
    return "unknown";
}

compiler::Circuit
CircuitSpec::build() const
{
    compiler::Circuit circuit(0, "empty");
    switch (kind) {
      case Kind::kFigure15:
        circuit = workloads::figure15Benchmark(name);
        break;
      case Kind::kRandomDynamic:
        circuit = workloads::randomDynamic(random);
        break;
      case Kind::kLrCnotChain: {
        // The Figure 14 scenario: back-to-back long-range CNOTs across a
        // line (a distributed-QFT slice) — measurement + feed-forward
        // rounds whose serialization the schemes handle differently.
        DHISQ_ASSERT(qubits >= 3, "lrcnot chain needs >= 3 qubits");
        const unsigned mid = (qubits - 1) / 2;
        compiler::Circuit chain(qubits, id());
        chain.gate(q::Gate::kH, 0);
        chain.gate(q::Gate::kH, mid);
        workloads::appendLongRangeCnotLine(chain, 0, mid);
        workloads::appendLongRangeCnotLine(chain, mid, qubits - 1);
        workloads::appendLongRangeCnotLine(chain, qubits - 1, 0);
        circuit = std::move(chain);
        break;
      }
      case Kind::kGhzFanout:
        circuit = workloads::ghzFanout(qubits, /*measure_all=*/true);
        break;
      case Kind::kRoutingStress:
        circuit = workloads::routingStress(routing_stress);
        break;
      case Kind::kVqeSweep:
        circuit = workloads::vqeSweep(vqe);
        break;
    }
    if (expand_fraction > 0.0) {
        Rng rng(expand_seed);
        circuit = workloads::expandNonAdjacentGates(
            circuit, expand_fraction, rng);
    }
    return circuit;
}

std::string
ExperimentPoint::label() const
{
    // Non-default axis values only, so labels (and the BENCH json keyed
    // by them) are byte-stable when a new axis is introduced.
    std::string label = circuit.id();
    label += '/';
    label += compiler::toString(config.scheme);
    if (topology != net::TopologyShape::kLine) {
        label += '/';
        label += net::toString(topology);
    }
    if (config.placement != place::PlacementStrategy::kPath) {
        label += '/';
        label += place::toString(config.placement);
    }
    if (config.routing != compiler::RoutingMode::kNone) {
        label += "/routed-";
        label += compiler::toString(config.routing);
    }
    if (config.route_window != 1)
        label += "/window" + std::to_string(config.route_window);
    if (config.route_feedback)
        label += "/feedback";
    if (config.backend != q::BackendTier::kAuto) {
        label += "/backend-";
        label += q::toString(config.backend);
    }
    if (config.fusion != q::FusionMode::kOff) {
        label += "/fusion-";
        label += q::toString(config.fusion);
    }
    if (latency_model != net::LinkLatencyModel::kUniform) {
        label += '/';
        label += net::toString(latency_model);
    }
    if (clustering != net::RouterClustering::kIdBlocks) {
        label += '/';
        label += net::toString(clustering);
    }
    if (policy != net::RouterPolicy::Robust) {
        label += '/';
        label += net::toString(policy);
    }
    if (tree_arity != kDefaultTreeArity)
        label += "/arity" + std::to_string(tree_arity);
    if (config.qubits_per_controller != 1)
        label += "/qpc" + std::to_string(config.qubits_per_controller);
    if (controllers != 0)
        label += "/c" + std::to_string(controllers);
    if (seed != 1)
        label += "/s" + std::to_string(seed);
    return label;
}

std::vector<ExperimentPoint>
expandGrid(const GridSpec &grid)
{
    std::vector<ExperimentPoint> points;
    points.reserve(grid.circuits.size() * grid.schemes.size() *
                   grid.topologies.size() * grid.placements.size() *
                   grid.routings.size() * grid.route_windows.size() *
                   grid.route_feedbacks.size() * grid.backends.size() *
                   grid.fusions.size() *
                   grid.latency_models.size() *
                   grid.clusterings.size() * grid.policies.size() *
                   grid.tree_arities.size() *
                   grid.qubits_per_controller.size() * grid.seeds.size());
    for (const auto &circuit : grid.circuits) {
      for (const auto scheme : grid.schemes) {
        for (const auto topology : grid.topologies) {
          for (const auto placement : grid.placements) {
            for (const auto routing : grid.routings) {
             for (const unsigned window : grid.route_windows) {
              for (const bool feedback : grid.route_feedbacks) {
               for (const auto backend : grid.backends) {
                for (const auto fusion : grid.fusions) {
                for (const auto latency_model : grid.latency_models) {
                  for (const auto clustering : grid.clusterings) {
                    for (const auto policy : grid.policies) {
                      for (const unsigned arity : grid.tree_arities) {
                        for (const unsigned qpc :
                             grid.qubits_per_controller) {
                          for (const std::uint64_t seed : grid.seeds) {
                            ExperimentPoint p;
                            p.circuit = circuit;
                            p.config = grid.base_config;
                            p.config.scheme = scheme;
                            p.config.placement = placement;
                            p.config.routing = routing;
                            p.config.route_window = window;
                            p.config.route_feedback = feedback;
                            p.config.backend = backend;
                            p.config.fusion = fusion;
                            p.config.qubits_per_controller = qpc;
                            p.topology = topology;
                            p.latency_model = latency_model;
                            p.clustering = clustering;
                            p.policy = policy;
                            p.tree_arity = arity;
                            p.controllers = grid.controllers;
                            p.seed = seed;
                            p.state_vector = grid.state_vector;
                            p.sim_threads = grid.sim_threads;
                            points.push_back(std::move(p));
                          }
                        }
                      }
                    }
                  }
                }
                }
               }
              }
             }
            }
          }
        }
      }
    }
    return points;
}

PointResult
runPoint(const ExperimentPoint &point, const MetricsHook &extend)
{
    const compiler::Circuit circuit = point.circuit.build();
    ExecOptions opts;
    opts.state_vector = point.state_vector;
    opts.seed = point.seed;
    opts.topology = point.topology;
    opts.latency_model = point.latency_model;
    opts.clustering = point.clustering;
    opts.policy = point.policy;
    opts.tree_arity = point.tree_arity;
    opts.hub_latency = point.hub_latency;
    opts.controllers = point.controllers;
    opts.sim_threads = point.sim_threads;
    const ExecResult r = executeWith(circuit, point.config, opts);

    PointResult out;
    out.label = point.label();
    out.params["workload"] = point.circuit.id();
    out.params["scheme"] = compiler::toString(point.config.scheme);
    out.params["topology"] = net::toString(point.topology);
    // New axes are serialized only at non-default values so BENCH json
    // stays byte-identical for grids that do not use them.
    if (point.config.placement != place::PlacementStrategy::kPath) {
        out.params["placement"] =
            place::toString(point.config.placement);
    }
    if (point.config.routing != compiler::RoutingMode::kNone)
        out.params["routing"] = compiler::toString(point.config.routing);
    if (point.config.route_window != 1)
        out.params["route_window"] = point.config.route_window;
    if (point.config.route_feedback)
        out.params["route_feedback"] = true;
    if (point.config.backend != q::BackendTier::kAuto)
        out.params["backend"] = q::toString(point.config.backend);
    if (point.config.fusion != q::FusionMode::kOff)
        out.params["fusion"] = q::toString(point.config.fusion);
    if (point.controllers != 0)
        out.params["controllers"] = point.controllers;
    if (point.latency_model != net::LinkLatencyModel::kUniform)
        out.params["latency_model"] = net::toString(point.latency_model);
    if (point.clustering != net::RouterClustering::kIdBlocks)
        out.params["clustering"] = net::toString(point.clustering);
    if (point.policy != net::RouterPolicy::Robust)
        out.params["policy"] = net::toString(point.policy);
    if (point.tree_arity != kDefaultTreeArity)
        out.params["tree_arity"] = point.tree_arity;
    out.params["qubits"] = circuit.numQubits();
    out.params["qubits_per_controller"] =
        point.config.qubits_per_controller;
    out.params["seed"] = point.seed;
    out.params["state_vector"] = point.state_vector;

    out.metrics["makespan_cycles"] = r.makespan;
    out.metrics["makespan_us"] = r.makespan_us;
    out.metrics["violations"] = r.violations;
    out.metrics["coincidence"] = r.coincidence;
    out.metrics["syncs"] = r.syncs;
    out.metrics["deadlock"] = r.deadlock;
    out.metrics["events"] = r.events;
    out.metrics["controllers"] = r.controllers;
    out.metrics["live_cycles"] = r.activity.totalLiveCycles();
    // Serialized only when the routing axis is engaged, so grids that do
    // not sweep it stay byte-identical.
    if (point.config.routing != compiler::RoutingMode::kNone)
        out.metrics["swaps_inserted"] = r.swaps;

    // Coincidence breaks under the lock-step baseline are *data* (the
    // paper's Section 1.1 issue-rate argument); under BISP or demand
    // sync they violate the cycle-level commitment guarantee and fail
    // the run. Deadlock always fails. A compile rejection (over-capacity
    // without routing) fails the point with the diagnostic as health.
    const bool coincidence_ok =
        r.coincidence == 0 ||
        point.config.scheme == compiler::SyncScheme::kLockStep;
    out.healthy = !r.rejected && !r.deadlock && coincidence_ok;
    out.health = r.rejected         ? "rejected: " + r.reject_reason
                 : r.deadlock       ? "deadlock"
                 : !coincidence_ok  ? "coincidence"
                                    : "ok";
    if (extend)
        extend(r, out);
    return out;
}

std::vector<SweepTask>
makeTasks(const std::vector<ExperimentPoint> &points,
          const MetricsHook &extend)
{
    std::vector<SweepTask> tasks;
    tasks.reserve(points.size());
    for (const auto &point : points) {
        tasks.push_back(SweepTask{point.label(), [point, extend] {
                                      return runPoint(point, extend);
                                  }});
    }
    return tasks;
}

} // namespace dhisq::sweep
