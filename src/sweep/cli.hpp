/**
 * @file
 * Shared command-line handling for the sweep-based bench binaries:
 * `--json <path>` (emit BENCH json, "-" = stdout), `--threads N`
 * (worker pool size), `--quick` (reduced grid for the CI smoke run),
 * axis-selection flags — `--topology <shape>`, `--placement <strategy>`,
 * `--routing <mode>`, `--backend <tier>`, `--latency-model <model>`,
 * `--clustering <c>`, `--policy <policy>`, `--tree-arity N` (all
 * repeatable; the enum-valued ones accept "all") — and `--list` (print
 * the expanded grid points without executing them).
 */
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "compiler/compiler.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "place/placement.hpp"

namespace dhisq::sweep {

/** Parsed common bench flags. */
struct CliOptions
{
    /** Output path for the JSON report; empty = no JSON. */
    std::string json_path;
    /** Worker threads for the sweep pool. */
    unsigned threads = 1;
    /** Scheduler worker threads inside each simulation (1 = serial event
     *  loop, >= 2 = conservative parallel mode; results are identical). */
    unsigned sim_threads = 1;
    /** Run a reduced grid (CI smoke). */
    bool quick = false;
    /** Print the expanded grid points and exit without running. */
    bool list = false;
    /** Topology-axis selection; empty keeps the bench's default axis. */
    std::vector<net::TopologyShape> topologies;
    /** Placement-axis selection; empty keeps the bench's default axis. */
    std::vector<place::PlacementStrategy> placements;
    /** Latency-model-axis selection; empty keeps the bench's default. */
    std::vector<net::LinkLatencyModel> latency_models;
    /** Router-clustering-axis selection; empty keeps the bench's default. */
    std::vector<net::RouterClustering> clusterings;
    /** Routing-mode-axis selection; empty keeps the bench's default. */
    std::vector<compiler::RoutingMode> routings;
    /** Routing-window-axis selection; empty keeps the bench's default. */
    std::vector<unsigned> route_windows;
    /** Route-feedback-axis selection; empty keeps the bench's default. */
    std::vector<bool> route_feedbacks;
    /** Backend-tier-axis selection; empty keeps the bench's default. */
    std::vector<q::BackendTier> backends;
    /** Fusion-mode-axis selection; empty keeps the bench's default. */
    std::vector<q::FusionMode> fusions;
    /** Router-policy-axis selection; empty keeps the bench's default. */
    std::vector<net::RouterPolicy> policies;
    /** Tree-arity-axis selection; empty keeps the bench's default. */
    std::vector<unsigned> tree_arities;
    /** Compile-cache-mode axis; empty keeps the bench's default axis. */
    std::vector<compiler::CacheMode> cache_modes;
    /** Secondary artifact path for deterministic per-job results (the
     *  measurement-record stream benches byte-compare across cache
     *  modes); empty = not written. */
    std::string results_path;
};

/**
 * Parse the common flags. Unknown flags or malformed values produce an
 * error naming the offending argument; the caller should print usage and
 * exit nonzero.
 */
Result<CliOptions> parseCli(int argc, char **argv);

/** Print the standard usage block for a sweep bench. */
void printUsage(const char *prog);

/**
 * Convenience main-helper: parse or exit(2) with usage on stderr.
 */
CliOptions parseCliOrExit(int argc, char **argv);

} // namespace dhisq::sweep
