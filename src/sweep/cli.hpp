/**
 * @file
 * Shared command-line handling for the sweep-based bench binaries:
 * `--json <path>` (emit BENCH json, "-" = stdout), `--threads N`
 * (worker pool size), `--quick` (reduced grid for the CI smoke run).
 */
#pragma once

#include <string>

#include "common/status.hpp"

namespace dhisq::sweep {

/** Parsed common bench flags. */
struct CliOptions
{
    /** Output path for the JSON report; empty = no JSON. */
    std::string json_path;
    /** Worker threads for the sweep pool. */
    unsigned threads = 1;
    /** Run a reduced grid (CI smoke). */
    bool quick = false;
};

/**
 * Parse the common flags. Unknown flags or malformed values produce an
 * error naming the offending argument; the caller should print usage and
 * exit nonzero.
 */
Result<CliOptions> parseCli(int argc, char **argv);

/** Print the standard usage block for a sweep bench. */
void printUsage(const char *prog);

/**
 * Convenience main-helper: parse or exit(2) with usage on stderr.
 */
CliOptions parseCliOrExit(int argc, char **argv);

} // namespace dhisq::sweep
