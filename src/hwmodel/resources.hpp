/**
 * @file
 * FPGA resource model (Table 1, Section 6.1).
 *
 * We do not have Vivado or the DQCtrl RTL, so resource consumption is
 * reproduced with a calibrated linear model. The paper's own numbers are
 * exactly linear in the codeword-queue count:
 *
 *     board = base + num_queues * queue
 *
 * with queue = (86 LUT, 160 FF, 1.5 BRAM blocks) — precisely the "Event
 * Queue (38bit x 1024)" row — and base = (1747 LUT, 1912 FF, 33 BRAM),
 * which contains the classical pipeline, TCU control, MsgU and the 13-LUT
 * SyncU. The model therefore reproduces Table 1 exactly and extrapolates
 * to other configurations (multi-core boards, deeper queues).
 */
#pragma once

#include <cstdint>
#include <string>

namespace dhisq::hw {

/** FPGA resource triple. */
struct Resources
{
    std::uint64_t luts = 0;
    std::uint64_t ffs = 0;
    double bram_blocks = 0.0; ///< 32 Kb per block

    Resources
    operator+(const Resources &other) const
    {
        return Resources{luts + other.luts, ffs + other.ffs,
                         bram_blocks + other.bram_blocks};
    }

    Resources
    operator*(std::uint64_t n) const
    {
        return Resources{luts * n, ffs * n, bram_blocks * double(n)};
    }

    /** Block-RAM capacity in megabits (32 Kb per block). */
    double bramMegabits() const { return bram_blocks * 32.0 / 1024.0; }
};

/** Calibrated component costs. */
struct ResourceModel
{
    /** One event queue (38 bit x 1024 entries). */
    Resources event_queue{86, 160, 1.5};
    /** Core base: classical pipeline + timing manager + MsgU + SyncU. */
    Resources core_base{1747, 1912, 33.0};
    /** SyncU alone (Section 4.1: 13 LUTs). */
    Resources sync_unit{13, 26, 0.0};

    /** A HISQ core driving `num_queues` codeword queues. */
    Resources core(unsigned num_queues) const;

    /**
     * A board with `cores` HISQ cores partitioning `num_queues` queues
     * (Section 7.1's multi-core configuration).
     */
    Resources board(unsigned num_queues, unsigned cores = 1) const;

    /** Queue scaled to a different depth (BRAM grows, control logic not). */
    Resources eventQueueWithDepth(unsigned depth) const;
};

/** Paper configurations. */
inline constexpr unsigned kControlBoardQueues = 28; // 8 XY + 20 Z
inline constexpr unsigned kReadoutBoardQueues = 8;  // 4 RI + 4 RO

/** Render the Table 1 rows for a model. */
std::string renderTable1(const ResourceModel &model);

} // namespace dhisq::hw
