#include "hwmodel/resources.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace dhisq::hw {

Resources
ResourceModel::core(unsigned num_queues) const
{
    return core_base + event_queue * num_queues;
}

Resources
ResourceModel::board(unsigned num_queues, unsigned cores) const
{
    DHISQ_ASSERT(cores >= 1, "board needs at least one core");
    // Port partitioning: every core replicates the base (pipeline, TCU
    // control, SyncU, MsgU); the queues are split among them.
    return core_base * cores + event_queue * num_queues;
}

Resources
ResourceModel::eventQueueWithDepth(unsigned depth) const
{
    Resources q = event_queue;
    q.bram_blocks = event_queue.bram_blocks * double(depth) / 1024.0;
    return q;
}

std::string
renderTable1(const ResourceModel &model)
{
    const Resources control = model.board(kControlBoardQueues);
    const Resources readout = model.board(kReadoutBoardQueues);
    const Resources &queue = model.event_queue;

    std::ostringstream os;
    os << "Table 1: FPGA resource consumption of HISQ\n";
    os << "Type                           #LUTs  #BlockRAM(32Kb)  #FF\n";
    auto row = [&os](const char *name, const Resources &r) {
        os << name << "  " << r.luts << "  " << r.bram_blocks << "  "
           << r.ffs << "\n";
    };
    row("Control Board               ", control);
    row("Readout Board               ", readout);
    row("Event Queue (38bit x 1024)  ", queue);
    os << "Control board BRAM = " << control.bramMegabits()
       << " Mb, readout board BRAM = " << readout.bramMegabits() << " Mb\n";
    return os.str();
}

} // namespace dhisq::hw
