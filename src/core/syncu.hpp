/**
 * @file
 * Synchronization Unit (SyncU) — the hardware half of BISP (Section 4.1).
 *
 * Nearby synchronization (Figure 4): at the booking time B the SyncU sends a
 * 1-bit signal to the peer controller and starts an N-cycle countdown where
 * N equals the calibrated link latency. Synchronization completes when
 *   Condition I : the countdown elapses (wall B+N), and
 *   Condition II: the peer's signal has been received (sticky per-neighbour
 *                 flags, cleared when consumed).
 * If Condition II is unmet at B+N the TCU timer pauses until the signal
 * arrives. In the FPGA build this unit is 13 LUTs (Table 1).
 *
 * Region synchronization (Section 4.3): at booking the SyncU reports its
 * earliest start time T_i = wall(B) + residual to the ancestor router and
 * waits for the agreed time-point T_m (Abs. Timer Buffer); Condition I is
 * the absolute timer reaching T_i, Condition II the receipt of T_m.
 *
 * Trigger waits (wtrig) reuse the same machinery with the barrier at the
 * event's own time-stamp: the timer pauses until an external trigger
 * (message arrival) fires — the TCU external-trigger ports of Section 3.2.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "core/tcu.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::core {

/** Outward wiring of a SyncU (provided by the machine/network layer). */
struct SyncUplinks
{
    /** Emit the 1-bit nearby sync signal toward `peer`. */
    std::function<void(ControllerId peer)> send_nearby_signal;
    /** Report booking time-point `t_i` to ancestor router `router`. */
    std::function<void(RouterId router, Cycle t_i)> send_region_request;
    /** Calibrated link latency N toward a neighbour controller. */
    std::function<Cycle(ControllerId peer)> link_latency;
};

/** Per-core synchronization unit implementing BISP. */
class SyncU
{
  public:
    SyncU(Tcu &tcu, sim::Scheduler &sched, TelfLog *telf, std::string name);

    void setUplinks(SyncUplinks uplinks) { _uplinks = std::move(uplinks); }

    /** TCU control-event delivery (the booking moment). */
    void onControlEvent(const TimedEvent &ev, Cycle wall);

    /** A neighbour's 1-bit sync signal arrived. */
    void onNearbySignal(ControllerId from);

    /** The agreed region time-point T_m arrived from the router tree. */
    void onRegionNotify(Cycle t_final);

    /** An external trigger pulse fired (message arrival from `src`). */
    void onTrigger(std::uint32_t src);

    /** True while a synchronization is outstanding. */
    bool busy() const { return _state != State::Idle; }

    const StatSet &stats() const { return _stats; }

  private:
    enum class State : std::uint8_t { Idle, Nearby, Region, Trig };

    void beginNearby(const TimedEvent &ev, Cycle wall);
    void beginRegion(const TimedEvent &ev, Cycle wall);
    void beginTrig(const TimedEvent &ev, Cycle wall);
    void onCondITimer();
    void maybeFinishRegion();
    void finish();

    Tcu &_tcu;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    std::string _name;
    SyncUplinks _uplinks;

    State _state = State::Idle;
    bool _cond1_met = false;
    Cycle _cond1_wall = 0;
    ControllerId _peer = kNoController;   ///< Nearby peer.
    std::uint32_t _trig_src = 0;          ///< Trigger source for wtrig.

    std::map<ControllerId, std::uint32_t> _sync_flags;
    std::map<std::uint32_t, std::uint32_t> _trigger_counts;
    std::deque<Cycle> _region_notifies;

    /** Outstanding Condition-I countdown, cancellable in O(1). */
    sim::EventId _cond1_event = sim::kNoEvent;
    /** Scheduled region finish (Abs. Timer Buffer reaching T_m); doubles
     *  as the "finish already scheduled" guard while non-sentinel. */
    sim::EventId _finish_event = sim::kNoEvent;
    StatSet _stats;
};

} // namespace dhisq::core
