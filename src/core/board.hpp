/**
 * @file
 * Control and readout boards (Figure 3b / Section 6.1).
 *
 * A board is the technology-dependent half of a node: it owns the binding
 * table that turns (port, codeword) into a physical Action — the indirection
 * that makes HISQ hardware-agnostic (Insight #3) — plus per-port trigger
 * delays (analog chains differ; Figure 12 compensates a 57-cycle skew in
 * software). The same HISQ core drives both board types; only the bindings
 * and the number of codeword queues differ, which is the paper's
 * adaptability demonstration.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "quantum/device.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::core {

/** Board flavour (affects default port counts only). */
enum class BoardKind : std::uint8_t { Control, Readout };

/** Static board configuration. */
struct BoardConfig
{
    std::string name = "board";
    BoardKind kind = BoardKind::Control;
    /** Control board: 8 XY + 20 Z = 28; readout board: 4 RI + 4 RO = 8. */
    unsigned num_ports = 28;
};

/** Default paper port counts. */
inline constexpr unsigned kControlBoardPorts = 28; // 8 XY + 20 Z
inline constexpr unsigned kReadoutBoardPorts = 8;  // 4 RI + 4 RO

/**
 * A board: binding table + trigger delays + the hook that commits codewords
 * into the quantum device.
 */
class Board
{
  public:
    Board(const BoardConfig &config, sim::Scheduler &sched, TelfLog *telf,
          q::QuantumDevice *device);

    const std::string &name() const { return _config.name; }
    unsigned numPorts() const { return _config.num_ports; }

    /** Bind (port, codeword) -> physical action. */
    void bind(PortId port, Codeword cw, const q::Action &action);

    /** Set the calibrated analog trigger delay of a port. */
    void setTriggerDelay(PortId port, Cycle delay);
    Cycle triggerDelay(PortId port) const;

    /**
     * TCU issue hook: codeword `cw` left the core toward `port` at `wall`.
     * The physical commit happens after the port's trigger delay.
     */
    void onCodeword(PortId port, Codeword cw, Cycle wall);

    const StatSet &stats() const { return _stats; }

  private:
    void commit(PortId port, Codeword cw, Cycle commit_cycle);

    BoardConfig _config;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    q::QuantumDevice *_device;

    std::map<std::pair<PortId, Codeword>, q::Action> _bindings;
    std::vector<Cycle> _trigger_delays;
    StatSet _stats;
};

} // namespace dhisq::core
