#include "core/board.hpp"

#include "common/logging.hpp"

namespace dhisq::core {

Board::Board(const BoardConfig &config, sim::Scheduler &sched, TelfLog *telf,
             q::QuantumDevice *device)
    : _config(config), _sched(sched), _telf(telf), _device(device),
      _trigger_delays(config.num_ports, 0)
{
}

void
Board::bind(PortId port, Codeword cw, const q::Action &action)
{
    DHISQ_ASSERT(port < _config.num_ports, _config.name,
                 ": bind to port out of range: ", port);
    _bindings[{port, cw}] = action;
}

void
Board::setTriggerDelay(PortId port, Cycle delay)
{
    DHISQ_ASSERT(port < _config.num_ports, "port out of range");
    _trigger_delays[port] = delay;
}

Cycle
Board::triggerDelay(PortId port) const
{
    DHISQ_ASSERT(port < _config.num_ports, "port out of range");
    return _trigger_delays[port];
}

void
Board::onCodeword(PortId port, Codeword cw, Cycle wall)
{
    DHISQ_ASSERT(port < _config.num_ports, _config.name,
                 ": codeword on port out of range: ", port);
    const Cycle delay = _trigger_delays[port];
    if (delay == 0) {
        commit(port, cw, wall);
    } else {
        _sched.schedule(wall + delay,
                        [this, port, cw, when = wall + delay] {
                            commit(port, cw, when);
                        });
    }
}

void
Board::commit(PortId port, Codeword cw, Cycle commit_cycle)
{
    _stats.inc("codewords_committed");
    if (_telf) {
        _telf->record(commit_cycle, _config.name, TelfKind::CodewordCommit,
                      std::int64_t(port), std::int64_t(cw));
    }
    if (!_device)
        return;
    auto it = _bindings.find({port, cw});
    if (it == _bindings.end()) {
        // Unbound codewords are markers (scope triggers etc.).
        _stats.inc("unbound_codewords");
        return;
    }
    if (it->second.kind == q::ActionKind::MeasureStart && _telf) {
        _telf->record(commit_cycle, _config.name, TelfKind::MeasureStart,
                      std::int64_t(port), std::int64_t(it->second.q0));
    }
    _device->trigger(it->second, commit_cycle);
}

} // namespace dhisq::core
