#include "core/core.hpp"

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace dhisq::core {

namespace {

TcuConfig
makeTcuConfig(const CoreConfig &config)
{
    TcuConfig tc;
    tc.num_ports = config.num_ports;
    tc.queue_capacity = config.queue_capacity;
    tc.control_queue_capacity = config.control_queue_capacity;
    return tc;
}

} // namespace

HisqCore::HisqCore(const CoreConfig &config, sim::Scheduler &sched,
                   TelfLog *telf, CoreHooks hooks)
    : _config(config), _sched(sched), _telf(telf),
      _name(prefixedNumber("C", config.id)), _hooks(std::move(hooks)),
      _tcu(makeTcuConfig(config), sched, telf, _name),
      _syncu(_tcu, sched, telf, _name), _mem(config.data_mem_bytes, 0)
{
    _tcu.setIssueFn([this](PortId port, Codeword cw, Cycle wall) {
        if (_hooks.on_codeword)
            _hooks.on_codeword(port, cw, wall);
    });
    _tcu.setControlFn([this](const TimedEvent &ev, Cycle wall) {
        _syncu.onControlEvent(ev, wall);
    });
    _tcu.setSpaceFn([this] {
        if (_stall == Stall::QueueFull) {
            _stall = Stall::None;
            scheduleStep(0);
        }
    });
    _syncu.setUplinks(_hooks.sync);
    _msgu.setDeliverFn([this](const Message &msg) {
        // Every arrival is also an external trigger pulse for wtrig.
        _syncu.onTrigger(msg.src);
        if (_stall == Stall::RecvWait) {
            _stall = Stall::None;
            scheduleStep(0);
        }
    });
}

void
HisqCore::loadProgram(isa::Program program)
{
    DHISQ_ASSERT(!_started, "cannot reload a running core");
    _program = std::move(program);
    _pc = 0;
}

void
HisqCore::start()
{
    DHISQ_ASSERT(!_program.empty(), "no program loaded on ", _name);
    DHISQ_ASSERT(!_started, "core already started");
    _started = true;
    scheduleStep(_config.start_at >= _sched.now()
                     ? _config.start_at - _sched.now()
                     : 0);
}

void
HisqCore::deliverMessage(std::uint32_t src, std::uint32_t payload)
{
    _msgu.deliver(src, payload);
}

void
HisqCore::deliverSyncSignal(ControllerId from)
{
    _syncu.onNearbySignal(from);
}

void
HisqCore::deliverRegionNotify(Cycle t_final)
{
    _syncu.onRegionNotify(t_final);
}

void
HisqCore::scheduleStep(Cycle delay)
{
    if (_step_scheduled || _halted)
        return;
    _step_scheduled = true;
    _sched.scheduleIn(
        delay,
        [this] {
            _step_scheduled = false;
            step();
        },
        _config.id);
}

void
HisqCore::step()
{
    if (_halted || _stall != Stall::None)
        return;
    const std::size_t index = _pc / 4;
    DHISQ_ASSERT(index < _program.size(), _name,
                 ": pc ran off the end of the program (missing halt?)");
    const isa::Instruction &ins = _program.instructions[index];
    _stats.inc("instructions_executed");
    if (execute(ins) && !_halted)
        scheduleStep(_config.classical_cpi);
}

bool
HisqCore::execute(const isa::Instruction &ins)
{
    using isa::Op;
    using isa::OpClass;

    switch (isa::classOf(ins.op)) {
      case OpClass::Classical:
        return executeClassical(ins);

      case OpClass::Branch:
        return executeBranch(ins);

      case OpClass::Wait: {
        const Cycle d = (ins.op == Op::kWaitI)
                            ? Cycle(std::uint32_t(ins.imm))
                            : Cycle(_regs[ins.rs1]);
        _tcu.advanceCursor(d);
        _pc += 4;
        return true;
      }

      case OpClass::Codeword: {
        const bool port_imm = (ins.op == Op::kCwII || ins.op == Op::kCwIR);
        const bool cw_imm = (ins.op == Op::kCwII || ins.op == Op::kCwRI);
        const PortId port = port_imm ? PortId(ins.imm)
                                     : PortId(_regs[ins.rs1]);
        const Codeword cw = cw_imm ? Codeword(ins.imm2)
                                   : Codeword(_regs[ins.rs2]);
        if (!_tcu.canEnqueueCodeword(port)) {
            _stall = Stall::QueueFull;
            _stats.inc("pipeline_stalls_queue");
            return false;
        }
        _tcu.enqueueCodeword(port, cw);
        _pc += 4;
        return true;
      }

      case OpClass::Sync: {
        if (!_tcu.canEnqueueControl()) {
            _stall = Stall::QueueFull;
            _stats.inc("pipeline_stalls_queue");
            return false;
        }
        TimedEvent ev;
        ev.kind = TimedEventKind::Sync;
        ev.target = ins.imm;
        ev.residual = ins.imm2;
        _tcu.enqueueControl(ev);
        _pc += 4;
        return true;
      }

      case OpClass::Trigger: {
        if (!_tcu.canEnqueueControl()) {
            _stall = Stall::QueueFull;
            _stats.inc("pipeline_stalls_queue");
            return false;
        }
        TimedEvent ev;
        ev.kind = TimedEventKind::Wtrig;
        ev.target = ins.imm;
        _tcu.enqueueControl(ev);
        _pc += 4;
        return true;
      }

      case OpClass::Message: {
        if (ins.op == Op::kSend) {
            DHISQ_ASSERT(_hooks.on_send, _name, ": send without fabric");
            _hooks.on_send(ControllerId(ins.imm), _regs[ins.rs2]);
            _stats.inc("messages_sent");
            if (_telf) {
                _telf->record(_sched.now(), _name, TelfKind::MsgSend, -1,
                              _regs[ins.rs2],
                              prefixedNumber("dst=", ins.imm));
            }
            _pc += 4;
            return true;
        }
        Message msg;
        if (!_msgu.tryRecv(std::uint32_t(ins.imm), &msg)) {
            _stall = Stall::RecvWait;
            _stats.inc("pipeline_stalls_recv");
            return false;
        }
        writeReg(ins.rd, msg.payload);
        if (_telf) {
            _telf->record(_sched.now(), _name, TelfKind::MsgRecv, -1,
                          msg.payload, prefixedNumber("src=", msg.src));
        }
        _pc += 4;
        return true;
      }

      case OpClass::Halt: {
        _halted = true;
        _halt_cycle = _sched.now();
        if (_telf)
            _telf->record(_halt_cycle, _name, TelfKind::Halt);
        return true;
      }

      case OpClass::Invalid:
        DHISQ_PANIC(_name, ": invalid instruction at pc=", _pc);
    }
    return false;
}

bool
HisqCore::executeClassical(const isa::Instruction &ins)
{
    using isa::Op;
    const std::uint32_t a = _regs[ins.rs1];
    const std::uint32_t b = _regs[ins.rs2];
    const std::uint32_t imm = std::uint32_t(ins.imm);
    const auto sa = std::int32_t(a);

    switch (ins.op) {
      case Op::kAdd:   writeReg(ins.rd, a + b); break;
      case Op::kSub:   writeReg(ins.rd, a - b); break;
      case Op::kSll:   writeReg(ins.rd, a << (b & 31)); break;
      case Op::kSlt:   writeReg(ins.rd, sa < std::int32_t(b) ? 1 : 0); break;
      case Op::kSltu:  writeReg(ins.rd, a < b ? 1 : 0); break;
      case Op::kXor:   writeReg(ins.rd, a ^ b); break;
      case Op::kSrl:   writeReg(ins.rd, a >> (b & 31)); break;
      case Op::kSra:   writeReg(ins.rd, std::uint32_t(sa >> (b & 31))); break;
      case Op::kOr:    writeReg(ins.rd, a | b); break;
      case Op::kAnd:   writeReg(ins.rd, a & b); break;

      case Op::kAddi:  writeReg(ins.rd, a + imm); break;
      case Op::kSlti:  writeReg(ins.rd, sa < ins.imm ? 1 : 0); break;
      case Op::kSltiu: writeReg(ins.rd, a < imm ? 1 : 0); break;
      case Op::kXori:  writeReg(ins.rd, a ^ imm); break;
      case Op::kOri:   writeReg(ins.rd, a | imm); break;
      case Op::kAndi:  writeReg(ins.rd, a & imm); break;
      case Op::kSlli:  writeReg(ins.rd, a << (ins.imm & 31)); break;
      case Op::kSrli:  writeReg(ins.rd, a >> (ins.imm & 31)); break;
      case Op::kSrai:  writeReg(ins.rd, std::uint32_t(sa >> (ins.imm & 31)));
                       break;

      case Op::kLui:   writeReg(ins.rd, imm); break;
      case Op::kAuipc: writeReg(ins.rd, _pc + imm); break;

      case Op::kLb:  writeReg(ins.rd, loadMem(a + imm, 1, true)); break;
      case Op::kLh:  writeReg(ins.rd, loadMem(a + imm, 2, true)); break;
      case Op::kLw:  writeReg(ins.rd, loadMem(a + imm, 4, false)); break;
      case Op::kLbu: writeReg(ins.rd, loadMem(a + imm, 1, false)); break;
      case Op::kLhu: writeReg(ins.rd, loadMem(a + imm, 2, false)); break;
      case Op::kSb:  storeMem(a + imm, 1, b); break;
      case Op::kSh:  storeMem(a + imm, 2, b); break;
      case Op::kSw:  storeMem(a + imm, 4, b); break;

      default:
        DHISQ_PANIC("not a classical op");
    }
    _pc += 4;
    return true;
}

bool
HisqCore::executeBranch(const isa::Instruction &ins)
{
    using isa::Op;
    const std::uint32_t a = _regs[ins.rs1];
    const std::uint32_t b = _regs[ins.rs2];

    bool taken = false;
    switch (ins.op) {
      case Op::kJal:
        writeReg(ins.rd, _pc + 4);
        _pc += std::uint32_t(ins.imm);
        return true;
      case Op::kJalr: {
        const std::uint32_t ret = _pc + 4;
        _pc = (a + std::uint32_t(ins.imm)) & ~1u;
        writeReg(ins.rd, ret);
        return true;
      }
      case Op::kBeq:  taken = a == b; break;
      case Op::kBne:  taken = a != b; break;
      case Op::kBlt:  taken = std::int32_t(a) < std::int32_t(b); break;
      case Op::kBge:  taken = std::int32_t(a) >= std::int32_t(b); break;
      case Op::kBltu: taken = a < b; break;
      case Op::kBgeu: taken = a >= b; break;
      default:
        DHISQ_PANIC("not a branch op");
    }
    _pc = taken ? _pc + std::uint32_t(ins.imm) : _pc + 4;
    return true;
}

void
HisqCore::writeReg(unsigned index, std::uint32_t value)
{
    DHISQ_ASSERT(index < 32, "register index out of range");
    if (index != 0)
        _regs[index] = value;
}

std::uint32_t
HisqCore::loadMem(std::uint32_t addr, unsigned bytes, bool sign)
{
    DHISQ_ASSERT(std::size_t(addr) + bytes <= _mem.size(), _name,
                 ": load out of bounds at ", addr);
    std::uint32_t value = 0;
    for (unsigned i = 0; i < bytes; ++i)
        value |= std::uint32_t(_mem[addr + i]) << (8 * i);
    if (sign && bytes < 4) {
        const std::uint32_t sign_bit = 1u << (8 * bytes - 1);
        if (value & sign_bit)
            value |= ~((sign_bit << 1) - 1);
    }
    return value;
}

void
HisqCore::storeMem(std::uint32_t addr, unsigned bytes, std::uint32_t value)
{
    DHISQ_ASSERT(std::size_t(addr) + bytes <= _mem.size(), _name,
                 ": store out of bounds at ", addr);
    for (unsigned i = 0; i < bytes; ++i)
        _mem[addr + i] = std::uint8_t(value >> (8 * i));
}

} // namespace dhisq::core
