#include "core/syncu.hpp"

#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace dhisq::core {

SyncU::SyncU(Tcu &tcu, sim::Scheduler &sched, TelfLog *telf, std::string name)
    : _tcu(tcu), _sched(sched), _telf(telf), _name(std::move(name))
{
}

void
SyncU::onControlEvent(const TimedEvent &ev, Cycle wall)
{
    DHISQ_ASSERT(_state == State::Idle,
                 "SyncU busy: overlapping sync/wtrig events at ", _name);
    _cond1_met = false;
    switch (ev.kind) {
      case TimedEventKind::Sync:
        if (ev.target & isa::kSyncRouterFlag)
            beginRegion(ev, wall);
        else
            beginNearby(ev, wall);
        break;
      case TimedEventKind::Wtrig:
        beginTrig(ev, wall);
        break;
      case TimedEventKind::Codeword:
        DHISQ_PANIC("codeword routed to SyncU");
    }
}

void
SyncU::beginNearby(const TimedEvent &ev, Cycle wall)
{
    DHISQ_ASSERT(_uplinks.send_nearby_signal && _uplinks.link_latency,
                 "nearby sync without network wiring at ", _name);
    _state = State::Nearby;
    _peer = ControllerId(ev.target);
    const Cycle latency = _uplinks.link_latency(_peer);
    DHISQ_ASSERT(latency > 0, "zero nearby link latency");

    _tcu.setBarrier(ev.ts + latency);
    _uplinks.send_nearby_signal(_peer);
    _stats.inc("nearby_syncs");
    if (_telf) {
        _telf->record(wall, _name, TelfKind::SyncBook, -1, ev.target,
                      "nearby");
    }

    _cond1_wall = wall + latency;
    _cond1_event = _sched.schedule(_cond1_wall, [this] { onCondITimer(); });
}

void
SyncU::beginRegion(const TimedEvent &ev, Cycle wall)
{
    DHISQ_ASSERT(_uplinks.send_region_request,
                 "region sync without router wiring at ", _name);
    _state = State::Region;
    const RouterId router = RouterId(ev.target & ~isa::kSyncRouterFlag);
    const Cycle residual = Cycle(ev.residual);
    const Cycle t_i = wall + residual;

    _tcu.setBarrier(ev.ts + residual);
    _uplinks.send_region_request(router, t_i);
    _stats.inc("region_syncs");
    if (_telf) {
        _telf->record(wall, _name, TelfKind::SyncBook, -1, ev.target,
                      "region t_i=" + std::to_string(t_i));
    }

    _cond1_wall = t_i;
    _cond1_event = _sched.schedule(_cond1_wall, [this] { onCondITimer(); });
}

void
SyncU::beginTrig(const TimedEvent &ev, Cycle wall)
{
    _state = State::Trig;
    _trig_src = std::uint32_t(ev.target);
    _tcu.setBarrier(ev.ts);
    _stats.inc("trigger_waits");
    if (_telf) {
        _telf->record(wall, _name, TelfKind::SyncBook, -1, ev.target,
                      "wtrig");
    }
    // Condition I is immediate: the barrier sits at the event's own stamp.
    _cond1_wall = wall;
    _cond1_met = true;
    auto it = _trigger_counts.find(_trig_src);
    if (it != _trigger_counts.end() && it->second > 0) {
        --it->second;
        finish();
    }
}

void
SyncU::onCondITimer()
{
    _cond1_event = sim::kNoEvent;
    _cond1_met = true;
    switch (_state) {
      case State::Nearby: {
        auto it = _sync_flags.find(_peer);
        if (it != _sync_flags.end() && it->second > 0) {
            --it->second; // Flags clear once read (Figure 4).
            finish();
        }
        break;
      }
      case State::Region:
        maybeFinishRegion();
        break;
      case State::Trig:
      case State::Idle:
        DHISQ_PANIC("Condition-I timer in unexpected state");
    }
}

void
SyncU::onNearbySignal(ControllerId from)
{
    ++_sync_flags[from];
    _stats.inc("nearby_signals_received");
    if (_state == State::Nearby && _cond1_met && from == _peer) {
        --_sync_flags[from];
        finish();
    }
}

void
SyncU::onRegionNotify(Cycle t_final)
{
    _region_notifies.push_back(t_final);
    _stats.inc("region_notifies_received");
    if (_state == State::Region && _cond1_met)
        maybeFinishRegion();
}

void
SyncU::maybeFinishRegion()
{
    if (_finish_event != sim::kNoEvent || _region_notifies.empty())
        return;
    const Cycle t_final = _region_notifies.front();
    _region_notifies.pop_front();
    const Cycle now = _sched.now();
    if (t_final <= now) {
        if (t_final < now)
            _stats.inc("late_region_notifies");
        finish();
    } else {
        _finish_event = _sched.schedule(t_final, [this] {
            _finish_event = sim::kNoEvent;
            finish();
        });
    }
}

void
SyncU::onTrigger(std::uint32_t src)
{
    ++_trigger_counts[src];
    if (_state == State::Trig && _cond1_met && src == _trig_src) {
        --_trigger_counts[src];
        finish();
    }
}

void
SyncU::finish()
{
    const Cycle now = _sched.now();
    DHISQ_ASSERT(now >= _cond1_wall, "finish before Condition I");
    _stats.inc("syncs_completed");
    _stats.sample("sync_overhead_cycles", double(now - _cond1_wall));
    if (_telf) {
        _telf->record(now, _name, TelfKind::SyncDone, -1,
                      std::int64_t(now - _cond1_wall));
    }
    _state = State::Idle;
    // Both guard events are consumed or obsolete at this point; cancelling
    // an already-fired handle is a no-op, so this is pure cleanup.
    _sched.cancel(_cond1_event);
    _cond1_event = sim::kNoEvent;
    _sched.cancel(_finish_event);
    _finish_event = sim::kNoEvent;
    _tcu.releaseBarrier(now);
}

} // namespace dhisq::core
