/**
 * @file
 * Timing Control Unit (TCU) — queue-based event timing in the QuMA style
 * (Sections 3.2 and 4.1).
 *
 * Time domains. The TCU keeps a *local* time axis on which the classical
 * pipeline stamps events via the timing cursor (`wait` advances the cursor,
 * `cw`/`sync`/`wtrig` enqueue events at the cursor). The timing manager maps
 * local time to the wall clock through an offset: wall = local + offset.
 * Synchronization pauses insert slack by growing the offset, which is how
 * "pausing the timer" (Figure 4) shifts all later events uniformly.
 *
 * Barrier. A sync/wtrig event delivered to the SyncU establishes a barrier
 * at some local time-point; events stamped at or after the barrier are held
 * until the SyncU releases it with the wall-clock release time (Condition I
 * && Condition II, Section 4.1). Events stamped before the barrier keep
 * issuing — this is what lets BISP hide communication latency behind
 * deterministic tasks ("booking", Insight #1).
 *
 * Timing violations. If the pipeline enqueues an event whose stamp is
 * already in the past (instruction issue-rate bottleneck, Section 7.1), the
 * event slips to "now" and a violation is recorded.
 */
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::core {

/** Kind of a timed event in the TCU queues. */
enum class TimedEventKind : std::uint8_t { Codeword, Sync, Wtrig };

/** One entry of a TCU event queue (38-bit entries in the FPGA build). */
struct TimedEvent
{
    TimedEventKind kind = TimedEventKind::Codeword;
    Cycle ts = 0;            ///< Local time stamp.
    PortId port = 0;         ///< Codeword port.
    Codeword codeword = 0;   ///< Codeword payload.
    std::int32_t target = 0; ///< sync: target encoding; wtrig: source.
    std::int32_t residual = 0; ///< sync: booking residual.
};

/** TCU configuration. */
struct TcuConfig
{
    unsigned num_ports = 1;
    std::size_t queue_capacity = 1024; ///< Per-port (paper: 38 bit x 1024).
    std::size_t control_queue_capacity = 64;
};

/** Queue-based timing control unit. */
class Tcu
{
  public:
    /** Issue callback: a codeword leaves the TCU at wall cycle `wall`. */
    using IssueFn = std::function<void(PortId, Codeword, Cycle wall)>;
    /** Control callback: a sync/wtrig event reaches the SyncU at wall. */
    using ControlFn = std::function<void(const TimedEvent &, Cycle wall)>;
    /** Space callback: a previously-full queue has room again. */
    using SpaceFn = std::function<void()>;

    Tcu(const TcuConfig &config, sim::Scheduler &sched, TelfLog *telf,
        std::string source_name);

    void setIssueFn(IssueFn fn) { _issue = std::move(fn); }
    void setControlFn(ControlFn fn) { _control = std::move(fn); }
    void setSpaceFn(SpaceFn fn) { _space = std::move(fn); }

    // ---- Pipeline-facing interface -------------------------------------

    /** Current timing cursor (local time of the next stamped event). */
    Cycle cursor() const { return _cursor; }

    /** Advance the cursor by `d` cycles (the wait instructions). */
    void advanceCursor(Cycle d) { _cursor += d; }

    /** True if port queue has room. */
    bool canEnqueueCodeword(PortId port) const;

    /** Stamp a codeword event at the cursor. */
    void enqueueCodeword(PortId port, Codeword cw);

    /** True if the control (sync) queue has room. */
    bool canEnqueueControl() const;

    /** Stamp a sync/wtrig event at the cursor. */
    void enqueueControl(TimedEvent ev);

    // ---- SyncU-facing interface ----------------------------------------

    /**
     * Establish a barrier at local time `barrier_local`: events stamped at
     * or after it are held until releaseBarrier(). One barrier may be
     * outstanding at a time.
     */
    void setBarrier(Cycle barrier_local);

    /**
     * Release the barrier: events at local time L >= barrier now commit at
     * wall time `release_wall` + (L - barrier). Pause time, if any, is
     * absorbed into the local->wall offset.
     */
    void releaseBarrier(Cycle release_wall);

    bool barrierActive() const { return _barrier.has_value(); }

    /** Map a local time-stamp to the wall clock under the current offset. */
    Cycle wallAt(Cycle local) const { return local + _offset; }

    /** Wall "now" translated into local time. */
    Cycle localNow() const;

    // ---- Introspection ---------------------------------------------------

    /** True when every queue is empty. */
    bool drained() const;

    const StatSet &stats() const { return _stats; }
    StatSet &stats() { return _stats; }

  private:
    /** Earliest pending stamp across all queues, if any. */
    std::optional<Cycle> minPendingTs() const;

    /** (Re)arm the wake-up for the earliest issuable event. */
    void armPump();

    /** Issue every event that is due at the current wall cycle. */
    void onWake();

    void issueBatch();

    TcuConfig _config;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    std::string _name;

    IssueFn _issue;
    ControlFn _control;
    SpaceFn _space;

    std::vector<std::deque<TimedEvent>> _port_queues;
    std::deque<TimedEvent> _control_queue;

    Cycle _cursor = 0;
    Cycle _offset = 0;
    std::optional<Cycle> _barrier;

    /** Armed pump wake, cancelled in O(1) whenever it goes stale. */
    sim::EventId _pump_event = sim::kNoEvent;
    Cycle _armed_wall = 0;

    StatSet _stats;
};

} // namespace dhisq::core
