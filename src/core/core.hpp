/**
 * @file
 * The HISQ core: a single controller's digital logic (Figure 3a).
 *
 * Composition: classical pipeline (RV32I subset, Section 3.1.1), Timing
 * Control Unit with codeword/sync queues, Synchronization Unit (BISP) and
 * Message Unit. The pipeline runs ahead of the timing domain, enqueueing
 * precisely-stamped events; queue backpressure is the only thing that slows
 * it down — exactly the queue-based timing control of QuMA that the paper
 * builds on.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "core/msgu.hpp"
#include "core/syncu.hpp"
#include "core/tcu.hpp"
#include "isa/instruction.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::core {

/** Static configuration of a HISQ core. */
struct CoreConfig
{
    ControllerId id = 0;
    unsigned num_ports = 1;
    std::size_t queue_capacity = 1024;
    std::size_t control_queue_capacity = 64;
    std::size_t data_mem_bytes = 1 << 16;
    /** Cycles per classical instruction (simple in-order pipeline). */
    Cycle classical_cpi = 1;
    /** Cycle at which the core begins fetching. */
    Cycle start_at = 0;
};

/** Outward wiring of a core (network + board provided by the machine). */
struct CoreHooks
{
    /** A codeword left the TCU toward the board's analog chain. */
    std::function<void(PortId, Codeword, Cycle wall)> on_codeword;
    /** `send` instruction payload toward another controller. */
    std::function<void(ControllerId dst, std::uint32_t payload)> on_send;
    /** SyncU network wiring (see SyncUplinks). */
    SyncUplinks sync;
};

/** One controller. */
class HisqCore
{
  public:
    HisqCore(const CoreConfig &config, sim::Scheduler &sched, TelfLog *telf,
             CoreHooks hooks);

    /** Load the binary to execute. */
    void loadProgram(isa::Program program);

    /** Schedule the first fetch (at config.start_at). */
    void start();

    // ---- Inbound network interface --------------------------------------

    /** Deliver a classical message (wakes recv and fires a trigger). */
    void deliverMessage(std::uint32_t src, std::uint32_t payload);

    /** Deliver a neighbour's 1-bit sync signal. */
    void deliverSyncSignal(ControllerId from);

    /** Deliver the region sync time-point from the router tree. */
    void deliverRegionNotify(Cycle t_final);

    // ---- Introspection ---------------------------------------------------

    ControllerId id() const { return _config.id; }
    const std::string &name() const { return _name; }
    bool halted() const { return _halted; }
    Cycle haltCycle() const { return _halt_cycle; }
    bool stalled() const { return _stall != Stall::None; }

    /** True when the core retired halt and its TCU drained. */
    bool quiescent() const { return _halted && _tcu.drained(); }

    std::uint32_t reg(unsigned index) const { return _regs.at(index); }

    Tcu &tcu() { return _tcu; }
    const Tcu &tcu() const { return _tcu; }
    SyncU &syncu() { return _syncu; }
    const SyncU &syncu() const { return _syncu; }
    MsgU &msgu() { return _msgu; }
    const MsgU &msgu() const { return _msgu; }

    const StatSet &stats() const { return _stats; }

  private:
    enum class Stall : std::uint8_t { None, QueueFull, RecvWait };

    void step();
    void scheduleStep(Cycle delay);
    /** Execute one instruction; false means the pipeline stalled. */
    bool execute(const isa::Instruction &ins);
    bool executeClassical(const isa::Instruction &ins);
    bool executeBranch(const isa::Instruction &ins);

    void writeReg(unsigned index, std::uint32_t value);
    std::uint32_t loadMem(std::uint32_t addr, unsigned bytes, bool sign);
    void storeMem(std::uint32_t addr, unsigned bytes, std::uint32_t value);

    CoreConfig _config;
    sim::Scheduler &_sched;
    TelfLog *_telf;
    std::string _name;
    CoreHooks _hooks;

    Tcu _tcu;
    SyncU _syncu;
    MsgU _msgu;

    isa::Program _program;
    std::uint32_t _pc = 0;
    std::array<std::uint32_t, 32> _regs{};
    std::vector<std::uint8_t> _mem;

    bool _started = false;
    bool _halted = false;
    Cycle _halt_cycle = 0;
    Stall _stall = Stall::None;
    bool _step_scheduled = false;

    StatSet _stats;
};

} // namespace dhisq::core
