/**
 * @file
 * Message Unit (MsgU) — classical communication across controllers
 * (Section 3.1.4): measurement results, feedback payloads and the
 * lock-step baseline's broadcasts all arrive here.
 *
 * Every delivery both (a) appends the payload to the receive queue that
 * `recv` pops and (b) fires an external trigger pulse consumed by `wtrig`
 * via the SyncU, so the same arrival can release both the pipeline and the
 * timing domain.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace dhisq::core {

/** Mailbox source id carrying measurement results from the readout chain. */
inline constexpr std::uint32_t kMeasResultSource = 0xFFE;

/** Wildcard accepted by `recv` (matches the ISA's kRecvAnySource). */
inline constexpr std::uint32_t kAnySource = 0xFFF;

/** Inbound message. */
struct Message
{
    std::uint32_t src = 0;
    std::uint32_t payload = 0;
    std::uint64_t seq = 0; ///< global arrival order
};

/**
 * Per-core message unit. Messages are kept in per-source FIFO queues so a
 * source-filtered recv is O(log sources) regardless of unrelated traffic;
 * the wildcard recv follows global arrival order via sequence numbers.
 */
class MsgU
{
  public:
    /** Callback invoked on every delivery (wakes a recv-stalled pipeline). */
    using DeliverFn = std::function<void(const Message &)>;

    void setDeliverFn(DeliverFn fn) { _on_deliver = std::move(fn); }

    /** Deliver a message (called by the fabric at the arrival cycle). */
    void
    deliver(std::uint32_t src, std::uint32_t payload)
    {
        auto &queue = _inbox[src];
        queue.push_back(Message{src, payload, _next_seq++});
        ++_pending;
        _stats.inc("messages_delivered");
        if (_on_deliver)
            _on_deliver(queue.back());
    }

    /**
     * Pop the oldest message matching `src_filter` (kAnySource = any).
     * @return true when a message was popped into *out.
     */
    bool
    tryRecv(std::uint32_t src_filter, Message *out)
    {
        if (src_filter != kAnySource) {
            auto it = _inbox.find(src_filter);
            if (it == _inbox.end() || it->second.empty())
                return false;
            *out = it->second.front();
            it->second.pop_front();
            --_pending;
            _stats.inc("messages_received");
            return true;
        }
        // Wildcard: earliest arrival across all source queues.
        std::deque<Message> *best = nullptr;
        for (auto &kv : _inbox) {
            if (kv.second.empty())
                continue;
            if (!best || kv.second.front().seq < best->front().seq)
                best = &kv.second;
        }
        if (!best)
            return false;
        *out = best->front();
        best->pop_front();
        --_pending;
        _stats.inc("messages_received");
        return true;
    }

    bool empty() const { return _pending == 0; }
    std::size_t pending() const { return _pending; }

    const StatSet &stats() const { return _stats; }

  private:
    std::map<std::uint32_t, std::deque<Message>> _inbox;
    std::size_t _pending = 0;
    std::uint64_t _next_seq = 0;
    DeliverFn _on_deliver;
    StatSet _stats;
};

} // namespace dhisq::core
