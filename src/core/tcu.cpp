#include "core/tcu.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhisq::core {

Tcu::Tcu(const TcuConfig &config, sim::Scheduler &sched, TelfLog *telf,
         std::string source_name)
    : _config(config), _sched(sched), _telf(telf),
      _name(std::move(source_name)), _port_queues(config.num_ports)
{
    DHISQ_ASSERT(config.num_ports >= 1, "TCU needs at least one port");
}

bool
Tcu::canEnqueueCodeword(PortId port) const
{
    DHISQ_ASSERT(port < _port_queues.size(), "port out of range: ", port);
    return _port_queues[port].size() < _config.queue_capacity;
}

void
Tcu::enqueueCodeword(PortId port, Codeword cw)
{
    DHISQ_ASSERT(canEnqueueCodeword(port), "codeword queue overflow");
    TimedEvent ev;
    ev.kind = TimedEventKind::Codeword;
    ev.ts = _cursor;
    ev.port = port;
    ev.codeword = cw;
    _port_queues[port].push_back(ev);
    _stats.inc("cw_enqueued");
    armPump();
}

bool
Tcu::canEnqueueControl() const
{
    return _control_queue.size() < _config.control_queue_capacity;
}

void
Tcu::enqueueControl(TimedEvent ev)
{
    DHISQ_ASSERT(canEnqueueControl(), "control queue overflow");
    DHISQ_ASSERT(ev.kind != TimedEventKind::Codeword,
                 "codewords go into port queues");
    ev.ts = _cursor;
    _control_queue.push_back(ev);
    _stats.inc("control_enqueued");
    armPump();
}

void
Tcu::setBarrier(Cycle barrier_local)
{
    DHISQ_ASSERT(!_barrier, "one barrier may be outstanding at a time");
    _barrier = barrier_local;
    // Any wake armed for a held event is now stale.
    armPump();
}

void
Tcu::releaseBarrier(Cycle release_wall)
{
    DHISQ_ASSERT(_barrier, "no barrier to release");
    DHISQ_ASSERT(release_wall == _sched.now(),
                 "barrier release must happen at the current cycle");
    const Cycle barrier_local = *_barrier;
    const Cycle nominal_wall = barrier_local + _offset;
    DHISQ_ASSERT(release_wall >= nominal_wall,
                 "release earlier than Condition I allows");
    if (release_wall > nominal_wall) {
        const Cycle pause = release_wall - nominal_wall;
        _stats.inc("timer_pauses");
        _stats.inc("pause_cycles", pause);
        if (_telf) {
            _telf->record(nominal_wall <= _sched.now() ? _sched.now()
                                                       : nominal_wall,
                          _name, TelfKind::TimerPause, -1,
                          std::int64_t(pause));
            _telf->record(release_wall, _name, TelfKind::TimerResume, -1,
                          std::int64_t(pause));
        }
    }
    _offset = release_wall - barrier_local;
    _barrier.reset();
    armPump();
}

Cycle
Tcu::localNow() const
{
    const Cycle now = _sched.now();
    return now >= _offset ? now - _offset : 0;
}

bool
Tcu::drained() const
{
    if (!_control_queue.empty())
        return false;
    for (const auto &q : _port_queues) {
        if (!q.empty())
            return false;
    }
    return true;
}

std::optional<Cycle>
Tcu::minPendingTs() const
{
    std::optional<Cycle> min_ts;
    auto consider = [&min_ts](const std::deque<TimedEvent> &q) {
        if (!q.empty() && (!min_ts || q.front().ts < *min_ts))
            min_ts = q.front().ts;
    };
    consider(_control_queue);
    for (const auto &q : _port_queues)
        consider(q);
    return min_ts;
}

void
Tcu::armPump()
{
    const auto min_ts = minPendingTs();
    if (!min_ts || (_barrier && *min_ts >= *_barrier)) {
        // Nothing issuable; cancel any armed wake so it never dispatches.
        _sched.cancel(_pump_event);
        _pump_event = sim::kNoEvent;
        return;
    }

    const Cycle when = std::max(*min_ts + _offset, _sched.now());
    if (_pump_event != sim::kNoEvent && when == _armed_wall)
        return; // Already armed for the right cycle.

    _sched.cancel(_pump_event);
    _armed_wall = when;
    _pump_event = _sched.schedule(when, [this] { onWake(); });
}

void
Tcu::onWake()
{
    _pump_event = sim::kNoEvent;
    issueBatch();
    armPump();
}

void
Tcu::issueBatch()
{
    const Cycle now = _sched.now();
    bool had_full = false;
    for (const auto &q : _port_queues) {
        if (q.size() == _config.queue_capacity)
            had_full = true;
    }
    if (_control_queue.size() == _config.control_queue_capacity)
        had_full = true;

    // Process control events first so a barrier set at this very cycle
    // holds codewords stamped at or after it.
    bool progressed = true;
    while (progressed) {
        progressed = false;

        while (!_control_queue.empty()) {
            const TimedEvent &head = _control_queue.front();
            if (_barrier && head.ts >= *_barrier)
                break;
            const Cycle due = head.ts + _offset;
            if (due > now)
                break;
            TimedEvent ev = head;
            _control_queue.pop_front();
            if (due < now) {
                _stats.inc("timing_violations");
                if (_telf) {
                    _telf->record(now, _name, TelfKind::Violation, -1,
                                  std::int64_t(now - due), "control slip");
                }
            }
            progressed = true;
            if (_control)
                _control(ev, now);
            // A barrier may have just been set; loop re-checks.
        }

        for (auto &q : _port_queues) {
            while (!q.empty()) {
                const TimedEvent &head = q.front();
                if (_barrier && head.ts >= *_barrier)
                    break;
                const Cycle due = head.ts + _offset;
                if (due > now)
                    break;
                TimedEvent ev = head;
                q.pop_front();
                if (due < now) {
                    _stats.inc("timing_violations");
                    if (_telf) {
                        _telf->record(now, _name, TelfKind::Violation,
                                      std::int64_t(ev.port),
                                      std::int64_t(now - due),
                                      "codeword slip");
                    }
                }
                _stats.inc("cw_issued");
                progressed = true;
                if (_issue)
                    _issue(ev.port, ev.codeword, now);
            }
        }
    }

    if (had_full && _space) {
        bool has_room = canEnqueueControl();
        for (PortId p = 0; p < _port_queues.size() && !has_room; ++p)
            has_room = canEnqueueCodeword(p);
        if (has_room)
            _space();
    }
}

} // namespace dhisq::core
