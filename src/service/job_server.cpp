#include "service/job_server.hpp"

#include "sweep/runner.hpp"

namespace dhisq::service {

// GCC 12 at -O2 false-positives -Wmaybe-uninitialized on the variant
// moves inside Json::push when inlined into this loop; every pushed
// value is a plain scalar constructed on the same line.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Json
JobResult::toJson() const
{
    Json doc = Json::object();
    doc["id"] = id;
    doc["ok"] = ok;
    if (!ok)
        doc["error"] = error;
    doc["makespan_cycles"] = makespan;
    doc["events"] = events;
    doc["controllers"] = controllers;
    doc["instructions"] = instructions;
    Json meas = Json::array();
    for (const auto &m : measurements) {
        Json jm = Json::array();
        jm.push(m.qubit);
        jm.push(m.bit);
        jm.push(m.start);
        jm.push(m.ready);
        meas.push(std::move(jm));
    }
    doc["measurements"] = std::move(meas);
    return doc;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

JobResult
JobServer::runOne(const JobRequest &request) const
{
    JobResult result;
    result.id = request.id.empty() ? request.circuit.id() : request.id;

    compiler::CompilerConfig cc = request.config;
    cc.cache = _options.cache;
    cc.cache_dir = _options.cache_dir;

    const compiler::Circuit circuit = request.circuit.build();
    if (request.run) {
        sweep::ExecOptions opts;
        opts.state_vector = request.state_vector;
        opts.seed = request.seed;
        opts.topology = request.topology;
        opts.controllers = request.controllers;
        const sweep::ExecResult exec = sweep::executeWith(circuit, cc, opts);
        if (exec.rejected) {
            result.error = exec.reject_reason;
            return result;
        }
        if (exec.deadlock || exec.coincidence != 0) {
            result.error = exec.deadlock ? "deadlock" : "coincidence";
            return result;
        }
        result.ok = true;
        result.makespan = exec.makespan;
        result.events = exec.events;
        result.controllers = exec.controllers;
        result.measurements = exec.measurements;
        return result;
    }

    // Compile-only job: same topology sizing as the execution path, but
    // the machine is never built.
    const unsigned controllers =
        request.controllers != 0
            ? request.controllers
            : (circuit.numQubits() + cc.qubits_per_controller - 1) /
                  cc.qubits_per_controller;
    const auto topo_cfg = sweep::shapeTopology(request.topology, controllers);
    const net::Topology topo = net::Topology::build(topo_cfg);
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.tryCompile(circuit);
    if (!compiled) {
        result.error = compiled.message();
        return result;
    }
    result.ok = true;
    result.controllers = compiled.value().usedControllers();
    result.instructions = compiled.value().totalInstructions();
    return result;
}

std::vector<JobResult>
JobServer::submit(const std::vector<JobRequest> &batch)
{
    auto &cache = compiler::cache::CompileCache::global();
    const compiler::cache::CacheStats before = cache.stats();

    // Workers write into disjoint slots of a pre-sized vector, so the
    // aggregation order is the request order and a verify re-run of a
    // leading task just rewrites the same slot with the same value.
    std::vector<JobResult> results(batch.size());
    std::vector<sweep::SweepTask> tasks;
    tasks.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const JobRequest *request = &batch[i];
        const std::string label =
            request->id.empty() ? request->circuit.id() : request->id;
        tasks.push_back(sweep::SweepTask{
            label, [this, request, &results, i, label] {
                results[i] = runOne(*request);
                const JobResult &job = results[i];
                sweep::PointResult point;
                point.label = label;
                point.params["workload"] = request->circuit.id();
                point.params["scheme"] =
                    compiler::toString(request->config.scheme);
                point.metrics["makespan_cycles"] = job.makespan;
                point.metrics["events"] = job.events;
                point.metrics["controllers"] = job.controllers;
                point.metrics["measurements"] = job.measurements.size();
                point.healthy = job.ok;
                point.health = job.ok ? "ok" : job.error;
                return point;
            }});
    }

    sweep::SweepRunner::Options ro;
    ro.threads = _options.threads;
    ro.verify_points = _options.verify_points;
    sweep::SweepRunner runner(ro);
    _last_points = runner.run(tasks);
    _last_requests = batch.size();

    const compiler::cache::CacheStats after = cache.stats();
    _last_stats.lookups = after.lookups - before.lookups;
    _last_stats.hits = after.hits - before.hits;
    _last_stats.misses = after.misses - before.misses;
    _last_stats.inflight_joins = after.inflight_joins - before.inflight_joins;
    _last_stats.evictions = after.evictions - before.evictions;
    _last_stats.disk_hits = after.disk_hits - before.disk_hits;
    _last_stats.disk_stale = after.disk_stale - before.disk_stale;
    _last_stats.disk_writes = after.disk_writes - before.disk_writes;
    return results;
}

sweep::BenchReport
JobServer::benchReport(const std::string &bench_name) const
{
    sweep::BenchReport report;
    report.bench = bench_name;
    report.config["cache"] = compiler::toString(_options.cache);
    report.points = _last_points;

    // Deterministic aggregates only. With single-flight dedup the number
    // of compiles equals the number of distinct keys, independent of
    // scheduling; the hit/join split is not deterministic and stays out.
    const std::uint64_t lookups = _last_stats.lookups;
    const std::uint64_t compiles =
        _options.cache == compiler::CacheMode::kOff ? _last_requests
                                                    : _last_stats.misses;
    report.derived["requests"] = _last_requests;
    report.derived["cache_lookups"] = lookups;
    report.derived["cache_compiles"] = compiles;
    report.derived["cache_hit_ratio"] =
        lookups == 0 ? 0.0
                     : double(lookups - _last_stats.misses) / double(lookups);
    return report;
}

} // namespace dhisq::service
