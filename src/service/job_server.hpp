/**
 * @file
 * Batched compile/run job service (the dispatch tier above the compiler).
 *
 * A JobServer accepts a batch of circuit jobs, schedules them onto a
 * SweepRunner worker pool and serves every compile through the
 * content-addressed compile cache (compiler/cache): identical circuits
 * submitted concurrently dedup onto one in-flight compile (single-flight),
 * and repeats across the batch hit the LRU store. Results stream back as
 * per-job records plus batch-level cache statistics, both serializable in
 * the dhisq-bench-v1 JSON shape.
 *
 * Determinism contract: per-job *outcomes* (makespan, events, measurement
 * records) are pure functions of the request — byte-identical whether the
 * cache is off, cold or warm, and whatever the thread count. Batch-level
 * cache statistics are deterministic in the totals the service reports
 * (lookups, distinct compiles, reuse ratio) because single-flight
 * guarantees one compile per distinct key; the *split* of reuse between
 * LRU hits and in-flight joins is scheduling-dependent, so it is exposed
 * on the process-wide CacheStats for diagnostics but never serialized
 * into artifacts.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "compiler/cache/cache.hpp"
#include "compiler/compiler.hpp"
#include "sweep/exec.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"

namespace dhisq::service {

/** One circuit job: what to compile, where to run it. */
struct JobRequest
{
    /** Client-visible identity; defaults to the circuit id. */
    std::string id;
    sweep::CircuitSpec circuit;
    /** Compiler knobs; the cache fields are overridden by the server. */
    compiler::CompilerConfig config;
    net::TopologyShape topology = net::TopologyShape::kLine;
    /** Machine controller count; 0 = sized to fit the circuit. */
    unsigned controllers = 0;
    std::uint64_t seed = 1;
    bool state_vector = false;
    /** False = compile only (no simulation). */
    bool run = true;
};

/** One job's outcome. */
struct JobResult
{
    std::string id;
    bool ok = false;
    std::string error;
    Cycle makespan = 0;
    std::uint64_t events = 0;
    unsigned controllers = 0;
    /** Total compiled instructions across all controllers. */
    std::uint64_t instructions = 0;
    /** Device measurement log in commit order (run jobs only). */
    std::vector<q::QuantumDevice::MeasurementRecord> measurements;

    /** Deterministic serialization, measurement stream included. */
    Json toJson() const;
};

/** Batched compile/run dispatcher over the shared compile cache. */
class JobServer
{
  public:
    struct Options
    {
        /** Worker threads of the underlying SweepRunner pool. */
        unsigned threads = 1;
        /** Cache tier forced onto every job's compiler config. */
        compiler::CacheMode cache = compiler::CacheMode::kMemory;
        std::string cache_dir = ".dhisq-compile-cache";
        /** SweepRunner determinism re-check depth (0 = off; keep 0 when
         *  timing the batch — the re-run double-executes leading jobs). */
        unsigned verify_points = 0;
    };

    explicit JobServer(Options options) : _options(options) {}

    /**
     * Execute a batch; results come back in request order regardless of
     * the thread count. Failed jobs carry ok=false + error and never
     * poison the cache (failures are not stored).
     */
    std::vector<JobResult> submit(const std::vector<JobRequest> &batch);

    /** Global-cache counter delta attributable to the last submit(). */
    const compiler::cache::CacheStats &lastBatchStats() const
    {
        return _last_stats;
    }

    /**
     * dhisq-bench-v1 report of the last batch: one point per job (label,
     * deterministic metrics, health) plus deterministic batch aggregates
     * under `derived` — requests, cache lookups, distinct compiles and
     * the reuse ratio. Timing-dependent counters are excluded.
     */
    sweep::BenchReport benchReport(const std::string &bench_name) const;

    const Options &options() const { return _options; }

  private:
    JobResult runOne(const JobRequest &request) const;

    Options _options;
    std::vector<sweep::PointResult> _last_points;
    compiler::cache::CacheStats _last_stats;
    std::uint64_t _last_requests = 0;
};

} // namespace dhisq::service
