/**
 * @file
 * Dense state-vector simulator used for logical-correctness verification
 * (the role CACTUS-Light's functional model plays in Section 6.4.1).
 * Practical up to ~20 qubits; larger benchmarks run on the stochastic
 * timing-only device backend instead.
 */
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "quantum/backend.hpp"
#include "quantum/gates.hpp"

namespace dhisq::q {

/** Dense 2^n state vector with gate application and projective measurement. */
class StateVector final : public Backend
{
  public:
    /** Initialize |0...0> on `num_qubits` qubits. */
    explicit StateVector(unsigned num_qubits);

    BackendKind kind() const override { return BackendKind::kDense; }
    unsigned numQubits() const override { return _num_qubits; }
    std::size_t dimension() const { return _amps.size(); }

    /** Reset to |0...0>. */
    void reset() override;

    /** Amplitude of a computational basis state. */
    Amp amplitude(std::size_t basis) const { return _amps[basis]; }

    /** Probability of a computational basis state. */
    double probability(std::size_t basis) const;

    /** Probability of measuring `qubit` as 1. */
    double probabilityOfOne(QubitId qubit) const override;

    /**
     * Apply a single-qubit gate, dispatched by classifyGate(): diagonal
     * gates multiply only the phase-carrying half, X swaps amplitude
     * pairs without arithmetic, everything else takes the general matmul.
     * All specialized kernels are exact rewrites of the general path
     * (they drop only 0/±1 factors), asserted bit-identical by tests.
     */
    void apply1q(Gate g, QubitId qubit, double angle = 0.0) override;

    /** Apply an explicit 2x2 matrix to `qubit` (general blocked matmul). */
    void applyMatrix1q(const std::array<Amp, 4> &m, QubitId qubit);

    /** Apply a two-qubit gate; q0 is the low bit of the 4x4 basis.
     *  Dispatched by classifyGate() like apply1q (CZ/CPhase touch the
     *  |11> quarter, SWAP moves, CNOT touches the control-set half). */
    void apply2q(Gate g, QubitId q0, QubitId q1,
                 double angle = 0.0) override;

    /** Apply an explicit 4x4 matrix (general blocked matmul). */
    void applyMatrix2q(const std::array<Amp, 16> &m, QubitId q0, QubitId q1);

    /** Multiply the `qubit`=0 / `qubit`=1 halves by d0 / d1; halves with
     *  a unit factor are skipped entirely. */
    void applyDiag1q(Amp d0, Amp d1, QubitId qubit);

    /** Multiply the |q0=1,q1=1> quarter of the state by d11. */
    void applyDiag2q(Amp d11, QubitId q0, QubitId q1);

    /** Apply a 2x2 matrix to `target` on the `control`-set half only. */
    void applyControlled1q(const std::array<Amp, 4> &m, QubitId control,
                           QubitId target);

    /**
     * Projective Z measurement with collapse.
     * @param rng source of the outcome draw.
     * @return the measured bit.
     */
    int measure(QubitId qubit, Rng &rng) override;

    /** Force a measurement outcome (for branch-by-branch verification).
     *  Returns the probability the outcome had; the state collapses. */
    double postselect(QubitId qubit, int outcome);

    /** Reset one qubit to |0> (measure + conditional X). */
    void resetQubit(QubitId qubit, Rng &rng) override;

    /** |<this|other>|^2; both states must have equal dimension. */
    double fidelityWith(const StateVector &other) const;

    /**
     * Fidelity up to global phase on a subset ordering — plain overlap of
     * amplitudes; callers wanting partial-trace comparisons should project
     * ancillas first with postselect().
     */
    double overlapMagnitude(const StateVector &other) const;

    /** L2 norm (should stay ~1; checked by tests). */
    double norm() const;

    /** Sample a full computational-basis measurement without collapse. */
    std::size_t sampleBasis(Rng &rng) const;

  private:
    /** Swap the `qubit`=0/1 amplitude pairs (an X gate, no arithmetic). */
    void applyPermX(QubitId qubit);

    /** Swap the |01> and |10> amplitudes of the pair (a SWAP gate). */
    void applyPermSwap(QubitId q0, QubitId q1);

    /**
     * Single collapse pass shared by measure/postselect/resetQubit:
     * scales the kept branch by 1/sqrt(p) and zeroes the other, reusing
     * an already-computed `p1`. With `fold_x` (resetQubit's |1> branch)
     * the corrective X is folded in: the scaled 1-half lands directly in
     * the 0-half slots.
     */
    void collapse(QubitId qubit, int outcome, double p1, bool fold_x);

    unsigned _num_qubits;
    std::vector<Amp> _amps;
};

} // namespace dhisq::q
