/**
 * @file
 * The quantum-backend tier: one interface, two functional simulators.
 *
 * Every functional (non-stochastic) device run applies the same action
 * vocabulary — 1q/2q Clifford-or-dense gates, projective Z measurement,
 * active reset — so the device programs against this `Backend` interface
 * and the machine picks the cheapest implementation that is exact for the
 * compiled program:
 *
 *   - `StateVector`   dense 2^n amplitudes; exact for every gate, cost
 *                     O(2^n) per gate (practical to ~20 qubits).
 *   - `TableauState`  Aaronson-Gottesman stabilizer tableau; exact for
 *                     Clifford circuits (H/S/X/Y/Z/CNOT/CZ/... plus
 *                     measurement and feedback), cost O(n) per gate and
 *                     O(n^2/64) per measurement — thousands of qubits.
 *
 * Measurement-outcome contract: both backends consume EXACTLY ONE draw
 * from the caller's Rng per measure()/resetQubit() and produce the same
 * bit for the same pre-measurement state and Rng stream. This is what the
 * differential harness (test_backend_diff) asserts end-to-end: a compiled
 * machine run is bit-identical — measurement records included — no matter
 * which functional backend the tier selector picked.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "quantum/gates.hpp"

namespace dhisq::q {

/** Which functional backend implementation a device runs. */
enum class BackendKind : std::uint8_t {
    kDense,   ///< StateVector (exact for all gates)
    kTableau, ///< TableauState (exact for Clifford-only programs)
};

/** Human-readable backend name ("dense", "tableau"). */
const char *toString(BackendKind kind);

/**
 * Backend-selection tier of a compilation/sweep point.
 *
 *  - kAuto     scan the compiled program: all-Clifford -> tableau,
 *              anything else (T, rotations, controlled phases) -> dense.
 *  - kDense    always the dense state vector (amplitude access needed,
 *              e.g. fidelity assertions).
 *  - kTableau  request the stabilizer backend; programs with non-Clifford
 *              gates still fall back to dense (the tableau cannot
 *              represent them), so mixed sweeps stay healthy.
 */
enum class BackendTier : std::uint8_t { kAuto, kDense, kTableau };

/** Human-readable tier name ("auto", "dense", "tableau"). */
const char *toString(BackendTier tier);

/** Parse a tier name; false when `text` names no tier. */
bool parseBackendTier(std::string_view text, BackendTier &out);

/** Every backend tier in canonical sweep order. */
const std::vector<BackendTier> &allBackendTiers();

/** Resolve a tier against a program's gate census. */
BackendKind resolveBackend(BackendTier tier, bool clifford_only);

/**
 * Lazy gate-fusion tier of the device dispatch loop.
 *
 *  - kOff  every gate hits the backend immediately (default; committed
 *          bench artifacts are produced in this mode).
 *  - k1q   consecutive single-qubit gates on the same qubit are composed
 *          into one pending 2x2 matrix and applied in a single state
 *          pass when forced (2q gate on the qubit, measurement, prep,
 *          finalize). Dense backend only — the tableau applies named
 *          Clifford gates and cannot consume a fused matrix; devices on
 *          other backends ignore the setting.
 */
enum class FusionMode : std::uint8_t { kOff, k1q };

/** Human-readable fusion-mode name ("off", "1q"). */
const char *toString(FusionMode mode);

/** Parse a fusion-mode name; false when `text` names no mode. */
bool parseFusionMode(std::string_view text, FusionMode &out);

/** Every fusion mode in canonical sweep order. */
const std::vector<FusionMode> &allFusionModes();

/**
 * Functional quantum state shared by the simulator backends.
 *
 * The device drives exactly this surface; everything richer (amplitudes,
 * fidelity, stabilizer rows) lives on the concrete classes and is only
 * reachable where the caller knows — or asserted — which tier runs.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual BackendKind kind() const = 0;

    virtual unsigned numQubits() const = 0;

    /** Reset to |0...0>. */
    virtual void reset() = 0;

    /** Apply a single-qubit gate (angle used when parameterized). */
    virtual void apply1q(Gate g, QubitId qubit, double angle = 0.0) = 0;

    /** Apply a two-qubit gate; q0 is the gate's first operand (control
     *  for CNOT), matching matrix2q's |q1 q0> basis convention. */
    virtual void apply2q(Gate g, QubitId q0, QubitId q1,
                         double angle = 0.0) = 0;

    /**
     * Projective Z measurement with collapse. Consumes exactly one draw
     * from `rng`; for the same state and Rng stream every backend
     * returns the same bit.
     */
    virtual int measure(QubitId qubit, Rng &rng) = 0;

    /** Reset one qubit to |0> (measure + conditional X; one Rng draw). */
    virtual void resetQubit(QubitId qubit, Rng &rng) = 0;

    /** Probability of measuring `qubit` as 1 (diagnostics/tests). */
    virtual double probabilityOfOne(QubitId qubit) const = 0;
};

} // namespace dhisq::q
