#include "quantum/backend.hpp"

namespace dhisq::q {

const char *
toString(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kDense: return "dense";
      case BackendKind::kTableau: return "tableau";
    }
    return "?";
}

const char *
toString(BackendTier tier)
{
    switch (tier) {
      case BackendTier::kAuto: return "auto";
      case BackendTier::kDense: return "dense";
      case BackendTier::kTableau: return "tableau";
    }
    return "?";
}

bool
parseBackendTier(std::string_view text, BackendTier &out)
{
    for (BackendTier tier : allBackendTiers()) {
        if (text == toString(tier)) {
            out = tier;
            return true;
        }
    }
    return false;
}

const std::vector<BackendTier> &
allBackendTiers()
{
    static const std::vector<BackendTier> tiers = {
        BackendTier::kAuto,
        BackendTier::kDense,
        BackendTier::kTableau,
    };
    return tiers;
}

const char *
toString(FusionMode mode)
{
    switch (mode) {
      case FusionMode::kOff: return "off";
      case FusionMode::k1q: return "1q";
    }
    return "?";
}

bool
parseFusionMode(std::string_view text, FusionMode &out)
{
    for (FusionMode mode : allFusionModes()) {
        if (text == toString(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

const std::vector<FusionMode> &
allFusionModes()
{
    static const std::vector<FusionMode> modes = {
        FusionMode::kOff,
        FusionMode::k1q,
    };
    return modes;
}

BackendKind
resolveBackend(BackendTier tier, bool clifford_only)
{
    switch (tier) {
      case BackendTier::kDense:
        return BackendKind::kDense;
      case BackendTier::kAuto:
      case BackendTier::kTableau:
        // An explicit tableau request still needs a Clifford program —
        // the tableau cannot represent T/rotation states, so non-Clifford
        // programs fall back to dense instead of failing the run.
        return clifford_only ? BackendKind::kTableau : BackendKind::kDense;
    }
    return BackendKind::kDense;
}

} // namespace dhisq::q
