/**
 * @file
 * Analog-frontend and qubit-dynamics model standing in for the paper's
 * superconducting test bed (Section 6.2 / Figure 11).
 *
 * The model is deliberately simple but physically shaped:
 *  - driven qubit: detuned Rabi formula
 *        P_e(f, A, t) = (O^2 / (O^2 + D^2)) * sin^2(sqrt(O^2 + D^2) t / 2)
 *    with Rabi rate O = rabi_rate_per_amp * A and detuning D = 2pi (f - f01);
 *  - relaxation: P_e(t) = P_e(0) * exp(-t / T1);
 *  - dispersive readout: the IQ response of a measurement-excitation pulse
 *    with phase phi traces a circle of radius r0, perturbed by a small
 *    interference term from neighbouring qubits on the same feedline
 *    (the deviation the paper shows in Figure 11a).
 *
 * All randomness is injected through an explicit Rng so experiments are
 * reproducible; noise amplitude 0 gives clean theoretical curves.
 */
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace dhisq::q {

/** An IQ-plane sample. */
struct IQPoint
{
    double i = 0.0;
    double q = 0.0;
};

/** Physical parameters of the modelled qubit + readout chain. */
struct PhysicsConfig
{
    double f01_ghz = 4.62;          ///< Qubit transition frequency.
    double t1_us = 9.9;             ///< Relaxation time.
    double rabi_rate_per_amp = 50.0;///< O (rad/us) per unit drive amplitude.
    double readout_radius = 1000.0; ///< Circle radius in arbitrary units.
    double interference = 0.06;     ///< Relative neighbour-coupling term.
    double interference_harmonic = 3.0; ///< Interference angular harmonic.
    double noise = 0.0;             ///< Relative Gaussian-ish sample noise.
};

/** Qubit + analog chain model. */
class QubitPhysics
{
  public:
    explicit QubitPhysics(const PhysicsConfig &config, std::uint64_t seed = 7)
        : _config(config), _rng(seed)
    {}

    const PhysicsConfig &config() const { return _config; }

    /**
     * Excited-state population after driving at `freq_ghz` with amplitude
     * `amp` for `duration_us`. Implements the detuned-Rabi line shape used
     * by both the spectroscopy (11b) and Rabi (11c) experiments.
     */
    double drivenPopulation(double freq_ghz, double amp,
                            double duration_us) const;

    /** Excited population after free decay for `delay_us` (11d). */
    double decayedPopulation(double initial_pop, double delay_us) const;

    /**
     * IQ response of a measurement-excitation pulse with phase `phase_rad`
     * (11a). Includes the neighbour interference term.
     */
    IQPoint readoutIQ(double phase_rad);

    /** Threshold discrimination of a population into a bit via sampling. */
    int discriminate(double excited_pop);

  private:
    double noisy(double value);

    PhysicsConfig _config;
    Rng _rng;
};

/** A labelled (x, y) data series produced by a calibration experiment. */
struct DataSeries
{
    std::vector<double> x;
    std::vector<double> y;
};

} // namespace dhisq::q
