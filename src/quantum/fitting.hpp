/**
 * @file
 * Small curve-fitting toolbox for the calibration experiments (Figure 11):
 * exponential decay (T1), peak location (spectroscopy) and Rabi frequency.
 * Self-contained least-squares — no external numerics dependencies.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace dhisq::q {

/** y = a * exp(-x / tau): fitted parameters. */
struct ExpFit
{
    double amplitude = 0.0;
    double tau = 0.0;
    double rms_error = 0.0;
};

/** Fit y = a*exp(-x/tau) via log-linear least squares (y must be > 0). */
ExpFit fitExponentialDecay(const std::vector<double> &x,
                           const std::vector<double> &y);

/** Location of the maximum refined by a parabola through the top 3 points. */
double fitPeak(const std::vector<double> &x, const std::vector<double> &y);

/** y = 0.5 * (1 - cos(w x)): fitted angular frequency. */
struct RabiFit
{
    double omega = 0.0;
    double rms_error = 0.0;
};

/** Grid + golden-refine fit of a Rabi oscillation. */
RabiFit fitRabi(const std::vector<double> &x, const std::vector<double> &y,
                double omega_min, double omega_max);

/** Root-mean-square residual of y vs model samples. */
double rmsError(const std::vector<double> &y,
                const std::vector<double> &model);

} // namespace dhisq::q
