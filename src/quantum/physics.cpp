#include "quantum/physics.hpp"

#include <cmath>

namespace dhisq::q {

double
QubitPhysics::drivenPopulation(double freq_ghz, double amp,
                               double duration_us) const
{
    // Angular frequencies in rad/us. 1 GHz detuning = 2*pi*1e3 rad/us.
    const double omega = _config.rabi_rate_per_amp * amp;
    const double detuning = 2.0 * M_PI * (freq_ghz - _config.f01_ghz) * 1e3;
    const double general = std::sqrt(omega * omega + detuning * detuning);
    if (general == 0.0)
        return 0.0;
    const double contrast = (omega * omega) / (general * general);
    const double s = std::sin(general * duration_us / 2.0);
    return contrast * s * s;
}

double
QubitPhysics::decayedPopulation(double initial_pop, double delay_us) const
{
    return initial_pop * std::exp(-delay_us / _config.t1_us);
}

IQPoint
QubitPhysics::readoutIQ(double phase_rad)
{
    const double r = _config.readout_radius;
    // Ideal circle plus a small harmonic wobble from neighbours that share
    // the feedline (the non-ideality visible in the paper's Figure 11a).
    const double wobble =
        1.0 + _config.interference *
                  std::cos(_config.interference_harmonic * phase_rad + 0.7);
    IQPoint p;
    p.i = noisy(r * wobble * std::cos(phase_rad));
    p.q = noisy(r * wobble * std::sin(phase_rad));
    return p;
}

int
QubitPhysics::discriminate(double excited_pop)
{
    return _rng.coin(excited_pop) ? 1 : 0;
}

double
QubitPhysics::noisy(double value)
{
    if (_config.noise <= 0.0)
        return value;
    // Cheap symmetric noise: average of uniforms approximates a Gaussian.
    const double u =
        (_rng.uniform() + _rng.uniform() + _rng.uniform() - 1.5) / 1.5;
    return value * (1.0 + _config.noise * u);
}

} // namespace dhisq::q
