#include "quantum/tableau.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"

namespace dhisq::q {

namespace {
constexpr unsigned kMaxTableauQubits = 16384;
} // namespace

TableauState::TableauState(unsigned num_qubits) : _n(num_qubits)
{
    DHISQ_ASSERT(num_qubits >= 1 && num_qubits <= kMaxTableauQubits,
                 "tableau size out of range: ", num_qubits, " qubits");
    _words = (num_qubits + 63) / 64;
    _x.assign(std::size_t(2 * _n + 1) * _words, 0);
    _z.assign(std::size_t(2 * _n + 1) * _words, 0);
    _r.assign(2 * _n + 1, 0);
    reset();
}

void
TableauState::reset()
{
    std::fill(_x.begin(), _x.end(), 0);
    std::fill(_z.begin(), _z.end(), 0);
    std::fill(_r.begin(), _r.end(), 0);
    // Destabilizer i = X_i, stabilizer n+i = Z_i: the |0...0> tableau.
    for (unsigned i = 0; i < _n; ++i) {
        _x[std::size_t(i) * _words + i / 64] |= 1ull << (i % 64);
        _z[std::size_t(_n + i) * _words + i / 64] |= 1ull << (i % 64);
    }
}

bool
TableauState::xbit(unsigned row, QubitId q) const
{
    return (_x[std::size_t(row) * _words + q / 64] >> (q % 64)) & 1u;
}

bool
TableauState::zbit(unsigned row, QubitId q) const
{
    return (_z[std::size_t(row) * _words + q / 64] >> (q % 64)) & 1u;
}

void
TableauState::zeroRow(unsigned row)
{
    const std::size_t base = std::size_t(row) * _words;
    std::fill_n(_x.begin() + long(base), _words, 0);
    std::fill_n(_z.begin() + long(base), _words, 0);
    _r[row] = 0;
}

void
TableauState::copyRow(unsigned dst, unsigned src)
{
    const std::size_t d = std::size_t(dst) * _words;
    const std::size_t s = std::size_t(src) * _words;
    std::copy_n(_x.begin() + long(s), _words, _x.begin() + long(d));
    std::copy_n(_z.begin() + long(s), _words, _z.begin() + long(d));
    _r[dst] = _r[src];
}

void
TableauState::rowsum(unsigned h, unsigned i)
{
    // row[h] := row[i] * row[h], tracking the sign exactly: accumulate
    // the exponent of i contributed by each column's single-qubit Pauli
    // product (the Aaronson-Gottesman g function), word-parallel via
    // popcounts over the +1 and -1 contribution masks.
    const std::size_t hb = std::size_t(h) * _words;
    const std::size_t ib = std::size_t(i) * _words;
    long e = 0;
    for (unsigned w = 0; w < _words; ++w) {
        const std::uint64_t x1 = _x[ib + w], z1 = _z[ib + w];
        const std::uint64_t x2 = _x[hb + w], z2 = _z[hb + w];
        const std::uint64_t pos = (x1 & ~z1 & x2 & z2) |
                                  (x1 & z1 & z2 & ~x2) |
                                  (~x1 & z1 & x2 & ~z2);
        const std::uint64_t neg = (x1 & ~z1 & z2 & ~x2) |
                                  (x1 & z1 & x2 & ~z2) |
                                  (~x1 & z1 & x2 & z2);
        e += std::popcount(pos) - std::popcount(neg);
        _x[hb + w] ^= x1;
        _z[hb + w] ^= z1;
    }
    // Phases are full exponents of i mod 4: stabilizer rows stay even
    // (Hermitian), but destabilizer rows may pick up odd phases when a
    // measurement left-multiplies them by an anticommuting stabilizer —
    // their signs are never read, only their bit patterns.
    e += long(_r[h]) + long(_r[i]);
    _r[h] = std::uint8_t(e & 3);
}

void
TableauState::h(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t idx = std::size_t(row) * _words + word;
        const std::uint64_t xv = _x[idx] & bit, zv = _z[idx] & bit;
        if (xv && zv)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
        _x[idx] ^= xv ^ zv;
        _z[idx] ^= xv ^ zv;
    }
}

void
TableauState::s(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t idx = std::size_t(row) * _words + word;
        const std::uint64_t xv = _x[idx] & bit, zv = _z[idx] & bit;
        if (xv && zv)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
        _z[idx] ^= xv;
    }
}

void
TableauState::sdg(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t idx = std::size_t(row) * _words + word;
        const std::uint64_t xv = _x[idx] & bit, zv = _z[idx] & bit;
        if (xv && !zv)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
        _z[idx] ^= xv;
    }
}

void
TableauState::x(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        if (_z[std::size_t(row) * _words + word] & bit)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
    }
}

void
TableauState::y(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t idx = std::size_t(row) * _words + word;
        if ((_x[idx] ^ _z[idx]) & bit)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
    }
}

void
TableauState::z(QubitId q)
{
    DHISQ_ASSERT(q < _n, "qubit out of range");
    const std::size_t word = q / 64;
    const std::uint64_t bit = 1ull << (q % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        if (_x[std::size_t(row) * _words + word] & bit)
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
    }
}

void
TableauState::cnot(QubitId control, QubitId target)
{
    DHISQ_ASSERT(control < _n && target < _n && control != target,
                 "bad qubit pair ", control, ",", target);
    const std::size_t cw = control / 64, tw = target / 64;
    const std::uint64_t cb = 1ull << (control % 64);
    const std::uint64_t tb = 1ull << (target % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t base = std::size_t(row) * _words;
        const bool xc = (_x[base + cw] & cb) != 0;
        const bool zc = (_z[base + cw] & cb) != 0;
        const bool xt = (_x[base + tw] & tb) != 0;
        const bool zt = (_z[base + tw] & tb) != 0;
        if (xc && zt && (xt == zc))
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
        if (xc)
            _x[base + tw] ^= tb;
        if (zt)
            _z[base + cw] ^= cb;
    }
}

void
TableauState::cz(QubitId a, QubitId b)
{
    DHISQ_ASSERT(a < _n && b < _n && a != b, "bad qubit pair ", a, ",", b);
    const std::size_t aw = a / 64, bw = b / 64;
    const std::uint64_t ab = 1ull << (a % 64);
    const std::uint64_t bb = 1ull << (b % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t base = std::size_t(row) * _words;
        const bool xa = (_x[base + aw] & ab) != 0;
        const bool za = (_z[base + aw] & ab) != 0;
        const bool xb = (_x[base + bw] & bb) != 0;
        const bool zb = (_z[base + bw] & bb) != 0;
        if (xa && xb && (za != zb))
            _r[row] = std::uint8_t((_r[row] + 2) & 3);
        if (xb)
            _z[base + aw] ^= ab;
        if (xa)
            _z[base + bw] ^= bb;
    }
}

void
TableauState::swap(QubitId a, QubitId b)
{
    DHISQ_ASSERT(a < _n && b < _n && a != b, "bad qubit pair ", a, ",", b);
    // Column exchange; Pauli signs are unaffected by operand reordering.
    const std::size_t aw = a / 64, bw = b / 64;
    const std::uint64_t ab = 1ull << (a % 64);
    const std::uint64_t bb = 1ull << (b % 64);
    for (unsigned row = 0; row < 2 * _n; ++row) {
        const std::size_t base = std::size_t(row) * _words;
        const bool xa = (_x[base + aw] & ab) != 0;
        const bool xb = (_x[base + bw] & bb) != 0;
        if (xa != xb) {
            _x[base + aw] ^= ab;
            _x[base + bw] ^= bb;
        }
        const bool za = (_z[base + aw] & ab) != 0;
        const bool zb = (_z[base + bw] & bb) != 0;
        if (za != zb) {
            _z[base + aw] ^= ab;
            _z[base + bw] ^= bb;
        }
    }
}

void
TableauState::apply1q(Gate g, QubitId qubit, double angle)
{
    (void)angle;
    switch (g) {
      case Gate::kI: return;
      case Gate::kX: x(qubit); return;
      case Gate::kY: y(qubit); return;
      case Gate::kZ: z(qubit); return;
      case Gate::kH: h(qubit); return;
      case Gate::kS: s(qubit); return;
      case Gate::kSdg: sdg(qubit); return;
      // The 90-degree rotations are Clifford; each equals an H/S/Z
      // sequence up to global phase (verified against the dense matrices
      // by the differential harness).
      case Gate::kX90: h(qubit); s(qubit); h(qubit); return;
      case Gate::kXm90: h(qubit); sdg(qubit); h(qubit); return;
      case Gate::kY90: z(qubit); h(qubit); return;
      case Gate::kYm90: h(qubit); z(qubit); return;
      default:
        break;
    }
    DHISQ_PANIC("tableau backend cannot apply non-Clifford gate '",
                gateName(g), "' — the tier selector must route such "
                "programs to the dense backend");
}

void
TableauState::apply2q(Gate g, QubitId q0, QubitId q1, double angle)
{
    (void)angle;
    switch (g) {
      case Gate::kCNOT: cnot(q0, q1); return;
      case Gate::kCZ: cz(q0, q1); return;
      case Gate::kSwap: swap(q0, q1); return;
      default:
        break;
    }
    DHISQ_PANIC("tableau backend cannot apply non-Clifford gate '",
                gateName(g), "' — the tier selector must route such "
                "programs to the dense backend");
}

int
TableauState::measure(QubitId qubit, Rng &rng)
{
    DHISQ_ASSERT(qubit < _n, "qubit out of range");
    // A stabilizer row anticommuting with Z_qubit (x bit set) means the
    // outcome is a fair coin; otherwise it is determined by the group.
    unsigned p = 0;
    bool random = false;
    for (unsigned i = _n; i < 2 * _n; ++i) {
        if (xbit(i, qubit)) {
            p = i;
            random = true;
            break;
        }
    }
    if (random) {
        for (unsigned i = 0; i < 2 * _n; ++i) {
            if (i != p && xbit(i, qubit))
                rowsum(i, p);
        }
        copyRow(p - _n, p);
        zeroRow(p);
        _z[std::size_t(p) * _words + qubit / 64] |= 1ull << (qubit % 64);
        // Same draw the dense backend makes for p1 == 1/2.
        const int bit = rng.coin(0.5) ? 1 : 0;
        _r[p] = std::uint8_t(bit ? 2 : 0);
        return bit;
    }
    // Deterministic outcome: accumulate the stabilizer product that
    // yields +-Z_qubit into the scratch row; its sign is the outcome.
    zeroRow(2 * _n);
    for (unsigned i = 0; i < _n; ++i) {
        if (xbit(i, qubit))
            rowsum(2 * _n, i + _n);
    }
    DHISQ_ASSERT((_r[2 * _n] & 1) == 0,
                 "stabilizer product for a deterministic outcome must be "
                 "Hermitian (even i-phase)");
    const int det = (_r[2 * _n] == 2) ? 1 : 0;
    // Burn the same Rng draw the dense backend burns on a deterministic
    // measurement (coin against p1 == 0 or 1), keeping the streams — and
    // therefore every later random outcome — aligned across backends.
    const int bit = rng.coin(det ? 1.0 : 0.0) ? 1 : 0;
    DHISQ_ASSERT(bit == det, "deterministic draw diverged");
    return det;
}

void
TableauState::resetQubit(QubitId qubit, Rng &rng)
{
    if (measure(qubit, rng) == 1)
        x(qubit);
}

bool
TableauState::isDeterministic(QubitId qubit) const
{
    DHISQ_ASSERT(qubit < _n, "qubit out of range");
    for (unsigned i = _n; i < 2 * _n; ++i) {
        if (xbit(i, qubit))
            return false;
    }
    return true;
}

double
TableauState::probabilityOfOne(QubitId qubit) const
{
    DHISQ_ASSERT(qubit < _n, "qubit out of range");
    if (!isDeterministic(qubit))
        return 0.5;
    // Deterministic: replay the scratch accumulation on a copy (this
    // query must not disturb the tableau).
    TableauState scratch(*this);
    scratch.zeroRow(2 * scratch._n);
    for (unsigned i = 0; i < scratch._n; ++i) {
        if (scratch.xbit(i, qubit))
            scratch.rowsum(2 * scratch._n, i + scratch._n);
    }
    return (scratch._r[2 * scratch._n] == 2) ? 1.0 : 0.0;
}

std::string
TableauState::stabilizer(unsigned i) const
{
    DHISQ_ASSERT(i < _n, "stabilizer index out of range");
    const unsigned row = _n + i;
    std::string out;
    out.reserve(_n + 1);
    DHISQ_ASSERT((_r[row] & 1) == 0, "stabilizer rows carry even i-phase");
    out += (_r[row] == 2) ? '-' : '+';
    for (QubitId q = 0; q < _n; ++q) {
        const bool xv = xbit(row, q), zv = zbit(row, q);
        out += xv ? (zv ? 'Y' : 'X') : (zv ? 'Z' : 'I');
    }
    return out;
}

} // namespace dhisq::q
