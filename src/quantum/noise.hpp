/**
 * @file
 * Decoherence bookkeeping and the execution-time -> infidelity model used to
 * reproduce Figure 16.
 *
 * Model: each qubit decoheres while it is "live" (between its first and last
 * scheduled operation, inclusive of op durations). With relaxation/coherence
 * time T1 (the paper sweeps T1 = T2 jointly, Section 6.4.5), the survival
 * probability of the whole computation is
 *
 *     F = prod_q exp(-live_q / T1)
 *
 * and infidelity = 1 - F. This reproduces the paper's observation that a
 * scheme which shortens the feedback-limited critical path reduces
 * infidelity nearly proportionally (the ~5x in Figure 16).
 */
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dhisq::q {

/** Live-window record for one qubit. */
struct QubitActivity
{
    Cycle first = kNoCycle;  ///< Start of the earliest operation.
    Cycle last = 0;          ///< End of the latest operation.
    Cycle busy = 0;          ///< Total cycles spent inside operations.

    bool used() const { return first != kNoCycle; }
    Cycle liveSpan() const { return used() ? last - first : 0; }
};

/** Accumulates per-qubit activity windows as the device executes. */
class ActivityTracker
{
  public:
    explicit ActivityTracker(std::size_t num_qubits = 0)
        : _activity(num_qubits)
    {}

    void
    resize(std::size_t num_qubits)
    {
        _activity.assign(num_qubits, QubitActivity{});
    }

    /** Record an operation on `qubit` spanning [start, start+duration). */
    void
    record(QubitId qubit, Cycle start, Cycle duration)
    {
        auto &a = _activity.at(qubit);
        if (!a.used() || start < a.first)
            a.first = start;
        if (start + duration > a.last)
            a.last = start + duration;
        a.busy += duration;
    }

    const QubitActivity &activity(QubitId qubit) const
    {
        return _activity.at(qubit);
    }
    const std::vector<QubitActivity> &all() const { return _activity; }

    /** Sum of live spans over all used qubits, in cycles. */
    Cycle totalLiveCycles() const;

    void clear() { resize(_activity.size()); }

  private:
    std::vector<QubitActivity> _activity;
};

/**
 * Whole-run fidelity under the exponential live-window model.
 * @param t1_us relaxation/coherence time in microseconds.
 */
double survivalProbability(const ActivityTracker &tracker, double t1_us);

/** 1 - survivalProbability. */
double decoherenceInfidelity(const ActivityTracker &tracker, double t1_us);

} // namespace dhisq::q
