/**
 * @file
 * Aaronson-Gottesman stabilizer-tableau backend (arXiv:quant-ph/0406196).
 *
 * Represents an n-qubit stabilizer state as n destabilizer + n stabilizer
 * Pauli rows (X/Z bit matrices packed 64 columns per word, plus a sign bit
 * per row). Clifford gates update one or two columns across all rows in
 * O(n) word operations; measurement runs the tableau row-reduction in
 * O(n^2/64). This is the fast path the tier selector picks for Clifford
 * programs — GHZ fan-outs, syndrome-extraction cycles, routed SWAP chains
 * — where the dense backend pays 2^n per gate.
 *
 * Supported gates: I, X, Y, Z, H, S, Sdg, X90, Xm90, Y90, Ym90, CNOT, CZ,
 * SWAP. Non-Clifford gates (T, rotations, CPhase) are a fatal error; the
 * tier selector guarantees they never reach a tableau device.
 *
 * Measurement draws match the dense backend bit-for-bit: like
 * StateVector::measure, exactly one Rng draw is consumed per measurement,
 * compared against the outcome probability (0, 1/2 or 1 for stabilizer
 * states), so a shared seed yields identical measurement records on both
 * backends — the property test_backend_diff proves over thousands of
 * random Clifford circuits.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "quantum/backend.hpp"

namespace dhisq::q {

/** Stabilizer-tableau simulator state (Clifford gates + measurement). */
class TableauState final : public Backend
{
  public:
    /** Initialize |0...0> on `num_qubits` qubits. */
    explicit TableauState(unsigned num_qubits);

    BackendKind kind() const override { return BackendKind::kTableau; }
    unsigned numQubits() const override { return _n; }

    void reset() override;

    void apply1q(Gate g, QubitId qubit, double angle = 0.0) override;
    void apply2q(Gate g, QubitId q0, QubitId q1,
                 double angle = 0.0) override;

    int measure(QubitId qubit, Rng &rng) override;
    void resetQubit(QubitId qubit, Rng &rng) override;

    /** 0.0, 0.5 or 1.0 — a stabilizer state admits nothing else. */
    double probabilityOfOne(QubitId qubit) const override;

    /** True when measuring `qubit` has a predetermined outcome. */
    bool isDeterministic(QubitId qubit) const;

    // Clifford primitives (the gate vocabulary reduces onto these).
    void h(QubitId q);
    void s(QubitId q);
    void sdg(QubitId q);
    void x(QubitId q);
    void y(QubitId q);
    void z(QubitId q);
    void cnot(QubitId control, QubitId target);
    void cz(QubitId a, QubitId b);
    void swap(QubitId a, QubitId b);

    /**
     * Stabilizer row `i` (0..n-1) as "+XZY..I" / "-..." — the generator
     * S_i of the stabilizer group. For tests and debugging.
     */
    std::string stabilizer(unsigned i) const;

  private:
    // Row r of the tableau: destabilizers are rows [0, n), stabilizers
    // [n, 2n), row 2n is the scratch accumulator for deterministic
    // measurement. Bit q of row r lives in word r*_words + q/64.
    bool xbit(unsigned row, QubitId q) const;
    bool zbit(unsigned row, QubitId q) const;
    void zeroRow(unsigned row);
    void copyRow(unsigned dst, unsigned src);
    /** row[h] *= row[i] with exact sign tracking (the AG "rowsum"). */
    void rowsum(unsigned h, unsigned i);

    unsigned _n = 0;
    unsigned _words = 0; ///< 64-bit words per row side (ceil(n/64))
    std::vector<std::uint64_t> _x; ///< (2n+1) rows x _words X-bits
    std::vector<std::uint64_t> _z; ///< (2n+1) rows x _words Z-bits
    /**
     * (2n+1) phase exponents of i, mod 4. Stabilizer rows and the scratch
     * row are Hermitian (always 0 or 2, read as +/-); destabilizer rows
     * may hold odd values after measurement rowsums — their phases are
     * never read, only their X/Z bit patterns.
     */
    std::vector<std::uint8_t> _r;
};

} // namespace dhisq::q
