/**
 * @file
 * Gate vocabulary shared by the quantum device, the compiler IR and the
 * workload generators, plus their unitary matrices for the state-vector
 * backend.
 *
 * Durations follow the paper's simulation configuration (Section 6.4.1):
 * 20 ns single-qubit gates, 40 ns two-qubit gates, 300 ns measurements.
 */
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace dhisq::q {

using Amp = std::complex<double>;

/** Supported gate kinds. */
enum class Gate : std::uint8_t {
    kI,
    kX, kY, kZ,
    kH,
    kS, kSdg,
    kT, kTdg,
    kX90, kY90, kXm90, kYm90,
    kRx, kRy, kRz,      // parameterized rotations
    kCZ, kCNOT, kSwap,  // two-qubit
    kCPhase,            // parameterized controlled phase
    kMeasure,           // measurement pseudo-gate (Z basis)
    kPrepZ,             // reset/initialize pseudo-gate
};

/**
 * Structural class of a gate's unitary, driving kernel dispatch in the
 * dense backend. Every class admits a cheaper state-vector kernel than
 * the general dense matmul:
 *
 *  - kDiagonal     unitary is diagonal in the computational basis
 *                  (Z/S/Sdg/T/Tdg/Rz, CZ/CPhase): only phase multiplies,
 *                  and only on the phase-carrying subspace.
 *  - kPermutation  unitary is a 0/1 permutation matrix (X, SWAP):
 *                  amplitudes move, no arithmetic at all.
 *  - kControlled   identity on the control-clear half (CNOT): only the
 *                  control-set half of the state is touched.
 *  - kGeneral      anything else: full blocked matmul kernel.
 */
enum class GateClass : std::uint8_t {
    kDiagonal,
    kPermutation,
    kControlled,
    kGeneral,
};

/** Kernel class of a gate (pseudo-gates classify as kGeneral). */
GateClass classifyGate(Gate g);

/** Human-readable class name ("diagonal", "permutation", ...). */
const char *toString(GateClass cls);

/** True for two-qubit gates. */
bool isTwoQubit(Gate g);

/** True for parameterized gates (Rx/Ry/Rz/CPhase). */
bool isParameterized(Gate g);

/**
 * True for gates in the Clifford group (including the measurement and
 * reset pseudo-gates): circuits built only from these are exactly
 * simulable by the stabilizer-tableau backend.
 */
bool isCliffordGate(Gate g);

/** Canonical lowercase name ("cz", "x90", ...). */
std::string_view gateName(Gate g);

/** Default durations in cycles (4 ns grid): 1q = 5, 2q = 10, meas = 75. */
Cycle defaultDuration(Gate g);

/** 2x2 unitary for a single-qubit gate (angle used when parameterized). */
std::array<Amp, 4> matrix1q(Gate g, double angle = 0.0);

/** 4x4 unitary for a two-qubit gate, row-major, basis |q1 q0>. */
std::array<Amp, 16> matrix2q(Gate g, double angle = 0.0);

} // namespace dhisq::q
