#include "quantum/gates.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhisq::q {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
const Amp kI1{0.0, 1.0};
} // namespace

GateClass
classifyGate(Gate g)
{
    switch (g) {
      case Gate::kI:
      case Gate::kZ: case Gate::kS: case Gate::kSdg:
      case Gate::kT: case Gate::kTdg:
      case Gate::kRz:
      case Gate::kCZ: case Gate::kCPhase:
        return GateClass::kDiagonal;
      case Gate::kX: case Gate::kSwap:
        return GateClass::kPermutation;
      case Gate::kCNOT:
        return GateClass::kControlled;
      default:
        // Y/H/rotations mix basis states with non-trivial weights; the
        // measurement/reset pseudo-gates never reach a unitary kernel.
        return GateClass::kGeneral;
    }
}

const char *
toString(GateClass cls)
{
    switch (cls) {
      case GateClass::kDiagonal: return "diagonal";
      case GateClass::kPermutation: return "permutation";
      case GateClass::kControlled: return "controlled";
      case GateClass::kGeneral: return "general";
    }
    return "?";
}

bool
isTwoQubit(Gate g)
{
    switch (g) {
      case Gate::kCZ: case Gate::kCNOT: case Gate::kSwap: case Gate::kCPhase:
        return true;
      default:
        return false;
    }
}

bool
isParameterized(Gate g)
{
    switch (g) {
      case Gate::kRx: case Gate::kRy: case Gate::kRz: case Gate::kCPhase:
        return true;
      default:
        return false;
    }
}

bool
isCliffordGate(Gate g)
{
    switch (g) {
      case Gate::kI:
      case Gate::kX: case Gate::kY: case Gate::kZ:
      case Gate::kH:
      case Gate::kS: case Gate::kSdg:
      case Gate::kX90: case Gate::kY90: case Gate::kXm90: case Gate::kYm90:
      case Gate::kCZ: case Gate::kCNOT: case Gate::kSwap:
      case Gate::kMeasure: case Gate::kPrepZ:
        return true;
      default:
        // T/Tdg, the parameterized rotations and CPhase leave the
        // Clifford group (special angles notwithstanding — the selector
        // is conservative).
        return false;
    }
}

std::string_view
gateName(Gate g)
{
    switch (g) {
      case Gate::kI: return "i";
      case Gate::kX: return "x";
      case Gate::kY: return "y";
      case Gate::kZ: return "z";
      case Gate::kH: return "h";
      case Gate::kS: return "s";
      case Gate::kSdg: return "sdg";
      case Gate::kT: return "t";
      case Gate::kTdg: return "tdg";
      case Gate::kX90: return "x90";
      case Gate::kY90: return "y90";
      case Gate::kXm90: return "xm90";
      case Gate::kYm90: return "ym90";
      case Gate::kRx: return "rx";
      case Gate::kRy: return "ry";
      case Gate::kRz: return "rz";
      case Gate::kCZ: return "cz";
      case Gate::kCNOT: return "cnot";
      case Gate::kSwap: return "swap";
      case Gate::kCPhase: return "cphase";
      case Gate::kMeasure: return "measure";
      case Gate::kPrepZ: return "prep_z";
    }
    return "?";
}

Cycle
defaultDuration(Gate g)
{
    if (g == Gate::kMeasure)
        return nsToCycles(300.0);
    if (g == Gate::kPrepZ)
        return nsToCycles(300.0);
    if (isTwoQubit(g))
        return nsToCycles(40.0);
    return nsToCycles(20.0);
}

std::array<Amp, 4>
matrix1q(Gate g, double angle)
{
    switch (g) {
      case Gate::kI:
        return {Amp{1, 0}, Amp{}, Amp{}, Amp{1, 0}};
      case Gate::kX:
        return {Amp{}, Amp{1, 0}, Amp{1, 0}, Amp{}};
      case Gate::kY:
        return {Amp{}, Amp{0, -1}, Amp{0, 1}, Amp{}};
      case Gate::kZ:
        return {Amp{1, 0}, Amp{}, Amp{}, Amp{-1, 0}};
      case Gate::kH:
        return {Amp{kInvSqrt2, 0}, Amp{kInvSqrt2, 0}, Amp{kInvSqrt2, 0},
                Amp{-kInvSqrt2, 0}};
      case Gate::kS:
        return {Amp{1, 0}, Amp{}, Amp{}, kI1};
      case Gate::kSdg:
        return {Amp{1, 0}, Amp{}, Amp{}, Amp{0, -1}};
      case Gate::kT:
        return {Amp{1, 0}, Amp{}, Amp{}, Amp{kInvSqrt2, kInvSqrt2}};
      case Gate::kTdg:
        return {Amp{1, 0}, Amp{}, Amp{}, Amp{kInvSqrt2, -kInvSqrt2}};
      case Gate::kX90:
        return matrix1q(Gate::kRx, M_PI / 2);
      case Gate::kXm90:
        return matrix1q(Gate::kRx, -M_PI / 2);
      case Gate::kY90:
        return matrix1q(Gate::kRy, M_PI / 2);
      case Gate::kYm90:
        return matrix1q(Gate::kRy, -M_PI / 2);
      case Gate::kRx: {
        const double c = std::cos(angle / 2), s = std::sin(angle / 2);
        return {Amp{c, 0}, Amp{0, -s}, Amp{0, -s}, Amp{c, 0}};
      }
      case Gate::kRy: {
        const double c = std::cos(angle / 2), s = std::sin(angle / 2);
        return {Amp{c, 0}, Amp{-s, 0}, Amp{s, 0}, Amp{c, 0}};
      }
      case Gate::kRz: {
        const Amp em = std::exp(Amp{0, -angle / 2});
        const Amp ep = std::exp(Amp{0, angle / 2});
        return {em, Amp{}, Amp{}, ep};
      }
      default:
        break;
    }
    DHISQ_PANIC("matrix1q: not a single-qubit unitary: ", gateName(g));
}

std::array<Amp, 16>
matrix2q(Gate g, double angle)
{
    std::array<Amp, 16> m{};
    auto at = [&m](int r, int c) -> Amp & { return m[r * 4 + c]; };
    switch (g) {
      case Gate::kCZ:
        at(0, 0) = at(1, 1) = at(2, 2) = Amp{1, 0};
        at(3, 3) = Amp{-1, 0};
        return m;
      case Gate::kCNOT:
        // q0 = control (low bit), q1 = target, basis |q1 q0>.
        at(0, 0) = Amp{1, 0};
        at(1, 3) = Amp{1, 0};
        at(2, 2) = Amp{1, 0};
        at(3, 1) = Amp{1, 0};
        return m;
      case Gate::kSwap:
        at(0, 0) = at(3, 3) = Amp{1, 0};
        at(1, 2) = at(2, 1) = Amp{1, 0};
        return m;
      case Gate::kCPhase:
        at(0, 0) = at(1, 1) = at(2, 2) = Amp{1, 0};
        at(3, 3) = std::exp(Amp{0, angle});
        return m;
      default:
        break;
    }
    DHISQ_PANIC("matrix2q: not a two-qubit unitary: ", gateName(g));
}

} // namespace dhisq::q
