#include "quantum/noise.hpp"

#include <cmath>

namespace dhisq::q {

Cycle
ActivityTracker::totalLiveCycles() const
{
    Cycle total = 0;
    for (const auto &a : _activity)
        total += a.liveSpan();
    return total;
}

double
survivalProbability(const ActivityTracker &tracker, double t1_us)
{
    const double t1_ns = t1_us * 1000.0;
    double log_f = 0.0;
    for (const auto &a : tracker.all()) {
        if (!a.used())
            continue;
        log_f -= cyclesToNs(a.liveSpan()) / t1_ns;
    }
    return std::exp(log_f);
}

double
decoherenceInfidelity(const ActivityTracker &tracker, double t1_us)
{
    return 1.0 - survivalProbability(tracker, t1_us);
}

} // namespace dhisq::q
