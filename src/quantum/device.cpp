#include "quantum/device.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhisq::q {

QuantumDevice::QuantumDevice(const DeviceConfig &config)
    : _config(config), _rng(config.seed), _activity(config.num_qubits)
{
    if (_config.state_vector) {
        if (_config.backend == BackendKind::kTableau)
            _backend = std::make_unique<TableauState>(_config.num_qubits);
        else
            _backend = std::make_unique<StateVector>(_config.num_qubits);
    }
    if (fusionEnabled())
        _fused.resize(_config.num_qubits);
    bindStatHandles();
}

void
QuantumDevice::bindStatHandles()
{
    _n_nop = _stats.counterHandle("nop_actions");
    _n_1q = _stats.counterHandle("gates_1q");
    _n_2q = _stats.counterHandle("gates_2q");
    _n_half = _stats.counterHandle("half_booked");
    _n_viol = _stats.counterHandle("coincidence_violations");
    _n_meas = _stats.counterHandle("measurements");
    _n_prep = _stats.counterHandle("preps");
}

bool
QuantumDevice::fusionEnabled() const
{
    // The tableau consumes named Clifford gates, not matrices; fusion is
    // a dense-backend concern only.
    return _config.fusion == FusionMode::k1q && _backend &&
           _backend->kind() == BackendKind::kDense;
}

unsigned
QuantumDevice::pendingFusedGates() const
{
    return _fused_pending;
}

void
QuantumDevice::fuse1q(Gate g, double angle, QubitId qubit)
{
    FusedSlot &slot = _fused[qubit];
    const std::array<Amp, 4> g_m = matrix1q(g, angle);
    if (!slot.active) {
        slot.m = g_m;
        slot.active = true;
        ++_fused_pending;
        return;
    }
    // Later gate composes on the left: new = g_m * pending.
    const std::array<Amp, 4> a = slot.m;
    slot.m = {g_m[0] * a[0] + g_m[1] * a[2], g_m[0] * a[1] + g_m[1] * a[3],
              g_m[2] * a[0] + g_m[3] * a[2], g_m[2] * a[1] + g_m[3] * a[3]};
}

void
QuantumDevice::flushFused(QubitId qubit)
{
    if (_fused.empty() || !_fused[qubit].active)
        return;
    static_cast<StateVector &>(*_backend).applyMatrix1q(_fused[qubit].m,
                                                        qubit);
    _fused[qubit].active = false;
    --_fused_pending;
}

void
QuantumDevice::flushAllFused()
{
    if (_fused_pending == 0)
        return;
    for (QubitId q = 0; q < _fused.size() && _fused_pending > 0; ++q)
        flushFused(q);
}

StateVector &
QuantumDevice::state()
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no state vector");
    DHISQ_ASSERT(_backend->kind() == BackendKind::kDense,
                 "device runs the ", toString(_backend->kind()),
                 " backend; amplitude access needs --backend dense");
    return static_cast<StateVector &>(*_backend);
}

const StateVector &
QuantumDevice::state() const
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no state vector");
    DHISQ_ASSERT(_backend->kind() == BackendKind::kDense,
                 "device runs the ", toString(_backend->kind()),
                 " backend; amplitude access needs --backend dense");
    return static_cast<const StateVector &>(*_backend);
}

Backend &
QuantumDevice::backend()
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no backend");
    return *_backend;
}

const Backend &
QuantumDevice::backend() const
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no backend");
    return *_backend;
}

void
QuantumDevice::reset()
{
    _rng.reseed(_config.seed);
    if (_backend)
        _backend->reset();
    _activity.resize(_config.num_qubits);
    _stats.clear();
    bindStatHandles(); // clear() destroyed the cached counter slots
    _pending_halves.clear();
    _violations.clear();
    _measurements.clear();
    // Buffered fused gates are dynamic state: drop them, the backend is
    // back in |0...0>.
    for (FusedSlot &slot : _fused)
        slot.active = false;
    _fused_pending = 0;
}

void
QuantumDevice::trigger(const Action &action, Cycle cycle)
{
    switch (action.kind) {
      case ActionKind::Nop:
        ++*_n_nop;
        return;

      case ActionKind::Gate1q: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        _activity.record(action.q0, cycle, _config.gate1q_cycles);
        ++*_n_1q;
        if (!_fused.empty())
            fuse1q(action.gate, action.angle, action.q0);
        else if (_backend)
            _backend->apply1q(action.gate, action.q0, action.angle);
        return;
      }

      case ActionKind::Gate2qWhole: {
        apply2q(action.gate, action.angle, action.q0, action.q1, cycle);
        return;
      }

      case ActionKind::Gate2qHalf: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits &&
                         action.q1 < _config.num_qubits,
                     "qubit out of range");
        const auto key = std::minmax(action.q0, action.q1);
        auto it = _pending_halves.find(key);
        if (it == _pending_halves.end()) {
            _pending_halves.emplace(
                key, PendingHalf{cycle, action.gate, action.angle,
                                 action.q0});
            ++*_n_half;
            return;
        }
        const PendingHalf first = it->second;
        _pending_halves.erase(it);
        if (first.cycle != cycle) {
            _violations.push_back(CoincidenceViolation{
                key.first, key.second, first.cycle, cycle,
                "two-qubit halves committed in different cycles"});
            ++*_n_viol;
        }
        // The gate is applied at the later half's commit time either way;
        // a violation marks the result as physically invalid. The unitary
        // is oriented by the first half's *declared* operand order (both
        // halves carry the same canonical order) — canonicalizing to the
        // (min, max) pair key here would silently flip asymmetric gates
        // such as a CNOT whose control id exceeds its target id.
        const QubitId partner =
            first.own == key.first ? key.second : key.first;
        apply2q(first.gate, first.angle, first.own, partner,
                std::max(first.cycle, cycle));
        return;
      }

      case ActionKind::MeasureStart: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        doMeasure(action.q0, cycle);
        return;
      }

      case ActionKind::PrepZ: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        _activity.record(action.q0, cycle, _config.measure_cycles);
        ++*_n_prep;
        flushAllFused();
        if (_backend)
            _backend->resetQubit(action.q0, _rng);
        return;
      }
    }
}

void
QuantumDevice::apply2q(Gate gate, double angle, QubitId q0, QubitId q1,
                       Cycle cycle)
{
    DHISQ_ASSERT(q0 < _config.num_qubits && q1 < _config.num_qubits,
                 "qubit out of range");
    _activity.record(q0, cycle, _config.gate2q_cycles);
    _activity.record(q1, cycle, _config.gate2q_cycles);
    ++*_n_2q;
    flushFused(q0);
    flushFused(q1);
    if (_backend)
        _backend->apply2q(gate, q0, q1, angle);
}

void
QuantumDevice::doMeasure(QubitId qubit, Cycle cycle)
{
    _activity.record(qubit, cycle, _config.measure_cycles);
    ++*_n_meas;
    flushAllFused();
    int bit;
    if (_backend) {
        bit = _backend->measure(qubit, _rng);
    } else {
        bit = _rng.coin(_config.stochastic_p1) ? 1 : 0;
    }
    const Cycle ready = cycle + _config.measure_cycles;
    _measurements.push_back(MeasurementRecord{qubit, bit, cycle, ready});
    if (_on_result)
        _on_result(qubit, bit, ready);
}

std::size_t
QuantumDevice::finalize()
{
    flushAllFused();
    for (const auto &kv : _pending_halves) {
        _violations.push_back(CoincidenceViolation{
            kv.first.first, kv.first.second, kv.second.cycle, kNoCycle,
            "two-qubit half never matched by its partner"});
        ++*_n_viol;
    }
    _pending_halves.clear();
    return _violations.size();
}

} // namespace dhisq::q
