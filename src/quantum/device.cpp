#include "quantum/device.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhisq::q {

QuantumDevice::QuantumDevice(const DeviceConfig &config)
    : _config(config), _rng(config.seed), _activity(config.num_qubits)
{
    if (_config.state_vector) {
        if (_config.backend == BackendKind::kTableau)
            _backend = std::make_unique<TableauState>(_config.num_qubits);
        else
            _backend = std::make_unique<StateVector>(_config.num_qubits);
    }
}

StateVector &
QuantumDevice::state()
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no state vector");
    DHISQ_ASSERT(_backend->kind() == BackendKind::kDense,
                 "device runs the ", toString(_backend->kind()),
                 " backend; amplitude access needs --backend dense");
    return static_cast<StateVector &>(*_backend);
}

const StateVector &
QuantumDevice::state() const
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no state vector");
    DHISQ_ASSERT(_backend->kind() == BackendKind::kDense,
                 "device runs the ", toString(_backend->kind()),
                 " backend; amplitude access needs --backend dense");
    return static_cast<const StateVector &>(*_backend);
}

Backend &
QuantumDevice::backend()
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no backend");
    return *_backend;
}

const Backend &
QuantumDevice::backend() const
{
    DHISQ_ASSERT(_backend, "device is in stochastic mode; no backend");
    return *_backend;
}

void
QuantumDevice::reset()
{
    _rng.reseed(_config.seed);
    if (_backend)
        _backend->reset();
    _activity.resize(_config.num_qubits);
    _stats.clear();
    _pending_halves.clear();
    _violations.clear();
    _measurements.clear();
}

void
QuantumDevice::trigger(const Action &action, Cycle cycle)
{
    switch (action.kind) {
      case ActionKind::Nop:
        _stats.inc("nop_actions");
        return;

      case ActionKind::Gate1q: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        _activity.record(action.q0, cycle, _config.gate1q_cycles);
        _stats.inc("gates_1q");
        if (_backend)
            _backend->apply1q(action.gate, action.q0, action.angle);
        return;
      }

      case ActionKind::Gate2qWhole: {
        apply2q(action.gate, action.angle, action.q0, action.q1, cycle);
        return;
      }

      case ActionKind::Gate2qHalf: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits &&
                         action.q1 < _config.num_qubits,
                     "qubit out of range");
        const auto key = std::minmax(action.q0, action.q1);
        auto it = _pending_halves.find(key);
        if (it == _pending_halves.end()) {
            _pending_halves.emplace(
                key, PendingHalf{cycle, action.gate, action.angle,
                                 action.q0});
            _stats.inc("half_booked");
            return;
        }
        const PendingHalf first = it->second;
        _pending_halves.erase(it);
        if (first.cycle != cycle) {
            _violations.push_back(CoincidenceViolation{
                key.first, key.second, first.cycle, cycle,
                "two-qubit halves committed in different cycles"});
            _stats.inc("coincidence_violations");
        }
        // The gate is applied at the later half's commit time either way;
        // a violation marks the result as physically invalid. The unitary
        // is oriented by the first half's *declared* operand order (both
        // halves carry the same canonical order) — canonicalizing to the
        // (min, max) pair key here would silently flip asymmetric gates
        // such as a CNOT whose control id exceeds its target id.
        const QubitId partner =
            first.own == key.first ? key.second : key.first;
        apply2q(first.gate, first.angle, first.own, partner,
                std::max(first.cycle, cycle));
        return;
      }

      case ActionKind::MeasureStart: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        doMeasure(action.q0, cycle);
        return;
      }

      case ActionKind::PrepZ: {
        DHISQ_ASSERT(action.q0 < _config.num_qubits, "qubit out of range");
        _activity.record(action.q0, cycle, _config.measure_cycles);
        _stats.inc("preps");
        if (_backend)
            _backend->resetQubit(action.q0, _rng);
        return;
      }
    }
}

void
QuantumDevice::apply2q(Gate gate, double angle, QubitId q0, QubitId q1,
                       Cycle cycle)
{
    DHISQ_ASSERT(q0 < _config.num_qubits && q1 < _config.num_qubits,
                 "qubit out of range");
    _activity.record(q0, cycle, _config.gate2q_cycles);
    _activity.record(q1, cycle, _config.gate2q_cycles);
    _stats.inc("gates_2q");
    if (_backend)
        _backend->apply2q(gate, q0, q1, angle);
}

void
QuantumDevice::doMeasure(QubitId qubit, Cycle cycle)
{
    _activity.record(qubit, cycle, _config.measure_cycles);
    _stats.inc("measurements");
    int bit;
    if (_backend) {
        bit = _backend->measure(qubit, _rng);
    } else {
        bit = _rng.coin(_config.stochastic_p1) ? 1 : 0;
    }
    const Cycle ready = cycle + _config.measure_cycles;
    _measurements.push_back(MeasurementRecord{qubit, bit, cycle, ready});
    if (_on_result)
        _on_result(qubit, bit, ready);
}

std::size_t
QuantumDevice::finalize()
{
    for (const auto &kv : _pending_halves) {
        _violations.push_back(CoincidenceViolation{
            kv.first.first, kv.first.second, kv.second.cycle, kNoCycle,
            "two-qubit half never matched by its partner"});
        _stats.inc("coincidence_violations");
    }
    _pending_halves.clear();
    return _violations.size();
}

} // namespace dhisq::q
