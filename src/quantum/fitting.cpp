#include "quantum/fitting.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhisq::q {

ExpFit
fitExponentialDecay(const std::vector<double> &x,
                    const std::vector<double> &y)
{
    DHISQ_ASSERT(x.size() == y.size() && x.size() >= 2,
                 "fitExponentialDecay: need >= 2 samples");
    // Linear regression on ln(y) = ln(a) - x / tau over positive samples.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (y[i] <= 1e-12)
            continue;
        const double ly = std::log(y[i]);
        sx += x[i];
        sy += ly;
        sxx += x[i] * x[i];
        sxy += x[i] * ly;
        ++n;
    }
    DHISQ_ASSERT(n >= 2, "fitExponentialDecay: too few positive samples");
    const double denom = n * sxx - sx * sx;
    const double slope = (n * sxy - sx * sy) / denom;
    const double intercept = (sy - slope * sx) / n;

    ExpFit fit;
    fit.amplitude = std::exp(intercept);
    fit.tau = (slope < 0) ? -1.0 / slope : 0.0;

    std::vector<double> model(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        model[i] = fit.amplitude * std::exp(slope * x[i]);
    fit.rms_error = rmsError(y, model);
    return fit;
}

double
fitPeak(const std::vector<double> &x, const std::vector<double> &y)
{
    DHISQ_ASSERT(x.size() == y.size() && !x.empty(), "fitPeak: empty input");
    std::size_t best = 0;
    for (std::size_t i = 1; i < y.size(); ++i) {
        if (y[i] > y[best])
            best = i;
    }
    if (best == 0 || best + 1 == y.size())
        return x[best];
    // Parabolic interpolation through the maximum and its neighbours.
    const double y0 = y[best - 1], y1 = y[best], y2 = y[best + 1];
    const double denom = y0 - 2 * y1 + y2;
    if (std::abs(denom) < 1e-15)
        return x[best];
    const double delta = 0.5 * (y0 - y2) / denom;
    const double step = (x[best + 1] - x[best - 1]) / 2.0;
    return x[best] + delta * step;
}

namespace {

double
rabiSse(const std::vector<double> &x, const std::vector<double> &y,
        double omega)
{
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double m = 0.5 * (1.0 - std::cos(omega * x[i]));
        const double d = y[i] - m;
        sse += d * d;
    }
    return sse;
}

} // namespace

RabiFit
fitRabi(const std::vector<double> &x, const std::vector<double> &y,
        double omega_min, double omega_max)
{
    DHISQ_ASSERT(x.size() == y.size() && x.size() >= 4,
                 "fitRabi: need >= 4 samples");
    DHISQ_ASSERT(omega_max > omega_min && omega_min > 0,
                 "fitRabi: bad search range");

    // Coarse grid.
    const int grid = 2000;
    double best_omega = omega_min;
    double best_sse = rabiSse(x, y, omega_min);
    for (int i = 1; i <= grid; ++i) {
        const double w =
            omega_min + (omega_max - omega_min) * double(i) / grid;
        const double sse = rabiSse(x, y, w);
        if (sse < best_sse) {
            best_sse = sse;
            best_omega = w;
        }
    }

    // Golden-section refinement around the best grid point.
    const double span = (omega_max - omega_min) / grid;
    double lo = best_omega - 2 * span;
    double hi = best_omega + 2 * span;
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    for (int it = 0; it < 60; ++it) {
        const double m1 = hi - phi * (hi - lo);
        const double m2 = lo + phi * (hi - lo);
        if (rabiSse(x, y, m1) < rabiSse(x, y, m2))
            hi = m2;
        else
            lo = m1;
    }

    RabiFit fit;
    fit.omega = (lo + hi) / 2.0;
    std::vector<double> model(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        model[i] = 0.5 * (1.0 - std::cos(fit.omega * x[i]));
    fit.rms_error = rmsError(y, model);
    return fit;
}

double
rmsError(const std::vector<double> &y, const std::vector<double> &model)
{
    DHISQ_ASSERT(y.size() == model.size() && !y.empty(),
                 "rmsError: size mismatch");
    double sse = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double d = y[i] - model[i];
        sse += d * d;
    }
    return std::sqrt(sse / y.size());
}

} // namespace dhisq::q
