/**
 * @file
 * Quantum device substrate.
 *
 * The paper's leaf controllers drive a 66-qubit superconducting chip; our
 * substitution is a QuantumDevice that consumes *actions* (decoded from
 * codewords by each board's binding table — the port/codeword indirection of
 * Insight #3) and either:
 *
 *   - applies them to a dense state vector (logical-correctness mode, small
 *     qubit counts), or
 *   - only tracks timing/activity with seeded stochastic measurement
 *     outcomes (large-benchmark mode, 100-1200 qubits).
 *
 * The device is also the arbiter of the paper's core correctness property:
 * a two-qubit gate is physically valid only when both halves (one from each
 * controller) commit in the SAME cycle. Mismatches are recorded as
 * coincidence violations; tests assert zero under BISP and non-zero under a
 * deliberately mis-calibrated link.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "quantum/backend.hpp"
#include "quantum/gates.hpp"
#include "quantum/noise.hpp"
#include "quantum/state_vector.hpp"
#include "quantum/tableau.hpp"

namespace dhisq::q {

/** What a committed codeword means physically. */
enum class ActionKind : std::uint8_t {
    Nop,          ///< Marker/no-op (e.g. scope trigger).
    Gate1q,       ///< Single-qubit gate on q0.
    Gate2qHalf,   ///< One controller's half of a two-qubit gate on (q0,q1).
    Gate2qWhole,  ///< Both halves from one controller (same-board pair).
    MeasureStart, ///< Readout acquisition start on q0.
    PrepZ,        ///< Active reset of q0.
};

/** A decoded physical action. */
struct Action
{
    ActionKind kind = ActionKind::Nop;
    Gate gate = Gate::kI;
    double angle = 0.0;
    QubitId q0 = kNoQubit;
    QubitId q1 = kNoQubit;

    static Action nop() { return Action{}; }

    static Action
    gate1q(Gate g, QubitId q, double angle = 0.0)
    {
        return Action{ActionKind::Gate1q, g, angle, q, kNoQubit};
    }

    /**
     * One controller's half of a cross-controller two-qubit gate. Both
     * halves of a pair must declare the SAME canonical operand order
     * (q0 = the gate's first operand) — the device applies the unitary
     * in the declared orientation, which matters for asymmetric gates
     * like CNOT. Which qubit a controller drives is determined by the
     * (controller, port) the codeword is bound on, not by this payload.
     */
    static Action
    gate2qHalf(Gate g, QubitId q0, QubitId q1, double angle = 0.0)
    {
        return Action{ActionKind::Gate2qHalf, g, angle, q0, q1};
    }

    static Action
    gate2qWhole(Gate g, QubitId q0, QubitId q1, double angle = 0.0)
    {
        return Action{ActionKind::Gate2qWhole, g, angle, q0, q1};
    }

    static Action
    measure(QubitId q)
    {
        return Action{ActionKind::MeasureStart, Gate::kMeasure, 0.0, q,
                      kNoQubit};
    }

    static Action
    prep(QubitId q)
    {
        return Action{ActionKind::PrepZ, Gate::kPrepZ, 0.0, q, kNoQubit};
    }
};

/** A detected two-qubit coincidence failure. */
struct CoincidenceViolation
{
    QubitId q0 = kNoQubit;
    QubitId q1 = kNoQubit;
    Cycle first_half = 0;
    Cycle second_half = 0;   ///< kNoCycle when the partner never arrived.
    std::string detail;
};

/** Configuration of the device substrate. */
struct DeviceConfig
{
    unsigned num_qubits = 2;
    /** Run a functional backend (true) or stochastic timing mode. */
    bool state_vector = true;
    /** Which functional backend to instantiate (when state_vector). The
     *  tier selector resolves this from the compiled program; kTableau is
     *  only valid for Clifford-only programs. */
    BackendKind backend = BackendKind::kDense;
    /** Lazy 1q gate-fusion tier (dense backend only; see FusionMode). */
    FusionMode fusion = FusionMode::kOff;
    /** Seed for measurement outcome draws. */
    std::uint64_t seed = 1;
    /** P(result == 1) for stochastic-mode measurements. */
    double stochastic_p1 = 0.5;
    /** Operation durations in cycles. */
    Cycle gate1q_cycles = 5;   // 20 ns
    Cycle gate2q_cycles = 10;  // 40 ns
    Cycle measure_cycles = 75; // 300 ns
};

/**
 * The shared quantum device all boards act upon.
 */
class QuantumDevice
{
  public:
    /** (qubit, outcome bit, cycle when the discriminated result is ready) */
    using ResultCallback =
        std::function<void(QubitId, int, Cycle)>;

    explicit QuantumDevice(const DeviceConfig &config);

    const DeviceConfig &config() const { return _config; }

    /** Wire the measurement-result sink (the runtime routes to MsgU). */
    void setResultCallback(ResultCallback cb) { _on_result = std::move(cb); }

    /** Commit an action at wall-clock `cycle`. */
    void trigger(const Action &action, Cycle cycle);

    /**
     * End-of-run check: any unmatched two-qubit half becomes a violation.
     * @return number of violations accumulated over the whole run.
     */
    std::size_t finalize();

    const std::vector<CoincidenceViolation> &violations() const
    {
        return _violations;
    }

    /** Direct access for correctness assertions (dense backend only). */
    StateVector &state();
    const StateVector &state() const;
    bool hasState() const { return _backend != nullptr; }

    /** The functional backend (any kind); asserts functional mode. */
    Backend &backend();
    const Backend &backend() const;

    const ActivityTracker &activity() const { return _activity; }
    const StatSet &stats() const { return _stats; }

    /** All measurement outcomes in commit order (qubit, bit, cycle). */
    struct MeasurementRecord
    {
        QubitId qubit;
        int bit;
        Cycle start;
        Cycle ready;
    };
    const std::vector<MeasurementRecord> &measurements() const
    {
        return _measurements;
    }

    /** Reset dynamic state (keeps configuration and wiring). */
    void reset();

    /**
     * Number of qubits with a buffered (not yet applied) fused 1q matrix.
     * Always 0 when fusion is off or at a flush point (after a 2q gate on
     * the qubit, a measurement, a prep, or finalize()). Note that with
     * fusion on, state() reflects buffered gates only after a flush.
     */
    unsigned pendingFusedGates() const;

  private:
    void apply2q(Gate gate, double angle, QubitId q0, QubitId q1,
                 Cycle cycle);
    void doMeasure(QubitId qubit, Cycle cycle);

    /** True when the lazy 1q-fusion tier is active on this device. */
    bool fusionEnabled() const;
    /** Compose a 1q gate into the qubit's pending 2x2 matrix. */
    void fuse1q(Gate g, double angle, QubitId qubit);
    /** Apply and clear one qubit's pending matrix, if any. */
    void flushFused(QubitId qubit);
    /** Apply and clear every pending matrix (measure/prep/finalize). */
    void flushAllFused();

    /** Re-point the hot-loop counter slots after _stats is cleared. */
    void bindStatHandles();

    DeviceConfig _config;
    Rng _rng;
    std::unique_ptr<Backend> _backend;
    ActivityTracker _activity;
    StatSet _stats;
    ResultCallback _on_result;

    // Cached counter slots: trigger() is the per-action hot path, and
    // string-keyed Stats::inc lookups per gate were measurable. Bound in
    // the constructor and re-bound by reset() (clear() invalidates).
    std::uint64_t *_n_nop = nullptr;
    std::uint64_t *_n_1q = nullptr;
    std::uint64_t *_n_2q = nullptr;
    std::uint64_t *_n_half = nullptr;
    std::uint64_t *_n_viol = nullptr;
    std::uint64_t *_n_meas = nullptr;
    std::uint64_t *_n_prep = nullptr;

    /** Pending fused 1q matrix per qubit (sized only when fusion runs). */
    struct FusedSlot
    {
        std::array<Amp, 4> m;
        bool active = false;
    };
    std::vector<FusedSlot> _fused;
    unsigned _fused_pending = 0;

    /** Pending 2q half keyed by unordered qubit pair. */
    struct PendingHalf
    {
        Cycle cycle;
        Gate gate;
        double angle;
        QubitId own; ///< the half's declared first operand (q0)
    };
    std::map<std::pair<QubitId, QubitId>, PendingHalf> _pending_halves;

    std::vector<CoincidenceViolation> _violations;
    std::vector<MeasurementRecord> _measurements;
};

} // namespace dhisq::q
