#include "quantum/state_vector.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhisq::q {

StateVector::StateVector(unsigned num_qubits) : _num_qubits(num_qubits)
{
    DHISQ_ASSERT(num_qubits <= 26, "state vector too large: ", num_qubits,
                 " qubits");
    _amps.assign(std::size_t(1) << num_qubits, Amp{});
    _amps[0] = Amp{1.0, 0.0};
}

void
StateVector::reset()
{
    std::fill(_amps.begin(), _amps.end(), Amp{});
    _amps[0] = Amp{1.0, 0.0};
}

double
StateVector::probability(std::size_t basis) const
{
    return std::norm(_amps[basis]);
}

double
StateVector::probabilityOfOne(QubitId qubit) const
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    double p = 0.0;
    for (std::size_t i = 0; i < _amps.size(); ++i) {
        if (i & bit)
            p += std::norm(_amps[i]);
    }
    return p;
}

void
StateVector::apply1q(Gate g, QubitId qubit, double angle)
{
    applyMatrix1q(matrix1q(g, angle), qubit);
}

void
StateVector::applyMatrix1q(const std::array<Amp, 4> &m, QubitId qubit)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    // Blocked iteration: the inner loop walks `bit` contiguous pairs with
    // no per-index branch, so the compiler can vectorize the complex
    // multiply-adds across amplitudes.
    Amp *const amps = _amps.data();
    for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
        for (std::size_t off = 0; off < bit; ++off) {
            const std::size_t i0 = base + off;
            const Amp a0 = amps[i0];
            const Amp a1 = amps[i0 + bit];
            amps[i0] = m[0] * a0 + m[1] * a1;
            amps[i0 + bit] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
StateVector::apply2q(Gate g, QubitId q0, QubitId q1, double angle)
{
    applyMatrix2q(matrix2q(g, angle), q0, q1);
}

void
StateVector::applyMatrix2q(const std::array<Amp, 16> &m, QubitId q0,
                           QubitId q1)
{
    DHISQ_ASSERT(q0 < _num_qubits && q1 < _num_qubits && q0 != q1,
                 "bad qubit pair ", q0, ",", q1);
    const std::size_t b0 = std::size_t(1) << q0;
    const std::size_t b1 = std::size_t(1) << q1;
    const std::size_t bl = b0 < b1 ? b0 : b1;
    const std::size_t bh = b0 < b1 ? b1 : b0;
    // Blocked over the two stride bits: the innermost loop runs `bl`
    // contiguous, branch-free quads so the 4x4 apply vectorizes.
    Amp *const amps = _amps.data();
    for (std::size_t hi = 0; hi < _amps.size(); hi += 2 * bh) {
        for (std::size_t mid = hi; mid < hi + bh; mid += 2 * bl) {
            for (std::size_t i = mid; i < mid + bl; ++i) {
                // Gather the four basis states in |q1 q0> order.
                const Amp v[4] = {amps[i], amps[i | b0], amps[i | b1],
                                  amps[i | b0 | b1]};
                Amp out[4] = {};
                for (int r = 0; r < 4; ++r) {
                    for (int c = 0; c < 4; ++c)
                        out[r] += m[r * 4 + c] * v[c];
                }
                amps[i] = out[0];
                amps[i | b0] = out[1];
                amps[i | b1] = out[2];
                amps[i | b0 | b1] = out[3];
            }
        }
    }
}

int
StateVector::measure(QubitId qubit, Rng &rng)
{
    const double p1 = probabilityOfOne(qubit);
    const int outcome = rng.coin(p1) ? 1 : 0;
    postselect(qubit, outcome);
    return outcome;
}

double
StateVector::postselect(QubitId qubit, int outcome)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    const double p1 = probabilityOfOne(qubit);
    const double p = outcome ? p1 : 1.0 - p1;
    DHISQ_ASSERT(p > 1e-12, "postselecting a zero-probability branch");
    const double scale = 1.0 / std::sqrt(p);
    for (std::size_t i = 0; i < _amps.size(); ++i) {
        const bool is_one = (i & bit) != 0;
        if (is_one == (outcome != 0))
            _amps[i] *= scale;
        else
            _amps[i] = Amp{};
    }
    return p;
}

void
StateVector::resetQubit(QubitId qubit, Rng &rng)
{
    if (measure(qubit, rng) == 1)
        apply1q(Gate::kX, qubit);
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    const double overlap = overlapMagnitude(other);
    return overlap * overlap;
}

double
StateVector::overlapMagnitude(const StateVector &other) const
{
    DHISQ_ASSERT(other._amps.size() == _amps.size(),
                 "dimension mismatch in overlap");
    Amp acc{};
    for (std::size_t i = 0; i < _amps.size(); ++i)
        acc += std::conj(_amps[i]) * other._amps[i];
    return std::abs(acc);
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const auto &a : _amps)
        n += std::norm(a);
    return std::sqrt(n);
}

std::size_t
StateVector::sampleBasis(Rng &rng) const
{
    double r = rng.uniform();
    for (std::size_t i = 0; i < _amps.size(); ++i) {
        r -= std::norm(_amps[i]);
        if (r <= 0.0)
            return i;
    }
    return _amps.size() - 1;
}

} // namespace dhisq::q
