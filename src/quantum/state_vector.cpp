#include "quantum/state_vector.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhisq::q {

StateVector::StateVector(unsigned num_qubits) : _num_qubits(num_qubits)
{
    DHISQ_ASSERT(num_qubits <= 26, "state vector too large: ", num_qubits,
                 " qubits");
    _amps.assign(std::size_t(1) << num_qubits, Amp{});
    _amps[0] = Amp{1.0, 0.0};
}

void
StateVector::reset()
{
    std::fill(_amps.begin(), _amps.end(), Amp{});
    _amps[0] = Amp{1.0, 0.0};
}

double
StateVector::probability(std::size_t basis) const
{
    return std::norm(_amps[basis]);
}

double
StateVector::probabilityOfOne(QubitId qubit) const
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    // Blocked branch-free reduction: each block of `bit` contiguous
    // one-amplitudes is summed without a per-index test. The elements are
    // visited in the same ascending order as the old branchy loop, into
    // the same single accumulator, so the result is bit-identical.
    double p = 0.0;
    const Amp *const amps = _amps.data();
    for (std::size_t base = bit; base < _amps.size(); base += 2 * bit) {
        for (std::size_t off = 0; off < bit; ++off)
            p += std::norm(amps[base + off]);
    }
    return p;
}

void
StateVector::apply1q(Gate g, QubitId qubit, double angle)
{
    switch (classifyGate(g)) {
      case GateClass::kDiagonal: {
        const auto m = matrix1q(g, angle);
        applyDiag1q(m[0], m[3], qubit);
        return;
      }
      case GateClass::kPermutation:
        applyPermX(qubit);
        return;
      default:
        applyMatrix1q(matrix1q(g, angle), qubit);
        return;
    }
}

void
StateVector::applyDiag1q(Amp d0, Amp d1, QubitId qubit)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    const Amp kOne{1.0, 0.0};
    Amp *const amps = _amps.data();
    if (d0 == kOne && d1 == kOne)
        return; // identity
    if (d0 == kOne) {
        // Phase lives on the 1-half only (Z/S/T/...): touch half the state.
        for (std::size_t base = bit; base < _amps.size(); base += 2 * bit) {
            for (std::size_t off = 0; off < bit; ++off)
                amps[base + off] *= d1;
        }
        return;
    }
    // Both halves carry phases (Rz): still no amplitude mixing.
    for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
        for (std::size_t off = 0; off < bit; ++off) {
            amps[base + off] *= d0;
            amps[base + off + bit] *= d1;
        }
    }
}

void
StateVector::applyPermX(QubitId qubit)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    Amp *const amps = _amps.data();
    for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
        for (std::size_t off = 0; off < bit; ++off)
            std::swap(amps[base + off], amps[base + off + bit]);
    }
}

void
StateVector::applyMatrix1q(const std::array<Amp, 4> &m, QubitId qubit)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    // Blocked iteration: the inner loop walks `bit` contiguous pairs with
    // no per-index branch, so the compiler can vectorize the complex
    // multiply-adds across amplitudes.
    Amp *const amps = _amps.data();
    for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
        for (std::size_t off = 0; off < bit; ++off) {
            const std::size_t i0 = base + off;
            const Amp a0 = amps[i0];
            const Amp a1 = amps[i0 + bit];
            amps[i0] = m[0] * a0 + m[1] * a1;
            amps[i0 + bit] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
StateVector::apply2q(Gate g, QubitId q0, QubitId q1, double angle)
{
    switch (classifyGate(g)) {
      case GateClass::kDiagonal:
        // CZ/CPhase: the only non-unit entry is the |11> phase.
        applyDiag2q(matrix2q(g, angle)[15], q0, q1);
        return;
      case GateClass::kPermutation:
        applyPermSwap(q0, q1);
        return;
      case GateClass::kControlled:
        // CNOT: q0 is the control (matrix2q convention), q1 the target.
        applyControlled1q(matrix1q(Gate::kX), q0, q1);
        return;
      default:
        applyMatrix2q(matrix2q(g, angle), q0, q1);
        return;
    }
}

void
StateVector::applyDiag2q(Amp d11, QubitId q0, QubitId q1)
{
    DHISQ_ASSERT(q0 < _num_qubits && q1 < _num_qubits && q0 != q1,
                 "bad qubit pair ", q0, ",", q1);
    const std::size_t b0 = std::size_t(1) << q0;
    const std::size_t b1 = std::size_t(1) << q1;
    const std::size_t bl = b0 < b1 ? b0 : b1;
    const std::size_t bh = b0 < b1 ? b1 : b0;
    // Only the |11> quarter of the state picks up the phase; the inner
    // loop walks `bl` contiguous amplitudes with both bits set.
    Amp *const amps = _amps.data();
    for (std::size_t hi = 0; hi < _amps.size(); hi += 2 * bh) {
        for (std::size_t mid = hi; mid < hi + bh; mid += 2 * bl) {
            for (std::size_t i = mid; i < mid + bl; ++i)
                amps[i + bh + bl] *= d11;
        }
    }
}

void
StateVector::applyPermSwap(QubitId q0, QubitId q1)
{
    DHISQ_ASSERT(q0 < _num_qubits && q1 < _num_qubits && q0 != q1,
                 "bad qubit pair ", q0, ",", q1);
    const std::size_t b0 = std::size_t(1) << q0;
    const std::size_t b1 = std::size_t(1) << q1;
    const std::size_t bl = b0 < b1 ? b0 : b1;
    const std::size_t bh = b0 < b1 ? b1 : b0;
    // SWAP exchanges |01> and |10> amplitudes — pure moves, no arithmetic.
    Amp *const amps = _amps.data();
    for (std::size_t hi = 0; hi < _amps.size(); hi += 2 * bh) {
        for (std::size_t mid = hi; mid < hi + bh; mid += 2 * bl) {
            for (std::size_t i = mid; i < mid + bl; ++i)
                std::swap(amps[i + bl], amps[i + bh]);
        }
    }
}

void
StateVector::applyControlled1q(const std::array<Amp, 4> &m, QubitId control,
                               QubitId target)
{
    DHISQ_ASSERT(control < _num_qubits && target < _num_qubits &&
                     control != target,
                 "bad qubit pair ", control, ",", target);
    const std::size_t cb = std::size_t(1) << control;
    const std::size_t tb = std::size_t(1) << target;
    const std::size_t bl = cb < tb ? cb : tb;
    const std::size_t bh = cb < tb ? tb : cb;
    const bool is_x = m[0] == Amp{} && m[3] == Amp{} &&
                      m[1] == Amp{1.0, 0.0} && m[2] == Amp{1.0, 0.0};
    // Only the control-set half of the state participates; `i` walks the
    // indices with neither stride bit set, so i|cb selects that half.
    // The X case (CNOT) degenerates to pure amplitude moves.
    Amp *const amps = _amps.data();
    for (std::size_t hi = 0; hi < _amps.size(); hi += 2 * bh) {
        for (std::size_t mid = hi; mid < hi + bh; mid += 2 * bl) {
            if (is_x) {
                for (std::size_t i = mid; i < mid + bl; ++i)
                    std::swap(amps[i | cb], amps[i | cb | tb]);
                continue;
            }
            for (std::size_t i = mid; i < mid + bl; ++i) {
                const std::size_t i0 = i | cb;
                const Amp a0 = amps[i0];
                const Amp a1 = amps[i0 | tb];
                amps[i0] = m[0] * a0 + m[1] * a1;
                amps[i0 | tb] = m[2] * a0 + m[3] * a1;
            }
        }
    }
}

void
StateVector::applyMatrix2q(const std::array<Amp, 16> &m, QubitId q0,
                           QubitId q1)
{
    DHISQ_ASSERT(q0 < _num_qubits && q1 < _num_qubits && q0 != q1,
                 "bad qubit pair ", q0, ",", q1);
    const std::size_t b0 = std::size_t(1) << q0;
    const std::size_t b1 = std::size_t(1) << q1;
    const std::size_t bl = b0 < b1 ? b0 : b1;
    const std::size_t bh = b0 < b1 ? b1 : b0;
    // Blocked over the two stride bits: the innermost loop runs `bl`
    // contiguous, branch-free quads so the 4x4 apply vectorizes.
    Amp *const amps = _amps.data();
    for (std::size_t hi = 0; hi < _amps.size(); hi += 2 * bh) {
        for (std::size_t mid = hi; mid < hi + bh; mid += 2 * bl) {
            for (std::size_t i = mid; i < mid + bl; ++i) {
                // Gather the four basis states in |q1 q0> order.
                const Amp v[4] = {amps[i], amps[i | b0], amps[i | b1],
                                  amps[i | b0 | b1]};
                Amp out[4] = {};
                for (int r = 0; r < 4; ++r) {
                    for (int c = 0; c < 4; ++c)
                        out[r] += m[r * 4 + c] * v[c];
                }
                amps[i] = out[0];
                amps[i | b0] = out[1];
                amps[i | b1] = out[2];
                amps[i | b0 | b1] = out[3];
            }
        }
    }
}

int
StateVector::measure(QubitId qubit, Rng &rng)
{
    // Single pass over the state per phase: one p1 reduction (reused by
    // the collapse instead of recomputed), one collapse sweep.
    const double p1 = probabilityOfOne(qubit);
    const int outcome = rng.coin(p1) ? 1 : 0;
    collapse(qubit, outcome, p1, /*fold_x=*/false);
    return outcome;
}

double
StateVector::postselect(QubitId qubit, int outcome)
{
    const double p1 = probabilityOfOne(qubit);
    collapse(qubit, outcome, p1, /*fold_x=*/false);
    return outcome ? p1 : 1.0 - p1;
}

void
StateVector::resetQubit(QubitId qubit, Rng &rng)
{
    // measure + conditional X, fused: the |1> branch collapses straight
    // into the 0-half slots, so the corrective X costs no extra pass.
    const double p1 = probabilityOfOne(qubit);
    const int outcome = rng.coin(p1) ? 1 : 0;
    collapse(qubit, outcome, p1, /*fold_x=*/true);
}

void
StateVector::collapse(QubitId qubit, int outcome, double p1, bool fold_x)
{
    DHISQ_ASSERT(qubit < _num_qubits, "qubit out of range");
    const std::size_t bit = std::size_t(1) << qubit;
    const double p = outcome ? p1 : 1.0 - p1;
    DHISQ_ASSERT(p > 1e-12, "postselecting a zero-probability branch");
    const double scale = 1.0 / std::sqrt(p);
    Amp *const amps = _amps.data();
    if (outcome && fold_x) {
        for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
            for (std::size_t off = 0; off < bit; ++off) {
                amps[base + off] = amps[base + off + bit] * scale;
                amps[base + off + bit] = Amp{};
            }
        }
    } else if (outcome) {
        for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
            for (std::size_t off = 0; off < bit; ++off) {
                amps[base + off] = Amp{};
                amps[base + off + bit] *= scale;
            }
        }
    } else {
        for (std::size_t base = 0; base < _amps.size(); base += 2 * bit) {
            for (std::size_t off = 0; off < bit; ++off) {
                amps[base + off] *= scale;
                amps[base + off + bit] = Amp{};
            }
        }
    }
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    const double overlap = overlapMagnitude(other);
    return overlap * overlap;
}

double
StateVector::overlapMagnitude(const StateVector &other) const
{
    DHISQ_ASSERT(other._amps.size() == _amps.size(),
                 "dimension mismatch in overlap");
    Amp acc{};
    for (std::size_t i = 0; i < _amps.size(); ++i)
        acc += std::conj(_amps[i]) * other._amps[i];
    return std::abs(acc);
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const auto &a : _amps)
        n += std::norm(a);
    return std::sqrt(n);
}

std::size_t
StateVector::sampleBasis(Rng &rng) const
{
    double r = rng.uniform();
    for (std::size_t i = 0; i < _amps.size(); ++i) {
        r -= std::norm(_amps[i]);
        if (r <= 0.0)
            return i;
    }
    return _amps.size() - 1;
}

} // namespace dhisq::q
