/**
 * @file
 * The machine runtime: the "DQCtrl" rack (Figure 9) in simulation.
 *
 * A Machine assembles one board + HISQ core per controller, the hybrid
 * network fabric (mesh + router tree + optional star hub), and the shared
 * quantum device; it loads per-controller HISQ binaries, runs the
 * discrete-event simulation to quiescence and produces a RunReport with the
 * figures every bench consumes (makespan, sync overhead, violations,
 * fidelity inputs).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/telf.hpp"
#include "common/types.hpp"
#include "core/board.hpp"
#include "core/core.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "quantum/device.hpp"
#include "sim/scheduler.hpp"

namespace dhisq::runtime {

/** Everything needed to assemble a Machine. */
struct MachineConfig
{
    net::TopologyConfig topology;
    net::FabricConfig fabric;
    q::DeviceConfig device;

    /** Ports per controller board. */
    unsigned ports_per_controller = 8;
    /** Codeword queue depth (paper: 1024 x 38 bit). */
    std::size_t queue_capacity = 1024;
    std::size_t control_queue_capacity = 64;
    /** Cycles per classical instruction. */
    Cycle classical_cpi = 1;
    /**
     * Scheduler worker threads. 1 runs the serial event loop; >= 2
     * engages the conservative parallel mode (one region per thread,
     * lookahead from the topology). Results are bit-identical either
     * way — this knob trades wall-clock time only.
     */
    unsigned sim_threads = 1;
};

/** Outcome of one run. */
struct RunReport
{
    /** Cycle of the last simulated event (end-to-end execution time). */
    Cycle makespan = 0;
    /** True if the simulation drained while some core had not halted. */
    bool deadlock = false;
    /** Controllers that halted. */
    unsigned halted_cores = 0;
    /** TCU timing violations (issue-rate slips). */
    std::uint64_t timing_violations = 0;
    /** Two-qubit coincidence violations detected by the device. */
    std::size_t coincidence_violations = 0;
    /** Total cycles any TCU timer spent paused on synchronization. */
    std::uint64_t pause_cycles = 0;
    /** Completed synchronizations across all cores. */
    std::uint64_t syncs_completed = 0;
    /** Events executed by the kernel (simulator effort metric). */
    std::uint64_t events_executed = 0;

    std::string summary() const;
};

/** A fully-assembled distributed control system. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    unsigned numControllers() const { return _topology.numControllers(); }

    sim::Scheduler &scheduler() { return _sched; }
    TelfLog &telf() { return _telf; }
    q::QuantumDevice &device() { return *_device; }
    net::Fabric &fabric() { return *_fabric; }
    const net::Topology &topology() const { return _topology; }

    core::HisqCore &core(ControllerId id);
    core::Board &board(ControllerId id);

    /** Load a program onto one controller. */
    void loadProgram(ControllerId id, isa::Program program);

    /** Bind (port, codeword) -> action on a controller's board. */
    void bind(ControllerId id, PortId port, Codeword cw,
              const q::Action &action);

    /**
     * Route discriminated measurement results of `qubit` to controller
     * `dst` (delivered into its MsgU as source kMeasResultSource).
     */
    void routeMeasResult(QubitId qubit, ControllerId dst);

    /**
     * Run to quiescence (or until `limit`).
     * Only controllers with loaded programs participate.
     */
    RunReport run(Cycle limit = kNoCycle);

  private:
    MachineConfig _config;
    net::Topology _topology;
    sim::Scheduler _sched;
    TelfLog _telf;
    std::unique_ptr<q::QuantumDevice> _device;
    std::unique_ptr<net::Fabric> _fabric;
    std::vector<std::unique_ptr<core::Board>> _boards;
    std::vector<std::unique_ptr<core::HisqCore>> _cores;
    std::vector<bool> _has_program;
    std::vector<ControllerId> _meas_route;
};

} // namespace dhisq::runtime
