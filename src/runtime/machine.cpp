#include "runtime/machine.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "core/msgu.hpp"
#include "net/partition.hpp"

namespace dhisq::runtime {

namespace {
/**
 * Batching floor for the parallel scheduler's barrier window, in cycles.
 * Mesh link latencies are a couple of cycles, which at observed event
 * densities (a handful of events per cycle across the machine) would cost
 * a thread barrier every few events; widening the window amortizes the
 * barrier without affecting results (see sim::PartitionPlan::min_window).
 */
constexpr Cycle kSimWindowFloor = 1024;
} // namespace

std::string
RunReport::summary() const
{
    std::ostringstream os;
    os << "makespan=" << makespan << "cy (" << cyclesToNs(makespan)
       << " ns), halted=" << halted_cores
       << (deadlock ? " DEADLOCK" : "")
       << ", violations=" << timing_violations
       << "+" << coincidence_violations
       << ", pauses=" << pause_cycles << "cy"
       << ", syncs=" << syncs_completed;
    return os.str();
}

Machine::Machine(const MachineConfig &config)
    : _config(config), _topology(net::Topology::build(config.topology))
{
    if (config.sim_threads >= 2) {
        sim::PartitionPlan plan =
            net::makePartitionPlan(_topology, config.sim_threads);
        plan.min_window = kSimWindowFloor;
        _sched.configureParallel(std::move(plan), config.sim_threads);
    }
    _device = std::make_unique<q::QuantumDevice>(config.device);
    _fabric = std::make_unique<net::Fabric>(_topology, _sched, &_telf,
                                            config.fabric);

    const unsigned n = _topology.numControllers();
    _boards.reserve(n);
    _cores.reserve(n);
    _has_program.assign(n, false);
    _meas_route.assign(config.device.num_qubits, kNoController);

    for (ControllerId id = 0; id < n; ++id) {
        core::BoardConfig bc;
        bc.name = prefixedNumber("B", id);
        bc.num_ports = config.ports_per_controller;
        _boards.push_back(std::make_unique<core::Board>(bc, _sched, &_telf,
                                                        _device.get()));

        core::CoreConfig cc;
        cc.id = id;
        cc.num_ports = config.ports_per_controller;
        cc.queue_capacity = config.queue_capacity;
        cc.control_queue_capacity = config.control_queue_capacity;
        cc.classical_cpi = config.classical_cpi;

        core::CoreHooks hooks = _fabric->hooksFor(id);
        core::Board *board = _boards.back().get();
        hooks.on_codeword = [board](PortId port, Codeword cw, Cycle wall) {
            board->onCodeword(port, cw, wall);
        };
        _cores.push_back(std::make_unique<core::HisqCore>(cc, _sched, &_telf,
                                                          std::move(hooks)));
        _fabric->registerCore(_cores.back().get());
    }

    // Route measurement results: the device hands (qubit, bit, ready) to the
    // responsible controller's MsgU as a kMeasResultSource message whose
    // payload packs (qubit << 1) | bit.
    _device->setResultCallback([this](QubitId qubit, int bit, Cycle ready) {
        DHISQ_ASSERT(qubit < _meas_route.size(), "unrouted qubit ", qubit);
        const ControllerId dst = _meas_route[qubit];
        DHISQ_ASSERT(dst != kNoController,
                     "no measurement-result route for qubit ", qubit);
        const std::uint32_t payload = (std::uint32_t(qubit) << 1) |
                                      std::uint32_t(bit);
        DHISQ_ASSERT(ready >= _sched.now(), "result ready in the past");
        _sched.schedule(
            ready,
            [this, dst, payload, ready] {
                _telf.record(ready, "DEV", TelfKind::MeasureResult, -1,
                             payload & 1);
                _cores[dst]->deliverMessage(core::kMeasResultSource, payload);
            },
            dst);
    });
}

core::HisqCore &
Machine::core(ControllerId id)
{
    DHISQ_ASSERT(id < _cores.size(), "controller out of range");
    return *_cores[id];
}

core::Board &
Machine::board(ControllerId id)
{
    DHISQ_ASSERT(id < _boards.size(), "controller out of range");
    return *_boards[id];
}

void
Machine::loadProgram(ControllerId id, isa::Program program)
{
    core(id).loadProgram(std::move(program));
    _has_program[id] = true;
}

void
Machine::bind(ControllerId id, PortId port, Codeword cw,
              const q::Action &action)
{
    board(id).bind(port, cw, action);
}

void
Machine::routeMeasResult(QubitId qubit, ControllerId dst)
{
    DHISQ_ASSERT(qubit < _meas_route.size(), "qubit out of range");
    _meas_route[qubit] = dst;
}

RunReport
Machine::run(Cycle limit)
{
    bool any = false;
    for (ControllerId id = 0; id < _cores.size(); ++id) {
        if (_has_program[id]) {
            _cores[id]->start();
            any = true;
        }
    }
    if (!any)
        DHISQ_FATAL("Machine::run: no programs loaded");
    _sched.run(limit);

    RunReport report;
    report.makespan = _sched.now();
    report.events_executed = _sched.executed();
    report.coincidence_violations = _device->finalize();
    for (ControllerId id = 0; id < _cores.size(); ++id) {
        if (!_has_program[id])
            continue;
        const auto &c = *_cores[id];
        if (c.halted())
            ++report.halted_cores;
        else
            report.deadlock = true;
        report.timing_violations +=
            c.tcu().stats().counter("timing_violations");
        report.pause_cycles += c.tcu().stats().counter("pause_cycles");
        report.syncs_completed +=
            c.syncu().stats().counter("syncs_completed");
    }
    return report;
}

} // namespace dhisq::runtime
