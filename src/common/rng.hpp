/**
 * @file
 * Deterministic pseudo-random number generation for reproducible simulation.
 *
 * All stochastic behaviour in the simulator (measurement outcomes in
 * timing-only mode, workload randomization, jitter models) draws from
 * explicitly-seeded Rng instances so that every test and bench is replayable.
 * The generator is SplitMix64-seeded xoshiro256**, which is small, fast and
 * has no global state.
 */
#pragma once

#include <cstdint>

namespace dhisq {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-seed in place. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free reduction is fine for simulation use.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool coin(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4] = {};
};

} // namespace dhisq
