#include "common/strings.hpp"

#include <cctype>
#include <cstdint>

namespace dhisq {

std::string_view
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, std::int64_t *out)
{
    s = trim(s);
    if (s.empty())
        return false;

    bool negative = false;
    if (s[0] == '+' || s[0] == '-') {
        negative = (s[0] == '-');
        s.remove_prefix(1);
        if (s.empty())
            return false;
    }

    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
        base = 2;
        s.remove_prefix(2);
    }

    std::int64_t value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
        } else {
            return false;
        }
        if (digit >= base)
            return false;
        value = value * base + digit;
    }

    *out = negative ? -value : value;
    return true;
}

} // namespace dhisq
