#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dhisq {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c; // UTF-8 bytes pass through unmodified
            }
        }
    }
    return out;
}

namespace {

void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null (the reader treats it as "n/a").
        out += "null";
        return;
    }
    char buf[32];
    // %.17g round-trips every double; trim to the shortest representation
    // that still parses back equal so output stays tidy and deterministic.
    for (int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
    // Keep a marker so the value re-parses as a double, not an integer.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
        std::string::npos) {
        out += ".0";
    }
}

void
dumpTo(const Json &j, std::string &out, int indent, int depth)
{
    const auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(std::size_t(indent) * std::size_t(d), ' ');
        }
    };
    switch (j.type()) {
      case Json::Type::Null: out += "null"; break;
      case Json::Type::Bool: out += j.asBool() ? "true" : "false"; break;
      case Json::Type::Int: out += std::to_string(j.asInt()); break;
      case Json::Type::Double: appendNumber(out, j.asDouble()); break;
      case Json::Type::String:
        out += '"';
        out += jsonEscape(j.asString());
        out += '"';
        break;
      case Json::Type::Array: {
        const auto &elements = j.asArray();
        if (elements.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elements.size(); ++i) {
            if (i != 0)
                out += ',';
            newline(depth + 1);
            dumpTo(elements[i], out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Json::Type::Object: {
        const auto &members = j.asObject();
        if (members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i != 0)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(members[i].first);
            out += "\":";
            if (indent >= 0)
                out += ' ';
            dumpTo(members[i].second, out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

} // namespace

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(*this, out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : _text(text) {}

    Result<Json>
    parseDocument()
    {
        Json value;
        if (auto st = parseValue(value, 0); !st)
            return Result<Json>::error(st.message());
        skipWhitespace();
        if (_pos != _text.size())
            return Result<Json>::error(errorAt("trailing characters"));
        return value;
    }

  private:
    static constexpr int kMaxDepth = 128;

    std::string
    errorAt(const std::string &what) const
    {
        return "json: " + what + " at offset " + std::to_string(_pos);
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (_text.substr(_pos, lit.size()) == lit) {
            _pos += lit.size();
            return true;
        }
        return false;
    }

    Status
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return Status::error(errorAt("nesting too deep"));
        skipWhitespace();
        if (_pos >= _text.size())
            return Status::error(errorAt("unexpected end of input"));
        switch (_text[_pos]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': return parseString(out);
          case 't':
            if (consumeLiteral("true")) {
                out = Json(true);
                return Status::ok();
            }
            return Status::error(errorAt("invalid literal"));
          case 'f':
            if (consumeLiteral("false")) {
                out = Json(false);
                return Status::ok();
            }
            return Status::error(errorAt("invalid literal"));
          case 'n':
            if (consumeLiteral("null")) {
                out = Json(nullptr);
                return Status::ok();
            }
            return Status::error(errorAt("invalid literal"));
          default: return parseNumber(out);
        }
    }

    Status
    parseObject(Json &out, int depth)
    {
        ++_pos; // '{'
        out = Json::object();
        skipWhitespace();
        if (consume('}'))
            return Status::ok();
        for (;;) {
            skipWhitespace();
            Json key;
            if (_pos >= _text.size() || _text[_pos] != '"')
                return Status::error(errorAt("expected object key"));
            if (auto st = parseString(key); !st)
                return st;
            skipWhitespace();
            if (!consume(':'))
                return Status::error(errorAt("expected ':'"));
            Json value;
            if (auto st = parseValue(value, depth + 1); !st)
                return st;
            out[key.asString()] = std::move(value);
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return Status::error(errorAt("expected ',' or '}'"));
        }
    }

    Status
    parseArray(Json &out, int depth)
    {
        ++_pos; // '['
        out = Json::array();
        skipWhitespace();
        if (consume(']'))
            return Status::ok();
        for (;;) {
            Json element;
            if (auto st = parseValue(element, depth + 1); !st)
                return st;
            out.push(std::move(element));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return Status::error(errorAt("expected ',' or ']'"));
        }
    }

    static void
    appendUtf8(std::string &s, unsigned code_point)
    {
        if (code_point < 0x80) {
            s += char(code_point);
        } else if (code_point < 0x800) {
            s += char(0xC0 | (code_point >> 6));
            s += char(0x80 | (code_point & 0x3F));
        } else if (code_point < 0x10000) {
            s += char(0xE0 | (code_point >> 12));
            s += char(0x80 | ((code_point >> 6) & 0x3F));
            s += char(0x80 | (code_point & 0x3F));
        } else {
            s += char(0xF0 | (code_point >> 18));
            s += char(0x80 | ((code_point >> 12) & 0x3F));
            s += char(0x80 | ((code_point >> 6) & 0x3F));
            s += char(0x80 | (code_point & 0x3F));
        }
    }

    Status
    parseHex4(unsigned &out)
    {
        if (_pos + 4 > _text.size())
            return Status::error(errorAt("truncated \\u escape"));
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = _text[_pos + std::size_t(i)];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                return Status::error(errorAt("invalid \\u escape"));
        }
        _pos += 4;
        return Status::ok();
    }

    Status
    parseString(Json &out)
    {
        ++_pos; // '"'
        std::string s;
        for (;;) {
            if (_pos >= _text.size())
                return Status::error(errorAt("unterminated string"));
            const char c = _text[_pos++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                return Status::error(
                    errorAt("raw control character in string"));
            if (c != '\\') {
                s += c;
                continue;
            }
            if (_pos >= _text.size())
                return Status::error(errorAt("truncated escape"));
            const char esc = _text[_pos++];
            switch (esc) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                unsigned code_point = 0;
                if (auto st = parseHex4(code_point); !st)
                    return st;
                // Surrogate pair: combine \uD800-\uDBFF + \uDC00-\uDFFF.
                if (code_point >= 0xD800 && code_point <= 0xDBFF &&
                    consumeLiteral("\\u")) {
                    unsigned low = 0;
                    if (auto st = parseHex4(low); !st)
                        return st;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return Status::error(
                            errorAt("invalid low surrogate"));
                    code_point = 0x10000 +
                                 ((code_point - 0xD800) << 10) +
                                 (low - 0xDC00);
                }
                appendUtf8(s, code_point);
                break;
              }
              default:
                return Status::error(errorAt("invalid escape"));
            }
        }
        out = Json(std::move(s));
        return Status::ok();
    }

    Status
    parseNumber(Json &out)
    {
        const std::size_t start = _pos;
        consume('-');
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
        bool is_double = false;
        if (consume('.')) {
            is_double = true;
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            is_double = true;
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-')) {
                ++_pos;
            }
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
        }
        const std::string_view token = _text.substr(start, _pos - start);
        if (token.empty() || token == "-")
            return Status::error(errorAt("invalid number"));
        if (!is_double) {
            std::int64_t value = 0;
            const auto [ptr, ec] = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size()) {
                out = Json(value);
                return Status::ok();
            }
            // Out-of-int64-range integers degrade to double below.
        }
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            token.data(), token.data() + token.size(), value);
        if (ec != std::errc() || ptr != token.data() + token.size())
            return Status::error(errorAt("invalid number"));
        out = Json(value);
        return Status::ok();
    }

    std::string_view _text;
    std::size_t _pos = 0;
};

} // namespace

Result<Json>
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace dhisq
