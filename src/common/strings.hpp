/**
 * @file
 * Small string utilities used by the assembler and config parser.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dhisq {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split on arbitrary whitespace runs; empty fields are dropped. */
std::vector<std::string_view> splitWhitespace(std::string_view s);

/** True if `s` starts with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case ASCII copy. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer with optional 0x/0b prefix and +- sign.
 * @return true on success with *out set; false leaves *out untouched.
 */
bool parseInt(std::string_view s, std::int64_t *out);

/**
 * `prefix` followed by the decimal rendering of `n` — the idiom for unit
 * names like "C3"/"R1"/"B0". Built by append rather than
 * `operator+(const char*, std::string&&)`, whose insert path trips a GCC 12
 * -Wrestrict false positive (GCC PR105651).
 */
template <typename Int>
std::string
prefixedNumber(std::string_view prefix, Int n)
{
    static_assert(std::is_integral_v<Int>);
    std::string out(prefix);
    out += std::to_string(n);
    return out;
}

} // namespace dhisq
