#include "common/logging.hpp"

#include <cstdio>

namespace dhisq {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
logLine(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "[fatal] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace detail

} // namespace dhisq
