/**
 * @file
 * Fundamental scalar types and identifiers shared across Distributed-HISQ.
 *
 * The global time base is the TCU clock of the paper's FPGA implementation:
 * 250 MHz, i.e. one cycle == 4 ns (Section 6.1). All simulator timestamps are
 * expressed in integral cycles of that clock.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/strings.hpp"

namespace dhisq {

/** Simulation time in TCU clock cycles (4 ns grid). */
using Cycle = std::uint64_t;

/** Sentinel for "no time" / unscheduled. */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Nanoseconds per TCU cycle (250 MHz clock). */
inline constexpr double kNsPerCycle = 4.0;

/** Convert a duration in nanoseconds to cycles, rounding up to the grid. */
constexpr Cycle
nsToCycles(double ns)
{
    const double cycles = ns / kNsPerCycle;
    const auto floor_cycles = static_cast<Cycle>(cycles);
    return (static_cast<double>(floor_cycles) < cycles) ? floor_cycles + 1
                                                        : floor_cycles;
}

/** Convert cycles to nanoseconds. */
constexpr double
cyclesToNs(Cycle c)
{
    return static_cast<double>(c) * kNsPerCycle;
}

/** Convert microseconds to cycles (convenience for T1-style constants). */
constexpr Cycle
usToCycles(double us)
{
    return nsToCycles(us * 1000.0);
}

/** Identifier of a controller (HISQ core) in the distributed system. */
using ControllerId = std::uint32_t;

/** Identifier of a router in the inter-layer tree. */
using RouterId = std::uint32_t;

/** Physical qubit index on the quantum device. */
using QubitId = std::uint32_t;

/** Classical measurement bit index. */
using CbitId = std::uint32_t;

/** Output/input port index local to one board. */
using PortId = std::uint32_t;

/** Codeword payload carried by a `cw` instruction (Section 3.1.2). */
using Codeword = std::uint32_t;

/** Sentinel controller id. */
inline constexpr ControllerId kNoController =
    std::numeric_limits<ControllerId>::max();

/** Sentinel qubit id. */
inline constexpr QubitId kNoQubit = std::numeric_limits<QubitId>::max();

/**
 * Address of a synchronization target as used by the `sync` instruction.
 *
 * The paper's <tgt> field designates either a nearest-neighbour controller or
 * an ancestor router (Section 3.1.3). We reserve the top bit to distinguish
 * the two name spaces so a single immediate can encode both.
 */
struct SyncTarget
{
    /** Raw encoding: bit 15 set => router, else controller. */
    std::uint16_t raw = 0;

    static constexpr std::uint16_t kRouterFlag = 0x8000;

    static SyncTarget controller(ControllerId id)
    {
        return SyncTarget{static_cast<std::uint16_t>(id & 0x7FFF)};
    }

    static SyncTarget router(RouterId id)
    {
        return SyncTarget{
            static_cast<std::uint16_t>((id & 0x7FFF) | kRouterFlag)};
    }

    bool isRouter() const { return (raw & kRouterFlag) != 0; }
    std::uint32_t index() const { return raw & 0x7FFF; }

    bool operator==(const SyncTarget &other) const = default;
};

/** Human-readable rendering of a sync target, e.g. "C3" or "R1". */
std::string toString(const SyncTarget &tgt);

inline std::string
toString(const SyncTarget &tgt)
{
    return prefixedNumber(tgt.isRouter() ? "R" : "C", tgt.index());
}

} // namespace dhisq
