#include "common/hash.hpp"

#include <cstdio>

namespace dhisq {

std::string
Hash128::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

} // namespace dhisq
