/**
 * @file
 * Timing Event Logging Format (TELF).
 *
 * The paper verifies CACTUS-Light against the FPGA implementation by
 * exchanging TELF traces (Section 6.4.1). We implement TELF as an in-memory
 * record stream with a canonical one-line-per-event text rendering:
 *
 *     <cycle> <source> <kind> <port> <value> [note]
 *
 * Tests assert on the record stream (e.g. "all CZ halves committed in the
 * same cycle"); benches render traces as waveform-like rows.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dhisq {

/** Kind of a TELF event. */
enum class TelfKind : std::uint8_t {
    CodewordCommit,  ///< A codeword was issued on an output port.
    SyncBook,        ///< A sync event reached the SyncU (booking time B).
    SyncDone,        ///< Both sync conditions satisfied; timer released.
    TimerPause,      ///< TCU timer paused awaiting a sync condition.
    TimerResume,     ///< TCU timer resumed.
    MsgSend,         ///< Message Unit transmitted a payload.
    MsgRecv,         ///< Message Unit delivered a payload to the core.
    MeasureStart,    ///< Readout acquisition window opened.
    MeasureResult,   ///< Discriminated measurement result available.
    Violation,       ///< Timing violation (event issued past its deadline).
    Halt,            ///< Controller retired its halt instruction.
};

/** Render a TelfKind as its canonical mnemonic. */
const char *toString(TelfKind kind);

/** One timing event. */
struct TelfRecord
{
    Cycle cycle = 0;           ///< Wall-clock commit cycle.
    std::string source;        ///< Emitting unit, e.g. "C2" or "R0".
    TelfKind kind = TelfKind::CodewordCommit;
    std::int64_t port = -1;    ///< Port index or -1 when not applicable.
    std::int64_t value = 0;    ///< Codeword / payload / target.
    std::string note;          ///< Free-form annotation.

    /** Canonical text rendering. */
    std::string toLine() const;
};

/** Append-only TELF trace with query helpers for tests and benches. */
class TelfLog
{
  public:
    /** Append a record. */
    void
    record(Cycle cycle, std::string source, TelfKind kind,
           std::int64_t port = -1, std::int64_t value = 0,
           std::string note = "")
    {
        _records.push_back(TelfRecord{cycle, std::move(source), kind, port,
                                      value, std::move(note)});
    }

    const std::vector<TelfRecord> &records() const { return _records; }
    std::size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }
    void clear() { _records.clear(); }

    /** All records matching a predicate. */
    std::vector<TelfRecord>
    filter(const std::function<bool(const TelfRecord &)> &pred) const;

    /** All records of one kind. */
    std::vector<TelfRecord> ofKind(TelfKind kind) const;

    /** All records of one kind emitted by one source. */
    std::vector<TelfRecord> ofKind(TelfKind kind,
                                   const std::string &source) const;

    /** Count of records of one kind. */
    std::size_t countOf(TelfKind kind) const;

    /** Largest cycle stamp in the log (0 when empty). */
    Cycle lastCycle() const;

    /** Render the full trace as canonical text. */
    std::string toText() const;

  private:
    std::vector<TelfRecord> _records;
};

} // namespace dhisq
