/**
 * @file
 * Minimal logging/error facilities in the gem5 spirit: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn()/inform()
 * for status. No exceptions cross module boundaries.
 */
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace dhisq {

/** Verbosity levels for runtime logging. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log level (default Warn so tests/benches stay tidy). */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit one log line with a severity prefix. */
void logLine(const char *prefix, const std::string &msg);

/** Abort after printing a panic message (internal bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) after printing a fatal message (user error). */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Build a string from streamable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
#define DHISQ_PANIC(...)                                                      \
    ::dhisq::detail::panicImpl(__FILE__, __LINE__,                            \
                               ::dhisq::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit. */
#define DHISQ_FATAL(...)                                                      \
    ::dhisq::detail::fatalImpl(::dhisq::detail::concat(__VA_ARGS__))

/** Assert an invariant with a formatted message; compiled in all builds. */
#define DHISQ_ASSERT(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            DHISQ_PANIC("assertion failed: " #cond " — ",                     \
                        ::dhisq::detail::concat(__VA_ARGS__));                \
        }                                                                     \
    } while (false)

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn) {
        detail::logLine("warn", detail::concat(std::forward<Args>(args)...));
    }
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info) {
        detail::logLine("info", detail::concat(std::forward<Args>(args)...));
    }
}

/** Debug-level trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug) {
        detail::logLine("debug", detail::concat(std::forward<Args>(args)...));
    }
}

} // namespace dhisq
