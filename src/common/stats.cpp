#include "common/stats.hpp"

#include <sstream>

namespace dhisq {

void
StatSet::mergeFrom(const StatSet &other)
{
    for (const auto &kv : other._counters)
        _counters[kv.first] += kv.second;
    for (const auto &kv : other._scalars) {
        auto &dst = _scalars[kv.first];
        if (kv.second.samples == 0)
            continue;
        if (dst.samples == 0) {
            dst = kv.second;
        } else {
            dst.sum += kv.second.sum;
            dst.samples += kv.second.samples;
            if (kv.second.min < dst.min) dst.min = kv.second.min;
            if (kv.second.max > dst.max) dst.max = kv.second.max;
        }
    }
}

std::string
StatSet::report(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &kv : _counters)
        os << prefix << kv.first << " = " << kv.second << '\n';
    for (const auto &kv : _scalars) {
        const auto &s = kv.second;
        os << prefix << kv.first << " : mean=" << s.mean()
           << " min=" << s.min << " max=" << s.max
           << " n=" << s.samples << '\n';
    }
    return os.str();
}

} // namespace dhisq
