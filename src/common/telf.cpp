#include "common/telf.hpp"

#include <sstream>

namespace dhisq {

const char *
toString(TelfKind kind)
{
    switch (kind) {
      case TelfKind::CodewordCommit: return "cw";
      case TelfKind::SyncBook: return "sync_book";
      case TelfKind::SyncDone: return "sync_done";
      case TelfKind::TimerPause: return "pause";
      case TelfKind::TimerResume: return "resume";
      case TelfKind::MsgSend: return "send";
      case TelfKind::MsgRecv: return "recv";
      case TelfKind::MeasureStart: return "meas_start";
      case TelfKind::MeasureResult: return "meas_result";
      case TelfKind::Violation: return "violation";
      case TelfKind::Halt: return "halt";
    }
    return "?";
}

std::string
TelfRecord::toLine() const
{
    std::ostringstream os;
    os << cycle << ' ' << source << ' ' << toString(kind) << ' ' << port
       << ' ' << value;
    if (!note.empty())
        os << ' ' << note;
    return os.str();
}

std::vector<TelfRecord>
TelfLog::filter(const std::function<bool(const TelfRecord &)> &pred) const
{
    std::vector<TelfRecord> out;
    for (const auto &r : _records) {
        if (pred(r))
            out.push_back(r);
    }
    return out;
}

std::vector<TelfRecord>
TelfLog::ofKind(TelfKind kind) const
{
    return filter([kind](const TelfRecord &r) { return r.kind == kind; });
}

std::vector<TelfRecord>
TelfLog::ofKind(TelfKind kind, const std::string &source) const
{
    return filter([kind, &source](const TelfRecord &r) {
        return r.kind == kind && r.source == source;
    });
}

std::size_t
TelfLog::countOf(TelfKind kind) const
{
    std::size_t n = 0;
    for (const auto &r : _records)
        n += (r.kind == kind) ? 1 : 0;
    return n;
}

Cycle
TelfLog::lastCycle() const
{
    Cycle last = 0;
    for (const auto &r : _records)
        last = std::max(last, r.cycle);
    return last;
}

std::string
TelfLog::toText() const
{
    std::ostringstream os;
    for (const auto &r : _records)
        os << r.toLine() << '\n';
    return os.str();
}

} // namespace dhisq
