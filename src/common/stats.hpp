/**
 * @file
 * Simple named statistics: counters, min/max/mean scalars and histograms.
 * Every architectural unit exposes a StatSet so benches can print uniform
 * reports and tests can assert on behavioural counters (e.g. number of
 * timer pauses, total pause cycles, sync bookings).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dhisq {

/** Accumulating scalar statistic. */
struct ScalarStat
{
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t samples = 0;

    void
    sample(double v)
    {
        if (samples == 0) {
            min = max = v;
        } else {
            if (v < min) min = v;
            if (v > max) max = v;
        }
        sum += v;
        ++samples;
    }

    double mean() const { return samples ? sum / samples : 0.0; }
};

/** Named collection of counters and scalar stats. */
class StatSet
{
  public:
    /** Increment a counter. */
    void
    inc(const std::string &name, std::uint64_t by = 1)
    {
        _counters[name] += by;
    }

    /** Record a scalar sample. */
    void
    sample(const std::string &name, double value)
    {
        _scalars[name].sample(value);
    }

    /**
     * Stable pointer to a counter's storage slot, for hot dispatch loops
     * that would otherwise hash the same string literal per event. The
     * entry is created at 0 if absent; std::map nodes never move, so the
     * pointer stays valid until clear() — re-acquire after any reset
     * that clears the set.
     */
    std::uint64_t *
    counterHandle(const std::string &name)
    {
        return &_counters[name];
    }

    /** Counter value (0 if absent). */
    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Scalar stat (zeroed if absent). */
    ScalarStat
    scalar(const std::string &name) const
    {
        auto it = _scalars.find(name);
        return it == _scalars.end() ? ScalarStat{} : it->second;
    }

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return _counters;
    }
    const std::map<std::string, ScalarStat> &scalars() const
    {
        return _scalars;
    }

    /** Overwrite a counter (deserialization; prefer inc() elsewhere). */
    void
    setCounter(const std::string &name, std::uint64_t value)
    {
        _counters[name] = value;
    }

    /** Overwrite a scalar stat (deserialization; prefer sample()). */
    void
    setScalar(const std::string &name, const ScalarStat &value)
    {
        _scalars[name] = value;
    }

    /** Merge another StatSet into this one (counters add, scalars merge). */
    void mergeFrom(const StatSet &other);

    /** Render a human-readable report, one stat per line. */
    std::string report(const std::string &prefix = "") const;

    void
    clear()
    {
        _counters.clear();
        _scalars.clear();
    }

  private:
    std::map<std::string, std::uint64_t> _counters;
    std::map<std::string, ScalarStat> _scalars;
};

} // namespace dhisq
