#include "common/config.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace dhisq {

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    _values[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    _values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    _values[key] = os.str();
}

void
Config::set(const std::string &key, bool value)
{
    _values[key] = value ? "true" : "false";
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = _values.find(key);
    return it == _values.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    std::int64_t out = 0;
    return parseInt(it->second, &out) ? out : def;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    try {
        return std::stod(it->second);
    } catch (...) {
        return def;
    }
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return def;
    const std::string v = toLower(it->second);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    return def;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(_values.size());
    for (const auto &kv : _values)
        out.push_back(kv.first);
    return out;
}

void
Config::mergeFrom(const Config &other)
{
    for (const auto &kv : other._values)
        _values[kv.first] = kv.second;
}

bool
Config::parseLines(const std::string &text, std::string *error)
{
    int lineno = 0;
    for (auto line : split(text, '\n')) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string_view::npos) {
            if (error) {
                *error = "line " + std::to_string(lineno) +
                         ": expected key=value";
            }
            return false;
        }
        const auto key = trim(line.substr(0, eq));
        const auto value = trim(line.substr(eq + 1));
        if (key.empty()) {
            if (error)
                *error = "line " + std::to_string(lineno) + ": empty key";
            return false;
        }
        _values[std::string(key)] = std::string(value);
    }
    return true;
}

} // namespace dhisq
