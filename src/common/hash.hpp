/**
 * @file
 * Deterministic 128-bit content hashing for cache keys.
 *
 * The compile cache addresses `CompiledProgram`s by a digest of the
 * canonical circuit serialization plus every compiler/topology knob that
 * can change the output (src/compiler/cache/key.cpp). The hasher is a
 * two-lane SplitMix64 avalanche seeded with the 64-bit FNV-1a constants:
 * fast, allocation-free, stable across platforms and runs (no ASLR or
 * libstdc++ hash salting), and 128 bits wide so accidental collisions in
 * a store of millions of programs are out of the picture. It is NOT
 * cryptographic — keys are trusted inputs, not attacker-controlled.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace dhisq {

/** A 128-bit digest. */
struct Hash128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Hash128 &other) const = default;

    /** 32 lowercase hex characters, hi word first. */
    std::string hex() const;
};

/** Hash functor so Hash128 can key unordered containers. */
struct Hash128Hasher
{
    std::size_t operator()(const Hash128 &h) const
    {
        return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ull));
    }
};

/**
 * Incremental 128-bit mixer. Words are absorbed in call order, so two
 * digests are equal iff the absorbed word sequences are equal — callers
 * are responsible for unambiguous framing (length-prefix variable-size
 * fields; this class does it for strings).
 */
class Hasher128
{
  public:
    void
    u64(std::uint64_t w)
    {
        _a = mix(_a ^ w);
        _b = mix(_b + (w ^ 0x9E3779B97F4A7C15ull));
    }

    void i64(std::int64_t w) { u64(static_cast<std::uint64_t>(w)); }
    void u32(std::uint32_t w) { u64(w); }
    void boolean(bool b) { u64(b ? 1 : 0); }

    /** Absorb a double by bit pattern (distinguishes -0.0 from 0.0;
     *  every NaN payload hashes as itself — keys are deterministic
     *  producers, not arithmetic results). */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    /** Absorb a string, length-prefixed so "ab"+"c" != "a"+"bc". */
    void
    str(std::string_view s)
    {
        u64(s.size());
        std::uint64_t word = 0;
        unsigned filled = 0;
        for (const unsigned char c : s) {
            word = (word << 8) | c;
            if (++filled == 8) {
                u64(word);
                word = 0;
                filled = 0;
            }
        }
        // A partial tail occupies < 56 bits; tag it with its byte count
        // so trailing NUL bytes are not absorbed ambiguously.
        if (filled != 0)
            u64(word | (std::uint64_t(filled) << 56));
    }

    Hash128
    digest() const
    {
        return Hash128{mix(_a ^ std::rotl(_b, 32)), mix(_b ^ _a)};
    }

  private:
    /** SplitMix64 finalizer (full avalanche). */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    // FNV-1a 64-bit offset basis / prime as the two lane seeds.
    std::uint64_t _a = 0xCBF29CE484222325ull;
    std::uint64_t _b = 0x00000100000001B3ull;
};

} // namespace dhisq
