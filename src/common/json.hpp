/**
 * @file
 * Minimal JSON value model, writer and parser for benchmark emission.
 *
 * The sweep harness serializes every experiment grid to `BENCH_<name>.json`
 * so CI can track the performance trajectory across commits; the parser
 * exists so tests can round-trip what the writer emits and so tools can
 * validate artifacts without a Python dependency.
 *
 * Design constraints:
 *  - Deterministic output: objects preserve insertion order and numbers
 *    are printed identically for identical values, so two runs of the same
 *    grid produce byte-identical files regardless of thread count.
 *  - Integers are kept distinct from doubles (cycle counts exceed float
 *    precision long before they exceed int64), and round-trip exactly.
 *  - No exceptions across module boundaries: parse returns Result<Json>.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace dhisq {

/** One JSON value: null, bool, integer, double, string, array or object. */
class Json
{
  public:
    using Array = std::vector<Json>;
    /** Insertion-ordered key/value list (deterministic serialization). */
    using Object = std::vector<std::pair<std::string, Json>>;

    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : _value(b) {}
    Json(int v) : _value(std::int64_t(v)) {}
    Json(unsigned v) : _value(std::int64_t(v)) {}
    Json(long v) : _value(std::int64_t(v)) {}
    Json(unsigned long v) : _value(std::int64_t(v)) {}
    Json(long long v) : _value(std::int64_t(v)) {}
    Json(unsigned long long v) : _value(std::int64_t(v)) {}
    Json(double v) : _value(v) {}
    Json(const char *s) : _value(std::string(s)) {}
    Json(std::string s) : _value(std::move(s)) {}
    Json(std::string_view s) : _value(std::string(s)) {}

    /** An empty array (distinct from null). */
    static Json
    array()
    {
        Json j;
        j._value = Array{};
        return j;
    }

    /** An empty object (distinct from null). */
    static Json
    object()
    {
        Json j;
        j._value = Object{};
        return j;
    }

    Type
    type() const
    {
        return static_cast<Type>(_value.index());
    }

    bool isNull() const { return type() == Type::Null; }
    bool isBool() const { return type() == Type::Bool; }
    bool isInt() const { return type() == Type::Int; }
    bool isDouble() const { return type() == Type::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return type() == Type::String; }
    bool isArray() const { return type() == Type::Array; }
    bool isObject() const { return type() == Type::Object; }

    bool asBool() const { return std::get<bool>(_value); }
    std::int64_t asInt() const { return std::get<std::int64_t>(_value); }

    /** Numeric value as double (works for Int and Double). */
    double
    asDouble() const
    {
        return isInt() ? double(std::get<std::int64_t>(_value))
                       : std::get<double>(_value);
    }

    const std::string &asString() const
    {
        return std::get<std::string>(_value);
    }
    const Array &asArray() const { return std::get<Array>(_value); }
    const Object &asObject() const { return std::get<Object>(_value); }

    /** Elements in an array or members in an object; 0 otherwise. */
    std::size_t
    size() const
    {
        if (isArray())
            return asArray().size();
        if (isObject())
            return asObject().size();
        return 0;
    }

    /** Append to an array (null values become an array first). */
    void
    push(Json element)
    {
        if (isNull())
            _value = Array{};
        std::get<Array>(_value).push_back(std::move(element));
    }

    /**
     * Object member access, inserting a null member if absent (null values
     * become an object first). Preserves insertion order.
     */
    Json &
    operator[](std::string_view key)
    {
        if (isNull())
            _value = Object{};
        auto &members = std::get<Object>(_value);
        for (auto &[k, v] : members) {
            if (k == key)
                return v;
        }
        members.emplace_back(std::string(key), Json());
        return members.back().second;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const Json *
    find(std::string_view key) const
    {
        if (!isObject())
            return nullptr;
        for (const auto &[k, v] : asObject()) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    bool contains(std::string_view key) const
    {
        return find(key) != nullptr;
    }

    /** Array element access (bounds-checked panic, like vector::at). */
    const Json &at(std::size_t index) const { return asArray().at(index); }

    /**
     * Serialize. `indent` < 0 emits a compact single line; >= 0 pretty
     * prints with that many spaces per level. Output is deterministic.
     */
    std::string dump(int indent = -1) const;

    /** Parse a complete JSON document (trailing junk is an error). */
    static Result<Json> parse(std::string_view text);

    bool operator==(const Json &other) const = default;

  private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
                 Array, Object>
        _value = nullptr;
};

/** Escape `s` as the *inside* of a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

} // namespace dhisq
