/**
 * @file
 * Lightweight Status / Result types used for recoverable errors (e.g. the
 * assembler reporting a syntax error). Unrecoverable conditions use
 * DHISQ_PANIC / DHISQ_FATAL instead; exceptions are not used across module
 * boundaries.
 */
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hpp"

namespace dhisq {

/** Success-or-message status for operations without a payload. */
class Status
{
  public:
    /** Construct an OK status. */
    static Status ok() { return Status(); }

    /** Construct an error status carrying a message. */
    static Status error(std::string msg)
    {
        Status s;
        s._message = std::move(msg);
        s._ok = false;
        return s;
    }

    bool isOk() const { return _ok; }
    explicit operator bool() const { return _ok; }

    /** Error message; empty when OK. */
    const std::string &message() const { return _message; }

  private:
    bool _ok = true;
    std::string _message;
};

/**
 * Value-or-error result. A minimal std::expected stand-in (we target
 * toolchains without <expected>).
 */
template <typename T>
class Result
{
  public:
    /** Implicit from value. */
    Result(T value) : _value(std::move(value)) {}

    /** Construct an error result. */
    static Result error(std::string msg)
    {
        Result r;
        r._message = std::move(msg);
        return r;
    }

    bool isOk() const { return _value.has_value(); }
    explicit operator bool() const { return isOk(); }

    /** Access the value; panics if the result is an error. */
    const T &
    value() const
    {
        DHISQ_ASSERT(isOk(), "Result::value() on error: ", _message);
        return *_value;
    }

    T &
    value()
    {
        DHISQ_ASSERT(isOk(), "Result::value() on error: ", _message);
        return *_value;
    }

    /** Move the value out; panics if the result is an error. */
    T
    take()
    {
        DHISQ_ASSERT(isOk(), "Result::take() on error: ", _message);
        return std::move(*_value);
    }

    /** Error message; empty when OK. */
    const std::string &message() const { return _message; }

  private:
    Result() = default;

    std::optional<T> _value;
    std::string _message;
};

} // namespace dhisq
