/**
 * @file
 * Simple hierarchical key/value configuration store.
 *
 * The runtime assembles machines (boards, links, routers, device) from a
 * Config; benches tweak individual knobs programmatically. Keys are flat
 * dotted strings ("link.neighbor_latency"), values are typed on read.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dhisq {

/** Flat typed key/value configuration with defaults on read. */
class Config
{
  public:
    Config() = default;

    /** Set a value (any scalar is stored as its string form). */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** Typed getters with defaults for missing keys. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

    /** Merge `other` over this config (other's values win). */
    void mergeFrom(const Config &other);

    /**
     * Parse "key=value" lines; '#' starts a comment. Returns false and sets
     * *error on malformed input.
     */
    bool parseLines(const std::string &text, std::string *error);

  private:
    std::map<std::string, std::string> _values;
};

} // namespace dhisq
