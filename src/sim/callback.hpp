/**
 * @file
 * Small-buffer callback type for the discrete-event kernel.
 *
 * Every scheduled event used to carry a `std::function<void()>`, whose
 * capture state lives on the heap for anything bigger than two pointers
 * (libstdc++'s inline buffer). The simulator schedules millions of events
 * per run, and nearly all captures are `this` plus a couple of scalars, so
 * the allocation and the pointer chase dominated the event hot path.
 *
 * sim::Callback is a move-only type-erased `void()` callable with a
 * 48-byte inline buffer: every lambda in the codebase fits inline, and
 * oversized or throwing-move captures fall back to a single heap cell.
 */
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dhisq::sim {

/** Move-only `void()` callable with small-buffer-optimized storage. */
class Callback
{
  public:
    /** Inline capture budget; larger callables are heap-allocated. */
    static constexpr std::size_t kInlineSize = 48;

    Callback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback(F &&fn) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_storage)) Fn(std::forward<F>(fn));
            _ops = inlineOps<Fn>();
        } else {
            ::new (static_cast<void *>(_storage))
                Fn *(new Fn(std::forward<F>(fn)));
            _ops = heapOps<Fn>();
        }
    }

    Callback(Callback &&other) noexcept { moveFrom(other); }

    Callback &
    operator=(Callback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const { return _ops != nullptr; }

    /** Invoke the held callable (undefined if empty). */
    void operator()() { _ops->invoke(_storage); }

    /** Destroy the held callable, leaving the Callback empty. */
    void
    reset()
    {
        if (_ops != nullptr) {
            _ops->destroy(_storage);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(unsigned char *);
        void (*relocate)(unsigned char *dst, unsigned char *src);
        void (*destroy)(unsigned char *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static Fn *
    inlinePtr(unsigned char *s)
    {
        return std::launder(reinterpret_cast<Fn *>(s));
    }

    template <typename Fn>
    static Fn *&
    heapPtr(unsigned char *s)
    {
        return *std::launder(reinterpret_cast<Fn **>(s));
    }

    template <typename Fn>
    static const Ops *
    inlineOps()
    {
        static constexpr Ops ops{
            [](unsigned char *s) { (*inlinePtr<Fn>(s))(); },
            [](unsigned char *dst, unsigned char *src) {
                Fn *f = inlinePtr<Fn>(src);
                ::new (static_cast<void *>(dst)) Fn(std::move(*f));
                f->~Fn();
            },
            [](unsigned char *s) { inlinePtr<Fn>(s)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    heapOps()
    {
        static constexpr Ops ops{
            [](unsigned char *s) { (*heapPtr<Fn>(s))(); },
            [](unsigned char *dst, unsigned char *src) {
                ::new (static_cast<void *>(dst)) Fn *(heapPtr<Fn>(src));
            },
            [](unsigned char *s) { delete heapPtr<Fn>(s); },
        };
        return &ops;
    }

    void
    moveFrom(Callback &other)
    {
        _ops = other._ops;
        if (_ops != nullptr) {
            _ops->relocate(_storage, other._storage);
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _storage[kInlineSize];
    const Ops *_ops = nullptr;
};

} // namespace dhisq::sim
