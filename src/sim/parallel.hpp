/**
 * @file
 * Conservative parallel-DES support types: the region partition plan and
 * the phase-synchronized worker pool the Scheduler's parallel mode runs
 * staging work on.
 *
 * The parallel mode (see docs/SIMULATION.md for the full model) partitions
 * event *sources* (controllers) into regions, each owning a private event
 * queue. Execution proceeds in barrier windows `[T, T + window)` whose
 * conservative width is the minimum latency of any topology link crossing
 * a region boundary (the classic PDES lookahead): a region cannot receive
 * a cross-region event earlier than `now + lookahead`, so every event
 * already queued inside the window is safe to stage before any of them
 * executes. Staging (heap pops, cancelled-entry filtering, per-region
 * ordering) runs on the worker pool; dispatch merges the staged streams in
 * global (cycle, sequence) order on the coordinating thread, which is what
 * makes the parallel mode bit-identical to the serial scheduler by
 * construction — same event order, same Rng draw sequence, same traces.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace dhisq::sim {

/**
 * Region partition + lookahead for the Scheduler's parallel mode.
 * Build one from a topology with net::makePartitionPlan.
 */
struct PartitionPlan
{
    /** Region index per source ControllerId; missing/untagged -> region 0. */
    std::vector<std::uint32_t> region_of;
    /** Number of regions (>= 1; region indices are < num_regions). */
    std::uint32_t num_regions = 1;
    /**
     * Conservative window width in cycles (>= 1): the minimum latency of
     * any link crossing a region boundary. Events scheduled during a
     * window for a cross-region destination always land at least
     * `lookahead` cycles out, i.e. beyond a lookahead-sized window.
     */
    Cycle lookahead = 1;
    /**
     * Batching floor for the barrier window (cycles). Windows narrower
     * than this pay a synchronization barrier per handful of events;
     * widening the window past the lookahead stays deterministic (the
     * merge dispatch orders globally regardless) — intra-window arrivals
     * just take the overflow path instead of a region queue. 0 keeps the
     * strict `window == lookahead` conservative bound.
     */
    Cycle min_window = 0;

    /** Region owning events tagged with `source`. */
    std::uint32_t
    regionOf(ControllerId source) const
    {
        if (source == kNoController || source >= region_of.size())
            return 0;
        return region_of[source];
    }

    /** Effective barrier-window width in cycles. */
    Cycle
    window() const
    {
        return lookahead > min_window ? lookahead : min_window;
    }
};

/**
 * Phase-synchronized worker pool: forEach(n, fn, ctx) fans items 0..n-1
 * out across the workers (item i runs on worker i % workers) and returns
 * once every item ran. Plain mutex/condvar phases — the blocking wait is
 * what makes the pool ThreadSanitizer-provable, and the scheduler batches
 * enough staging work per phase that wake latency is amortized.
 */
class WorkerPool
{
  public:
    using ItemFn = void (*)(void *ctx, unsigned item);

    explicit WorkerPool(unsigned workers);
    ~WorkerPool();
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workers() const { return _count; }

    /** Run fn(ctx, item) for every item in [0, num_items); blocks. */
    void forEach(unsigned num_items, ItemFn fn, void *ctx);

  private:
    void workerMain(unsigned index);

    const unsigned _count;
    std::vector<std::thread> _threads;
    std::mutex _mutex;
    std::condition_variable _work_cv;
    std::condition_variable _done_cv;
    ItemFn _fn = nullptr;          ///< Guarded by _mutex.
    void *_ctx = nullptr;          ///< Guarded by _mutex.
    unsigned _num_items = 0;       ///< Guarded by _mutex.
    std::uint64_t _phase = 0;      ///< Guarded by _mutex.
    unsigned _done = 0;            ///< Guarded by _mutex.
    bool _stop = false;            ///< Guarded by _mutex.
};

} // namespace dhisq::sim
