#include "sim/scheduler.hpp"

#include <algorithm>

namespace dhisq::sim {

namespace {
/** Heap arity: 4-ary trades a shallower tree for a few extra compares,
 *  which wins for POD entries that fit two per cache line. */
constexpr std::size_t kArity = 4;
} // namespace

std::uint32_t
Scheduler::acquireSlot()
{
    if (!_free_slots.empty()) {
        const std::uint32_t slot = _free_slots.back();
        _free_slots.pop_back();
        return slot;
    }
    DHISQ_ASSERT(_slots.size() < UINT32_MAX, "slot pool exhausted");
    _slots.emplace_back();
    return std::uint32_t(_slots.size() - 1);
}

void
Scheduler::releaseSlot(std::uint32_t slot)
{
    // Bump the generation so every outstanding id for this slot goes
    // stale; skip 0 so makeId never returns the kNoEvent sentinel.
    if (++_slots[slot].generation == 0)
        _slots[slot].generation = 1;
    _free_slots.push_back(slot);
}

void
Scheduler::heapPush(HeapEntry entry)
{
    _heap.push_back(entry);
    std::size_t i = _heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!_heap[i].before(_heap[parent]))
            break;
        std::swap(_heap[i], _heap[parent]);
        i = parent;
    }
}

void
Scheduler::heapPopMin()
{
    _heap.front() = _heap.back();
    _heap.pop_back();
    const std::size_t n = _heap.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n)
            break;
        std::size_t best = first_child;
        const std::size_t last_child =
            std::min(first_child + kArity, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (_heap[c].before(_heap[best]))
                best = c;
        }
        if (!_heap[best].before(_heap[i]))
            break;
        std::swap(_heap[i], _heap[best]);
        i = best;
    }
}

void
Scheduler::dropStaleTop()
{
    while (!_heap.empty() &&
           _slots[_heap.front().slot].generation !=
               _heap.front().generation) {
        heapPopMin();
    }
}

bool
Scheduler::step()
{
    for (;;) {
        dropStaleTop();
        if (_heap.empty())
            return false;
        const HeapEntry top = _heap.front();
        heapPopMin();
        DHISQ_ASSERT(top.when >= _now, "time went backwards");
        _now = top.when;
        ++_executed;
        --_pending;
        // Move the callback out and recycle the slot *before* invoking:
        // the callback may schedule new events (reusing this slot) or
        // cancel its own id (now stale, so a no-op).
        Callback cb = std::move(_slots[top.slot].cb);
        releaseSlot(top.slot);
        cb();
        return true;
    }
}

Cycle
Scheduler::run(Cycle limit)
{
    for (;;) {
        dropStaleTop();
        if (_heap.empty() || _heap.front().when > limit)
            break;
        step();
    }
    return _now;
}

void
Scheduler::reset()
{
    _heap.clear();
    _free_slots.clear();
    // Recycle every slot; the generation bump strands any outstanding ids
    // so stale handles can never collide after reset.
    for (std::uint32_t slot = 0; slot < _slots.size(); ++slot) {
        _slots[slot].cb.reset();
        releaseSlot(slot);
    }
    _now = 0;
    _pending = 0;
}

} // namespace dhisq::sim
