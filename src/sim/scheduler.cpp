#include "sim/scheduler.hpp"

#include <algorithm>

namespace dhisq::sim {

namespace {
/** Heap arity: 4-ary trades a shallower tree for a few extra compares,
 *  which wins for POD entries that fit two per cache line. */
constexpr std::size_t kArity = 4;
} // namespace

std::uint32_t
Scheduler::acquireSlot()
{
    if (!_free_slots.empty()) {
        const std::uint32_t slot = _free_slots.back();
        _free_slots.pop_back();
        return slot;
    }
    DHISQ_ASSERT(_slots.size() < UINT32_MAX, "slot pool exhausted");
    _slots.emplace_back();
    return std::uint32_t(_slots.size() - 1);
}

void
Scheduler::releaseSlot(std::uint32_t slot)
{
    // Bump the generation so every outstanding id for this slot goes
    // stale; skip 0 so makeId never returns the kNoEvent sentinel.
    if (++_slots[slot].generation == 0)
        _slots[slot].generation = 1;
    _free_slots.push_back(slot);
}

void
Scheduler::heapPush(std::vector<HeapEntry> &heap, HeapEntry entry)
{
    heap.push_back(entry);
    std::size_t i = heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!heap[i].before(heap[parent]))
            break;
        std::swap(heap[i], heap[parent]);
        i = parent;
    }
}

void
Scheduler::heapPopMin(std::vector<HeapEntry> &heap)
{
    heap.front() = heap.back();
    heap.pop_back();
    const std::size_t n = heap.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first_child = i * kArity + 1;
        if (first_child >= n)
            break;
        std::size_t best = first_child;
        const std::size_t last_child =
            std::min(first_child + kArity, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (heap[c].before(heap[best]))
                best = c;
        }
        if (!heap[best].before(heap[i]))
            break;
        std::swap(heap[i], heap[best]);
        i = best;
    }
}

void
Scheduler::dropStaleTop(std::vector<HeapEntry> &heap)
{
    while (!heap.empty() && stale(heap.front()))
        heapPopMin(heap);
}

void
Scheduler::dispatch(const HeapEntry &entry)
{
    DHISQ_ASSERT(entry.when >= _now, "time went backwards");
    _now = entry.when;
    ++_executed;
    --_pending;
    --pendingSlot(_slots[entry.slot].source);
    // Move the callback out and recycle the slot *before* invoking:
    // the callback may schedule new events (reusing this slot) or
    // cancel its own id (now stale, so a no-op).
    Callback cb = std::move(_slots[entry.slot].cb);
    _dispatch_source = _slots[entry.slot].source;
    releaseSlot(entry.slot);
    cb();
}

bool
Scheduler::step()
{
    DHISQ_ASSERT(_pool == nullptr,
                 "step() is serial-mode only; parallel runs use run()");
    dropStaleTop(_heap);
    if (_heap.empty())
        return false;
    const HeapEntry top = _heap.front();
    heapPopMin(_heap);
    dispatch(top);
    return true;
}

Cycle
Scheduler::run(Cycle limit)
{
    if (_pool != nullptr)
        return runParallel(limit);
    for (;;) {
        dropStaleTop(_heap);
        if (_heap.empty() || _heap.front().when > limit)
            break;
        step();
    }
    return _now;
}

void
Scheduler::reset()
{
    _heap.clear();
    _overflow.clear();
    for (auto &heap : _region_heaps)
        heap.clear();
    for (auto &staged : _staged)
        staged.clear();
    _free_slots.clear();
    // Recycle every slot; the generation bump strands any outstanding ids
    // so stale handles can never collide after reset.
    for (std::uint32_t slot = 0; slot < _slots.size(); ++slot) {
        _slots[slot].cb.reset();
        releaseSlot(slot);
    }
    _now = 0;
    _pending = 0;
    _pending_by_source.assign(_pending_by_source.size(), 0);
    _dispatch_source = kNoController;
    _in_dispatch = false;
    _window_last = 0;
}

// ---------------------------------------------------------------------------
// Conservative barrier-window parallel mode
// ---------------------------------------------------------------------------

void
Scheduler::collectLive(std::vector<HeapEntry> &out)
{
    const auto take = [&](std::vector<HeapEntry> &heap) {
        for (const HeapEntry &entry : heap) {
            if (!stale(entry))
                out.push_back(entry);
        }
        heap.clear();
    };
    take(_heap);
    take(_overflow);
    for (auto &heap : _region_heaps)
        take(heap);
}

void
Scheduler::configureParallel(PartitionPlan plan, unsigned threads)
{
    DHISQ_ASSERT(!_in_dispatch, "cannot reconfigure mid-dispatch");
    DHISQ_ASSERT(plan.num_regions >= 1, "partition needs >= 1 region");
    DHISQ_ASSERT(plan.lookahead >= 1, "lookahead must be >= 1 cycle");
    for (const std::uint32_t r : plan.region_of)
        DHISQ_ASSERT(r < plan.num_regions, "region index out of range");

    std::vector<HeapEntry> live;
    live.reserve(_pending);
    collectLive(live);

    _pool.reset(); // join old workers before repartitioning
    if (threads >= 2) {
        _plan = std::move(plan);
        _pool = std::make_unique<WorkerPool>(threads);
        _region_heaps.assign(_plan.num_regions, {});
        _staged.assign(_plan.num_regions, {});
        _staged_cursor.assign(_plan.num_regions, 0);
        for (const HeapEntry &entry : live) {
            heapPush(_region_heaps[_plan.regionOf(_slots[entry.slot].source)],
                     entry);
        }
    } else {
        _plan = PartitionPlan{};
        _region_heaps.clear();
        _staged.clear();
        _staged_cursor.clear();
        for (const HeapEntry &entry : live)
            heapPush(_heap, entry);
    }
}

void
Scheduler::stageRegion(unsigned r)
{
    auto &heap = _region_heaps[r];
    auto &staged = _staged[r];
    staged.clear();
    for (;;) {
        dropStaleTop(heap);
        if (heap.empty() || heap.front().when > _stage_last)
            break;
        staged.push_back(heap.front());
        heapPopMin(heap);
    }
}

void
Scheduler::dispatchWindow(Cycle window_last)
{
    _in_dispatch = true;
    _window_last = window_last;
    const std::uint32_t regions = _plan.num_regions;
    auto &cursor = _staged_cursor;
    cursor.assign(regions, 0);
    std::size_t staged_left = 0;
    for (std::uint32_t r = 0; r < regions; ++r)
        staged_left += _staged[r].size();
    for (;;) {
        // Pick the globally next event among the staged per-region
        // streams (each already (when, seq)-sorted) and the overflow
        // heap of intra-window arrivals. Linear scan: the region count
        // tracks the thread count, so this is a handful of compares —
        // and once the staged streams drain (the tail of every window
        // is pure intra-window arrivals) the scan is skipped entirely.
        const HeapEntry *best = nullptr;
        std::uint32_t best_region = 0;
        if (staged_left > 0) {
            for (std::uint32_t r = 0; r < regions; ++r) {
                auto &staged = _staged[r];
                std::size_t &cur = cursor[r];
                while (cur < staged.size() && stale(staged[cur])) {
                    ++cur; // cancelled after staging
                    --staged_left;
                }
                if (cur < staged.size() &&
                    (best == nullptr || staged[cur].before(*best))) {
                    best = &staged[cur];
                    best_region = r;
                }
            }
        }
        dropStaleTop(_overflow);
        bool from_overflow = false;
        if (!_overflow.empty() &&
            (best == nullptr || _overflow.front().before(*best))) {
            best = &_overflow.front();
            from_overflow = true;
        }
        if (best == nullptr)
            break;
        const HeapEntry top = *best;
        if (from_overflow) {
            heapPopMin(_overflow);
        } else {
            ++cursor[best_region];
            --staged_left;
        }
        if (stale(top))
            continue; // cancelled between the scan and the pop
        dispatch(top);
    }
    // Barrier quiescence: the window must be fully drained — nothing in
    // the overflow heap, and every region's next event beyond the bound
    // (intra-window arrivals never land in a region heap, so a live or
    // stale region top inside the window means staging missed events).
    DHISQ_ASSERT(_overflow.empty(), "window not quiescent: overflow left");
    for (std::uint32_t r = 0; r < regions; ++r) {
        DHISQ_ASSERT(_region_heaps[r].empty() ||
                         _region_heaps[r].front().when > window_last,
                     "window not quiescent: region ", r,
                     " holds an event at ",
                     _region_heaps[r].empty()
                         ? Cycle(0)
                         : _region_heaps[r].front().when,
                     " <= window end ", window_last);
        _staged[r].clear();
    }
    _in_dispatch = false;
}

Cycle
Scheduler::runParallel(Cycle limit)
{
    const auto stage_phase = [](void *ctx, unsigned r) {
        static_cast<Scheduler *>(ctx)->stageRegion(r);
    };
    for (;;) {
        // Window base: the minimum region-heap top, peeked on this thread
        // (no worker phase). A cancelled top may base the window early —
        // harmless: staging drops stale entries, so the round just covers
        // fewer live events, and the heaps still advance.
        Cycle t_min = kNoCycle;
        bool any = false;
        for (const auto &heap : _region_heaps) {
            if (!heap.empty() &&
                (!any || heap.front().when < t_min)) {
                t_min = heap.front().when;
                any = true;
            }
        }
        if (!any || t_min > limit)
            break;
        // Inclusive window bound: lookahead cycles from the base (the
        // conservative cross-region guarantee), widened to the batching
        // floor — wider windows stay deterministic, they only shift
        // intra-window arrivals onto the overflow path.
        const Cycle width = _plan.window() - 1;
        Cycle window_last =
            t_min > kNoCycle - width ? kNoCycle : t_min + width;
        if (window_last > limit)
            window_last = limit;
        // Staging (parallel): each worker drains its regions' events
        // inside the window into sorted staging vectors.
        _stage_last = window_last;
        _pool->forEach(_plan.num_regions, stage_phase, this);
        // Dispatch (serial): deterministic merge of the staged streams.
        dispatchWindow(window_last);
    }
    return _now;
}

} // namespace dhisq::sim
