#include "sim/scheduler.hpp"

#include <algorithm>

namespace dhisq::sim {

bool
Scheduler::isCancelled(EventId id)
{
    auto it = std::find(_cancelled.begin(), _cancelled.end(), id);
    if (it == _cancelled.end())
        return false;
    // Swap-erase: the cancel list is tiny in practice (one outstanding sync
    // guard per controller), so linear scans are cheaper than a hash set.
    *it = _cancelled.back();
    _cancelled.pop_back();
    return true;
}

bool
Scheduler::step()
{
    while (!_queue.empty()) {
        Event ev = _queue.top();
        _queue.pop();
        --_pending;
        if (isCancelled(ev.id))
            continue;
        DHISQ_ASSERT(ev.when >= _now, "time went backwards");
        _now = ev.when;
        ++_executed;
        ev.cb();
        return true;
    }
    return false;
}

Cycle
Scheduler::run(Cycle limit)
{
    while (!_queue.empty()) {
        if (_queue.top().when > limit)
            break;
        step();
    }
    return _now;
}

void
Scheduler::reset()
{
    _queue = {};
    _cancelled.clear();
    _now = 0;
    _pending = 0;
    // Keep _next_id monotone so stale ids can never collide after reset.
}

} // namespace dhisq::sim
