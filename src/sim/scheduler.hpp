/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * CACTUS-Light models the microarchitecture at transaction level
 * (Section 6.4.1); we adopt the same methodology: every architectural unit
 * schedules callbacks on a single global Scheduler whose time base is the
 * 250 MHz TCU clock (1 tick == 1 cycle == 4 ns).
 *
 * Determinism: events at the same cycle fire in schedule order (a strictly
 * increasing sequence number breaks ties), so a given program + seed always
 * produces the same trace.
 *
 * Hot-path design (reworked for the sweep harness, which runs thousands of
 * points per process):
 *
 *  - Callback state lives in a slot pool ("buckets"): each pending event
 *    owns one slot holding its sim::Callback (small-buffer, no per-event
 *    heap allocation for ordinary captures) plus a generation counter.
 *  - The priority queue is a 4-ary min-heap of 24-byte POD entries
 *    {when, seq, slot, generation}; sift operations move PODs, never
 *    callbacks.
 *  - cancel() is O(1): it validates the id's generation against the slot,
 *    destroys the callback and recycles the slot immediately. The heap
 *    entry stays behind and is discarded on pop by a single generation
 *    compare — there is no cancelled-id list to scan, so cancel-heavy
 *    workloads (one outstanding sync guard per controller) stay linear.
 *
 * EventId packs (slot index << 32 | generation); generations start at 1 so
 * the kNoEvent sentinel 0 is never produced, and a stale id (slot since
 * recycled, or scheduler reset) simply fails the generation compare, which
 * keeps "cancel after fire is a harmless no-op" true by construction.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "sim/callback.hpp"

namespace dhisq::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel event id. */
inline constexpr EventId kNoEvent = 0;

/** Deterministic discrete-event scheduler. */
class Scheduler
{
  public:
    using Callback = sim::Callback;

    Scheduler() = default;
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Current simulation time in cycles. */
    Cycle now() const { return _now; }

    /**
     * Schedule `cb` to run at absolute cycle `when` (>= now()).
     * @return an id usable with cancel().
     */
    EventId
    schedule(Cycle when, Callback cb)
    {
        DHISQ_ASSERT(when >= _now, "scheduling event in the past: when=",
                     when, " now=", _now);
        const std::uint32_t slot = acquireSlot();
        _slots[slot].cb = std::move(cb);
        heapPush(HeapEntry{when, ++_next_seq, slot,
                           _slots[slot].generation});
        ++_pending;
        return makeId(slot, _slots[slot].generation);
    }

    /** Schedule `cb` after `delay` cycles. */
    EventId
    scheduleIn(Cycle delay, Callback cb)
    {
        return schedule(_now + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event in O(1). Cancelling an
     * already-fired or already-cancelled event is a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        const std::uint32_t slot = slotOf(id);
        if (id == kNoEvent || slot >= _slots.size() ||
            _slots[slot].generation != generationOf(id)) {
            return;
        }
        _slots[slot].cb.reset();
        releaseSlot(slot);
        --_pending;
    }

    /** True if no runnable events remain. */
    bool idle() const { return _pending == 0; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Run a single event.
     * @return false when the queue is empty.
     */
    bool step();

    /**
     * Run until the queue drains or `limit` cycles is exceeded.
     * @return the final simulation time.
     */
    Cycle run(Cycle limit = kNoCycle);

    /** Reset time and drop all pending events. */
    void reset();

  private:
    /** POD heap entry; the callback stays in its slot. */
    struct HeapEntry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t generation;

        bool
        before(const HeapEntry &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    /** One pending event's state. Generation 0 is never issued. */
    struct Slot
    {
        Callback cb;
        std::uint32_t generation = 1;
    };

    static EventId
    makeId(std::uint32_t slot, std::uint32_t generation)
    {
        return (EventId(slot) << 32) | EventId(generation);
    }
    static std::uint32_t slotOf(EventId id)
    {
        return std::uint32_t(id >> 32);
    }
    static std::uint32_t generationOf(EventId id)
    {
        return std::uint32_t(id);
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);

    void heapPush(HeapEntry entry);
    void heapPopMin();
    /** Drop heap entries whose slot generation moved on (cancelled). */
    void dropStaleTop();

    std::vector<HeapEntry> _heap; ///< 4-ary min-heap (when, seq).
    std::vector<Slot> _slots;
    std::vector<std::uint32_t> _free_slots;
    Cycle _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _pending = 0;
    std::uint64_t _executed = 0;
};

} // namespace dhisq::sim
