/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * CACTUS-Light models the microarchitecture at transaction level
 * (Section 6.4.1); we adopt the same methodology: every architectural unit
 * schedules callbacks on a single global Scheduler whose time base is the
 * 250 MHz TCU clock (1 tick == 1 cycle == 4 ns).
 *
 * Determinism: events at the same cycle fire in schedule order (a strictly
 * increasing sequence number breaks ties), so a given program + seed always
 * produces the same trace.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace dhisq::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel event id. */
inline constexpr EventId kNoEvent = 0;

/** Deterministic discrete-event scheduler. */
class Scheduler
{
  public:
    using Callback = std::function<void()>;

    Scheduler() = default;
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Current simulation time in cycles. */
    Cycle now() const { return _now; }

    /**
     * Schedule `cb` to run at absolute cycle `when` (>= now()).
     * @return an id usable with cancel().
     */
    EventId
    schedule(Cycle when, Callback cb)
    {
        DHISQ_ASSERT(when >= _now, "scheduling event in the past: when=",
                     when, " now=", _now);
        const EventId id = ++_next_id;
        _queue.push(Event{when, id, std::move(cb)});
        ++_pending;
        return id;
    }

    /** Schedule `cb` after `delay` cycles. */
    EventId
    scheduleIn(Cycle delay, Callback cb)
    {
        return schedule(_now + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired or
     * already-cancelled event is a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        if (id != kNoEvent)
            _cancelled.push_back(id);
    }

    /** True if no runnable events remain. */
    bool idle() const { return _pending == 0; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Run a single event.
     * @return false when the queue is empty.
     */
    bool step();

    /**
     * Run until the queue drains or `limit` cycles is exceeded.
     * @return the final simulation time.
     */
    Cycle run(Cycle limit = kNoCycle);

    /** Reset time and drop all pending events. */
    void reset();

  private:
    struct Event
    {
        Cycle when;
        EventId id;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    bool isCancelled(EventId id);

    std::priority_queue<Event, std::vector<Event>, std::greater<>> _queue;
    std::vector<EventId> _cancelled;
    Cycle _now = 0;
    EventId _next_id = kNoEvent;
    std::uint64_t _pending = 0;
    std::uint64_t _executed = 0;
};

} // namespace dhisq::sim
