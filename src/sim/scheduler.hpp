/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * CACTUS-Light models the microarchitecture at transaction level
 * (Section 6.4.1); we adopt the same methodology: every architectural unit
 * schedules callbacks on a single global Scheduler whose time base is the
 * 250 MHz TCU clock (1 tick == 1 cycle == 4 ns).
 *
 * Determinism: events at the same cycle fire in schedule order (a strictly
 * increasing sequence number breaks ties), so a given program + seed always
 * produces the same trace.
 *
 * Hot-path design (reworked for the sweep harness, which runs thousands of
 * points per process):
 *
 *  - Callback state lives in a slot pool ("buckets"): each pending event
 *    owns one slot holding its sim::Callback (small-buffer, no per-event
 *    heap allocation for ordinary captures) plus a generation counter.
 *  - The priority queue is a 4-ary min-heap of 24-byte POD entries
 *    {when, seq, slot, generation}; sift operations move PODs, never
 *    callbacks.
 *  - cancel() is O(1): it validates the id's generation against the slot,
 *    destroys the callback and recycles the slot immediately. The heap
 *    entry stays behind and is discarded on pop by a single generation
 *    compare — there is no cancelled-id list to scan, so cancel-heavy
 *    workloads (one outstanding sync guard per controller) stay linear.
 *
 * EventId packs (slot index << 32 | generation); generations start at 1 so
 * the kNoEvent sentinel 0 is never produced, and a stale id (slot since
 * recycled, or scheduler reset) simply fails the generation compare, which
 * keeps "cancel after fire is a harmless no-op" true by construction.
 *
 * Events carry a *source tag* (the ControllerId whose activity caused
 * them). Tags are inherited: an event scheduled from inside a callback
 * defaults to the dispatching event's source, so only entry-point call
 * sites (fabric deliveries, core starts, measurement results) tag
 * explicitly. Tags feed the per-source pending counters (pendingFor) and
 * the conservative parallel mode's region partitioning — they never affect
 * event ordering, so a mis-tagged event can cost balance, not correctness.
 *
 * Parallel mode (configureParallel + a PartitionPlan): a conservative
 * barrier-window PDES layer over the same slot-pool/cancel/callback
 * contracts, bit-identical to the serial path by construction. See
 * docs/SIMULATION.md for the model and runParallel below for the rounds.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "sim/callback.hpp"
#include "sim/parallel.hpp"

namespace dhisq::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel event id. */
inline constexpr EventId kNoEvent = 0;

/** Deterministic discrete-event scheduler. */
class Scheduler
{
  public:
    using Callback = sim::Callback;

    Scheduler() = default;
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Current simulation time in cycles. */
    Cycle now() const { return _now; }

    /**
     * Schedule `cb` to run at absolute cycle `when` (>= now()).
     * `source` tags the event with the controller whose activity caused
     * it; the default (kNoController) inherits the source of the event
     * being dispatched, which is right for everything scheduled from
     * inside a unit's own callback chain.
     * @return an id usable with cancel().
     */
    EventId
    schedule(Cycle when, Callback cb, ControllerId source = kNoController)
    {
        DHISQ_ASSERT(when >= _now, "scheduling event in the past: when=",
                     when, " now=", _now);
        if (source == kNoController)
            source = _dispatch_source;
        const std::uint32_t slot = acquireSlot();
        _slots[slot].cb = std::move(cb);
        _slots[slot].source = source;
        const HeapEntry entry{when, ++_next_seq, slot,
                              _slots[slot].generation};
        if (_pool == nullptr) {
            heapPush(_heap, entry);
        } else if (_in_dispatch && when <= _window_last) {
            // Landing inside the open window: the region queues below the
            // window are already staged, so route through the overflow
            // heap the dispatch loop merges from.
            heapPush(_overflow, entry);
        } else {
            heapPush(_region_heaps[_plan.regionOf(source)], entry);
        }
        ++_pending;
        ++pendingSlot(source);
        return makeId(slot, _slots[slot].generation);
    }

    /** Schedule `cb` after `delay` cycles. */
    EventId
    scheduleIn(Cycle delay, Callback cb, ControllerId source = kNoController)
    {
        return schedule(_now + delay, std::move(cb), source);
    }

    /**
     * Cancel a previously scheduled event in O(1). Cancelling an
     * already-fired or already-cancelled event is a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        const std::uint32_t slot = slotOf(id);
        if (id == kNoEvent || slot >= _slots.size() ||
            _slots[slot].generation != generationOf(id)) {
            return;
        }
        _slots[slot].cb.reset();
        --pendingSlot(_slots[slot].source);
        releaseSlot(slot);
        --_pending;
    }

    /** True if no runnable events remain. */
    bool idle() const { return _pending == 0; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /** Runnable events across all sources. */
    std::uint64_t pending() const { return _pending; }

    /**
     * Runnable events tagged with `source` (kNoController counts the
     * untagged bucket). O(1); maintained on schedule/cancel/dispatch, so
     * window-drain and quiescence assertions are cheap.
     */
    std::uint64_t
    pendingFor(ControllerId source) const
    {
        const std::size_t i = pendingIndex(source);
        return i < _pending_by_source.size() ? _pending_by_source[i] : 0;
    }

    /**
     * Run a single event. Serial mode only (the parallel rounds stage
     * whole windows; single-stepping them would desynchronize staging).
     * @return false when the queue is empty.
     */
    bool step();

    /**
     * Run until the queue drains or `limit` cycles is exceeded.
     * @return the final simulation time.
     */
    Cycle run(Cycle limit = kNoCycle);

    /** Reset time and drop all pending events (keeps the parallel config). */
    void reset();

    /**
     * Engage (threads >= 2) or disengage (threads <= 1) the conservative
     * parallel mode. Pending events are redistributed, so configuring
     * mid-lifetime is safe; the dispatch order — and therefore every
     * simulation artifact — is identical either way. `plan` partitions
     * sources into regions and carries the topology lookahead.
     */
    void configureParallel(PartitionPlan plan, unsigned threads);

    /** True when the parallel mode is engaged. */
    bool parallel() const { return _pool != nullptr; }

    /** The active partition plan (meaningful when parallel()). */
    const PartitionPlan &partition() const { return _plan; }

  private:
    /** POD heap entry; the callback stays in its slot. */
    struct HeapEntry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t generation;

        bool
        before(const HeapEntry &other) const
        {
            if (when != other.when)
                return when < other.when;
            return seq < other.seq;
        }
    };

    /** One pending event's state. Generation 0 is never issued. */
    struct Slot
    {
        Callback cb;
        std::uint32_t generation = 1;
        ControllerId source = kNoController;
    };

    static EventId
    makeId(std::uint32_t slot, std::uint32_t generation)
    {
        return (EventId(slot) << 32) | EventId(generation);
    }
    static std::uint32_t slotOf(EventId id)
    {
        return std::uint32_t(id >> 32);
    }
    static std::uint32_t generationOf(EventId id)
    {
        return std::uint32_t(id);
    }

    static std::size_t
    pendingIndex(ControllerId source)
    {
        return source == kNoController ? 0 : std::size_t(source) + 1;
    }

    std::uint64_t &
    pendingSlot(ControllerId source)
    {
        const std::size_t i = pendingIndex(source);
        if (i >= _pending_by_source.size())
            _pending_by_source.resize(i + 1, 0);
        return _pending_by_source[i];
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);

    static void heapPush(std::vector<HeapEntry> &heap, HeapEntry entry);
    static void heapPopMin(std::vector<HeapEntry> &heap);
    /** Drop heap entries whose slot generation moved on (cancelled). */
    void dropStaleTop(std::vector<HeapEntry> &heap);

    /** True when the entry's slot generation moved on (cancelled). */
    bool
    stale(const HeapEntry &entry) const
    {
        return _slots[entry.slot].generation != entry.generation;
    }

    /** Pop `entry`'s callback and invoke it at its timestamp. */
    void dispatch(const HeapEntry &entry);

    // ---- Parallel (conservative barrier-window) mode -------------------

    /** Fold every live heap entry into `out` (stale entries dropped). */
    void collectLive(std::vector<HeapEntry> &out);

    /** Worker phase: drain region r's events with when <= _stage_last. */
    void stageRegion(unsigned r);

    /** Merge staged streams + overflow in (when, seq) order and execute. */
    void dispatchWindow(Cycle window_last);

    Cycle runParallel(Cycle limit);

    std::vector<HeapEntry> _heap; ///< Serial-mode 4-ary min-heap (when, seq).
    std::vector<Slot> _slots;
    std::vector<std::uint32_t> _free_slots;
    Cycle _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _pending = 0;
    std::uint64_t _executed = 0;
    /** Per-source pending counts; index 0 = untagged, i+1 = controller i. */
    std::vector<std::uint64_t> _pending_by_source;
    /** Source tag of the event being dispatched (inherited by schedule). */
    ControllerId _dispatch_source = kNoController;

    // Parallel mode state. Workers touch only their own region's heap,
    // min entry and staged vector, and read slot generations — all phase-
    // separated from the (serial) dispatch that mutates slots.
    std::unique_ptr<WorkerPool> _pool;
    PartitionPlan _plan;
    std::vector<std::vector<HeapEntry>> _region_heaps;
    std::vector<std::vector<HeapEntry>> _staged; ///< Sorted, per region.
    std::vector<std::size_t> _staged_cursor;
    std::vector<HeapEntry> _overflow; ///< Intra-window arrivals (a heap).
    Cycle _stage_last = 0;  ///< Inclusive staging bound for the workers.
    Cycle _window_last = 0; ///< Inclusive bound of the open window.
    bool _in_dispatch = false;
};

} // namespace dhisq::sim
