#include "sim/parallel.hpp"

#include "common/logging.hpp"

namespace dhisq::sim {

WorkerPool::WorkerPool(unsigned workers) : _count(workers)
{
    DHISQ_ASSERT(workers >= 1, "worker pool needs at least one worker");
    _threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _threads.emplace_back([this, i] { workerMain(i); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _work_cv.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
WorkerPool::workerMain(unsigned index)
{
    const unsigned stride = _count;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _work_cv.wait(lock, [&] { return _stop || _phase != seen; });
        if (_stop)
            return;
        seen = _phase;
        const ItemFn fn = _fn;
        void *const ctx = _ctx;
        const unsigned n = _num_items;
        lock.unlock();
        for (unsigned item = index; item < n; item += stride)
            fn(ctx, item);
        lock.lock();
        if (++_done == _count)
            _done_cv.notify_one();
    }
}

void
WorkerPool::forEach(unsigned num_items, ItemFn fn, void *ctx)
{
    std::unique_lock<std::mutex> lock(_mutex);
    _fn = fn;
    _ctx = ctx;
    _num_items = num_items;
    _done = 0;
    ++_phase;
    _work_cv.notify_all();
    _done_cv.wait(lock, [&] { return _done == _count; });
}

} // namespace dhisq::sim
