/**
 * @file
 * Binary encoding of HISQ instructions.
 *
 * Classical RV32I instructions use the standard RISC-V encodings so the
 * binary format is recognisable and externally checkable. The quantum
 * extension occupies the RISC-V "custom-0" (0x0B) and "custom-1" (0x2B)
 * opcode spaces:
 *
 * custom-0 (funct3 selects the variant):
 *   0: cw.i.i   port = S-imm[11:0],  codeword = bits[24:15] (10-bit)
 *   1: cw.i.r   port = S-imm[11:0],  codeword = reg[rs2]
 *   2: cw.r.i   port = reg[rs1],     codeword = S-imm[11:0]
 *   3: cw.r.r   port = reg[rs1],     codeword = reg[rs2]
 *   4: waiti    duration = S-imm[11:0] (unsigned)
 *   5: waitr    duration = reg[rs1]
 *   6: sync     target = S-imm[11:0] (bit 11 = router), residual =
 *               bits[24:15] (10-bit unsigned)
 *   7: halt
 *
 * custom-1:
 *   0: send     destination = S-imm[11:0], payload = reg[rs2]
 *   1: recv     rd = bits[11:7], source = I-imm[11:0] (0xFFF = any)
 *   2: wtrig    trigger source = S-imm[11:0]
 *
 * S-imm[11:0] denotes the standard S-type immediate split
 * (bits[31:25] ++ bits[11:7]).
 */
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "isa/instruction.hpp"

namespace dhisq::isa {

/** Encode a decoded instruction into its 32-bit word. Panics on field
 *  overflow (the assembler validates ranges first). */
std::uint32_t encode(const Instruction &ins);

/** Decode a 32-bit word. Returns Op::kInvalid in `op` for unknown words. */
Instruction decode(std::uint32_t word);

/** Range limits imposed by the encoding (used by assembler diagnostics). */
inline constexpr std::int32_t kMaxCwImmediate = 0x3FF;   // 10-bit codeword
inline constexpr std::int32_t kMaxSImmediate = 2047;     // signed 12-bit
inline constexpr std::int32_t kMinSImmediate = -2048;
inline constexpr std::int32_t kMaxWaitImmediate = 0xFFF; // unsigned 12-bit
inline constexpr std::int32_t kMaxSyncResidual = 0x3FF;  // 10-bit

} // namespace dhisq::isa
