/**
 * @file
 * Two-pass HISQ assembler.
 *
 * Accepted syntax (one instruction per line):
 *
 *     # comment        // comment
 *     loop:                          label definition
 *     addi $1, $0, 40                RV32I, $N / xN / ABI register names
 *     cw.i.i 21, 2                   codeword 2 -> port 21
 *     cw.i.r 3, $3                   codeword from register
 *     waiti 8
 *     waitr $1
 *     sync 2                         sync with neighbour controller 2
 *     sync r1, 16                    region sync via router 1, residual 16
 *     send 4, $5                     payload $5 -> controller 4
 *     recv $6                        blocking receive from any source
 *     recv $6, 2                     blocking receive from controller 2
 *     bne $1, $2, loop               label or raw byte offset (paper style)
 *     jal $0, -44
 *     halt
 *
 * Pseudo-instructions: nop, mv, li (expands to lui+addi when needed), j.
 */
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "isa/instruction.hpp"

namespace dhisq::isa {

/** Assemble HISQ source text into a Program. */
Result<Program> assemble(std::string_view source,
                         std::string program_name = "program");

/** Assemble or die — convenience for tests/benches with trusted sources. */
Program assembleOrDie(std::string_view source,
                      std::string program_name = "program");

} // namespace dhisq::isa
