/**
 * @file
 * HISQ operation enumeration and classification.
 *
 * HISQ is an extension of RV32I (Section 3.1.1): the classical subset keeps
 * the standard RISC-V semantics (interrupt/fence functionality is disabled),
 * and the quantum-control extension adds:
 *
 *   cw.{i,r}.{i,r} <port>, <codeword>   "send codeword to port at time-point"
 *   waiti/waitr                          advance the timing cursor
 *   sync <tgt>[, <res>]                  BISP synchronization (Section 3.1.3)
 *   wtrig <src>                          pause the TCU timer at the current
 *                                        timing point until an external
 *                                        trigger (message arrival) fires —
 *                                        our realization of the TCU's
 *                                        external-trigger ports (Section 3.2)
 *   send/recv                            Message Unit communication
 *   halt                                 retire the controller (simulation)
 *
 * The `res` field of sync is our documented encoding of the booking residual:
 * the distance, in timing-cursor cycles, from the booking point to the
 * synchronization point (DESIGN.md Section 2).
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace dhisq::isa {

/** Every HISQ operation. */
enum class Op : std::uint8_t {
    // RV32I register-register.
    kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
    // RV32I register-immediate.
    kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
    // RV32I upper-immediate.
    kLui, kAuipc,
    // RV32I loads/stores.
    kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
    // RV32I control flow.
    kJal, kJalr, kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    // HISQ quantum-control extension.
    kCwII, kCwIR, kCwRI, kCwRR,
    kWaitI, kWaitR,
    kSync,
    kWtrig,
    kSend, kRecv,
    kHalt,
    kInvalid,
};

/** Broad instruction categories used by the core dispatcher. */
enum class OpClass : std::uint8_t {
    Classical,   ///< Pure RV32I arithmetic / memory.
    Branch,      ///< Control flow (branches, jal, jalr).
    Codeword,    ///< cw.* — enqueued into a TCU codeword queue.
    Wait,        ///< waiti/waitr — advances the timing cursor.
    Sync,        ///< sync — enqueued into the TCU sync queue.
    Trigger,     ///< wtrig — timed wait for an external trigger (§3.2).
    Message,     ///< send/recv — handled by the Message Unit.
    Halt,        ///< halt — retires the controller.
    Invalid,
};

/** Classify an operation. */
OpClass classOf(Op op);

/** Canonical mnemonic, e.g. "cw.i.r". */
std::string_view mnemonic(Op op);

/** Inverse of mnemonic(); Op::kInvalid when unknown. */
Op opFromMnemonic(std::string_view text);

} // namespace dhisq::isa
