#include "isa/opcodes.hpp"

#include <array>
#include <utility>

namespace dhisq::isa {

OpClass
classOf(Op op)
{
    switch (op) {
      case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
      case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
      case Op::kOr: case Op::kAnd:
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
      case Op::kSrai:
      case Op::kLui: case Op::kAuipc:
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw:
        return OpClass::Classical;
      case Op::kJal: case Op::kJalr:
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        return OpClass::Branch;
      case Op::kCwII: case Op::kCwIR: case Op::kCwRI: case Op::kCwRR:
        return OpClass::Codeword;
      case Op::kWaitI: case Op::kWaitR:
        return OpClass::Wait;
      case Op::kSync:
        return OpClass::Sync;
      case Op::kWtrig:
        return OpClass::Trigger;
      case Op::kSend: case Op::kRecv:
        return OpClass::Message;
      case Op::kHalt:
        return OpClass::Halt;
      case Op::kInvalid:
        return OpClass::Invalid;
    }
    return OpClass::Invalid;
}

namespace {

constexpr std::pair<Op, std::string_view> kMnemonics[] = {
    {Op::kAdd, "add"},     {Op::kSub, "sub"},     {Op::kSll, "sll"},
    {Op::kSlt, "slt"},     {Op::kSltu, "sltu"},   {Op::kXor, "xor"},
    {Op::kSrl, "srl"},     {Op::kSra, "sra"},     {Op::kOr, "or"},
    {Op::kAnd, "and"},     {Op::kAddi, "addi"},   {Op::kSlti, "slti"},
    {Op::kSltiu, "sltiu"}, {Op::kXori, "xori"},   {Op::kOri, "ori"},
    {Op::kAndi, "andi"},   {Op::kSlli, "slli"},   {Op::kSrli, "srli"},
    {Op::kSrai, "srai"},   {Op::kLui, "lui"},     {Op::kAuipc, "auipc"},
    {Op::kLb, "lb"},       {Op::kLh, "lh"},       {Op::kLw, "lw"},
    {Op::kLbu, "lbu"},     {Op::kLhu, "lhu"},     {Op::kSb, "sb"},
    {Op::kSh, "sh"},       {Op::kSw, "sw"},       {Op::kJal, "jal"},
    {Op::kJalr, "jalr"},   {Op::kBeq, "beq"},     {Op::kBne, "bne"},
    {Op::kBlt, "blt"},     {Op::kBge, "bge"},     {Op::kBltu, "bltu"},
    {Op::kBgeu, "bgeu"},   {Op::kCwII, "cw.i.i"}, {Op::kCwIR, "cw.i.r"},
    {Op::kCwRI, "cw.r.i"}, {Op::kCwRR, "cw.r.r"}, {Op::kWaitI, "waiti"},
    {Op::kWaitR, "waitr"}, {Op::kSync, "sync"},   {Op::kWtrig, "wtrig"},
    {Op::kSend, "send"},   {Op::kRecv, "recv"},   {Op::kHalt, "halt"},
};

} // namespace

std::string_view
mnemonic(Op op)
{
    for (const auto &[o, name] : kMnemonics) {
        if (o == op)
            return name;
    }
    return "invalid";
}

Op
opFromMnemonic(std::string_view text)
{
    for (const auto &[o, name] : kMnemonics) {
        if (name == text)
            return o;
    }
    return Op::kInvalid;
}

} // namespace dhisq::isa
