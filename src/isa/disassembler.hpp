/**
 * @file
 * Disassembler: decoded instruction -> canonical assembly text.
 * Used for diagnostics and for encode/decode round-trip testing.
 */
#pragma once

#include <string>

#include "isa/instruction.hpp"

namespace dhisq::isa {

/** Render one instruction in assembler-accepted syntax. */
std::string disassemble(const Instruction &ins);

/** Render a whole program, one instruction per line with PC prefixes. */
std::string disassemble(const Program &program);

} // namespace dhisq::isa
