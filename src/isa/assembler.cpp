#include "isa/assembler.hpp"

#include <map>
#include <optional>
#include <vector>

#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace dhisq::isa {

namespace {

/** Pending label reference to patch after all labels are known. */
struct Fixup
{
    std::size_t instr_index;
    std::string label;
    int lineno;
};

/** Register-name table: $N, xN and RV32I ABI names. */
std::optional<std::uint8_t>
parseRegister(std::string_view tok)
{
    if (tok.empty())
        return std::nullopt;
    if (tok[0] == '$' || tok[0] == 'x' || tok[0] == 'X') {
        std::int64_t n;
        if (parseInt(tok.substr(1), &n) && n >= 0 && n <= 31)
            return std::uint8_t(n);
        return std::nullopt;
    }
    static const std::map<std::string, std::uint8_t> kAbi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},   {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12},  {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17},  {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22},  {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    auto it = kAbi.find(toLower(tok));
    if (it != kAbi.end())
        return it->second;
    return std::nullopt;
}

/** Split "addi $1, $0, 40" into mnemonic + operand tokens. */
void
tokenize(std::string_view line, std::string *mnemonic,
         std::vector<std::string> *operands)
{
    auto first_space = line.find_first_of(" \t");
    if (first_space == std::string_view::npos) {
        *mnemonic = std::string(line);
        return;
    }
    *mnemonic = std::string(line.substr(0, first_space));
    const auto rest = line.substr(first_space);
    for (auto field : split(rest, ',')) {
        auto t = trim(field);
        if (!t.empty())
            operands->push_back(std::string(t));
    }
}

/** Parse "imm(reg)" memory operands for loads/stores. */
bool
parseMemOperand(std::string_view tok, std::int32_t *offset,
                std::uint8_t *base)
{
    auto open = tok.find('(');
    auto close = tok.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
        return false;
    }
    std::int64_t off = 0;
    const auto off_text = trim(tok.substr(0, open));
    if (!off_text.empty() && !parseInt(off_text, &off))
        return false;
    auto reg = parseRegister(trim(tok.substr(open + 1, close - open - 1)));
    if (!reg)
        return false;
    *offset = std::int32_t(off);
    *base = *reg;
    return true;
}

class AssemblerPass
{
  public:
    explicit AssemblerPass(std::string name) { _program.name = std::move(name); }

    Result<Program>
    run(std::string_view source)
    {
        int lineno = 0;
        for (auto raw_line : split(source, '\n')) {
            ++lineno;
            std::string_view line = raw_line;
            // Strip comments: '#', "//" and ';'.
            for (std::string_view marker : {"#", "//", ";"}) {
                auto pos = line.find(marker);
                if (pos != std::string_view::npos)
                    line = line.substr(0, pos);
            }
            line = trim(line);
            if (line.empty())
                continue;

            // Peel off leading labels ("loop: addi ..." is allowed).
            while (true) {
                auto colon = line.find(':');
                if (colon == std::string_view::npos)
                    break;
                const auto head = trim(line.substr(0, colon));
                if (head.find_first_of(" \t") != std::string_view::npos)
                    break; // ':' belongs to an operand, not a label
                if (head.empty())
                    return err(lineno, "empty label");
                if (_labels.count(std::string(head)))
                    return err(lineno, "duplicate label '" +
                                           std::string(head) + "'");
                _labels[std::string(head)] = _program.instructions.size();
                line = trim(line.substr(colon + 1));
                if (line.empty())
                    break;
            }
            if (line.empty())
                continue;

            auto status = parseInstruction(line, lineno);
            if (!status.isOk())
                return Result<Program>::error(status.message());
        }

        // Resolve label fixups into PC-relative byte offsets.
        for (const auto &fix : _fixups) {
            auto it = _labels.find(fix.label);
            if (it == _labels.end()) {
                return err(fix.lineno,
                           "unknown label '" + fix.label + "'");
            }
            const auto delta =
                (std::int64_t(it->second) -
                 std::int64_t(fix.instr_index)) * 4;
            _program.instructions[fix.instr_index].imm =
                std::int32_t(delta);
        }

        // Final encode + range validation.
        for (std::size_t i = 0; i < _program.instructions.size(); ++i) {
            auto status = validate(_program.instructions[i],
                                   _program.lines[i]);
            if (!status.isOk())
                return Result<Program>::error(status.message());
            _program.words.push_back(encode(_program.instructions[i]));
        }
        return std::move(_program);
    }

  private:
    Result<Program>
    err(int lineno, const std::string &msg)
    {
        return Result<Program>::error(
            _program.name + ":" + std::to_string(lineno) + ": " + msg);
    }

    Status
    errStatus(int lineno, const std::string &msg)
    {
        return Status::error(_program.name + ":" + std::to_string(lineno) +
                             ": " + msg);
    }

    void
    emit(Instruction ins, int lineno)
    {
        _program.instructions.push_back(ins);
        _program.lines.push_back(lineno);
    }

    Status
    needOperands(const std::vector<std::string> &ops, std::size_t lo,
                 std::size_t hi, int lineno, std::string_view mnem)
    {
        if (ops.size() < lo || ops.size() > hi) {
            return errStatus(lineno, std::string(mnem) +
                                         ": wrong operand count");
        }
        return Status::ok();
    }

    /** Parse either a numeric branch offset or record a label fixup. */
    Status
    branchTarget(const std::string &tok, int lineno, std::int32_t *imm)
    {
        std::int64_t value;
        if (parseInt(tok, &value)) {
            *imm = std::int32_t(value);
            return Status::ok();
        }
        _fixups.push_back(
            Fixup{_program.instructions.size(), tok, lineno});
        *imm = 0;
        return Status::ok();
    }

    Status
    immOperand(const std::string &tok, int lineno, std::int32_t *imm)
    {
        std::int64_t value;
        if (!parseInt(tok, &value))
            return errStatus(lineno, "expected immediate, got '" + tok + "'");
        *imm = std::int32_t(value);
        return Status::ok();
    }

    Status
    regOperand(const std::string &tok, int lineno, std::uint8_t *reg)
    {
        auto r = parseRegister(tok);
        if (!r)
            return errStatus(lineno, "expected register, got '" + tok + "'");
        *reg = *r;
        return Status::ok();
    }

    /** sync target: plain number = controller, rN/RN = router. */
    Status
    syncTarget(const std::string &tok, int lineno, std::int32_t *imm)
    {
        std::string_view t = tok;
        bool router = false;
        if (!t.empty() && (t[0] == 'r' || t[0] == 'R')) {
            // Only treat as a router name when the rest is numeric.
            std::int64_t n;
            if (parseInt(t.substr(1), &n)) {
                if (n < 0 || n > 0x7FF)
                    return errStatus(lineno, "router id out of range");
                *imm = std::int32_t(n) | kSyncRouterFlag;
                return Status::ok();
            }
        }
        std::int64_t n;
        if (!parseInt(t, &n) || n < 0 || n > 0x7FF) {
            return errStatus(lineno,
                             "bad sync target '" + tok + "'");
        }
        router = false;
        (void)router;
        *imm = std::int32_t(n);
        return Status::ok();
    }

    Status parseInstruction(std::string_view line, int lineno);
    Status validate(const Instruction &ins, int lineno);

    Program _program;
    std::map<std::string, std::size_t> _labels;
    std::vector<Fixup> _fixups;
};

Status
AssemblerPass::parseInstruction(std::string_view line, int lineno)
{
    std::string mnem;
    std::vector<std::string> ops;
    tokenize(line, &mnem, &ops);
    mnem = toLower(mnem);

    // Pseudo-instructions first.
    if (mnem == "nop") {
        emit(Instruction{Op::kAddi, 0, 0, 0, 0, 0}, lineno);
        return Status::ok();
    }
    if (mnem == "mv") {
        if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
            return s;
        Instruction ins{Op::kAddi, 0, 0, 0, 0, 0};
        if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
            return s;
        if (auto s = regOperand(ops[1], lineno, &ins.rs1); !s.isOk())
            return s;
        emit(ins, lineno);
        return Status::ok();
    }
    if (mnem == "li") {
        if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
            return s;
        std::uint8_t rd;
        std::int32_t value;
        if (auto s = regOperand(ops[0], lineno, &rd); !s.isOk())
            return s;
        if (auto s = immOperand(ops[1], lineno, &value); !s.isOk())
            return s;
        if (value >= -2048 && value <= 2047) {
            emit(Instruction{Op::kAddi, rd, 0, 0, value, 0}, lineno);
        } else {
            // lui + addi pair, compensating for addi's sign extension.
            std::int32_t hi = value & ~0xFFF;
            std::int32_t lo = value & 0xFFF;
            if (lo >= 2048) {
                lo -= 4096;
                hi += 4096;
            }
            emit(Instruction{Op::kLui, rd, 0, 0, hi, 0}, lineno);
            emit(Instruction{Op::kAddi, rd, rd, 0, lo, 0}, lineno);
        }
        return Status::ok();
    }
    if (mnem == "j") {
        if (auto s = needOperands(ops, 1, 1, lineno, mnem); !s.isOk())
            return s;
        Instruction ins{Op::kJal, 0, 0, 0, 0, 0};
        if (auto s = branchTarget(ops[0], lineno, &ins.imm); !s.isOk())
            return s;
        emit(ins, lineno);
        return Status::ok();
    }

    const Op op = opFromMnemonic(mnem);
    if (op == Op::kInvalid)
        return errStatus(lineno, "unknown mnemonic '" + mnem + "'");

    Instruction ins;
    ins.op = op;

    switch (classOf(op)) {
      case OpClass::Classical: {
        switch (op) {
          case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
          case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
          case Op::kOr: case Op::kAnd: {
            if (auto s = needOperands(ops, 3, 3, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            if (auto s = regOperand(ops[1], lineno, &ins.rs1); !s.isOk())
                return s;
            if (auto s = regOperand(ops[2], lineno, &ins.rs2); !s.isOk())
                return s;
            break;
          }
          case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
          case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
          case Op::kSrai: {
            if (auto s = needOperands(ops, 3, 3, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            if (auto s = regOperand(ops[1], lineno, &ins.rs1); !s.isOk())
                return s;
            if (auto s = immOperand(ops[2], lineno, &ins.imm); !s.isOk())
                return s;
            break;
          }
          case Op::kLui: case Op::kAuipc: {
            if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            if (auto s = immOperand(ops[1], lineno, &ins.imm); !s.isOk())
                return s;
            break;
          }
          case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu:
          case Op::kLhu: {
            if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            if (!parseMemOperand(ops[1], &ins.imm, &ins.rs1))
                return errStatus(lineno, "expected imm(reg) operand");
            break;
          }
          case Op::kSb: case Op::kSh: case Op::kSw: {
            if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rs2); !s.isOk())
                return s;
            if (!parseMemOperand(ops[1], &ins.imm, &ins.rs1))
                return errStatus(lineno, "expected imm(reg) operand");
            break;
          }
          default:
            return errStatus(lineno, "unhandled classical op");
        }
        break;
      }

      case OpClass::Branch: {
        if (op == Op::kJal) {
            if (auto s = needOperands(ops, 1, 2, lineno, mnem); !s.isOk())
                return s;
            std::size_t target_idx = 0;
            if (ops.size() == 2) {
                if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                    return s;
                target_idx = 1;
            }
            if (auto s = branchTarget(ops[target_idx], lineno, &ins.imm);
                !s.isOk()) {
                return s;
            }
        } else if (op == Op::kJalr) {
            if (auto s = needOperands(ops, 2, 3, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            if (auto s = regOperand(ops[1], lineno, &ins.rs1); !s.isOk())
                return s;
            if (ops.size() == 3) {
                if (auto s = immOperand(ops[2], lineno, &ins.imm); !s.isOk())
                    return s;
            }
        } else {
            if (auto s = needOperands(ops, 3, 3, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rs1); !s.isOk())
                return s;
            if (auto s = regOperand(ops[1], lineno, &ins.rs2); !s.isOk())
                return s;
            if (auto s = branchTarget(ops[2], lineno, &ins.imm); !s.isOk())
                return s;
        }
        break;
      }

      case OpClass::Codeword: {
        if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
            return s;
        const bool port_imm = (op == Op::kCwII || op == Op::kCwIR);
        const bool cw_imm = (op == Op::kCwII || op == Op::kCwRI);
        if (port_imm) {
            if (auto s = immOperand(ops[0], lineno, &ins.imm); !s.isOk())
                return s;
        } else {
            if (auto s = regOperand(ops[0], lineno, &ins.rs1); !s.isOk())
                return s;
        }
        if (cw_imm) {
            if (auto s = immOperand(ops[1], lineno, &ins.imm2); !s.isOk())
                return s;
        } else {
            if (auto s = regOperand(ops[1], lineno, &ins.rs2); !s.isOk())
                return s;
        }
        break;
      }

      case OpClass::Wait: {
        if (auto s = needOperands(ops, 1, 1, lineno, mnem); !s.isOk())
            return s;
        if (op == Op::kWaitI) {
            if (auto s = immOperand(ops[0], lineno, &ins.imm); !s.isOk())
                return s;
        } else {
            if (auto s = regOperand(ops[0], lineno, &ins.rs1); !s.isOk())
                return s;
        }
        break;
      }

      case OpClass::Sync: {
        if (auto s = needOperands(ops, 1, 2, lineno, mnem); !s.isOk())
            return s;
        if (auto s = syncTarget(ops[0], lineno, &ins.imm); !s.isOk())
            return s;
        if (ops.size() == 2) {
            if (auto s = immOperand(ops[1], lineno, &ins.imm2); !s.isOk())
                return s;
        }
        break;
      }

      case OpClass::Trigger: {
        if (auto s = needOperands(ops, 1, 1, lineno, mnem); !s.isOk())
            return s;
        if (auto s = immOperand(ops[0], lineno, &ins.imm); !s.isOk())
            return s;
        break;
      }

      case OpClass::Message: {
        if (op == Op::kSend) {
            if (auto s = needOperands(ops, 2, 2, lineno, mnem); !s.isOk())
                return s;
            if (auto s = immOperand(ops[0], lineno, &ins.imm); !s.isOk())
                return s;
            if (auto s = regOperand(ops[1], lineno, &ins.rs2); !s.isOk())
                return s;
        } else {
            if (auto s = needOperands(ops, 1, 2, lineno, mnem); !s.isOk())
                return s;
            if (auto s = regOperand(ops[0], lineno, &ins.rd); !s.isOk())
                return s;
            ins.imm = kRecvAnySource;
            if (ops.size() == 2) {
                if (auto s = immOperand(ops[1], lineno, &ins.imm); !s.isOk())
                    return s;
            }
        }
        break;
      }

      case OpClass::Halt: {
        if (auto s = needOperands(ops, 0, 0, lineno, mnem); !s.isOk())
            return s;
        break;
      }

      case OpClass::Invalid:
        return errStatus(lineno, "invalid op");
    }

    emit(ins, lineno);
    return Status::ok();
}

Status
AssemblerPass::validate(const Instruction &ins, int lineno)
{
    auto range = [&](std::int64_t v, std::int64_t lo, std::int64_t hi,
                     const char *what) -> Status {
        if (v < lo || v > hi) {
            return errStatus(lineno, std::string(what) + " out of range: " +
                                         std::to_string(v));
        }
        return Status::ok();
    };

    switch (ins.op) {
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kJalr:
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw:
        return range(ins.imm, kMinSImmediate, kMaxSImmediate, "immediate");
      case Op::kSlli: case Op::kSrli: case Op::kSrai:
        return range(ins.imm, 0, 31, "shift amount");
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        if (ins.imm % 2 != 0)
            return errStatus(lineno, "branch offset must be even");
        return range(ins.imm, -4096, 4094, "branch offset");
      case Op::kJal:
        if (ins.imm % 2 != 0)
            return errStatus(lineno, "jump offset must be even");
        return range(ins.imm, -(1 << 20), (1 << 20) - 2, "jump offset");
      case Op::kCwII:
        if (auto s = range(ins.imm, 0, kMaxSImmediate, "port"); !s.isOk())
            return s;
        return range(ins.imm2, 0, kMaxCwImmediate, "codeword immediate");
      case Op::kCwIR:
        return range(ins.imm, 0, kMaxSImmediate, "port");
      case Op::kCwRI:
        return range(ins.imm2, 0, kMaxSImmediate, "codeword immediate");
      case Op::kWaitI:
        return range(ins.imm, 0, kMaxWaitImmediate, "wait duration");
      case Op::kSync:
        if (auto s = range(ins.imm, 0, 0xFFF, "sync target"); !s.isOk())
            return s;
        return range(ins.imm2, 0, kMaxSyncResidual, "sync residual");
      case Op::kSend:
        return range(ins.imm, 0, 0xFFF, "destination");
      case Op::kRecv:
      case Op::kWtrig:
        return range(ins.imm, 0, 0xFFF, "source");
      default:
        return Status::ok();
    }
}

} // namespace

Result<Program>
assemble(std::string_view source, std::string program_name)
{
    AssemblerPass pass(std::move(program_name));
    return pass.run(source);
}

Program
assembleOrDie(std::string_view source, std::string program_name)
{
    auto result = assemble(source, std::move(program_name));
    if (!result.isOk())
        DHISQ_FATAL("assembly failed: ", result.message());
    return result.take();
}

} // namespace dhisq::isa
