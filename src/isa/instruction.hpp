/**
 * @file
 * Decoded HISQ instruction and program container.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.hpp"

namespace dhisq::isa {

/**
 * A decoded instruction.
 *
 * Field usage by class:
 *  - RV32I ops follow the usual rd/rs1/rs2/imm conventions.
 *  - cw.*: imm = port (immediate forms), imm2 = codeword (immediate forms);
 *    rs1 = port register, rs2 = codeword register (register forms).
 *  - waiti: imm = duration; waitr: rs1 = duration register.
 *  - sync: imm = target encoding (bit 11 = router flag, low 11 bits index),
 *    imm2 = booking residual in cycles.
 *  - send: imm = destination controller, rs2 = payload register.
 *  - recv: rd = destination register, imm = source controller
 *    (kRecvAnySource matches any sender).
 */
struct Instruction
{
    Op op = Op::kInvalid;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
    std::int32_t imm2 = 0;

    bool operator==(const Instruction &other) const = default;
};

/** `recv` source wildcard. */
inline constexpr std::int32_t kRecvAnySource = 0xFFF;

/** Router flag inside the 12-bit sync target immediate. */
inline constexpr std::int32_t kSyncRouterFlag = 0x800;

/** An assembled program: encoded words plus debug information. */
struct Program
{
    /** Raw 32-bit encodings, one per instruction, PC = 4 * index. */
    std::vector<std::uint32_t> words;

    /** Decoded forms, parallel to `words`. */
    std::vector<Instruction> instructions;

    /** Source line number for each instruction (diagnostics). */
    std::vector<int> lines;

    /** Human-readable program name (board/controller label). */
    std::string name;

    std::size_t size() const { return instructions.size(); }
    bool empty() const { return instructions.empty(); }
};

} // namespace dhisq::isa
