#include "isa/encoding.hpp"

#include "common/logging.hpp"

namespace dhisq::isa {

namespace {

constexpr std::uint32_t kOpLoad = 0x03;
constexpr std::uint32_t kOpOpImm = 0x13;
constexpr std::uint32_t kOpAuipc = 0x17;
constexpr std::uint32_t kOpStore = 0x23;
constexpr std::uint32_t kOpOp = 0x33;
constexpr std::uint32_t kOpLui = 0x37;
constexpr std::uint32_t kOpBranch = 0x63;
constexpr std::uint32_t kOpJalr = 0x67;
constexpr std::uint32_t kOpJal = 0x6F;
constexpr std::uint32_t kOpCustom0 = 0x0B;
constexpr std::uint32_t kOpCustom1 = 0x2B;

std::uint32_t
bits(std::uint32_t value, int hi, int lo)
{
    return (value >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

std::uint32_t
rType(std::uint32_t funct7, std::uint8_t rs2, std::uint8_t rs1,
      std::uint32_t funct3, std::uint8_t rd, std::uint32_t opcode)
{
    return (funct7 << 25) | (std::uint32_t(rs2) << 20) |
           (std::uint32_t(rs1) << 15) | (funct3 << 12) |
           (std::uint32_t(rd) << 7) | opcode;
}

std::uint32_t
iType(std::int32_t imm, std::uint8_t rs1, std::uint32_t funct3,
      std::uint8_t rd, std::uint32_t opcode)
{
    return (std::uint32_t(imm & 0xFFF) << 20) | (std::uint32_t(rs1) << 15) |
           (funct3 << 12) | (std::uint32_t(rd) << 7) | opcode;
}

std::uint32_t
sType(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1,
      std::uint32_t funct3, std::uint32_t opcode)
{
    const std::uint32_t u = std::uint32_t(imm & 0xFFF);
    return (bits(u, 11, 5) << 25) | (std::uint32_t(rs2) << 20) |
           (std::uint32_t(rs1) << 15) | (funct3 << 12) |
           (bits(u, 4, 0) << 7) | opcode;
}

std::uint32_t
bType(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1,
      std::uint32_t funct3, std::uint32_t opcode)
{
    const std::uint32_t u = std::uint32_t(imm);
    return (bits(u, 12, 12) << 31) | (bits(u, 10, 5) << 25) |
           (std::uint32_t(rs2) << 20) | (std::uint32_t(rs1) << 15) |
           (funct3 << 12) | (bits(u, 4, 1) << 8) | (bits(u, 11, 11) << 7) |
           opcode;
}

std::uint32_t
uType(std::int32_t imm, std::uint8_t rd, std::uint32_t opcode)
{
    return (std::uint32_t(imm) & 0xFFFFF000u) | (std::uint32_t(rd) << 7) |
           opcode;
}

std::uint32_t
jType(std::int32_t imm, std::uint8_t rd, std::uint32_t opcode)
{
    const std::uint32_t u = std::uint32_t(imm);
    return (bits(u, 20, 20) << 31) | (bits(u, 10, 1) << 21) |
           (bits(u, 11, 11) << 20) | (bits(u, 19, 12) << 12) |
           (std::uint32_t(rd) << 7) | opcode;
}

std::int32_t
signExtend(std::uint32_t value, int width)
{
    const std::uint32_t sign = 1u << (width - 1);
    return std::int32_t((value ^ sign)) - std::int32_t(sign);
}

/** Quantum-extension encoder: S-type immediate + an auxiliary 10-bit field
 *  in bits[24:15] (overlapping rs1/rs2 which those variants do not use). */
std::uint32_t
qType(std::int32_t s_imm, std::uint32_t aux10, std::uint8_t rs1,
      std::uint8_t rs2, std::uint32_t funct3, std::uint32_t opcode,
      bool use_aux)
{
    std::uint32_t word = sType(s_imm, rs2, rs1, funct3, opcode);
    if (use_aux) {
        DHISQ_ASSERT(aux10 <= 0x3FF, "aux field overflow: ", aux10);
        word = (word & ~(0x3FFu << 15)) | (aux10 << 15);
    }
    return word;
}

} // namespace

std::uint32_t
encode(const Instruction &ins)
{
    switch (ins.op) {
      case Op::kAdd:  return rType(0x00, ins.rs2, ins.rs1, 0, ins.rd, kOpOp);
      case Op::kSub:  return rType(0x20, ins.rs2, ins.rs1, 0, ins.rd, kOpOp);
      case Op::kSll:  return rType(0x00, ins.rs2, ins.rs1, 1, ins.rd, kOpOp);
      case Op::kSlt:  return rType(0x00, ins.rs2, ins.rs1, 2, ins.rd, kOpOp);
      case Op::kSltu: return rType(0x00, ins.rs2, ins.rs1, 3, ins.rd, kOpOp);
      case Op::kXor:  return rType(0x00, ins.rs2, ins.rs1, 4, ins.rd, kOpOp);
      case Op::kSrl:  return rType(0x00, ins.rs2, ins.rs1, 5, ins.rd, kOpOp);
      case Op::kSra:  return rType(0x20, ins.rs2, ins.rs1, 5, ins.rd, kOpOp);
      case Op::kOr:   return rType(0x00, ins.rs2, ins.rs1, 6, ins.rd, kOpOp);
      case Op::kAnd:  return rType(0x00, ins.rs2, ins.rs1, 7, ins.rd, kOpOp);

      case Op::kAddi:  return iType(ins.imm, ins.rs1, 0, ins.rd, kOpOpImm);
      case Op::kSlti:  return iType(ins.imm, ins.rs1, 2, ins.rd, kOpOpImm);
      case Op::kSltiu: return iType(ins.imm, ins.rs1, 3, ins.rd, kOpOpImm);
      case Op::kXori:  return iType(ins.imm, ins.rs1, 4, ins.rd, kOpOpImm);
      case Op::kOri:   return iType(ins.imm, ins.rs1, 6, ins.rd, kOpOpImm);
      case Op::kAndi:  return iType(ins.imm, ins.rs1, 7, ins.rd, kOpOpImm);
      case Op::kSlli:
        return rType(0x00, std::uint8_t(ins.imm & 0x1F), ins.rs1, 1, ins.rd,
                     kOpOpImm);
      case Op::kSrli:
        return rType(0x00, std::uint8_t(ins.imm & 0x1F), ins.rs1, 5, ins.rd,
                     kOpOpImm);
      case Op::kSrai:
        return rType(0x20, std::uint8_t(ins.imm & 0x1F), ins.rs1, 5, ins.rd,
                     kOpOpImm);

      case Op::kLui:   return uType(ins.imm, ins.rd, kOpLui);
      case Op::kAuipc: return uType(ins.imm, ins.rd, kOpAuipc);

      case Op::kLb:  return iType(ins.imm, ins.rs1, 0, ins.rd, kOpLoad);
      case Op::kLh:  return iType(ins.imm, ins.rs1, 1, ins.rd, kOpLoad);
      case Op::kLw:  return iType(ins.imm, ins.rs1, 2, ins.rd, kOpLoad);
      case Op::kLbu: return iType(ins.imm, ins.rs1, 4, ins.rd, kOpLoad);
      case Op::kLhu: return iType(ins.imm, ins.rs1, 5, ins.rd, kOpLoad);
      case Op::kSb:  return sType(ins.imm, ins.rs2, ins.rs1, 0, kOpStore);
      case Op::kSh:  return sType(ins.imm, ins.rs2, ins.rs1, 1, kOpStore);
      case Op::kSw:  return sType(ins.imm, ins.rs2, ins.rs1, 2, kOpStore);

      case Op::kJal:  return jType(ins.imm, ins.rd, kOpJal);
      case Op::kJalr: return iType(ins.imm, ins.rs1, 0, ins.rd, kOpJalr);
      case Op::kBeq:  return bType(ins.imm, ins.rs2, ins.rs1, 0, kOpBranch);
      case Op::kBne:  return bType(ins.imm, ins.rs2, ins.rs1, 1, kOpBranch);
      case Op::kBlt:  return bType(ins.imm, ins.rs2, ins.rs1, 4, kOpBranch);
      case Op::kBge:  return bType(ins.imm, ins.rs2, ins.rs1, 5, kOpBranch);
      case Op::kBltu: return bType(ins.imm, ins.rs2, ins.rs1, 6, kOpBranch);
      case Op::kBgeu: return bType(ins.imm, ins.rs2, ins.rs1, 7, kOpBranch);

      case Op::kCwII:
        return qType(ins.imm, std::uint32_t(ins.imm2), 0, 0, 0, kOpCustom0,
                     true);
      case Op::kCwIR:
        return qType(ins.imm, 0, 0, ins.rs2, 1, kOpCustom0, false);
      case Op::kCwRI:
        return qType(ins.imm2, 0, ins.rs1, 0, 2, kOpCustom0, false);
      case Op::kCwRR:
        return qType(0, 0, ins.rs1, ins.rs2, 3, kOpCustom0, false);
      case Op::kWaitI:
        return qType(ins.imm, 0, 0, 0, 4, kOpCustom0, false);
      case Op::kWaitR:
        return qType(0, 0, ins.rs1, 0, 5, kOpCustom0, false);
      case Op::kSync:
        return qType(ins.imm, std::uint32_t(ins.imm2), 0, 0, 6, kOpCustom0,
                     true);
      case Op::kHalt:
        return qType(0, 0, 0, 0, 7, kOpCustom0, false);

      case Op::kSend:
        return sType(ins.imm, ins.rs2, 0, 0, kOpCustom1);
      case Op::kRecv:
        return iType(ins.imm, 0, 1, ins.rd, kOpCustom1);
      case Op::kWtrig:
        return sType(ins.imm, 0, 0, 2, kOpCustom1);

      case Op::kInvalid:
        break;
    }
    DHISQ_PANIC("encode: invalid instruction");
}

namespace {

/** Zero the register fields a format does not use, so decode(encode(x))
 *  is exactly x and Instruction equality is meaningful. */
Instruction
normalize(Instruction ins)
{
    switch (ins.op) {
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
      case Op::kSrai: case Op::kJalr:
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
        ins.rs2 = 0;
        break;
      case Op::kLui: case Op::kAuipc: case Op::kJal:
        ins.rs1 = 0;
        ins.rs2 = 0;
        break;
      case Op::kSb: case Op::kSh: case Op::kSw:
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        ins.rd = 0;
        break;
      default:
        break;
    }
    return ins;
}

Instruction decodeRaw(std::uint32_t w);

} // namespace

Instruction
decode(std::uint32_t w)
{
    return normalize(decodeRaw(w));
}

namespace {

Instruction
decodeRaw(std::uint32_t w)
{
    Instruction ins;
    const std::uint32_t opcode = bits(w, 6, 0);
    const std::uint32_t funct3 = bits(w, 14, 12);
    const std::uint32_t funct7 = bits(w, 31, 25);
    ins.rd = std::uint8_t(bits(w, 11, 7));
    ins.rs1 = std::uint8_t(bits(w, 19, 15));
    ins.rs2 = std::uint8_t(bits(w, 24, 20));

    const std::int32_t i_imm = signExtend(bits(w, 31, 20), 12);
    const std::int32_t s_imm =
        signExtend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
    const std::int32_t b_imm = signExtend(
        (bits(w, 31, 31) << 12) | (bits(w, 7, 7) << 11) |
            (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1),
        13);
    const std::int32_t u_imm = std::int32_t(w & 0xFFFFF000u);
    const std::int32_t j_imm = signExtend(
        (bits(w, 31, 31) << 20) | (bits(w, 19, 12) << 12) |
            (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1),
        21);
    const std::uint32_t aux10 = bits(w, 24, 15);

    switch (opcode) {
      case kOpOp:
        ins.op = Op::kInvalid;
        switch (funct3) {
          case 0: ins.op = (funct7 == 0x20) ? Op::kSub : Op::kAdd; break;
          case 1: ins.op = Op::kSll; break;
          case 2: ins.op = Op::kSlt; break;
          case 3: ins.op = Op::kSltu; break;
          case 4: ins.op = Op::kXor; break;
          case 5: ins.op = (funct7 == 0x20) ? Op::kSra : Op::kSrl; break;
          case 6: ins.op = Op::kOr; break;
          case 7: ins.op = Op::kAnd; break;
        }
        return ins;

      case kOpOpImm:
        ins.imm = i_imm;
        switch (funct3) {
          case 0: ins.op = Op::kAddi; break;
          case 2: ins.op = Op::kSlti; break;
          case 3: ins.op = Op::kSltiu; break;
          case 4: ins.op = Op::kXori; break;
          case 6: ins.op = Op::kOri; break;
          case 7: ins.op = Op::kAndi; break;
          case 1:
            ins.op = Op::kSlli;
            ins.imm = std::int32_t(ins.rs2);
            break;
          case 5:
            ins.op = (funct7 == 0x20) ? Op::kSrai : Op::kSrli;
            ins.imm = std::int32_t(ins.rs2);
            break;
          default: ins.op = Op::kInvalid; break;
        }
        return ins;

      case kOpLui:
        ins.op = Op::kLui;
        ins.imm = u_imm;
        return ins;
      case kOpAuipc:
        ins.op = Op::kAuipc;
        ins.imm = u_imm;
        return ins;

      case kOpLoad:
        ins.imm = i_imm;
        switch (funct3) {
          case 0: ins.op = Op::kLb; break;
          case 1: ins.op = Op::kLh; break;
          case 2: ins.op = Op::kLw; break;
          case 4: ins.op = Op::kLbu; break;
          case 5: ins.op = Op::kLhu; break;
          default: ins.op = Op::kInvalid; break;
        }
        return ins;

      case kOpStore:
        ins.imm = s_imm;
        switch (funct3) {
          case 0: ins.op = Op::kSb; break;
          case 1: ins.op = Op::kSh; break;
          case 2: ins.op = Op::kSw; break;
          default: ins.op = Op::kInvalid; break;
        }
        return ins;

      case kOpJal:
        ins.op = Op::kJal;
        ins.imm = j_imm;
        return ins;
      case kOpJalr:
        ins.op = Op::kJalr;
        ins.imm = i_imm;
        return ins;

      case kOpBranch:
        ins.imm = b_imm;
        switch (funct3) {
          case 0: ins.op = Op::kBeq; break;
          case 1: ins.op = Op::kBne; break;
          case 4: ins.op = Op::kBlt; break;
          case 5: ins.op = Op::kBge; break;
          case 6: ins.op = Op::kBltu; break;
          case 7: ins.op = Op::kBgeu; break;
          default: ins.op = Op::kInvalid; break;
        }
        return ins;

      case kOpCustom0:
        switch (funct3) {
          case 0:
            ins.op = Op::kCwII;
            ins.imm = s_imm;
            ins.imm2 = std::int32_t(aux10);
            ins.rs1 = 0;
            ins.rs2 = 0;
            break;
          case 1:
            ins.op = Op::kCwIR;
            ins.imm = s_imm;
            ins.rs1 = 0;
            break;
          case 2:
            ins.op = Op::kCwRI;
            ins.imm2 = s_imm;
            ins.rs2 = 0;
            break;
          case 3:
            ins.op = Op::kCwRR;
            break;
          case 4:
            ins.op = Op::kWaitI;
            ins.imm = s_imm & 0xFFF;
            ins.rs1 = 0;
            ins.rs2 = 0;
            break;
          case 5:
            ins.op = Op::kWaitR;
            ins.rs2 = 0;
            break;
          case 6:
            ins.op = Op::kSync;
            ins.imm = s_imm & 0xFFF;
            ins.imm2 = std::int32_t(aux10);
            ins.rs1 = 0;
            ins.rs2 = 0;
            break;
          case 7:
            ins.op = Op::kHalt;
            break;
          default:
            ins.op = Op::kInvalid;
            break;
        }
        ins.rd = 0;
        return ins;

      case kOpCustom1:
        switch (funct3) {
          case 0:
            ins.op = Op::kSend;
            ins.imm = s_imm & 0xFFF;
            ins.rd = 0;
            ins.rs1 = 0;
            break;
          case 1:
            ins.op = Op::kRecv;
            ins.imm = i_imm & 0xFFF;
            ins.rs1 = 0;
            ins.rs2 = 0;
            break;
          case 2:
            ins.op = Op::kWtrig;
            ins.imm = s_imm & 0xFFF;
            ins.rd = 0;
            ins.rs1 = 0;
            ins.rs2 = 0;
            break;
          default:
            ins.op = Op::kInvalid;
            break;
        }
        return ins;

      default:
        ins.op = Op::kInvalid;
        return ins;
    }
}

} // namespace

} // namespace dhisq::isa
