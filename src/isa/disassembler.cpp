#include "isa/disassembler.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace dhisq::isa {

namespace {

std::string
reg(std::uint8_t r)
{
    return prefixedNumber("$", r);
}

std::string
syncTargetText(std::int32_t imm)
{
    if (imm & kSyncRouterFlag)
        return prefixedNumber("r", imm & ~kSyncRouterFlag);
    return std::to_string(imm);
}

} // namespace

std::string
disassemble(const Instruction &ins)
{
    std::ostringstream os;
    os << mnemonic(ins.op);
    switch (ins.op) {
      case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
      case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
      case Op::kOr: case Op::kAnd:
        os << ' ' << reg(ins.rd) << ", " << reg(ins.rs1) << ", "
           << reg(ins.rs2);
        break;
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
      case Op::kSrai:
        os << ' ' << reg(ins.rd) << ", " << reg(ins.rs1) << ", " << ins.imm;
        break;
      case Op::kLui: case Op::kAuipc:
        os << ' ' << reg(ins.rd) << ", " << ins.imm;
        break;
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
        os << ' ' << reg(ins.rd) << ", " << ins.imm << '(' << reg(ins.rs1)
           << ')';
        break;
      case Op::kSb: case Op::kSh: case Op::kSw:
        os << ' ' << reg(ins.rs2) << ", " << ins.imm << '(' << reg(ins.rs1)
           << ')';
        break;
      case Op::kJal:
        os << ' ' << reg(ins.rd) << ", " << ins.imm;
        break;
      case Op::kJalr:
        os << ' ' << reg(ins.rd) << ", " << reg(ins.rs1) << ", " << ins.imm;
        break;
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        os << ' ' << reg(ins.rs1) << ", " << reg(ins.rs2) << ", " << ins.imm;
        break;
      case Op::kCwII:
        os << ' ' << ins.imm << ", " << ins.imm2;
        break;
      case Op::kCwIR:
        os << ' ' << ins.imm << ", " << reg(ins.rs2);
        break;
      case Op::kCwRI:
        os << ' ' << reg(ins.rs1) << ", " << ins.imm2;
        break;
      case Op::kCwRR:
        os << ' ' << reg(ins.rs1) << ", " << reg(ins.rs2);
        break;
      case Op::kWaitI:
      case Op::kWtrig:
        os << ' ' << ins.imm;
        break;
      case Op::kWaitR:
        os << ' ' << reg(ins.rs1);
        break;
      case Op::kSync:
        os << ' ' << syncTargetText(ins.imm);
        if (ins.imm2 != 0)
            os << ", " << ins.imm2;
        break;
      case Op::kSend:
        os << ' ' << ins.imm << ", " << reg(ins.rs2);
        break;
      case Op::kRecv:
        os << ' ' << reg(ins.rd);
        if (ins.imm != kRecvAnySource)
            os << ", " << ins.imm;
        break;
      case Op::kHalt:
      case Op::kInvalid:
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < program.instructions.size(); ++i) {
        os << (i * 4) << ":\t" << disassemble(program.instructions[i])
           << '\n';
    }
    return os.str();
}

} // namespace dhisq::isa
