#include "place/placement.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.hpp"

namespace dhisq::place {

const char *
toString(PlacementStrategy strategy)
{
    switch (strategy) {
      case PlacementStrategy::kPath: return "path";
      case PlacementStrategy::kGreedyAffinity: return "greedy-affinity";
      case PlacementStrategy::kKlMincut: return "kl-mincut";
    }
    return "?";
}

bool
parsePlacementStrategy(std::string_view text, PlacementStrategy &out)
{
    for (PlacementStrategy strategy : allPlacementStrategies()) {
        if (text == toString(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

const std::vector<PlacementStrategy> &
allPlacementStrategies()
{
    static const std::vector<PlacementStrategy> strategies = {
        PlacementStrategy::kPath,
        PlacementStrategy::kGreedyAffinity,
        PlacementStrategy::kKlMincut,
    };
    return strategies;
}

LiveMap::LiveMap(unsigned num_qubits, unsigned num_slots)
{
    DHISQ_ASSERT(num_qubits <= num_slots,
                 "live map needs a slot per qubit: ", num_qubits,
                 " qubits on ", num_slots, " slots");
    _slot_of.resize(num_qubits);
    _logical_at.assign(num_slots, kNoQubit);
    for (QubitId q = 0; q < num_qubits; ++q) {
        _slot_of[q] = q;
        _logical_at[q] = q;
    }
}

void
LiveMap::swapSlots(QubitId slot_a, QubitId slot_b)
{
    DHISQ_ASSERT(slot_a < numSlots() && slot_b < numSlots(),
                 "slot out of range: ", slot_a, ", ", slot_b);
    DHISQ_ASSERT(slot_a != slot_b, "swap of a slot with itself");
    const QubitId qa = _logical_at[slot_a];
    const QubitId qb = _logical_at[slot_b];
    _logical_at[slot_a] = qb;
    _logical_at[slot_b] = qa;
    if (qa != kNoQubit)
        _slot_of[qa] = slot_b;
    if (qb != kNoQubit)
        _slot_of[qb] = slot_a;
}

void
InteractionGraph::bump(unsigned a, unsigned b, double sync_w, double msg_w)
{
    DHISQ_ASSERT(a < numBlocks() && b < numBlocks(),
                 "interaction block out of range: ", a, ", ", b);
    DHISQ_ASSERT(sync_w >= 0.0 && msg_w >= 0.0,
                 "negative interaction weight");
    if (a == b || (sync_w == 0.0 && msg_w == 0.0))
        return;
    auto accumulate = [this](unsigned from, unsigned to, double s,
                             double m) {
        for (Edge &edge : _edges[from]) {
            if (edge.peer == to) {
                edge.sync_weight += s;
                edge.msg_weight += m;
                return;
            }
        }
        _edges[from].push_back(Edge{to, s, m});
    };
    accumulate(a, b, sync_w, msg_w);
    accumulate(b, a, sync_w, msg_w);
}

void
InteractionGraph::addSyncWeight(unsigned a, unsigned b, double weight)
{
    bump(a, b, weight, 0.0);
}

void
InteractionGraph::addMessageWeight(unsigned a, unsigned b, double weight)
{
    bump(a, b, 0.0, weight);
}

double
InteractionGraph::weight(unsigned a, unsigned b) const
{
    DHISQ_ASSERT(a < numBlocks() && b < numBlocks(),
                 "interaction block out of range");
    for (const Edge &edge : _edges[a]) {
        if (edge.peer == b)
            return edge.sync_weight + edge.msg_weight;
    }
    return 0.0;
}

const std::vector<InteractionGraph::Edge> &
InteractionGraph::edgesOf(unsigned block) const
{
    DHISQ_ASSERT(block < numBlocks(), "interaction block out of range");
    return _edges[block];
}

double
InteractionGraph::totalWeightOf(unsigned block) const
{
    const auto &edges = edgesOf(block);
    return std::accumulate(edges.begin(), edges.end(), 0.0,
                           [](double acc, const Edge &edge) {
                               return acc + edge.sync_weight +
                                      edge.msg_weight;
                           });
}

CostModel::CostModel(const net::Topology &topo) : _n(topo.numControllers())
{
    _sync_cost.assign(std::size_t(_n) * _n, 0.0);
    _msg_cost.assign(std::size_t(_n) * _n, 0.0);
    // One single-source Dijkstra per controller fills a whole row of
    // cheapest latency paths (point-to-point queries would cost an
    // extra factor of n).
    std::vector<Cycle> dist;
    for (ControllerId a = 0; a < _n; ++a) {
        dist.assign(_n, kNoCycle);
        using Entry = std::pair<Cycle, ControllerId>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
            frontier;
        dist[a] = 0;
        frontier.emplace(0, a);
        while (!frontier.empty()) {
            const auto [d, cur] = frontier.top();
            frontier.pop();
            if (d > dist[cur])
                continue;
            for (const auto &link : topo.linksOf(cur)) {
                const Cycle cand = d + link.latency;
                if (cand < dist[link.peer]) {
                    dist[link.peer] = cand;
                    frontier.emplace(cand, link.peer);
                }
            }
        }
        for (ControllerId b = 0; b < _n; ++b) {
            if (b == a)
                continue;
            double sync, msg;
            if (topo.areNeighbors(a, b)) {
                // A nearby BISP bounce (and a direct message) costs
                // exactly the link latency.
                sync = msg = double(topo.neighborLatency(a, b));
            } else {
                DHISQ_ASSERT(dist[b] != kNoCycle,
                             "controllers ", a, " and ", b,
                             " are graph-disconnected");
                // Syncs escalate to a region sync whose covering subtree
                // stalls: cheapest latency path plus the priced stall.
                sync = double(dist[b]) +
                       kRegionSyncFactor * double(topo.treeHops(a, b)) *
                           double(topo.hopLatency());
                // Messages just ride the router tree.
                msg = double(topo.treeHops(a, b)) *
                      double(topo.hopLatency());
            }
            _sync_cost[std::size_t(a) * _n + b] = sync;
            _msg_cost[std::size_t(a) * _n + b] = msg;
        }
    }
}

double
weightedCutCost(const CostModel &model, const InteractionGraph &graph,
                const std::vector<ControllerId> &order)
{
    DHISQ_ASSERT(graph.numBlocks() <= order.size(),
                 "more interaction blocks than placement slots");
    double total = 0.0;
    for (unsigned block = 0; block < graph.numBlocks(); ++block) {
        for (const auto &edge : graph.edgesOf(block)) {
            if (edge.peer < block)
                continue; // count each undirected edge once
            total += model.edgeCost(edge, order[block], order[edge.peer]);
        }
    }
    return total;
}

double
weightedCutCost(const net::Topology &topo, const InteractionGraph &graph,
                const std::vector<ControllerId> &order)
{
    return weightedCutCost(CostModel(topo), graph, order);
}

namespace {

/** Validate `order` as a controller permutation and build the inverse. */
std::vector<unsigned>
inverseOf(const std::vector<ControllerId> &order, unsigned controllers)
{
    DHISQ_ASSERT(order.size() == controllers,
                 "placement order is not a controller permutation");
    std::vector<unsigned> slot_of(controllers, unsigned(-1));
    for (unsigned slot = 0; slot < controllers; ++slot) {
        const ControllerId c = order[slot];
        DHISQ_ASSERT(c < controllers, "placement names controller ", c,
                     " outside the topology");
        DHISQ_ASSERT(slot_of[c] == unsigned(-1),
                     "placement assigns controller ", c, " twice");
        slot_of[c] = slot;
    }
    return slot_of;
}

} // namespace

PlacementPlan
makePlacement(const net::Topology &topo, const InteractionGraph &graph,
              PlacementStrategy strategy)
{
    DHISQ_ASSERT(graph.numBlocks() <= topo.numControllers(),
                 "not enough controllers: ", graph.numBlocks(),
                 " qubit blocks on ", topo.numControllers(), " controllers");
    PlacementPlan plan;
    plan.strategy = strategy;
    switch (strategy) {
      case PlacementStrategy::kPath:
        plan.order = topo.placementOrder();
        break;
      case PlacementStrategy::kGreedyAffinity: {
        const CostModel model(topo);
        plan.order = greedyAffinityOrder(model, graph);
        break;
      }
      case PlacementStrategy::kKlMincut: {
        // Refine from two seeds — the greedy-affinity assignment and the
        // topology's path embedding — and keep the cheaper cut. Refinement
        // is monotone, so the result never cuts worse than greedy (and
        // never worse than what refinement makes of the path).
        const CostModel model(topo);
        plan.order = greedyAffinityOrder(model, graph);
        klRefine(model, graph, plan.order);
        std::vector<ControllerId> from_path = topo.placementOrder();
        klRefine(model, graph, from_path);
        if (weightedCutCost(model, graph, from_path) <
            weightedCutCost(model, graph, plan.order)) {
            plan.order = std::move(from_path);
        }
        break;
      }
    }
    plan.slot_of = inverseOf(plan.order, topo.numControllers());
    return plan;
}

} // namespace dhisq::place
