/**
 * @file
 * Kernighan–Lin-style min-cut refinement over a full assignment: instead
 * of KL's bipartition exchange, steepest-descent swaps of the controllers
 * assigned to two placement slots (the quadratic-assignment flavour of
 * the heuristic), priced by the CostModel. Every applied swap strictly
 * reduces the weighted cut, so the refined cost never exceeds the seed's
 * — the property the placement test corpus asserts against greedy.
 */
#include <algorithm>

#include "common/logging.hpp"
#include "place/placement.hpp"

namespace dhisq::place {

namespace {

/**
 * Cost of block `slot`'s incident edges when it sits on `c_self`, with
 * slot `other` evaluated at `c_other` (so a candidate swap prices both
 * moved endpoints consistently).
 */
double
incidentCost(const CostModel &model, const InteractionGraph &graph,
             const std::vector<ControllerId> &order, unsigned slot,
             ControllerId c_self, unsigned other, ControllerId c_other)
{
    double sum = 0.0;
    for (const auto &edge : graph.edgesOf(slot)) {
        const ControllerId peer_ctrl =
            (edge.peer == other) ? c_other : order[edge.peer];
        sum += model.edgeCost(edge, c_self, peer_ctrl);
    }
    return sum;
}

} // namespace

void
klRefine(const CostModel &model, const InteractionGraph &graph,
         std::vector<ControllerId> &order)
{
    const unsigned n = unsigned(order.size());
    const unsigned blocks = graph.numBlocks();
    DHISQ_ASSERT(blocks <= n, "more blocks than placement slots");
    if (blocks == 0)
        return;

    // Steepest descent: apply the best strictly-improving swap until no
    // pair improves. The swap count is bounded (each strictly lowers a
    // nonnegative cost over a finite configuration space); the explicit
    // cap only guards float-epsilon pathologies.
    const unsigned max_swaps = 8 * n + 64;
    constexpr double kEps = 1e-9;
    for (unsigned swaps = 0; swaps < max_swaps; ++swaps) {
        double best_gain = kEps;
        unsigned best_i = 0, best_j = 0;
        for (unsigned i = 0; i < blocks; ++i) {
            // j ranges over every later slot, including unused ones —
            // migrating a block to an idle controller is just a swap with
            // an edge-less slot.
            for (unsigned j = i + 1; j < n; ++j) {
                const double before =
                    incidentCost(model, graph, order, i, order[i], j,
                                 order[j]) +
                    (j < blocks ? incidentCost(model, graph, order, j,
                                               order[j], i, order[i])
                                : 0.0);
                const double after =
                    incidentCost(model, graph, order, i, order[j], j,
                                 order[i]) +
                    (j < blocks ? incidentCost(model, graph, order, j,
                                               order[i], i, order[j])
                                : 0.0);
                const double gain = before - after;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_i = i;
                    best_j = j;
                }
            }
        }
        if (best_gain <= kEps)
            break;
        std::swap(order[best_i], order[best_j]);
    }
}

} // namespace dhisq::place
