/**
 * @file
 * Topology-aware qubit-block placement (Insight #2).
 *
 * The compiler maps consecutive qubit blocks onto controllers; *which*
 * controller hosts which block decides where every cross-controller gate
 * lands on the interconnect. This layer extracts that mapping into a
 * `PlacementPlan` produced by pluggable strategies:
 *
 *  - kPath           the topology's path embedding (identity on a line,
 *                    snake on grids/tori) — bit-compatible with the
 *                    pre-placement compiler.
 *  - kGreedyAffinity grow the assignment block-by-block, placing the
 *                    block with the strongest affinity to the already-
 *                    placed set onto the controller that minimizes its
 *                    weighted communication cost.
 *  - kKlMincut       Kernighan–Lin-style pairwise-swap refinement of the
 *                    greedy seed over the circuit's qubit-interaction
 *                    graph, priced against real per-link latencies and
 *                    router-subtree spans; monotone, so its weighted cut
 *                    never exceeds the greedy one.
 *
 * The cost a strategy optimizes is `CostModel`: adjacent controllers pay
 * their calibrated link latency, non-adjacent pairs pay the cheapest
 * latency path plus the router-tree span a region-sync fallback would
 * stall (the PR 3 compiler's non-adjacent penalty).
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace dhisq::place {

/** Placement strategies in canonical sweep order. */
enum class PlacementStrategy : std::uint8_t
{
    kPath,
    kGreedyAffinity,
    kKlMincut,
};

/** Human-readable name ("path", "greedy-affinity", "kl-mincut"). */
const char *toString(PlacementStrategy strategy);

/** Parse a strategy name; false when `text` names no strategy. */
bool parsePlacementStrategy(std::string_view text, PlacementStrategy &out);

/** Every strategy in canonical sweep order. */
const std::vector<PlacementStrategy> &allPlacementStrategies();

/**
 * Weighted interaction graph over qubit blocks: edge (a, b) accumulates
 * how often blocks a and b must communicate. Block indices are placement
 * slots — block k holds qubits [k*qpc, (k+1)*qpc). Two weight channels
 * per edge, because the two traffic kinds price differently:
 *
 *  - sync weight     timeline merges (two-qubit gates across diverged
 *                    epochs); non-adjacent controllers escalate these to
 *                    region syncs that stall a whole router subtree.
 *  - message weight  measurement-feedback payloads; non-adjacent
 *                    controllers just ride the router tree.
 */
class InteractionGraph
{
  public:
    struct Edge
    {
        unsigned peer = 0;
        double sync_weight = 0.0;
        double msg_weight = 0.0;
    };

    explicit InteractionGraph(unsigned blocks) : _edges(blocks) {}

    unsigned numBlocks() const { return unsigned(_edges.size()); }

    /** Accumulate undirected sync weight between two blocks (self-edges
     *  are dropped — intra-block traffic never crosses the interconnect). */
    void addSyncWeight(unsigned a, unsigned b, double weight);

    /** Accumulate undirected message weight between two blocks. */
    void addMessageWeight(unsigned a, unsigned b, double weight);

    /** Combined (sync + message) weight between two blocks. */
    double weight(unsigned a, unsigned b) const;

    /** All weighted peers of a block, in first-mention order. */
    const std::vector<Edge> &edgesOf(unsigned block) const;

    /** Sum of a block's incident combined edge weights. */
    double totalWeightOf(unsigned block) const;

  private:
    void bump(unsigned a, unsigned b, double sync_w, double msg_w);

    std::vector<std::vector<Edge>> _edges;
};

/**
 * Dense controller-pair communication costs, precomputed once per
 * topology. Adjacent pairs pay their calibrated link latency on both
 * channels. Non-adjacent pairs pay, on the sync channel, the cheapest
 * latency path plus a region-sync span penalty (the covering subtree
 * stalls — priced at kRegionSyncFactor tree hops); on the message
 * channel, just the router-tree path the fabric actually routes.
 */
class CostModel
{
  public:
    /** Hop multiplier pricing the subtree stall of a region sync. */
    static constexpr double kRegionSyncFactor = 4.0;

    explicit CostModel(const net::Topology &topo);

    double syncCost(ControllerId a, ControllerId b) const
    {
        return _sync_cost[std::size_t(a) * _n + b];
    }

    double messageCost(ControllerId a, ControllerId b) const
    {
        return _msg_cost[std::size_t(a) * _n + b];
    }

    /** Cost of one interaction edge placed on controllers (a, b). */
    double edgeCost(const InteractionGraph::Edge &edge, ControllerId a,
                    ControllerId b) const
    {
        return edge.sync_weight * syncCost(a, b) +
               edge.msg_weight * messageCost(a, b);
    }

    unsigned numControllers() const { return _n; }

  private:
    unsigned _n;
    std::vector<double> _sync_cost;
    std::vector<double> _msg_cost;
};

/**
 * Live logical-qubit -> physical-slot map. A placement fixes where each
 * qubit *starts*; SWAP-insertion routing then moves qubits between
 * slots at run time, and every pass downstream of the router must see
 * the routed positions. The map is the routing pass's mutable state:
 * identity at construction (logical qubit q starts on slot q), mutated
 * by `swapSlots` per inserted SWAP. Slots beyond the circuit's qubit
 * count (oversubscribed or unused capacity) start empty.
 */
class LiveMap
{
  public:
    LiveMap(unsigned num_qubits, unsigned num_slots);

    unsigned numQubits() const { return unsigned(_slot_of.size()); }
    unsigned numSlots() const { return unsigned(_logical_at.size()); }

    /** Physical slot currently holding logical qubit `q`. */
    QubitId
    slotOf(QubitId q) const
    {
        return _slot_of[q];
    }

    /** Logical qubit currently on `slot`; kNoQubit when empty. */
    QubitId
    logicalAt(QubitId slot) const
    {
        return _logical_at[slot];
    }

    /** Apply a SWAP between two slots (either side may be empty). */
    void swapSlots(QubitId slot_a, QubitId slot_b);

    /** The full logical -> slot assignment (e.g. for a final snapshot). */
    const std::vector<QubitId> &slots() const { return _slot_of; }

  private:
    std::vector<QubitId> _slot_of;    ///< logical -> slot
    std::vector<QubitId> _logical_at; ///< slot -> logical (or kNoQubit)
};

/** A placement: slot -> controller assignment plus its inverse. */
struct PlacementPlan
{
    PlacementStrategy strategy = PlacementStrategy::kPath;
    /** Placement slot -> controller; always a controller permutation. */
    std::vector<ControllerId> order;
    /** Controller -> placement slot (inverse of `order`). */
    std::vector<unsigned> slot_of;
};

/**
 * Total weighted communication cost of an assignment:
 * sum over interaction edges (a, b) of weight * cost(order[a], order[b]).
 */
double weightedCutCost(const CostModel &model, const InteractionGraph &graph,
                       const std::vector<ControllerId> &order);

/** Convenience overload building the cost model from the topology. */
double weightedCutCost(const net::Topology &topo,
                       const InteractionGraph &graph,
                       const std::vector<ControllerId> &order);

/**
 * Produce a placement of `graph.numBlocks()` qubit blocks onto the
 * topology's controllers (blocks must fit). The result is always a full
 * controller permutation; slots beyond the block count carry the unused
 * controllers. Deterministic for fixed inputs.
 */
PlacementPlan makePlacement(const net::Topology &topo,
                            const InteractionGraph &graph,
                            PlacementStrategy strategy);

// ---- Strategy internals (separate translation units) ---------------------

/** Greedy affinity assignment (see PlacementStrategy::kGreedyAffinity). */
std::vector<ControllerId> greedyAffinityOrder(const CostModel &model,
                                              const InteractionGraph &graph);

/**
 * Kernighan–Lin-style refinement: steepest-descent pairwise swaps of the
 * controllers assigned to two slots, applied while any swap strictly
 * reduces the weighted cut. Monotone in `weightedCutCost`.
 */
void klRefine(const CostModel &model, const InteractionGraph &graph,
              std::vector<ControllerId> &order);

} // namespace dhisq::place
