/**
 * @file
 * Greedy affinity placement: an interaction-weighted variant of the
 * classic "place the most-connected module next to its placed partners"
 * constructive heuristic (cf. the partitioning stage of distributed-QC
 * compilers). Produces the seed assignment kl-mincut refines.
 */
#include <algorithm>

#include "common/logging.hpp"
#include "place/placement.hpp"

namespace dhisq::place {

std::vector<ControllerId>
greedyAffinityOrder(const CostModel &model, const InteractionGraph &graph)
{
    const unsigned n = model.numControllers();
    const unsigned blocks = graph.numBlocks();
    DHISQ_ASSERT(blocks <= n, "more blocks than controllers");

    std::vector<ControllerId> assignment(blocks, kNoController);
    std::vector<char> block_placed(blocks, 0);
    std::vector<char> ctrl_used(n, 0);

    // Affinity of each unplaced block to the placed set, kept incrementally.
    std::vector<double> affinity(blocks, 0.0);

    for (unsigned step = 0; step < blocks; ++step) {
        // Pick the block: strongest pull toward the placed set; the first
        // step (and zero-affinity ties) falls back to the heaviest total
        // weight, then the lowest index — fully deterministic.
        unsigned best_block = unsigned(-1);
        double best_aff = -1.0;
        double best_total = -1.0;
        for (unsigned b = 0; b < blocks; ++b) {
            if (block_placed[b])
                continue;
            const double total = graph.totalWeightOf(b);
            if (affinity[b] > best_aff ||
                (affinity[b] == best_aff && total > best_total)) {
                best_block = b;
                best_aff = affinity[b];
                best_total = total;
            }
        }

        // Pick the controller: minimize the weighted cost to the placed
        // partners; when the block has none (the seed, or an isolated
        // block), minimize the total cost to every controller so heavy
        // blocks start from the graph median. Ties break on lowest id.
        ControllerId best_ctrl = kNoController;
        double best_cost = 0.0;
        for (ControllerId c = 0; c < n; ++c) {
            if (ctrl_used[c])
                continue;
            double cost = 0.0;
            if (best_aff > 0.0) {
                for (const auto &edge : graph.edgesOf(best_block)) {
                    if (block_placed[edge.peer]) {
                        cost += model.edgeCost(edge, c,
                                               assignment[edge.peer]);
                    }
                }
            } else {
                for (ControllerId other = 0; other < n; ++other)
                    cost += model.syncCost(c, other);
            }
            if (best_ctrl == kNoController || cost < best_cost) {
                best_ctrl = c;
                best_cost = cost;
            }
        }

        assignment[best_block] = best_ctrl;
        block_placed[best_block] = 1;
        ctrl_used[best_ctrl] = 1;
        for (const auto &edge : graph.edgesOf(best_block)) {
            if (!block_placed[edge.peer])
                affinity[edge.peer] += edge.sync_weight + edge.msg_weight;
        }
    }

    // Fill the slots beyond the block count with the unused controllers in
    // ascending id order so the result is a full permutation.
    std::vector<ControllerId> order(assignment.begin(), assignment.end());
    for (ControllerId c = 0; c < n; ++c) {
        if (!ctrl_used[c])
            order.push_back(c);
    }
    return order;
}

} // namespace dhisq::place
