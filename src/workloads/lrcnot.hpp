/**
 * @file
 * Long-range CNOT via dynamic circuits (Figure 14, after Baumer et al. [3]).
 *
 * Construction (verified exhaustively against the state-vector simulator in
 * tests/test_workloads.cpp for every measurement branch):
 *
 * Even ancilla count k on the path c, a1..ak, t:
 *   1. Bell pairs on (a1,a2), (a3,a4), ...:  H(a_odd); CNOT(a_odd, a_even)
 *   2. Entanglement swapping at the junctions (a2,a3), (a4,a5), ...:
 *      CNOT(a_even, a_odd); H(a_even)
 *   3. Ends: CNOT(c, a1); CNOT(ak, t); H(ak)
 *   4. Measure every ancilla; then
 *      Z on c iff parity of even-position outcomes (a2, a4, ..., ak) is 1,
 *      X on t iff parity of odd-position outcomes (a1, a3, ..., ak-1) is 1.
 *
 * Odd k: one ladder step CNOT(c, a1) feeds a1 as the control of the even
 * construction over a2..ak; a1 is X-measured and its outcome folds into the
 * Z-parity on c.
 *
 * Depth is constant in the chain length — the property Figure 14 trades
 * ancillas for — and the two parity corrections are exactly the simultaneous
 * feedback the paper's evaluation leans on.
 */
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "compiler/ir.hpp"

namespace dhisq::workloads {

/** Options for the long-range CNOT expansion. */
struct LrCnotOptions
{
    /** Actively reset path ancillas before use (mid-circuit reuse). */
    bool reset_ancillas = false;
};

/**
 * Append a long-range CNOT along `path` (path.front() = control,
 * path.back() = target, interior = ancillas; consecutive entries must be
 * device neighbours). Adjacent qubits emit a plain CNOT.
 */
void appendLongRangeCnot(compiler::Circuit &circuit,
                         const std::vector<QubitId> &path,
                         const LrCnotOptions &options = {});

/** Line-coupling convenience: path = all qubits between c and t. */
void appendLongRangeCnotLine(compiler::Circuit &circuit, QubitId control,
                             QubitId target,
                             const LrCnotOptions &options = {});

/**
 * Rewrite every non-adjacent CNOT/CZ/CPhase of `input` (line coupling) into
 * dynamic-circuit form (Section 6.4.2's QASMBench conversion):
 * CZ/CPhase first decompose into CNOT + Rz, then non-adjacent CNOTs become
 * long-range CNOTs over the intervening qubits. `probability` < 1 converts
 * only a seeded random subset ("randomly substituting"), leaving the rest
 * as (illegal-on-hardware) direct gates — callers use 1.0 for runnable
 * output.
 */
compiler::Circuit expandNonAdjacentGates(const compiler::Circuit &input,
                                         double probability, Rng &rng,
                                         const LrCnotOptions &options = {});

} // namespace dhisq::workloads
