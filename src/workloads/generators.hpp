/**
 * @file
 * Workload generators for the evaluation suite (Section 6.4.2).
 *
 * QASMBench's circuit files are not available offline, so each generator
 * reproduces the published gate structure programmatically (DESIGN.md §4):
 * the benchmark names and sizes follow Figure 15 (adder_n577, bv_n400,
 * qft_n100, w_state_n800, logical_t_n432, ...). Long-range two-qubit gates
 * are produced as direct gates; callers run expandNonAdjacentGates() to
 * obtain the dynamic-circuit versions used in the paper's evaluation.
 */
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "compiler/ir.hpp"

namespace dhisq::workloads {

/** GHZ chain: H + adjacent-CNOT ladder (local; correctness baseline). */
compiler::Circuit ghz(unsigned n, bool measure_all = false);

/**
 * GHZ via fan-out: H(0) then CNOT(0, q) for every other qubit — the
 * star-shaped interaction graph of a distributed GHZ preparation, every
 * fanned CNOT long-range. Run expandNonAdjacentGates() for the dynamic
 * (hardware-runnable) version whose mid-chain measurements feed parity
 * corrections back to the root and leaves.
 */
compiler::Circuit ghzFanout(unsigned n, bool measure_all = false);

/** Textbook QFT with an approximation window (controlled-phase range). */
struct QftOptions
{
    /** Drop controlled phases beyond this qubit distance (approx. QFT). */
    unsigned approx_window = 8;
    bool measure_all = true;
};
compiler::Circuit qft(unsigned n, const QftOptions &options = {});

/** Bernstein-Vazirani with a seeded hidden string; last qubit = oracle
 *  ancilla, giving CNOT distances up to n-1. */
struct BvOptions
{
    std::uint64_t seed = 7;
    double string_density = 0.5;
};
compiler::Circuit bernsteinVazirani(unsigned total_qubits,
                                    const BvOptions &options = {});

/** CDKM ripple-carry adder on interleaved registers (cin a0 b0 a1 b1 ...);
 *  `total_qubits` = 2*bits + 2. Toffolis are decomposed into the standard
 *  6-CNOT + 7-T network, keeping operands within distance <= 3. */
struct AdderOptions
{
    std::uint64_t seed = 11; ///< seeds the classical input values
    bool measure_sum = true;
};
compiler::Circuit adder(unsigned total_qubits,
                        const AdderOptions &options = {});

/** W-state preparation with the funnel construction (pivot at the last
 *  qubit), producing the long-range CNOT pattern the paper's converted
 *  benchmark exhibits. */
compiler::Circuit wState(unsigned n, bool measure_all = false);

/**
 * Synthetic lattice-surgery logical-T benchmark (Section 6.4.2 second
 * class). Structure per T gate: `rounds` syndrome-extraction rounds on
 * every patch (adjacent CZ + H + measure on interleaved ancillas), a merge
 * window, the decoder latency modelled as a wait [2], and the conditional
 * logical-S sub-circuit (Figure 2) — a chain of conditional single-qubit
 * ops on the patch boundary consuming the decoder verdict. Magic states
 * are assumed pre-prepared, exactly as the paper does.
 */
struct LogicalTOptions
{
    unsigned distance = 8;        ///< code distance d
    unsigned patches = 3;         ///< data, magic, routing
    unsigned t_gates = 2;         ///< sequential logical T gates
    double decoder_latency_ns = 1000.0; ///< per-merge decode wait [2]
    std::uint64_t seed = 3;
};
compiler::Circuit logicalT(const LogicalTOptions &options = {});

/** Number of physical qubits logicalT() will use for given options. */
unsigned logicalTQubits(const LogicalTOptions &options);

/** Random dynamic circuit for the sync-scheme ablations. */
struct RandomDynamicOptions
{
    unsigned qubits = 16;
    unsigned layers = 20;
    /** Fraction of layers followed by a measure+feedback block. */
    double feedback_fraction = 0.3;
    /** Maximum distance of the conditioned qubit from the measured one. */
    unsigned feedback_span = 4;
    std::uint64_t seed = 1;
};
compiler::Circuit randomDynamic(const RandomDynamicOptions &options = {});

/**
 * Random Clifford dynamic circuit: every op is drawn from the Clifford
 * vocabulary (H/S/Sdg/Paulis/90-degree rotations, CNOT/CZ/SWAP,
 * measurement, parity-conditioned Pauli feedback), so the compiled
 * program is exactly simulable on BOTH functional backends — the fuel of
 * the differential backend-equivalence harness (test_backend_diff).
 */
struct RandomCliffordOptions
{
    unsigned qubits = 8;
    unsigned layers = 12;
    /** Fraction of layers followed by a mid-circuit measurement. */
    double measure_fraction = 0.35;
    /** Of those, fraction that feed a conditional Pauli back. */
    double feedback_fraction = 0.6;
    /** Measure every qubit at the end. */
    bool measure_all = true;
    std::uint64_t seed = 1;
};
compiler::Circuit randomClifford(const RandomCliffordOptions &options = {});

/**
 * Routing/over-capacity stress generator: stride-coupled entangling
 * layers (operands `stride` apart with wraparound, so no 1D embedding
 * keeps them all adjacent) interleaved with far-side measurement
 * feedback that diverges timelines. On a machine with fewer controllers
 * than qubit blocks this is exactly the workload class the compiler
 * rejected before SWAP routing: it needs the oversubscribed mapping AND
 * produces non-adjacent post-feedback two-qubit gates that force SWAP
 * chains.
 */
struct RoutingStressOptions
{
    unsigned qubits = 12;
    unsigned layers = 8;
    /** Entangler operand distance (wraps the register). */
    unsigned stride = 5;
    /** Fraction of layers followed by a far-side feedback block. */
    double feedback_fraction = 0.4;
    std::uint64_t seed = 13;
};
compiler::Circuit routingStress(const RoutingStressOptions &options = {});

/**
 * One iteration of a VQE-style variational sweep: a hardware-efficient
 * ansatz (per-layer Ry rotations + adjacent-CNOT entanglers + a final
 * rotation layer) whose *structure* is fixed by (qubits, layers, seed)
 * while the rotation angles are re-drawn per `iteration` — the classical
 * optimizer's parameter update. Successive iterations are therefore
 * near-identical circuits: same gates, same operands, different angles.
 * This is the canonical compile-cache workload — identical iterations
 * resubmitted across a batch hit, while every new iteration misses (one
 * angle bit changes the content key).
 */
struct VqeSweepOptions
{
    unsigned qubits = 8;
    unsigned layers = 3;
    /** Optimizer step; selects the angle draw, not the structure. */
    unsigned iteration = 0;
    std::uint64_t seed = 21;
    bool measure_all = true;
};
compiler::Circuit vqeSweep(const VqeSweepOptions &options = {});

/** Named benchmark instances of Figure 15 ("adder_n577", "qft_n100", ...).
 *  Returns the *static* circuit; run expandNonAdjacentGates for dynamics. */
compiler::Circuit figure15Benchmark(const std::string &name);

/** The Figure 15 benchmark list in paper order. */
std::vector<std::string> figure15Names();

} // namespace dhisq::workloads
