#include "workloads/generators.hpp"

#include <cmath>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace dhisq::workloads {

using compiler::Circuit;
using compiler::CircuitOp;
using q::Gate;

compiler::Circuit
ghz(unsigned n, bool measure_all)
{
    DHISQ_ASSERT(n >= 2, "ghz needs >= 2 qubits");
    Circuit c(n, "ghz_n" + std::to_string(n));
    c.gate(Gate::kH, 0);
    for (QubitId q = 0; q + 1 < n; ++q)
        c.gate2(Gate::kCNOT, q, q + 1);
    if (measure_all) {
        for (QubitId q = 0; q < n; ++q)
            c.measure(q);
    }
    return c;
}

compiler::Circuit
ghzFanout(unsigned n, bool measure_all)
{
    DHISQ_ASSERT(n >= 2, "ghzFanout needs >= 2 qubits");
    Circuit c(n, "ghz_fanout_n" + std::to_string(n));
    c.gate(Gate::kH, 0);
    for (QubitId q = 1; q < n; ++q)
        c.gate2(Gate::kCNOT, 0, q);
    if (measure_all) {
        for (QubitId q = 0; q < n; ++q)
            c.measure(q);
    }
    return c;
}

compiler::Circuit
qft(unsigned n, const QftOptions &options)
{
    DHISQ_ASSERT(n >= 2, "qft needs >= 2 qubits");
    Circuit c(n, "qft_n" + std::to_string(n));
    for (unsigned i = 0; i < n; ++i) {
        c.gate(Gate::kH, i);
        const unsigned limit =
            std::min<unsigned>(n, i + 1 + options.approx_window);
        for (unsigned j = i + 1; j < limit; ++j) {
            const double angle = M_PI / double(1u << (j - i));
            c.gate2(Gate::kCPhase, j, i, angle);
        }
    }
    if (options.measure_all) {
        for (QubitId q = 0; q < n; ++q)
            c.measure(q);
    }
    return c;
}

compiler::Circuit
bernsteinVazirani(unsigned total_qubits, const BvOptions &options)
{
    DHISQ_ASSERT(total_qubits >= 2, "bv needs >= 2 qubits");
    const unsigned n = total_qubits - 1; // data qubits; last is the oracle
    const QubitId anc = total_qubits - 1;
    Circuit c(total_qubits, "bv_n" + std::to_string(total_qubits));
    Rng rng(options.seed);

    for (QubitId q = 0; q < n; ++q)
        c.gate(Gate::kH, q);
    c.gate(Gate::kX, anc);
    c.gate(Gate::kH, anc);
    for (QubitId q = 0; q < n; ++q) {
        if (rng.coin(options.string_density))
            c.gate2(Gate::kCNOT, q, anc);
    }
    for (QubitId q = 0; q < n; ++q) {
        c.gate(Gate::kH, q);
        c.measure(q);
    }
    return c;
}

namespace {

/** Standard 6-CNOT, 7-T Toffoli decomposition: control a, control b,
 *  target t. */
void
toffoli(Circuit &c, QubitId a, QubitId b, QubitId t)
{
    c.gate(Gate::kH, t);
    c.gate2(Gate::kCNOT, b, t);
    c.gate(Gate::kTdg, t);
    c.gate2(Gate::kCNOT, a, t);
    c.gate(Gate::kT, t);
    c.gate2(Gate::kCNOT, b, t);
    c.gate(Gate::kTdg, t);
    c.gate2(Gate::kCNOT, a, t);
    c.gate(Gate::kT, b);
    c.gate(Gate::kT, t);
    c.gate(Gate::kH, t);
    c.gate2(Gate::kCNOT, a, b);
    c.gate(Gate::kT, a);
    c.gate(Gate::kTdg, b);
    c.gate2(Gate::kCNOT, a, b);
}

} // namespace

compiler::Circuit
adder(unsigned total_qubits, const AdderOptions &options)
{
    DHISQ_ASSERT(total_qubits >= 4, "adder needs >= 4 qubits");
    // Layout cin + (a_i, b_i) pairs + cout; an odd total (QASMBench's
    // adder_n577 is odd) leaves one trailing qubit unused.
    const unsigned bits = (total_qubits - 2) / 2;
    Circuit c(total_qubits, "adder_n" + std::to_string(total_qubits));
    Rng rng(options.seed);

    // Interleaved layout keeps CDKM operands local:
    //   q0 = cin, then (a_i, b_i) pairs, last = cout.
    const QubitId cin = 0;
    auto qa = [](unsigned i) { return QubitId(1 + 2 * i); };
    auto qb = [](unsigned i) { return QubitId(2 + 2 * i); };
    const QubitId cout = QubitId(2 + 2 * (bits - 1)) + 1;

    // Classical inputs.
    for (unsigned i = 0; i < bits; ++i) {
        if (rng.coin(0.5))
            c.gate(Gate::kX, qa(i));
        if (rng.coin(0.5))
            c.gate(Gate::kX, qb(i));
    }

    // MAJ ladder: MAJ(c, b, a) = CNOT(a,b); CNOT(a,c); Toffoli(c,b,a).
    auto maj = [&](QubitId carry, QubitId b, QubitId a) {
        c.gate2(Gate::kCNOT, a, b);
        c.gate2(Gate::kCNOT, a, carry);
        toffoli(c, carry, b, a);
    };
    // UMA(c, b, a) = Toffoli(c,b,a); CNOT(a,c); CNOT(c,b).
    auto uma = [&](QubitId carry, QubitId b, QubitId a) {
        toffoli(c, carry, b, a);
        c.gate2(Gate::kCNOT, a, carry);
        c.gate2(Gate::kCNOT, carry, b);
    };

    maj(cin, qb(0), qa(0));
    for (unsigned i = 1; i < bits; ++i)
        maj(qa(i - 1), qb(i), qa(i));
    c.gate2(Gate::kCNOT, qa(bits - 1), cout);
    for (unsigned i = bits; i-- > 1;)
        uma(qa(i - 1), qb(i), qa(i));
    uma(cin, qb(0), qa(0));

    if (options.measure_sum) {
        for (unsigned i = 0; i < bits; ++i)
            c.measure(qb(i));
        c.measure(cout);
    }
    return c;
}

compiler::Circuit
wState(unsigned n, bool measure_all)
{
    DHISQ_ASSERT(n >= 2, "w_state needs >= 2 qubits");
    Circuit c(n, "w_state_n" + std::to_string(n));

    // Cascade construction on a *snake-interleaved layout*: the logical
    // chain walks the odd physical qubits upward then the even ones
    // downward, so every logically-adjacent pair sits at physical distance
    // 2 (one boundary pair at distance 1). QASMBench's w_state uses
    // logically-adjacent gates only; on real devices the mapping
    // introduces exactly these short non-adjacencies, which the paper's
    // dynamic-circuit conversion then picks up (DESIGN.md Section 4).
    auto map = [n](unsigned logical) -> QubitId {
        const unsigned odds = n / 2;
        return logical < odds ? QubitId(2 * logical + 1)
                              : QubitId(2 * (n - 1 - logical));
    };

    const QubitId head = map(n - 1);
    c.gate(Gate::kX, head);
    for (unsigned i = n - 1; i-- > 0;) {
        // Controlled-Ry(theta) from map(i+1) onto map(i), decomposed as
        // Ry(t/2) . CNOT . Ry(-t/2) . CNOT, followed by CNOT(i, i+1).
        const QubitId ctrl = map(i + 1);
        const QubitId tgt = map(i);
        const double theta =
            2.0 * std::acos(std::sqrt(1.0 / double(i + 2)));
        c.gate(Gate::kRy, tgt, theta / 2.0);
        c.gate2(Gate::kCNOT, ctrl, tgt);
        c.gate(Gate::kRy, tgt, -theta / 2.0);
        c.gate2(Gate::kCNOT, ctrl, tgt);
        c.gate2(Gate::kCNOT, tgt, ctrl);
    }
    if (measure_all) {
        for (QubitId q = 0; q < n; ++q)
            c.measure(q);
    }
    return c;
}

unsigned
logicalTQubits(const LogicalTOptions &options)
{
    // Each patch is a 1D slice of d data qubits interleaved with d-1
    // syndrome ancillas, plus one shared merge ancilla between patches.
    const unsigned per_patch = 2 * options.distance - 1;
    return options.patches * per_patch + (options.patches - 1);
}

compiler::Circuit
logicalT(const LogicalTOptions &options)
{
    const unsigned d = options.distance;
    DHISQ_ASSERT(d >= 2 && options.patches >= 2, "bad logical-T options");
    const unsigned n = logicalTQubits(options);
    Circuit c(n, "logical_t_n" + std::to_string(n));
    Rng rng(options.seed);

    const unsigned per_patch = 2 * d - 1;
    auto patchBase = [&](unsigned p) { return p * (per_patch + 1); };
    // Within a patch: even offsets = data, odd offsets = ancilla.
    auto data = [&](unsigned p, unsigned i) {
        return QubitId(patchBase(p) + 2 * i);
    };
    auto anc = [&](unsigned p, unsigned i) {
        return QubitId(patchBase(p) + 2 * i + 1);
    };
    auto mergeAnc = [&](unsigned p) {
        return QubitId(patchBase(p) + per_patch);
    };

    // One syndrome-extraction round on a patch: H + CZ(left) + CZ(right) +
    // measure on every interleaved ancilla (all nearest-neighbour).
    auto syndromeRound = [&](unsigned p) {
        std::vector<CbitId> bits;
        for (unsigned i = 0; i + 1 < d; ++i) {
            c.gate(Gate::kH, anc(p, i));
            c.gate2(Gate::kCZ, anc(p, i), data(p, i));
            c.gate2(Gate::kCZ, anc(p, i), data(p, i + 1));
            c.gate(Gate::kH, anc(p, i));
            bits.push_back(c.measure(anc(p, i)));
        }
        return bits;
    };

    // Initialize patch boundaries (representative Clifford prep).
    for (unsigned p = 0; p < options.patches; ++p) {
        for (unsigned i = 0; i < d; ++i)
            c.gate(Gate::kH, data(p, i));
    }

    for (unsigned t = 0; t < options.t_gates; ++t) {
        // d rounds of stabilizer measurement on every patch (in parallel).
        for (unsigned round = 0; round < d; ++round) {
            for (unsigned p = 0; p < options.patches; ++p)
                syndromeRound(p);
        }

        // Lattice-surgery merge between the data patch (0) and the magic
        // patch (1): entangle across the shared merge ancilla, measure it.
        const unsigned pd = 0, pm = 1;
        const QubitId m = mergeAnc(pd);
        c.gate(Gate::kH, m);
        c.gate2(Gate::kCZ, m, data(pd, d - 1));
        c.gate2(Gate::kCZ, m, data(pm, 0));
        c.gate(Gate::kH, m);
        std::vector<CbitId> verdict{c.measure(m)};
        // A couple of boundary stabilizer outcomes feed the decoder too.
        auto extra = syndromeRound(pd);
        if (!extra.empty()) {
            verdict.push_back(extra.front());
            verdict.push_back(extra.back());
        }

        // Decoder latency on the boundary qubit before the verdict lands
        // (dedicated per-router decoder, cf. [2] and Section 6.4.2).
        CircuitOp wait;
        wait.gate = Gate::kI;
        wait.angle = options.decoder_latency_ns;
        wait.qubits = {data(pd, d - 1)};
        c.append(wait);

        // Conditional logical S (Figure 2b): a sub-circuit of conditioned
        // single-qubit ops along the boundary, all on the same verdict.
        for (unsigned i = 0; i < d; ++i) {
            c.conditionalGate(Gate::kS, data(pd, i), verdict);
            c.conditionalGate(Gate::kZ, data(pd, i), verdict);
        }

        // Post-merge stabilization round.
        for (unsigned p = 0; p < options.patches; ++p)
            syndromeRound(p);
    }
    return c;
}

compiler::Circuit
randomDynamic(const RandomDynamicOptions &options)
{
    DHISQ_ASSERT(options.qubits >= 2, "randomDynamic needs >= 2 qubits");
    Circuit c(options.qubits,
              "random_dynamic_n" + std::to_string(options.qubits));
    Rng rng(options.seed);
    const Gate pool[] = {Gate::kH, Gate::kX, Gate::kT, Gate::kS,
                         Gate::kX90, Gate::kY90};

    for (unsigned layer = 0; layer < options.layers; ++layer) {
        for (QubitId q = 0; q < options.qubits; ++q) {
            if (rng.coin(0.6))
                c.gate(pool[rng.below(6)], q);
        }
        const QubitId base = QubitId(rng.below(options.qubits - 1));
        c.gate2(Gate::kCZ, base, base + 1);

        if (rng.coin(options.feedback_fraction)) {
            const QubitId mq = QubitId(rng.below(options.qubits));
            const CbitId bit = c.measure(mq);
            const unsigned span = 1 + unsigned(rng.below(
                                           options.feedback_span));
            QubitId tq = (mq + span < options.qubits) ? mq + span
                         : (mq >= span)               ? mq - span
                                                      : (mq + 1) %
                                                            options.qubits;
            c.conditionalGate(rng.coin(0.5) ? Gate::kX : Gate::kZ, tq,
                              {bit});
        }
    }
    return c;
}

compiler::Circuit
randomClifford(const RandomCliffordOptions &options)
{
    DHISQ_ASSERT(options.qubits >= 2, "randomClifford needs >= 2 qubits");
    Circuit c(options.qubits,
              "random_clifford_n" + std::to_string(options.qubits) + "_s" +
                  std::to_string(options.seed));
    Rng rng(options.seed);
    const Gate pool1q[] = {Gate::kH,   Gate::kS,    Gate::kSdg, Gate::kX,
                           Gate::kY,   Gate::kZ,    Gate::kX90, Gate::kY90,
                           Gate::kXm90, Gate::kYm90};
    const Gate pool2q[] = {Gate::kCNOT, Gate::kCZ, Gate::kSwap};
    const Gate feedback[] = {Gate::kX, Gate::kZ, Gate::kY};

    for (unsigned layer = 0; layer < options.layers; ++layer) {
        for (QubitId q = 0; q < options.qubits; ++q) {
            if (rng.coin(0.6))
                c.gate(pool1q[rng.below(10)], q);
        }
        // One entangler per layer on a random (possibly long-range,
        // possibly reversed — CNOT orientation matters) operand pair.
        const QubitId a = QubitId(rng.below(options.qubits));
        QubitId b = QubitId(rng.below(options.qubits - 1));
        if (b >= a)
            ++b;
        c.gate2(pool2q[rng.below(3)], a, b);

        if (rng.coin(options.measure_fraction)) {
            const QubitId mq = QubitId(rng.below(options.qubits));
            const CbitId bit = c.measure(mq);
            if (rng.coin(options.feedback_fraction)) {
                const QubitId tq = QubitId(rng.below(options.qubits));
                c.conditionalGate(feedback[rng.below(3)], tq, {bit});
            }
        }
    }
    if (options.measure_all) {
        for (QubitId q = 0; q < options.qubits; ++q)
            c.measure(q);
    }
    return c;
}

compiler::Circuit
routingStress(const RoutingStressOptions &options)
{
    DHISQ_ASSERT(options.qubits >= 3, "routingStress needs >= 3 qubits");
    DHISQ_ASSERT(options.stride >= 1, "routingStress needs stride >= 1");
    DHISQ_ASSERT(options.stride % options.qubits != 0,
                 "routingStress stride must not be a multiple of the "
                 "qubit count (the entangler would self-couple)");
    Circuit c(options.qubits,
              "routing_stress_n" + std::to_string(options.qubits));
    Rng rng(options.seed);
    const Gate pool[] = {Gate::kH, Gate::kT, Gate::kS, Gate::kX90};

    for (unsigned layer = 0; layer < options.layers; ++layer) {
        for (QubitId q = 0; q < options.qubits; ++q) {
            if (rng.coin(0.5))
                c.gate(pool[rng.below(4)], q);
        }
        // Stride-coupled entanglers: operands `stride` apart wrap the
        // register, so no 1D embedding keeps them all nearby.
        const QubitId base = QubitId(rng.below(options.qubits));
        c.gate2(Gate::kCZ, base, (base + options.stride) % options.qubits);

        if (rng.coin(options.feedback_fraction)) {
            // Measurement feedback onto the far side of the register:
            // diverges the consumer's timeline so the next stride
            // entangler that touches it cannot co-schedule for free —
            // exactly the case SWAP routing must make adjacent.
            const QubitId mq = QubitId(rng.below(options.qubits));
            const CbitId bit = c.measure(mq);
            const QubitId tq =
                (mq + options.qubits / 2) % options.qubits;
            c.conditionalGate(rng.coin(0.5) ? Gate::kX : Gate::kZ, tq,
                              {bit});
            c.gate2(Gate::kCZ, tq,
                    (tq + options.stride) % options.qubits);
        }
    }
    return c;
}

compiler::Circuit
vqeSweep(const VqeSweepOptions &options)
{
    DHISQ_ASSERT(options.qubits >= 2, "vqeSweep needs >= 2 qubits");
    // The angle stream is keyed on (seed, iteration) through the content
    // hasher so iteration i+1 is a fresh deterministic draw, not a shifted
    // replay of iteration i's stream.
    Hasher128 h;
    h.u64(options.seed);
    h.u64(options.iteration);
    Rng rng(h.digest().lo);

    const std::string name = "vqe_q" + std::to_string(options.qubits) +
                             "_l" + std::to_string(options.layers) + "_i" +
                             std::to_string(options.iteration) + "_s" +
                             std::to_string(options.seed);
    Circuit c(options.qubits, name);
    const auto rotationLayer = [&] {
        for (QubitId qb = 0; qb < options.qubits; ++qb)
            c.gate(Gate::kRy, qb, (2.0 * rng.uniform() - 1.0) * M_PI);
    };
    for (unsigned layer = 0; layer < options.layers; ++layer) {
        rotationLayer();
        for (QubitId qb = 0; qb + 1 < options.qubits; ++qb)
            c.gate2(Gate::kCNOT, qb, qb + 1);
    }
    rotationLayer();
    if (options.measure_all) {
        for (QubitId qb = 0; qb < options.qubits; ++qb)
            c.measure(qb);
    }
    return c;
}

compiler::Circuit
figure15Benchmark(const std::string &name)
{
    auto parseSize = [&](const std::string &prefix) -> unsigned {
        return unsigned(std::stoul(name.substr(prefix.size())));
    };
    if (name.rfind("adder_n", 0) == 0)
        return adder(parseSize("adder_n"));
    if (name.rfind("bv_n", 0) == 0)
        return bernsteinVazirani(parseSize("bv_n"));
    if (name.rfind("qft_n", 0) == 0)
        return qft(parseSize("qft_n"));
    if (name.rfind("w_state_n", 0) == 0)
        return wState(parseSize("w_state_n"));
    if (name.rfind("logical_t_n", 0) == 0) {
        // Choose the distance whose qubit count best approximates the name.
        const unsigned want = parseSize("logical_t_n");
        LogicalTOptions opt;
        unsigned best_d = 2;
        unsigned best_err = ~0u;
        for (unsigned d = 2; d <= 96; ++d) {
            opt.distance = d;
            const unsigned got = logicalTQubits(opt);
            const unsigned err = got > want ? got - want : want - got;
            if (err < best_err) {
                best_err = err;
                best_d = d;
            }
        }
        opt.distance = best_d;
        return logicalT(opt);
    }
    DHISQ_FATAL("unknown Figure-15 benchmark: ", name);
}

std::vector<std::string>
figure15Names()
{
    return {"adder_n577",    "adder_n1153",   "bv_n400",
            "bv_n1000",      "logical_t_n432", "logical_t_n864",
            "qft_n30",       "qft_n100",      "qft_n200",
            "qft_n300",      "w_state_n800",  "w_state_n1000"};
}

} // namespace dhisq::workloads
