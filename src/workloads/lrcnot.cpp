#include "workloads/lrcnot.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dhisq::workloads {

using compiler::Circuit;
using compiler::CircuitOp;
using q::Gate;

namespace {

/** Even-ancilla constant-depth core: path[0]=control ... path.back()=target.
 *  Returns the outcome cbits in ancilla order a1..ak. */
std::vector<CbitId>
emitEvenCore(Circuit &circuit, const std::vector<QubitId> &path)
{
    const std::size_t k = path.size() - 2;
    DHISQ_ASSERT(k >= 2 && k % 2 == 0, "even core needs even k >= 2");

    // 1. Bell pairs (a1,a2), (a3,a4), ...
    for (std::size_t i = 1; i + 1 <= k; i += 2) {
        circuit.gate(Gate::kH, path[i]);
        circuit.gate2(Gate::kCNOT, path[i], path[i + 1]);
    }
    // 2. Junction Bell measurements (basis rotation part).
    for (std::size_t u = 2; u + 1 <= k - 1; u += 2) {
        circuit.gate2(Gate::kCNOT, path[u], path[u + 1]);
        circuit.gate(Gate::kH, path[u]);
    }
    // 3. Ends.
    circuit.gate2(Gate::kCNOT, path[0], path[1]);
    circuit.gate2(Gate::kCNOT, path[k], path[k + 1]);
    circuit.gate(Gate::kH, path[k]);
    // 4. Measure all ancillas.
    std::vector<CbitId> bits;
    bits.reserve(k);
    for (std::size_t i = 1; i <= k; ++i)
        bits.push_back(circuit.measure(path[i]));
    return bits;
}

} // namespace

void
appendLongRangeCnot(Circuit &circuit, const std::vector<QubitId> &path,
                    const LrCnotOptions &options)
{
    DHISQ_ASSERT(path.size() >= 2, "path needs control and target");
    const std::size_t k = path.size() - 2;

    if (k == 0) {
        circuit.gate2(Gate::kCNOT, path[0], path[1]);
        return;
    }

    if (options.reset_ancillas) {
        for (std::size_t i = 1; i <= k; ++i) {
            CircuitOp op;
            op.gate = Gate::kPrepZ;
            op.qubits = {path[i]};
            circuit.append(op);
        }
    }

    if (k % 2 == 0) {
        const auto bits = emitEvenCore(circuit, path);
        std::vector<CbitId> z_bits, x_bits;
        for (std::size_t i = 0; i < k; ++i) {
            // bits[i] is ancilla a_{i+1}: even positions feed Z(c).
            if ((i + 1) % 2 == 0)
                z_bits.push_back(bits[i]);
            else
                x_bits.push_back(bits[i]);
        }
        circuit.conditionalGate(Gate::kZ, path[0], z_bits);
        circuit.conditionalGate(Gate::kX, path.back(), x_bits);
        return;
    }

    // Odd k: ladder step folds a1 into the Z parity, the even core runs on
    // the sub-path a1..t. k == 1 degenerates to the plain ladder.
    circuit.gate2(Gate::kCNOT, path[0], path[1]);
    std::vector<CbitId> z_bits, x_bits;
    if (k == 1) {
        circuit.gate2(Gate::kCNOT, path[1], path[2]);
    } else {
        const std::vector<QubitId> sub(path.begin() + 1, path.end());
        const auto bits = emitEvenCore(circuit, sub);
        for (std::size_t i = 0; i < bits.size(); ++i) {
            if ((i + 1) % 2 == 0)
                z_bits.push_back(bits[i]);
            else
                x_bits.push_back(bits[i]);
        }
    }
    circuit.gate(Gate::kH, path[1]);
    z_bits.push_back(circuit.measure(path[1]));
    circuit.conditionalGate(Gate::kZ, path[0], z_bits);
    if (!x_bits.empty())
        circuit.conditionalGate(Gate::kX, path.back(), x_bits);
}

void
appendLongRangeCnotLine(Circuit &circuit, QubitId control, QubitId target,
                        const LrCnotOptions &options)
{
    DHISQ_ASSERT(control != target, "control == target");
    std::vector<QubitId> path;
    if (control < target) {
        for (QubitId q = control; q <= target; ++q)
            path.push_back(q);
    } else {
        for (QubitId q = control; q + 1 >= target + 1; --q) {
            path.push_back(q);
            if (q == target)
                break;
        }
    }
    appendLongRangeCnot(circuit, path, options);
}

compiler::Circuit
expandNonAdjacentGates(const Circuit &input, double probability, Rng &rng,
                       const LrCnotOptions &options)
{
    Circuit out(input.numQubits(), input.name() + "_dyn");

    auto distance = [](QubitId a, QubitId b) {
        return a > b ? a - b : b - a;
    };

    auto emitCnot = [&](QubitId c, QubitId t) {
        if (distance(c, t) <= 1 || !rng.coin(probability)) {
            out.gate2(Gate::kCNOT, c, t);
        } else {
            appendLongRangeCnotLine(out, c, t, options);
        }
    };

    // Expansion inserts its own measurements, so the input's cbit ids are
    // renumbered; conditions are remapped through `remap`.
    std::vector<CbitId> remap(input.numCbits(), compiler::kNoCbit);

    for (const auto &op : input.ops()) {
        if (op.isConditional() || op.isMeasure() || !op.isTwoQubit()) {
            if (op.isMeasure()) {
                remap.at(op.result) = out.measure(op.qubits[0]);
            } else if (op.isConditional()) {
                CircuitOp mapped = op;
                for (auto &bit : mapped.condition) {
                    DHISQ_ASSERT(remap.at(bit) != compiler::kNoCbit,
                                 "condition precedes its measurement");
                    bit = remap[bit];
                }
                out.append(std::move(mapped));
            } else {
                out.append(op);
            }
            continue;
        }
        const QubitId a = op.qubits[0];
        const QubitId b = op.qubits[1];
        if (distance(a, b) <= 1) {
            out.append(op);
            continue;
        }
        switch (op.gate) {
          case Gate::kCNOT:
            emitCnot(a, b);
            break;
          case Gate::kCZ:
            // CZ = H(t) CNOT H(t).
            out.gate(Gate::kH, b);
            emitCnot(a, b);
            out.gate(Gate::kH, b);
            break;
          case Gate::kCPhase: {
            // CP(theta) = Rz_c(t/2) . CNOT . Rz_t(-t/2) . CNOT . Rz_t(t/2)
            const double half = op.angle / 2.0;
            out.gate(Gate::kRz, a, half);
            out.gate(Gate::kRz, b, half);
            emitCnot(a, b);
            out.gate(Gate::kRz, b, -half);
            emitCnot(a, b);
            break;
          }
          default:
            DHISQ_PANIC("cannot expand non-adjacent ",
                        q::gateName(op.gate));
        }
    }
    return out;
}

} // namespace dhisq::workloads
