/**
 * @file
 * Convenience builder for emitting decoded HISQ instructions with label
 * support — the compiler's code-emission backend. Produces the same
 * isa::Program the assembler does (encoded words included), so compiled
 * binaries are first-class artifacts.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace dhisq::compiler {

/** Forward-reference label handle. */
struct Label
{
    std::size_t id = 0;
};

/** Emits isa::Instruction streams with branch-label fixups. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "compiled")
        : _name(std::move(name))
    {
    }

    std::size_t size() const { return _instructions.size(); }

    /** Create an unbound label. */
    Label newLabel();

    /** Bind a label to the next instruction. */
    void bind(Label label);

    // ---- Raw emission ----------------------------------------------------
    void emit(isa::Instruction ins);

    // ---- Classical helpers -----------------------------------------------
    void addi(unsigned rd, unsigned rs1, std::int32_t imm);
    /** Load an arbitrary 32-bit constant (addi or lui+addi pair). */
    void li(unsigned rd, std::int32_t value);
    void xorReg(unsigned rd, unsigned rs1, unsigned rs2);
    void andi(unsigned rd, unsigned rs1, std::int32_t imm);
    void lw(unsigned rd, unsigned base, std::int32_t offset);
    void sw(unsigned rs2, unsigned base, std::int32_t offset);
    void beq(unsigned rs1, unsigned rs2, Label target);
    void bne(unsigned rs1, unsigned rs2, Label target);
    void jal(Label target);

    // ---- Quantum-control helpers ------------------------------------------
    /** waiti, split into encodable chunks when the duration is large. */
    void waiti(Cycle cycles);
    void cwii(PortId port, Codeword cw);
    void syncController(ControllerId peer);
    void syncRouter(RouterId router, Cycle residual);
    void wtrig(std::uint32_t src);
    void send(ControllerId dst, unsigned rs2);
    void recv(unsigned rd, std::uint32_t src);
    void halt();

    /** Finish: resolve labels, encode words, return the program. */
    isa::Program finish();

  private:
    std::string _name;
    std::vector<isa::Instruction> _instructions;
    struct Fixup
    {
        std::size_t instr_index;
        std::size_t label_id;
    };
    std::vector<Fixup> _fixups;
    std::vector<std::size_t> _label_targets; ///< indexed by label id
    bool _finished = false;
};

} // namespace dhisq::compiler
