#include "compiler/ir.hpp"

#include "common/logging.hpp"

namespace dhisq::compiler {

std::size_t
Circuit::countMeasurements() const
{
    std::size_t n = 0;
    for (const auto &op : _ops)
        n += op.isMeasure() ? 1 : 0;
    return n;
}

std::size_t
Circuit::countConditionals() const
{
    std::size_t n = 0;
    for (const auto &op : _ops)
        n += op.isConditional() ? 1 : 0;
    return n;
}

std::size_t
Circuit::countTwoQubit() const
{
    std::size_t n = 0;
    for (const auto &op : _ops)
        n += op.isTwoQubit() ? 1 : 0;
    return n;
}

SimulationResult
simulateCircuit(const Circuit &circuit, Rng &rng)
{
    SimulationResult result;
    result.state = q::StateVector(circuit.numQubits());
    result.cbits.assign(circuit.numCbits(), 0);

    for (const auto &op : circuit.ops()) {
        if (op.isConditional()) {
            int parity = 0;
            for (CbitId b : op.condition) {
                DHISQ_ASSERT(b < result.cbits.size(),
                             "condition on unmeasured cbit ", b);
                parity ^= result.cbits[b];
            }
            if (parity == 0)
                continue;
        }
        if (op.isMeasure()) {
            result.cbits.at(op.result) =
                result.state.measure(op.qubits[0], rng);
        } else if (op.gate == q::Gate::kPrepZ) {
            result.state.resetQubit(op.qubits[0], rng);
        } else if (op.isTwoQubit()) {
            result.state.apply2q(op.gate, op.qubits[0], op.qubits[1],
                                 op.angle);
        } else {
            result.state.apply1q(op.gate, op.qubits[0], op.angle);
        }
    }
    return result;
}

} // namespace dhisq::compiler
