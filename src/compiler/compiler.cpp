#include "compiler/compiler.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "compiler/cache/cache.hpp"
#include "compiler/cache/key.hpp"
#include "compiler/passes/pass.hpp"

namespace dhisq::compiler {

const char *
toString(SyncScheme scheme)
{
    switch (scheme) {
      case SyncScheme::kBisp: return "bisp";
      case SyncScheme::kDemand: return "demand";
      case SyncScheme::kLockStep: return "lockstep";
    }
    return "?";
}

const char *
toString(RoutingMode mode)
{
    switch (mode) {
      case RoutingMode::kNone: return "none";
      case RoutingMode::kSwap: return "swap";
    }
    return "?";
}

bool
parseRoutingMode(std::string_view text, RoutingMode &out)
{
    for (RoutingMode mode : allRoutingModes()) {
        if (text == toString(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

const std::vector<RoutingMode> &
allRoutingModes()
{
    static const std::vector<RoutingMode> modes = {
        RoutingMode::kNone,
        RoutingMode::kSwap,
    };
    return modes;
}

const char *
toString(CacheMode mode)
{
    switch (mode) {
      case CacheMode::kOff: return "off";
      case CacheMode::kMemory: return "memory";
      case CacheMode::kDisk: return "disk";
    }
    return "?";
}

bool
parseCacheMode(std::string_view text, CacheMode &out)
{
    for (CacheMode mode : allCacheModes()) {
        if (text == toString(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

const std::vector<CacheMode> &
allCacheModes()
{
    static const std::vector<CacheMode> modes = {
        CacheMode::kOff,
        CacheMode::kMemory,
        CacheMode::kDisk,
    };
    return modes;
}

unsigned
CompiledProgram::usedControllers() const
{
    unsigned n = 0;
    for (bool u : used)
        n += u ? 1 : 0;
    return n;
}

std::size_t
CompiledProgram::totalInstructions() const
{
    std::size_t n = 0;
    for (const auto &p : programs)
        n += p.size();
    return n;
}

QubitId
CompiledProgram::logicalMeasQubit(QubitId physical,
                                  std::size_t occurrence) const
{
    std::size_t seen = 0;
    for (const auto &[slot, logical] : meas_log) {
        if (slot != physical)
            continue;
        if (seen == occurrence)
            return logical;
        ++seen;
    }
    return kNoQubit;
}

void
CompiledProgram::applyTo(runtime::Machine &machine) const
{
    for (ControllerId c = 0; c < programs.size(); ++c) {
        if (used[c])
            machine.loadProgram(c, programs[c]);
    }
    for (const auto &b : bindings)
        machine.bind(b.controller, b.port, b.codeword, b.action);
    for (const auto &[qubit, ctrl] : meas_routes)
        machine.routeMeasResult(qubit, ctrl);
}

Compiler::Compiler(const net::Topology &topo, const CompilerConfig &config)
    : _topo(topo), _config(config)
{
}

Result<CompiledProgram>
Compiler::compileImpl(const Circuit &circuit)
{
    passes::PassContext ctx(_topo, _config, circuit);
    if (Status status = passes::runPipeline(ctx); !status)
        return Result<CompiledProgram>::error(status.message());
    return std::move(ctx.out);
}

Result<CompiledProgram>
Compiler::tryCompile(const Circuit &circuit)
{
    if (_config.cache == CacheMode::kOff)
        return compileImpl(circuit);
    const Hash128 key = cache::cacheKey(circuit, _config, _topo.config());
    return cache::CompileCache::global().getOrCompile(
        key, _config.cache, _config.cache_dir,
        [&] { return compileImpl(circuit); });
}

CompiledProgram
Compiler::compile(const Circuit &circuit)
{
    auto result = tryCompile(circuit);
    if (!result)
        DHISQ_FATAL("compile failed: ", result.message());
    return result.take();
}

runtime::MachineConfig
machineConfigFor(const net::TopologyConfig &topo,
                 const CompilerConfig &compiler, unsigned num_qubits,
                 bool state_vector, std::uint64_t seed)
{
    runtime::MachineConfig cfg;
    // The lock-step schedule floors feedback at the topology's hub
    // latency and the fabric broadcasts at the same constant — both read
    // `topo.hub_latency`, so they agree by construction.
    cfg.topology = topo;
    cfg.device.num_qubits = num_qubits;
    cfg.device.state_vector = state_vector;
    cfg.device.seed = seed;
    cfg.device.gate1q_cycles = compiler.gate1q;
    cfg.device.gate2q_cycles = compiler.gate2q;
    cfg.device.measure_cycles = compiler.measure;
    cfg.device.fusion = compiler.fusion;
    cfg.ports_per_controller = compiler.qubits_per_controller;
    return cfg;
}

runtime::MachineConfig
machineConfigFor(const net::TopologyConfig &topo,
                 const CompilerConfig &compiler,
                 const CompiledProgram &compiled, bool state_vector,
                 std::uint64_t seed)
{
    runtime::MachineConfig cfg = machineConfigFor(
        topo, compiler, compiled.device_qubits, state_vector, seed);
    cfg.ports_per_controller =
        std::max(compiler.qubits_per_controller,
                 compiled.ports_per_controller);
    // Tier selection: the program's gate census decides whether the
    // functional device may run the stabilizer tableau.
    cfg.device.backend =
        q::resolveBackend(compiler.backend, compiled.clifford_only);
    return cfg;
}

} // namespace dhisq::compiler
