/**
 * @file
 * Circuit -> qubit-block interaction graph: the compiler-side input of the
 * placement optimizer. Block k holds qubits [k*qpc, (k+1)*qpc); an edge's
 * weight counts how often the two blocks must talk over the interconnect.
 */
#pragma once

#include "compiler/ir.hpp"
#include "place/placement.hpp"

namespace dhisq::compiler {

/**
 * Weight constants of the interaction model. Inside a common epoch a
 * cross-block two-qubit gate is co-scheduled for free whatever the graph,
 * so it only contributes the tiny kCoscheduleWeight tie-breaker; what
 * actually prices the interconnect is the traffic codegen emits at epoch
 * divergence. The builder replays the compiler's own epoch tracking:
 * a conditional gives its consumer a private epoch, and a two-qubit gate
 * between diverged blocks books a sync (kSyncWeight — a region sync over
 * the covering subtree when the pair has no link, which is exactly what
 * the CostModel's non-adjacency penalty prices). A remote feedback
 * dependency contributes kFeedbackWeight: the result message the consumer
 * stalls on.
 */
inline constexpr double kCoscheduleWeight = 0.05;
inline constexpr double kSyncWeight = 2.0;
inline constexpr double kFeedbackWeight = 2.0;

/**
 * Build the interaction graph of `circuit` under a given blocking factor.
 * Deterministic; conditional cross-block two-qubit gates (unsupported by
 * codegen under every placement) contribute nothing.
 */
place::InteractionGraph interactionGraphOf(const Circuit &circuit,
                                           unsigned qubits_per_controller);

} // namespace dhisq::compiler
