/**
 * @file
 * Dynamic-circuit intermediate representation.
 *
 * This is the circuit-level input of the software stack (the role SISQ
 * plays in Figure 10): gates, measurements and classically-conditioned
 * operations. Conditions are parity conditions over previously-measured
 * classical bits — exactly what the dynamic-circuit constructions in the
 * evaluation need (the Fig. 14 long-range CNOT applies X/Z conditioned on
 * the parity of ancilla measurement outcomes).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "quantum/gates.hpp"
#include "quantum/state_vector.hpp"

namespace dhisq::compiler {

/** Sentinel classical bit. */
inline constexpr CbitId kNoCbit = 0xFFFFFFFF;

/** One circuit operation. */
struct CircuitOp
{
    q::Gate gate = q::Gate::kI;
    double angle = 0.0;
    /** Operand qubits (1 or 2 entries). */
    std::vector<QubitId> qubits;
    /** Measurement destination (measure ops only). */
    CbitId result = kNoCbit;
    /**
     * Parity condition: when non-empty the op executes iff the XOR of the
     * listed classical bits equals 1.
     */
    std::vector<CbitId> condition;

    bool isMeasure() const { return gate == q::Gate::kMeasure; }
    bool isConditional() const { return !condition.empty(); }
    bool isTwoQubit() const { return qubits.size() == 2; }
};

/** A dynamic circuit. */
class Circuit
{
  public:
    explicit Circuit(unsigned num_qubits, std::string name = "circuit")
        : _num_qubits(num_qubits), _name(std::move(name))
    {
    }

    unsigned numQubits() const { return _num_qubits; }
    unsigned numCbits() const { return _num_cbits; }
    const std::string &name() const { return _name; }
    const std::vector<CircuitOp> &ops() const { return _ops; }
    std::size_t size() const { return _ops.size(); }

    /** Append a single-qubit gate. */
    void
    gate(q::Gate g, QubitId q, double angle = 0.0)
    {
        CircuitOp op;
        op.gate = g;
        op.angle = angle;
        op.qubits = {q};
        _ops.push_back(std::move(op));
    }

    /** Append a two-qubit gate. */
    void
    gate2(q::Gate g, QubitId q0, QubitId q1, double angle = 0.0)
    {
        CircuitOp op;
        op.gate = g;
        op.angle = angle;
        op.qubits = {q0, q1};
        _ops.push_back(std::move(op));
    }

    /** Append a measurement; returns the classical bit it writes. */
    CbitId
    measure(QubitId q)
    {
        CircuitOp op;
        op.gate = q::Gate::kMeasure;
        op.qubits = {q};
        op.result = _num_cbits++;
        _ops.push_back(std::move(op));
        return op.result;
    }

    /** Append a gate conditioned on the parity of `bits` being 1. */
    void
    conditionalGate(q::Gate g, QubitId q, std::vector<CbitId> bits,
                    double angle = 0.0)
    {
        CircuitOp op;
        op.gate = g;
        op.angle = angle;
        op.qubits = {q};
        op.condition = std::move(bits);
        _ops.push_back(std::move(op));
    }

    /** Append an arbitrary op. */
    void append(CircuitOp op) { _ops.push_back(std::move(op)); }

    /** Count of measurement ops. */
    std::size_t countMeasurements() const;

    /** Count of conditional (feedback) ops. */
    std::size_t countConditionals() const;

    /** Count of two-qubit ops. */
    std::size_t countTwoQubit() const;

  private:
    unsigned _num_qubits;
    unsigned _num_cbits = 0;
    std::string _name;
    std::vector<CircuitOp> _ops;
};

/** Result of reference (architectural-model-free) circuit execution. */
struct SimulationResult
{
    q::StateVector state{1};
    std::vector<int> cbits;
};

/**
 * Execute the circuit directly on a state vector — the functional reference
 * against which compiled executions are verified.
 */
SimulationResult simulateCircuit(const Circuit &circuit, Rng &rng);

} // namespace dhisq::compiler
