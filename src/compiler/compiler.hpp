/**
 * @file
 * The DQCtrl compiler backend (Figure 10): lowers a dynamic circuit onto
 * per-controller HISQ binaries plus board bindings and measurement routes.
 *
 * Three synchronization schemes are supported:
 *
 *  - kBisp      Distributed-HISQ codegen. Each controller keeps its own
 *               control flow; conditional blocks execute only their taken
 *               branch (no reserved dead time); cross-controller two-qubit
 *               gates after non-deterministic regions insert nearby `sync`
 *               pairs with the booking advanced as far as the last
 *               non-deterministic point (Insight #1), masking the link
 *               latency behind remaining deterministic work.
 *  - kDemand    QubiC-2.0-style on-demand sync (Section 2.1.3): identical
 *               hardware, but the sync books immediately before the
 *               synchronization point, paying the signal bounce N on every
 *               synchronization.
 *  - kLockStep  IBM-style lock-step baseline (Sections 2.1.2, 6.4.3): one
 *               static global timeline shared by all controllers; every
 *               measurement result is broadcast through the central hub at
 *               a size-independent constant latency; conditional blocks
 *               reserve their duration on the global timeline and
 *               serialize against each other (single program flow).
 *
 * Epoch model. The compiler tracks, per controller, an *epoch*: a maximal
 * region of the timeline whose wall-clock alignment with other controllers
 * in the same epoch is deterministic. Feedback (branches, remote-result
 * waits) ends an epoch; sync instructions merge controllers back into a
 * common epoch. Two-qubit gate halves may only be co-scheduled inside a
 * common epoch — this is precisely the paper's cycle-level instruction
 * commitment synchronization requirement, and the quantum device's
 * coincidence checker enforces it at runtime.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "compiler/ir.hpp"
#include "net/topology.hpp"
#include "place/placement.hpp"
#include "quantum/device.hpp"
#include "runtime/machine.hpp"

namespace dhisq::compiler {

/** Synchronization scheme to compile for. */
enum class SyncScheme : std::uint8_t { kBisp, kDemand, kLockStep };

/** Human-readable scheme name. */
const char *toString(SyncScheme scheme);

/**
 * Qubit-routing mode of the Route pass.
 *
 *  - kNone  no routing: qubits stay on their placed slots for the whole
 *           program (bit-compatible with the pre-pipeline compiler) and
 *           circuits larger than the block capacity are rejected with a
 *           structured diagnostic.
 *  - kSwap  SWAP-insertion routing: two-qubit gates between non-adjacent
 *           controllers with diverged timelines (and conditional gates
 *           whose operands ended up on different controllers) are made
 *           local/adjacent by SWAP chains along the cheapest latency
 *           path, and circuits larger than the block capacity map in the
 *           oversubscribed mode (consecutive qubit blocks folded onto
 *           one controller).
 */
enum class RoutingMode : std::uint8_t { kNone, kSwap };

/** Human-readable routing-mode name ("none", "swap"). */
const char *toString(RoutingMode mode);

/** Parse a routing-mode name; false when `text` names no mode. */
bool parseRoutingMode(std::string_view text, RoutingMode &out);

/** Every routing mode in canonical sweep order. */
const std::vector<RoutingMode> &allRoutingModes();

/**
 * Compile-cache tier.
 *
 *  - kOff     every compile runs the pass pipeline (the default, so
 *             committed bench artifacts stay byte-identical with and
 *             without this feature).
 *  - kMemory  content-addressed in-memory LRU (cache/cache.hpp).
 *  - kDisk    memory tier plus one JSON file per key under `cache_dir`,
 *             surviving the process.
 */
enum class CacheMode : std::uint8_t { kOff, kMemory, kDisk };

/** Human-readable cache-mode name ("off", "memory", "disk"). */
const char *toString(CacheMode mode);

/** Parse a cache-mode name; false when `text` names no mode. */
bool parseCacheMode(std::string_view text, CacheMode &out);

/** Every cache mode in canonical sweep order. */
const std::vector<CacheMode> &allCacheModes();

/** Compiler knobs. */
struct CompilerConfig
{
    SyncScheme scheme = SyncScheme::kBisp;
    /** Consecutive qubits per controller (1 = the Figure 1 setting). */
    unsigned qubits_per_controller = 1;
    /** Qubit-block -> controller mapping strategy (src/place). kPath is
     *  the topology's path embedding, bit-compatible with the
     *  pre-placement compiler. */
    place::PlacementStrategy placement = place::PlacementStrategy::kPath;
    /** Qubit routing (SWAP insertion + oversubscribed mapping). kNone is
     *  bit-compatible with the pre-pipeline compiler. */
    RoutingMode routing = RoutingMode::kNone;
    /**
     * SWAP-selection lookahead window of the Route pass: the number of
     * upcoming two-qubit gates each candidate chain is scored against.
     * 1 reproduces the greedy per-gate router bit-for-bit; larger
     * windows enable congestion-aware joint selection over k-shortest
     * candidate paths (kSwap only).
     */
    unsigned route_window = 1;
    /**
     * Route -> place feedback: after a first routing attempt, fold the
     * observed per-block-pair SWAP-chain costs back into the interaction
     * graph, re-run kl-mincut refinement once and keep the cheaper of
     * the two attempts (bounded at 2 routing passes).
     */
    bool route_feedback = false;
    /**
     * Steady-state repetition scheduling: detect the live-map orbit
     * across repetition bodies and reuse one routed stream per orbit
     * period for reps 2..N. Off forces the naive per-rep replay (test
     * escape; observable output is identical either way).
     */
    bool route_steady_state = true;
    /** Operation durations in cycles (paper: 20/40/300 ns). */
    Cycle gate1q = 5;
    Cycle gate2q = 10;
    Cycle measure = 75;
    /** Classical decode margin between a result arrival and its use. */
    Cycle feedback_margin = 8;
    /**
     * Scheduling floor applied at program/epoch start: the first timing
     * points sit this many cycles after the origin so the 1-instruction/
     * cycle pipeline can fill the event queues ahead of time (otherwise a
     * burst of same-time-point codewords would outrun the issue rate,
     * Section 7.1).
     */
    Cycle pipeline_slack = 8;
    /** Booking lead used for region syncs at repetition boundaries. */
    Cycle region_residual = 64;
    /** Program repetitions, separated by region-level synchronization. */
    unsigned repetitions = 1;
    /**
     * Functional-backend tier for devices built from this compilation
     * (machineConfigFor's compiled-program overload). kAuto picks the
     * stabilizer tableau when the compiled op stream is Clifford-only
     * and the dense state vector otherwise.
     */
    q::BackendTier backend = q::BackendTier::kAuto;
    /**
     * Lazy 1q gate-fusion tier for devices built from this compilation
     * (q::FusionMode; only engages on the dense backend). Off by
     * default so committed bench artifacts stay byte-identical.
     */
    q::FusionMode fusion = q::FusionMode::kOff;
    /**
     * Compile-cache tier consulted by tryCompile. Excluded from the
     * content key (it selects where results are stored, not what they
     * are). Off by default: enabling it is an explicit opt-in by batch
     * drivers (service::JobServer, throughput benches).
     */
    CacheMode cache = CacheMode::kOff;
    /** Directory of the on-disk tier (kDisk only). */
    std::string cache_dir = ".dhisq-compile-cache";
};

/** One board binding produced by compilation. */
struct Binding
{
    ControllerId controller;
    PortId port;
    Codeword codeword;
    q::Action action;
};

/** Compiler output: binaries + bindings + routes + statistics. */
struct CompiledProgram
{
    /** Per controller; only entries with used[i] carry a program. */
    std::vector<isa::Program> programs;
    std::vector<bool> used;
    std::vector<Binding> bindings;
    /** qubit -> controller that receives its measurement results. */
    std::vector<std::pair<QubitId, ControllerId>> meas_routes;
    StatSet stats;
    /**
     * Physical-slot geometry of the compiled program. Without routing
     * these equal `qubits_per_controller` and the circuit's qubit count;
     * SWAP routing can widen both (oversubscribed blocks, empty routing
     * slots). The machine must provide at least this many ports per
     * controller / device qubits.
     */
    unsigned ports_per_controller = 0;
    unsigned device_qubits = 0;
    /**
     * True when every bound device action is Clifford (gates from the
     * H/S/Paulis/90-degree-rotations/CNOT/CZ/SWAP set, measurement,
     * reset) — the census the backend tier selector resolves against.
     */
    bool clifford_only = false;
    /**
     * (physical slot, logical qubit) per measurement, in program order —
     * the map from the device's slot-keyed measurement records back to
     * circuit qubits once routing has moved them.
     */
    std::vector<std::pair<QubitId, QubitId>> meas_log;

    /** Number of controllers that execute code. */
    unsigned usedControllers() const;

    /**
     * Logical qubit behind the `occurrence`-th measurement committed on
     * physical slot/device-qubit `physical` (0-based, in program order).
     * Identity when routing is off. kNoQubit when no such measurement.
     */
    QubitId logicalMeasQubit(QubitId physical,
                             std::size_t occurrence = 0) const;

    /** Total compiled instructions across all controllers. */
    std::size_t totalInstructions() const;

    /** Load programs, bindings and routes into a machine. */
    void applyTo(runtime::Machine &machine) const;
};

/** Circuit -> HISQ compiler (runs the pass pipeline, see passes/). */
class Compiler
{
  public:
    Compiler(const net::Topology &topo, const CompilerConfig &config);

    /**
     * Compile one dynamic circuit, reporting recoverable problems (e.g.
     * a circuit exceeding the block capacity with routing disabled) as
     * a structured error naming the workload and the capacity. When
     * `config.cache` is enabled the compile is served through the
     * process-wide content-addressed cache (cache/cache.hpp); failures
     * are never cached.
     */
    Result<CompiledProgram> tryCompile(const Circuit &circuit);

    /** Compile one dynamic circuit; fatal on a compile error. */
    CompiledProgram compile(const Circuit &circuit);

    const CompilerConfig &config() const { return _config; }

  private:
    /** Run the pass pipeline unconditionally (cache miss path). */
    Result<CompiledProgram> compileImpl(const Circuit &circuit);

    const net::Topology &_topo;
    CompilerConfig _config;
};

/**
 * Machine configuration matching a compilation: same topology (whose
 * `hub_latency` is the single source of truth for the lock-step hub),
 * same durations and enough qubits/ports. `state_vector` selects
 * functional (small) vs timing-only (large) device mode.
 */
runtime::MachineConfig machineConfigFor(const net::TopologyConfig &topo,
                                        const CompilerConfig &compiler,
                                        unsigned num_qubits,
                                        bool state_vector,
                                        std::uint64_t seed = 1);

/**
 * Machine configuration sized for a specific compiled program: same as
 * above but takes ports-per-controller and device qubits from the
 * program's recorded slot geometry, which SWAP routing may have widened
 * beyond the circuit's own qubit count.
 */
runtime::MachineConfig machineConfigFor(const net::TopologyConfig &topo,
                                        const CompilerConfig &compiler,
                                        const CompiledProgram &compiled,
                                        bool state_vector,
                                        std::uint64_t seed = 1);

} // namespace dhisq::compiler
