/**
 * @file
 * The DQCtrl compiler backend (Figure 10): lowers a dynamic circuit onto
 * per-controller HISQ binaries plus board bindings and measurement routes.
 *
 * Three synchronization schemes are supported:
 *
 *  - kBisp      Distributed-HISQ codegen. Each controller keeps its own
 *               control flow; conditional blocks execute only their taken
 *               branch (no reserved dead time); cross-controller two-qubit
 *               gates after non-deterministic regions insert nearby `sync`
 *               pairs with the booking advanced as far as the last
 *               non-deterministic point (Insight #1), masking the link
 *               latency behind remaining deterministic work.
 *  - kDemand    QubiC-2.0-style on-demand sync (Section 2.1.3): identical
 *               hardware, but the sync books immediately before the
 *               synchronization point, paying the signal bounce N on every
 *               synchronization.
 *  - kLockStep  IBM-style lock-step baseline (Sections 2.1.2, 6.4.3): one
 *               static global timeline shared by all controllers; every
 *               measurement result is broadcast through the central hub at
 *               a size-independent constant latency; conditional blocks
 *               reserve their duration on the global timeline and
 *               serialize against each other (single program flow).
 *
 * Epoch model. The compiler tracks, per controller, an *epoch*: a maximal
 * region of the timeline whose wall-clock alignment with other controllers
 * in the same epoch is deterministic. Feedback (branches, remote-result
 * waits) ends an epoch; sync instructions merge controllers back into a
 * common epoch. Two-qubit gate halves may only be co-scheduled inside a
 * common epoch — this is precisely the paper's cycle-level instruction
 * commitment synchronization requirement, and the quantum device's
 * coincidence checker enforces it at runtime.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "compiler/ir.hpp"
#include "net/topology.hpp"
#include "place/placement.hpp"
#include "quantum/device.hpp"
#include "runtime/machine.hpp"

namespace dhisq::compiler {

/** Synchronization scheme to compile for. */
enum class SyncScheme : std::uint8_t { kBisp, kDemand, kLockStep };

/** Human-readable scheme name. */
const char *toString(SyncScheme scheme);

/** Compiler knobs. */
struct CompilerConfig
{
    SyncScheme scheme = SyncScheme::kBisp;
    /** Consecutive qubits per controller (1 = the Figure 1 setting). */
    unsigned qubits_per_controller = 1;
    /** Qubit-block -> controller mapping strategy (src/place). kPath is
     *  the topology's path embedding, bit-compatible with the
     *  pre-placement compiler. */
    place::PlacementStrategy placement = place::PlacementStrategy::kPath;
    /** Operation durations in cycles (paper: 20/40/300 ns). */
    Cycle gate1q = 5;
    Cycle gate2q = 10;
    Cycle measure = 75;
    /** Classical decode margin between a result arrival and its use. */
    Cycle feedback_margin = 8;
    /**
     * Scheduling floor applied at program/epoch start: the first timing
     * points sit this many cycles after the origin so the 1-instruction/
     * cycle pipeline can fill the event queues ahead of time (otherwise a
     * burst of same-time-point codewords would outrun the issue rate,
     * Section 7.1).
     */
    Cycle pipeline_slack = 8;
    /** Booking lead used for region syncs at repetition boundaries. */
    Cycle region_residual = 64;
    /** Program repetitions, separated by region-level synchronization. */
    unsigned repetitions = 1;
};

/** One board binding produced by compilation. */
struct Binding
{
    ControllerId controller;
    PortId port;
    Codeword codeword;
    q::Action action;
};

/** Compiler output: binaries + bindings + routes + statistics. */
struct CompiledProgram
{
    /** Per controller; only entries with used[i] carry a program. */
    std::vector<isa::Program> programs;
    std::vector<bool> used;
    std::vector<Binding> bindings;
    /** qubit -> controller that receives its measurement results. */
    std::vector<std::pair<QubitId, ControllerId>> meas_routes;
    StatSet stats;

    /** Number of controllers that execute code. */
    unsigned usedControllers() const;

    /** Total compiled instructions across all controllers. */
    std::size_t totalInstructions() const;

    /** Load programs, bindings and routes into a machine. */
    void applyTo(runtime::Machine &machine) const;
};

/** Circuit -> HISQ compiler. */
class Compiler
{
  public:
    Compiler(const net::Topology &topo, const CompilerConfig &config);

    /** Compile one dynamic circuit. */
    CompiledProgram compile(const Circuit &circuit);

    const CompilerConfig &config() const { return _config; }

  private:
    const net::Topology &_topo;
    CompilerConfig _config;
};

/**
 * Machine configuration matching a compilation: same topology (whose
 * `hub_latency` is the single source of truth for the lock-step hub),
 * same durations and enough qubits/ports. `state_vector` selects
 * functional (small) vs timing-only (large) device mode.
 */
runtime::MachineConfig machineConfigFor(const net::TopologyConfig &topo,
                                        const CompilerConfig &compiler,
                                        unsigned num_qubits,
                                        bool state_vector,
                                        std::uint64_t seed = 1);

} // namespace dhisq::compiler
