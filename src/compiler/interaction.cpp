#include "compiler/interaction.hpp"

#include "common/logging.hpp"

namespace dhisq::compiler {

place::InteractionGraph
interactionGraphOf(const Circuit &circuit, unsigned qubits_per_controller)
{
    DHISQ_ASSERT(qubits_per_controller >= 1,
                 "qubits_per_controller must be >= 1");
    const unsigned blocks =
        (circuit.numQubits() + qubits_per_controller - 1) /
        qubits_per_controller;
    place::InteractionGraph graph(blocks);
    auto block_of = [&](QubitId q) { return q / qubits_per_controller; };

    // Where each classical bit is measured, in program order (later
    // measurements into the same bit overwrite, matching codegen), and a
    // replay of codegen's epoch tracking: only traffic at epoch
    // divergence prices the interconnect.
    std::vector<unsigned> measurer(circuit.numCbits(), unsigned(-1));
    std::vector<std::uint64_t> epoch(blocks, 0);
    std::uint64_t next_epoch = 1;
    for (const auto &op : circuit.ops()) {
        if (op.isConditional()) {
            const unsigned consumer = block_of(op.qubits[0]);
            for (CbitId bit : op.condition) {
                const unsigned src = measurer.at(bit);
                DHISQ_ASSERT(src != unsigned(-1),
                             "condition on not-yet-measured cbit ", bit);
                graph.addMessageWeight(src, consumer, kFeedbackWeight);
            }
            // The branch makes the consumer's timeline private.
            epoch.at(consumer) = next_epoch++;
            continue;
        }
        if (op.isMeasure()) {
            measurer.at(op.result) = block_of(op.qubits[0]);
            continue;
        }
        if (op.isTwoQubit()) {
            const unsigned a = block_of(op.qubits[0]);
            const unsigned b = block_of(op.qubits[1]);
            if (a == b)
                continue;
            if (epoch[a] == epoch[b]) {
                // Co-scheduled for free inside the common epoch; the tiny
                // weight only breaks placement ties toward locality.
                graph.addSyncWeight(a, b, kCoscheduleWeight);
            } else {
                // Diverged timelines: codegen books a sync here (a region
                // sync when the controllers share no link).
                graph.addSyncWeight(a, b, kSyncWeight);
                epoch[a] = epoch[b] = next_epoch++;
            }
        }
    }
    return graph;
}

} // namespace dhisq::compiler
