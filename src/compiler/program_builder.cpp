#include "compiler/program_builder.hpp"

#include "common/logging.hpp"
#include "isa/encoding.hpp"

namespace dhisq::compiler {

namespace {
constexpr std::size_t kUnbound = std::size_t(-1);
} // namespace

Label
ProgramBuilder::newLabel()
{
    _label_targets.push_back(kUnbound);
    return Label{_label_targets.size() - 1};
}

void
ProgramBuilder::bind(Label label)
{
    DHISQ_ASSERT(label.id < _label_targets.size(), "unknown label");
    DHISQ_ASSERT(_label_targets[label.id] == kUnbound,
                 "label bound twice");
    _label_targets[label.id] = _instructions.size();
}

void
ProgramBuilder::emit(isa::Instruction ins)
{
    DHISQ_ASSERT(!_finished, "builder already finished");
    _instructions.push_back(ins);
}

void
ProgramBuilder::addi(unsigned rd, unsigned rs1, std::int32_t imm)
{
    DHISQ_ASSERT(imm >= isa::kMinSImmediate && imm <= isa::kMaxSImmediate,
                 "addi immediate out of range: ", imm);
    emit(isa::Instruction{isa::Op::kAddi, std::uint8_t(rd),
                          std::uint8_t(rs1), 0, imm, 0});
}

void
ProgramBuilder::li(unsigned rd, std::int32_t value)
{
    if (value >= isa::kMinSImmediate && value <= isa::kMaxSImmediate) {
        addi(rd, 0, value);
        return;
    }
    // Compute the split in uint32 space: near INT32_MAX the +4096
    // carry-fixup overflows a signed int (UB caught by UBSan); the wrap
    // is exactly the lui+addi semantics we want.
    std::uint32_t hi_bits = std::uint32_t(value) & ~0xFFFu;
    std::int32_t lo = value & 0xFFF;
    if (lo >= 2048) {
        lo -= 4096;
        hi_bits += 4096u;
    }
    const std::int32_t hi = std::int32_t(hi_bits);
    emit(isa::Instruction{isa::Op::kLui, std::uint8_t(rd), 0, 0, hi, 0});
    addi(rd, rd, lo);
}

void
ProgramBuilder::xorReg(unsigned rd, unsigned rs1, unsigned rs2)
{
    emit(isa::Instruction{isa::Op::kXor, std::uint8_t(rd),
                          std::uint8_t(rs1), std::uint8_t(rs2), 0, 0});
}

void
ProgramBuilder::andi(unsigned rd, unsigned rs1, std::int32_t imm)
{
    emit(isa::Instruction{isa::Op::kAndi, std::uint8_t(rd),
                          std::uint8_t(rs1), 0, imm, 0});
}

void
ProgramBuilder::lw(unsigned rd, unsigned base, std::int32_t offset)
{
    DHISQ_ASSERT(offset >= isa::kMinSImmediate &&
                     offset <= isa::kMaxSImmediate,
                 "lw offset out of range: ", offset);
    emit(isa::Instruction{isa::Op::kLw, std::uint8_t(rd),
                          std::uint8_t(base), 0, offset, 0});
}

void
ProgramBuilder::sw(unsigned rs2, unsigned base, std::int32_t offset)
{
    DHISQ_ASSERT(offset >= isa::kMinSImmediate &&
                     offset <= isa::kMaxSImmediate,
                 "sw offset out of range: ", offset);
    emit(isa::Instruction{isa::Op::kSw, 0, std::uint8_t(base),
                          std::uint8_t(rs2), offset, 0});
}

void
ProgramBuilder::beq(unsigned rs1, unsigned rs2, Label target)
{
    _fixups.push_back(Fixup{_instructions.size(), target.id});
    emit(isa::Instruction{isa::Op::kBeq, 0, std::uint8_t(rs1),
                          std::uint8_t(rs2), 0, 0});
}

void
ProgramBuilder::bne(unsigned rs1, unsigned rs2, Label target)
{
    _fixups.push_back(Fixup{_instructions.size(), target.id});
    emit(isa::Instruction{isa::Op::kBne, 0, std::uint8_t(rs1),
                          std::uint8_t(rs2), 0, 0});
}

void
ProgramBuilder::jal(Label target)
{
    _fixups.push_back(Fixup{_instructions.size(), target.id});
    emit(isa::Instruction{isa::Op::kJal, 0, 0, 0, 0, 0});
}

void
ProgramBuilder::waiti(Cycle cycles)
{
    while (cycles > Cycle(isa::kMaxWaitImmediate)) {
        emit(isa::Instruction{isa::Op::kWaitI, 0, 0, 0,
                              isa::kMaxWaitImmediate, 0});
        cycles -= Cycle(isa::kMaxWaitImmediate);
    }
    if (cycles > 0) {
        emit(isa::Instruction{isa::Op::kWaitI, 0, 0, 0,
                              std::int32_t(cycles), 0});
    }
}

void
ProgramBuilder::cwii(PortId port, Codeword cw)
{
    DHISQ_ASSERT(port <= PortId(isa::kMaxSImmediate),
                 "port out of encodable range: ", port);
    DHISQ_ASSERT(cw <= Codeword(isa::kMaxCwImmediate),
                 "codeword out of immediate range: ", cw);
    emit(isa::Instruction{isa::Op::kCwII, 0, 0, 0, std::int32_t(port),
                          std::int32_t(cw)});
}

void
ProgramBuilder::syncController(ControllerId peer)
{
    DHISQ_ASSERT(peer < 0x800, "peer id too large to encode: ", peer);
    emit(isa::Instruction{isa::Op::kSync, 0, 0, 0, std::int32_t(peer), 0});
}

void
ProgramBuilder::syncRouter(RouterId router, Cycle residual)
{
    DHISQ_ASSERT(router < 0x800, "router id too large to encode: ", router);
    DHISQ_ASSERT(residual <= Cycle(isa::kMaxSyncResidual),
                 "sync residual too large: ", residual);
    emit(isa::Instruction{isa::Op::kSync, 0, 0, 0,
                          std::int32_t(router) | isa::kSyncRouterFlag,
                          std::int32_t(residual)});
}

void
ProgramBuilder::wtrig(std::uint32_t src)
{
    emit(isa::Instruction{isa::Op::kWtrig, 0, 0, 0, std::int32_t(src), 0});
}

void
ProgramBuilder::send(ControllerId dst, unsigned rs2)
{
    emit(isa::Instruction{isa::Op::kSend, 0, 0, std::uint8_t(rs2),
                          std::int32_t(dst), 0});
}

void
ProgramBuilder::recv(unsigned rd, std::uint32_t src)
{
    emit(isa::Instruction{isa::Op::kRecv, std::uint8_t(rd), 0, 0,
                          std::int32_t(src), 0});
}

void
ProgramBuilder::halt()
{
    emit(isa::Instruction{isa::Op::kHalt, 0, 0, 0, 0, 0});
}

isa::Program
ProgramBuilder::finish()
{
    DHISQ_ASSERT(!_finished, "finish called twice");
    _finished = true;
    for (const auto &fix : _fixups) {
        const std::size_t target = _label_targets.at(fix.label_id);
        DHISQ_ASSERT(target != kUnbound, "unbound label ", fix.label_id);
        _instructions[fix.instr_index].imm =
            std::int32_t((std::int64_t(target) -
                          std::int64_t(fix.instr_index)) *
                         4);
    }
    isa::Program program;
    program.name = _name;
    program.instructions = std::move(_instructions);
    program.lines.assign(program.instructions.size(), 0);
    program.words.reserve(program.instructions.size());
    for (const auto &ins : program.instructions)
        program.words.push_back(isa::encode(ins));
    return program;
}

} // namespace dhisq::compiler
