#include "compiler/passes/lower.hpp"

#include <string>

namespace dhisq::compiler::passes {

Status
LowerPass::run(PassContext &ctx)
{
    const unsigned nc = ctx.topo.numControllers();
    const unsigned qpc = ctx.config.qubits_per_controller;
    if (qpc == 0) {
        return Status::error("circuit '" + ctx.circuit.name() +
                             "': qubits_per_controller must be >= 1 "
                             "(got 0)");
    }
    if (ctx.circuit.numQubits() == 0) {
        return Status::error("circuit '" + ctx.circuit.name() +
                             "' has no qubits");
    }

    ctx.blocks = (ctx.circuit.numQubits() + qpc - 1) / qpc;
    if (ctx.blocks > nc) {
        if (ctx.config.routing == RoutingMode::kNone) {
            return Status::error(
                "circuit '" + ctx.circuit.name() + "' needs " +
                std::to_string(ctx.circuit.numQubits()) + " qubits (" +
                std::to_string(ctx.blocks) + " blocks of " +
                std::to_string(qpc) + "), but the " +
                std::string(net::toString(ctx.topo.shape())) +
                " topology offers only " + std::to_string(nc) +
                " controllers x " + std::to_string(qpc) + " = " +
                std::to_string(nc * qpc) +
                " qubits of block capacity; enable SWAP routing "
                "(CompilerConfig::routing = kSwap / --routing swap) to "
                "map it oversubscribed");
        }
        // Oversubscribed: fold the smallest uniform group of consecutive
        // blocks onto each controller that makes the circuit fit.
        ctx.group = (ctx.circuit.numQubits() + qpc * nc - 1) / (qpc * nc);
    } else {
        ctx.group = 1;
    }
    ctx.slots_per_controller = qpc * ctx.group;

    // Lower the op stream (logical qubit ids; the Route pass rewrites
    // them into physical slots) and validate condition well-formedness
    // here, where a malformed circuit can still be reported per-op.
    ctx.ops.reserve(ctx.circuit.size());
    std::vector<bool> measured(ctx.circuit.numCbits(), false);
    for (const CircuitOp &op : ctx.circuit.ops()) {
        for (QubitId q : op.qubits) {
            if (q >= ctx.circuit.numQubits()) {
                return Status::error(
                    "circuit '" + ctx.circuit.name() + "' references qubit " +
                    std::to_string(q) + " but declares only " +
                    std::to_string(ctx.circuit.numQubits()));
            }
        }
        if (op.isMeasure())
            measured.at(op.result) = true;
        for (CbitId bit : op.condition) {
            if (bit >= measured.size() || !measured[bit]) {
                return Status::error(
                    "circuit '" + ctx.circuit.name() +
                    "' conditions on cbit " + std::to_string(bit) +
                    " before any measurement writes it");
            }
        }
        ctx.ops.push_back(op);
    }
    return Status::ok();
}

} // namespace dhisq::compiler::passes
