#include "compiler/passes/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/logging.hpp"
#include "core/msgu.hpp"
#include "isa/encoding.hpp"

namespace dhisq::compiler::passes {

namespace {

/** Scratch register conventions used by generated code. */
constexpr unsigned kRegResult = 5; ///< freshly received payload
constexpr unsigned kRegParity = 6; ///< parity accumulator

/** Chronological rank of a measurement inside its controller's stream. */
struct MeasRank
{
    std::uint32_t flush_no = 0;
    Cycle ready = 0;
    PortId port = 0;

    bool
    operator<(const MeasRank &other) const
    {
        return std::tie(flush_no, ready, port) <
               std::tie(other.flush_no, other.ready, other.port);
    }
};

/** Static per-cbit information collected during the walk. */
struct CbitInfo
{
    QubitId qubit = kNoQubit;
    ControllerId measurer = kNoController;
    MeasRank rank;
    /** Static availability time for the lock-step schedule. */
    Cycle avail = 0;
    bool measured = false;
};

/**
 * The scheduling engine. Op qubit operands are PHYSICAL SLOTS (the
 * Route pass rewrote them); a slot's controller and port are static
 * for the whole program, so the walk needs no liveness tracking.
 */
class Scheduler
{
  public:
    explicit Scheduler(PassContext &ctx) : _ctx(ctx), _topo(ctx.topo)
    {
        const unsigned nc = _topo.numControllers();
        _ctx.streams.assign(nc, CodeStream());
        _ctx.used.assign(nc, false);
        _ctrls.resize(nc);
        for (ControllerId c = 0; c < nc; ++c)
            _ctrls[c].sched_floor = _ctx.config.pipeline_slack;
        _qready.assign(_ctx.slotSpace(), 0);
        _cbits.resize(_ctx.circuit.numCbits());
        _users.resize(_ctx.circuit.numCbits());
        _uses_left.assign(_ctx.circuit.numCbits(), 0);
        computeUsers(_ctx.routedFor(0));
    }

    void
    run()
    {
        for (unsigned rep = 0; rep < _ctx.config.repetitions; ++rep) {
            if (rep > 0) {
                repetitionBarrier();
                // Per-repetition routed streams can shift a conditional
                // consumer's controller (its target qubit moved), so the
                // consumer sets must match the stream about to execute.
                computeUsers(_ctx.routedFor(rep));
            }
            for (const RoutedOp &r : _ctx.routedFor(rep))
                handleOp(r);
        }

        // Final flush + halt on every participating controller.
        for (ControllerId c = 0; c < _ctrls.size(); ++c) {
            if (!_ctx.used[c])
                continue;
            flushEpoch(c);
            stream(c).halt();
        }

        _ctx.bindings = std::move(_bindings);
        _ctx.meas_routes = std::move(_meas_routes);
    }

  private:
    // ---- Mapping ----------------------------------------------------------

    ControllerId
    ctrlOf(QubitId slot) const
    {
        return _ctx.controllerOfSlot(slot);
    }

    /** Pre-pass over one repetition's stream: which controllers consume
     *  each classical bit, and how many conditional uses remain (for
     *  storage recycling)? */
    void
    computeUsers(const std::vector<RoutedOp> &stream)
    {
        for (auto &users : _users)
            users.clear();
        std::fill(_uses_left.begin(), _uses_left.end(), 0);
        for (const RoutedOp &r : stream) {
            if (!r.op.isConditional())
                continue;
            for (CbitId b : r.op.condition) {
                _users.at(b).insert(ctrlOf(r.op.qubits[0]));
                ++_uses_left.at(b);
            }
        }
        _uses_total = _uses_left;
    }

    PortId
    portOf(QubitId slot) const
    {
        return _ctx.portOfSlot(slot);
    }

    CodeStream &
    stream(ControllerId c)
    {
        return _ctx.streams[c];
    }

    /**
     * One-way central-hub latency the lock-step baseline broadcasts
     * through — owned by the topology (single source of truth), so the
     * static schedule and the fabric can never disagree.
     */
    Cycle
    hubLatency() const
    {
        return _topo.config().hub_latency;
    }

    Cycle
    durationOf(const CircuitOp &op) const
    {
        if (op.isMeasure() || op.gate == q::Gate::kPrepZ)
            return _ctx.config.measure;
        if (op.isTwoQubit())
            return _ctx.config.gate2q;
        return _ctx.config.gate1q;
    }

    // ---- Per-controller state ---------------------------------------------

    struct TimedCw
    {
        Cycle start;
        PortId port;
        Codeword cw;
    };

    struct MeasTail
    {
        Cycle ready;
        PortId port;
        QubitId qubit;
        CbitId cbit;
    };

    struct Ctrl
    {
        std::uint64_t epoch = 0;
        Cycle cursor = 0; ///< emitted-cursor position inside the epoch
        Cycle sched_floor = 0; ///< pipeline-slack floor for event starts
        Cycle pipe_pos = 0; ///< lock-step pipeline-position estimate
        std::uint32_t flush_no = 0;
        Cycle last_meas_start = 0;
        std::vector<TimedCw> pending;
        std::vector<MeasTail> tails;
        std::map<CbitId, std::int32_t> cbit_addr;
        std::int32_t next_addr = 0;
        std::vector<std::int32_t> free_addrs;
        std::set<CbitId> have;
        /** (port, kind, gate, q0, q1, fixed-point angle) -> codeword. */
        using ActionKey = std::tuple<PortId, std::uint8_t, std::uint8_t,
                                     QubitId, QubitId, std::int64_t>;
        std::map<ActionKey, Codeword> cw_alloc;
        std::map<PortId, Codeword> next_cw;
    };

    Ctrl &
    touch(ControllerId c)
    {
        DHISQ_ASSERT(c < _ctrls.size(), "controller out of range");
        _ctx.used[c] = true;
        return _ctrls[c];
    }

    /** Earliest schedulable time-point on a controller. */
    Cycle
    floorOf(const Ctrl &ctrl) const
    {
        return std::max(ctrl.cursor, ctrl.sched_floor);
    }

    /**
     * Lock-step shared-flow floor: an op naturally starting after a
     * broadcast's source measurement cannot begin until that broadcast
     * lands (Section 2.1.2). Ops concurrent with the measurement (the
     * same syndrome round) are unaffected.
     */
    Cycle
    lockstepFlow(Cycle natural) const
    {
        if (_ctx.config.scheme != SyncScheme::kLockStep)
            return natural;
        if (natural > _flow_src_start)
            return std::max(natural, _lockstep_flow_floor);
        return natural;
    }

    /** Allocate (or reuse) a codeword on (c, port) bound to `action`. */
    Codeword
    bindingFor(ControllerId c, PortId port, const q::Action &action)
    {
        // Key the action by its semantic identity (angle in fixed point —
        // 2^-20 radians is far below any calibration resolution).
        const Ctrl::ActionKey key{
            port, std::uint8_t(action.kind), std::uint8_t(action.gate),
            action.q0, action.q1,
            std::int64_t(action.angle * double(1 << 20))};
        auto &ctrl = _ctrls[c];
        auto it = ctrl.cw_alloc.find(key);
        if (it != ctrl.cw_alloc.end())
            return it->second;
        Codeword &next = ctrl.next_cw[port];
        if (next == 0)
            next = 1; // 0 is reserved for marker/no-op codewords
        DHISQ_ASSERT(next <= Codeword(isa::kMaxCwImmediate),
                     "codeword space exhausted on C", c, " port ", port);
        const Codeword cw = next++;
        ctrl.cw_alloc[key] = cw;
        _bindings.push_back(Binding{c, port, cw, action});
        return cw;
    }

    std::int32_t
    cbitAddr(ControllerId c, CbitId b)
    {
        auto &ctrl = _ctrls[c];
        auto it = ctrl.cbit_addr.find(b);
        if (it != ctrl.cbit_addr.end())
            return it->second;
        std::int32_t addr;
        if (!ctrl.free_addrs.empty()) {
            addr = ctrl.free_addrs.back();
            ctrl.free_addrs.pop_back();
        } else {
            addr = ctrl.next_addr;
            ctrl.next_addr += 4;
            DHISQ_ASSERT(addr <= isa::kMaxSImmediate,
                         "per-controller classical-bit storage exhausted"
                         " on C", c,
                         " (too many simultaneously-live condition bits)");
        }
        ctrl.cbit_addr[b] = addr;
        return addr;
    }

    /** Release a bit's storage once its last conditional consumed it. */
    void
    releaseCbit(ControllerId c, CbitId b)
    {
        auto &ctrl = _ctrls[c];
        auto it = ctrl.cbit_addr.find(b);
        if (it == ctrl.cbit_addr.end())
            return;
        ctrl.free_addrs.push_back(it->second);
        ctrl.cbit_addr.erase(it);
        ctrl.have.erase(b);
    }

    // ---- Emission ----------------------------------------------------------

    /**
     * Emit the epoch's buffered timed events (sorted) and measurement
     * tails; returns the final cursor. Does NOT change the epoch.
     */
    Cycle
    flushEpoch(ControllerId c)
    {
        Ctrl &ctrl = _ctrls[c];
        auto &b = stream(c);

        std::sort(ctrl.pending.begin(), ctrl.pending.end(),
                  [](const TimedCw &x, const TimedCw &y) {
                      return std::tie(x.start, x.port) <
                             std::tie(y.start, y.port);
                  });
        for (const auto &ev : ctrl.pending) {
            DHISQ_ASSERT(ev.start >= ctrl.cursor,
                         "scheduled event before the emitted cursor");
            if (ev.start > ctrl.cursor) {
                b.waiti(ev.start - ctrl.cursor);
                ctrl.cursor = ev.start;
            }
            b.cwii(ev.port, ev.cw);
        }
        ctrl.pending.clear();

        if (!ctrl.tails.empty()) {
            std::sort(ctrl.tails.begin(), ctrl.tails.end(),
                      [](const MeasTail &x, const MeasTail &y) {
                          return std::tie(x.ready, x.port) <
                                 std::tie(y.ready, y.port);
                      });
            Cycle max_ready = 0;
            std::size_t tail_len = 0;
            for (const auto &tail : ctrl.tails) {
                // Always consume the device result to keep the FIFO aligned.
                b.recv(kRegResult, core::kMeasResultSource);
                b.andi(kRegResult, kRegResult, 1);
                tail_len += 2;
                const bool local_use = _users[tail.cbit].count(c) != 0;
                if (local_use) {
                    b.sw(kRegResult, 0, cbitAddr(c, tail.cbit));
                    ctrl.have.insert(tail.cbit);
                    ++tail_len;
                }
                if (_ctx.config.scheme == SyncScheme::kLockStep) {
                    // The IBM baseline broadcasts every outcome through
                    // the central hub. The fabric's star mode already
                    // charges the constant 2x hub latency on every
                    // message, so we deliver point-to-point to consumers
                    // (flooding every idle inbox would only burn simulator
                    // memory, not model time).
                    _ctx.stats.inc("broadcasts");
                    for (ControllerId user : _users[tail.cbit]) {
                        if (user == c)
                            continue;
                        b.send(user, kRegResult);
                        ++tail_len;
                    }
                } else {
                    for (ControllerId user : _users[tail.cbit]) {
                        if (user == c)
                            continue;
                        b.send(user, kRegResult);
                        ++tail_len;
                        _ctx.stats.inc("feedback_sends");
                    }
                }
                max_ready = std::max(max_ready, tail.ready);
            }
            ctrl.tails.clear();
            // Later timing points must clear the pipeline tail: pad the
            // cursor past the last result plus the tail's pipeline time.
            const Cycle floor =
                max_ready + Cycle(tail_len) * 1 + 6;
            if (floor > ctrl.cursor) {
                b.waiti(floor - ctrl.cursor);
                ctrl.cursor = floor;
            }
        }
        ++ctrl.flush_no;
        return ctrl.cursor;
    }

    /** Start a fresh private epoch on `c` anchored at the current stream
     *  point; all local slot ready times reset to the origin. */
    void
    resetEpoch(ControllerId c, std::uint64_t epoch)
    {
        Ctrl &ctrl = _ctrls[c];
        ctrl.epoch = epoch;
        ctrl.cursor = 0;
        ctrl.sched_floor = _ctx.config.pipeline_slack;
        ctrl.last_meas_start = 0;
        const auto [lo, hi] = _ctx.blockRangeOf(c);
        for (QubitId s = lo; s < hi; ++s)
            _qready[s] = 0;
    }

    /** Rebase `c`'s slots onto a new epoch whose origin sits at
     *  old-epoch offset `origin` (uniform-shift transitions: sync/wtrig). */
    void
    rebaseEpoch(ControllerId c, std::uint64_t epoch, Cycle origin)
    {
        Ctrl &ctrl = _ctrls[c];
        ctrl.epoch = epoch;
        ctrl.cursor = 0;
        ctrl.sched_floor = _ctx.config.pipeline_slack;
        ctrl.last_meas_start = 0;
        const auto [lo, hi] = _ctx.blockRangeOf(c);
        for (QubitId s = lo; s < hi; ++s)
            _qready[s] = (_qready[s] > origin) ? _qready[s] - origin : 0;
    }

    /** Largest ready time across `c`'s local slots. */
    Cycle
    maxLocalReady(ControllerId c) const
    {
        const auto [lo, hi] = _ctx.blockRangeOf(c);
        Cycle m = 0;
        for (QubitId s = lo; s < hi; ++s)
            m = std::max(m, _qready[s]);
        return m;
    }

    // ---- Op handlers --------------------------------------------------------

    void
    handleOp(const RoutedOp &routed)
    {
        const CircuitOp &op = routed.op;
        if (op.isConditional()) {
            handleConditional(op);
        } else if (op.isMeasure()) {
            handleMeasure(op);
        } else if (op.gate == q::Gate::kI) {
            // Pure delay: advances the qubit timeline only.
            const QubitId q = op.qubits[0];
            const Ctrl &ctrl = touch(ctrlOf(q));
            const Cycle d = nsToCycles(op.angle);
            _qready[q] = std::max(_qready[q], floorOf(ctrl)) + d;
        } else if (op.isTwoQubit()) {
            handleTwoQubit(op, routed.inserted);
        } else {
            handleOneQubit(op);
        }
    }

    void
    handleOneQubit(const CircuitOp &op)
    {
        const QubitId q = op.qubits[0];
        const ControllerId c = ctrlOf(q);
        Ctrl &ctrl = touch(c);
        const Cycle t =
            lockstepFlow(std::max(_qready[q], floorOf(ctrl)));
        const q::Action action = (op.gate == q::Gate::kPrepZ)
                                     ? q::Action::prep(q)
                                     : q::Action::gate1q(op.gate, q,
                                                         op.angle);
        const Codeword cw = bindingFor(c, portOf(q), action);
        ctrl.pending.push_back(TimedCw{t, portOf(q), cw});
        _qready[q] = t + durationOf(op);
        _ctx.stats.inc("gates_1q");
    }

    void
    handleMeasure(const CircuitOp &op)
    {
        const QubitId q = op.qubits[0];
        const ControllerId c = ctrlOf(q);
        Ctrl &ctrl = touch(c);
        // Monotone per-controller measurement starts keep the device-result
        // FIFO, the tail emission order and consumer recv order consistent.
        const Cycle t = lockstepFlow(std::max(
            {_qready[q], floorOf(ctrl), ctrl.last_meas_start}));
        ctrl.last_meas_start = t;
        const Codeword cw =
            bindingFor(c, portOf(q), q::Action::measure(q));
        ctrl.pending.push_back(TimedCw{t, portOf(q), cw});
        const Cycle ready = t + _ctx.config.measure;
        _qready[q] = ready;
        ctrl.tails.push_back(MeasTail{ready, portOf(q), q, op.result});

        auto &info = _cbits.at(op.result);
        info.qubit = q;
        info.measurer = c;
        info.rank = MeasRank{ctrl.flush_no, ready, portOf(q)};
        info.measured = true;
        // The static estimate pads the sender's tail processing with
        // 2x the decode margin; deeper sender-side debt shows up as the
        // baseline's issue-rate slips (the Section 1.1 critique).
        info.avail =
            ready + 2 * hubLatency() + 2 * _ctx.config.feedback_margin;
        _ctx.stats.inc("measurements");
        if (_ctx.config.scheme == SyncScheme::kLockStep) {
            // Shared program flow: everything after this measurement in
            // flow order waits for its hub broadcast (Section 2.1.2).
            const Cycle floor = ready + 2 * hubLatency() + 4;
            if (floor > _lockstep_flow_floor) {
                _lockstep_flow_floor = floor;
                _flow_src_start = t;
            }
        }
        // A locally-consumed bit will be stored by this controller's own
        // tail, which is always emitted before any later conditional.
        if (_users[op.result].count(c))
            ctrl.have.insert(op.result);

        if (!_routed_result[q]) {
            _meas_routes.emplace_back(q, c);
            _routed_result[q] = true;
        }
    }

    void
    handleTwoQubit(const CircuitOp &op, bool inserted)
    {
        const QubitId q0 = op.qubits[0];
        const QubitId q1 = op.qubits[1];
        const ControllerId a = ctrlOf(q0);
        const ControllerId b = ctrlOf(q1);
        if (!inserted)
            _ctx.stats.inc("gates_2q");

        if (a == b) {
            Ctrl &ctrl = touch(a);
            const Cycle t = lockstepFlow(
                std::max({_qready[q0], _qready[q1], floorOf(ctrl)}));
            const Codeword cw = bindingFor(
                a, portOf(q0),
                q::Action::gate2qWhole(op.gate, q0, q1, op.angle));
            ctrl.pending.push_back(TimedCw{t, portOf(q0), cw});
            _qready[q0] = _qready[q1] = t + durationOf(op);
            return;
        }

        Ctrl &ca = touch(a);
        Ctrl &cb = touch(b);

        bool subtree_synced = false;
        if (ca.epoch != cb.epoch && !_topo.areNeighbors(a, b)) {
            // No direct link to bounce BISP's 1-bit signal over: merge the
            // diverged timelines with a region synchronization on the
            // smallest router subtree covering both controllers. Costlier
            // than a nearby sync (everyone under the subtree stalls), which
            // is exactly the penalty the topology ablation measures for
            // shapes that lack the edge. (Greedy SWAP routing guarantees
            // adjacency here, so under it this fires only in the unrouted
            // modes; the windowed router deliberately leaves a pair
            // unrouted — and pre-merges its epochs to match this sync —
            // when one region sync beats dragging a qubit across the
            // fabric.)
            regionSyncOver({a, b});
            _ctx.stats.inc("subtree_syncs");
            subtree_synced = true;
        }

        if (ca.epoch == cb.epoch) {
            // Deterministic relative timing: co-schedule without a sync.
            // Inside a common epoch this needs no link at all — both
            // timelines are wall-aligned by construction whatever the
            // graph (the device's coincidence checker enforces it), so
            // the interconnect is only charged at epoch divergence.
            if (!subtree_synced && !_topo.areNeighbors(a, b))
                _ctx.stats.inc("nonadjacent_coscheduled");
            const Cycle t = lockstepFlow(std::max(
                {_qready[q0], _qready[q1], floorOf(ca), floorOf(cb)}));
            pushHalves(op, a, b, q0, q1, t);
            _qready[q0] = _qready[q1] = t + durationOf(op);
            return;
        }

        // Epochs diverged (feedback happened): re-synchronize. The sync
        // bookings must clear each pipeline's slack floor.
        const Cycle n = _topo.neighborLatency(a, b);
        Cycle fa = flushEpoch(a);
        Cycle fb = flushEpoch(b);
        if (floorOf(ca) > fa) {
            stream(a).waiti(floorOf(ca) - fa);
            fa = floorOf(ca);
            ca.cursor = fa;
        }
        if (floorOf(cb) > fb) {
            stream(b).waiti(floorOf(cb) - fb);
            fb = floorOf(cb);
            cb.cursor = fb;
        }
        const Cycle rem_a = (_qready[q0] > fa) ? _qready[q0] - fa : 0;
        const Cycle rem_b = (_qready[q1] > fb) ? _qready[q1] - fb : 0;

        Cycle residual;
        if (_ctx.config.scheme == SyncScheme::kDemand) {
            // Demand-driven: walk the cursor up to the gate-ready point
            // first, then sync — pays the full bounce N every time.
            if (rem_a > 0) {
                stream(a).waiti(rem_a);
                fa += rem_a;
                ca.cursor = fa;
            }
            if (rem_b > 0) {
                stream(b).waiti(rem_b);
                fb += rem_b;
                cb.cursor = fb;
            }
            residual = n;
        } else {
            // BISP: book now, mask the latency behind the remaining
            // deterministic work (Insight #1).
            residual = std::max({n, rem_a, rem_b});
            if (residual > Cycle(isa::kMaxSyncResidual)) {
                const Cycle pre = residual - Cycle(isa::kMaxSyncResidual);
                stream(a).waiti(pre);
                stream(b).waiti(pre);
                fa += pre;
                fb += pre;
                residual = Cycle(isa::kMaxSyncResidual);
            }
        }

        stream(a).syncController(b);
        stream(b).syncController(a);
        stream(a).waiti(residual);
        stream(b).waiti(residual);
        _ctx.stats.inc("syncs_inserted", 2);

        const std::uint64_t epoch = _next_epoch++;
        rebaseEpoch(a, epoch, fa + residual);
        rebaseEpoch(b, epoch, fb + residual);

        const Cycle t = std::max(floorOf(ca), floorOf(cb));
        pushHalves(op, a, b, q0, q1, t);
        _qready[q0] = _qready[q1] = t + durationOf(op);
    }

    void
    pushHalves(const CircuitOp &op, ControllerId a, ControllerId b,
               QubitId q0, QubitId q1, Cycle t)
    {
        // Both halves carry the gate's operands in canonical program
        // order (q0 = first operand): the declared orientation is what
        // the device applies, which matters for asymmetric gates (a
        // cross-controller CNOT with control id > target id must not
        // flip). Which controller drives which qubit is carried by the
        // binding's (controller, port), not by the action payload.
        const q::Action half =
            q::Action::gate2qHalf(op.gate, q0, q1, op.angle);
        const Codeword cw_a = bindingFor(a, portOf(q0), half);
        const Codeword cw_b = bindingFor(b, portOf(q1), half);
        _ctrls[a].pending.push_back(TimedCw{t, portOf(q0), cw_a});
        _ctrls[b].pending.push_back(TimedCw{t, portOf(q1), cw_b});
    }

    void
    handleConditional(const CircuitOp &op)
    {
        DHISQ_ASSERT(op.qubits.size() == 1 ||
                         ctrlOf(op.qubits[0]) == ctrlOf(op.qubits[1]),
                     "conditional cross-controller two-qubit gates are not"
                     " supported; condition each half separately");
        const QubitId q = op.qubits[0];
        const ControllerId c = ctrlOf(q);
        _ctx.stats.inc("conditionals");
        for (CbitId bit : op.condition) {
            DHISQ_ASSERT(_cbits.at(bit).measured,
                         "condition on not-yet-measured cbit ", bit);
        }

        if (_ctx.config.scheme == SyncScheme::kLockStep)
            emitLockStepConditional(op, c);
        else
            emitDynamicConditional(op, c);
    }

    /** BISP / demand-driven conditional: taken-branch-only timing. */
    void
    emitDynamicConditional(const CircuitOp &op, ControllerId c)
    {
        Ctrl &ctrl = touch(c);
        auto &b = stream(c);

        // Collect bits that still need to be received from remote
        // measurers, ordered by the sender's emission rank so FIFO
        // matching is unambiguous.
        std::vector<CbitId> remote;
        for (CbitId bit : op.condition) {
            if (!ctrl.have.count(bit))
                remote.push_back(bit);
        }
        std::sort(remote.begin(), remote.end(),
                  [this](CbitId x, CbitId y) {
                      const auto &cx = _cbits[x];
                      const auto &cy = _cbits[y];
                      return std::tie(cx.measurer, cx.rank) <
                             std::tie(cy.measurer, cy.rank);
                  });

        Cycle cursor = flushEpoch(c);
        // Branch transitions are not uniform shifts, so all in-flight local
        // work must land before the block (see DESIGN.md Section 2); the
        // wtrig bookings below must also sit past the pipeline-slack floor
        // or they would be stamped behind the pipeline itself.
        const Cycle pad_to = std::max(maxLocalReady(c), floorOf(ctrl));
        if (pad_to > cursor) {
            b.waiti(pad_to - cursor);
            cursor = pad_to;
        }
        ctrl.cursor = cursor;

        // wtrig events first: the pipeline must stamp the timing barriers
        // into the TCU *before* blocking on the (pipeline-side) recvs, or
        // the barriers would be enqueued past their own time-points.
        for (CbitId bit : remote) {
            const ControllerId src = _cbits[bit].measurer;
            DHISQ_ASSERT(src != c, "remote bit measured locally?");
            b.wtrig(src); // re-anchor the timing domain at the arrival
        }
        for (CbitId bit : remote) {
            b.recv(kRegResult, _cbits[bit].measurer);
            b.andi(kRegResult, kRegResult, 1);
            b.sw(kRegResult, 0, cbitAddr(c, bit));
            ctrl.have.insert(bit);
            _ctx.stats.inc("feedback_recvs");
        }

        // Classical decode margin covering the block: 4 instructions per
        // remote bit (wtrig + recv + andi + sw) plus 2 per parity term.
        const Cycle margin = _ctx.config.feedback_margin +
                             4 * Cycle(remote.size()) +
                             2 * Cycle(op.condition.size()) + 4;
        b.waiti(margin);

        emitParityAndGate(op, c);
        releaseDeadBits(op, c);

        // Timeline is now branch-dependent: private epoch.
        resetEpoch(c, _next_epoch++);
    }

    /** Lock-step conditional: reserved duration on the static timeline. */
    void
    emitLockStepConditional(const CircuitOp &op, ControllerId c)
    {
        Ctrl &ctrl = touch(c);
        auto &b = stream(c);

        std::vector<CbitId> remote;
        Cycle deps_avail = 0;
        for (CbitId bit : op.condition) {
            deps_avail = std::max(deps_avail, _cbits[bit].avail);
            if (!ctrl.have.count(bit))
                remote.push_back(bit);
        }
        std::sort(remote.begin(), remote.end(),
                  [this](CbitId x, CbitId y) {
                      const auto &cx = _cbits[x];
                      const auto &cy = _cbits[y];
                      return std::tie(cx.measurer, cx.rank) <
                             std::tie(cy.measurer, cy.rank);
                  });

        Cycle cursor = flushEpoch(c);
        const std::size_t block_start = b.size();
        for (CbitId bit : remote) {
            b.recv(kRegResult, _cbits[bit].measurer);
            b.andi(kRegResult, kRegResult, 1);
            b.sw(kRegResult, 0, cbitAddr(c, bit));
            ctrl.have.insert(bit);
            _ctx.stats.inc("feedback_recvs");
        }

        // Single shared program flow: conditional blocks serialize against
        // every other conditional in the program (Section 2.1.2); the
        // owner's pipeline must also have caught up with earlier blocks.
        const QubitId q = op.qubits[0];
        const Cycle block_margin = 8 + 6 * Cycle(op.condition.size());
        const Cycle t_cond = lockstepFlow(
            std::max({deps_avail + block_margin, _qready[q], cursor,
                      floorOf(ctrl) + block_margin,
                      _lockstep_cond_end}));
        if (t_cond > cursor) {
            b.waiti(t_cond - cursor);
            cursor = t_cond;
        }
        ctrl.cursor = cursor;

        emitParityAndGate(op, c);
        releaseDeadBits(op, c);
        // Reservation: the duration is charged whether or not the branch
        // is taken (Figure 1c); the single program flow also charges the
        // block's classical processing time before the next conditional
        // anywhere may start.
        _qready[q] = t_cond + durationOf(op);
        if (op.qubits.size() == 2)
            _qready[op.qubits[1]] = _qready[q];
        // Global single-flow chain advances by the reserved duration;
        // the block's classical processing time only debts the owning
        // controller's pipeline: its later time-points must clear the
        // last dependency arrival plus the block's instruction count.
        _lockstep_cond_end = t_cond + durationOf(op);
        const Cycle arrival_max =
            deps_avail > _ctx.config.feedback_margin
                ? deps_avail - _ctx.config.feedback_margin
                : 0;
        const Cycle block_instrs = Cycle(b.size() - block_start);
        // Pipeline debt accumulates across consecutive blocks: this block
        // starts only once the pipeline reached it AND its inputs arrived.
        ctrl.pipe_pos =
            std::max(ctrl.pipe_pos, arrival_max) + block_instrs;
        ctrl.sched_floor =
            std::max(ctrl.sched_floor, ctrl.pipe_pos + 8);
    }

    /** Shared tail of both conditional forms: parity + branch + gate. */
    void
    emitParityAndGate(const CircuitOp &op, ControllerId c)
    {
        auto &b = stream(c);
        const QubitId q = op.qubits[0];

        bool first = true;
        for (CbitId bit : op.condition) {
            const std::int32_t addr = cbitAddr(c, bit);
            if (first) {
                b.lw(kRegParity, 0, addr);
                first = false;
            } else {
                b.lw(kRegResult, 0, addr);
                b.xorReg(kRegParity, kRegParity, kRegResult);
            }
        }

        const std::size_t skip = b.newLabel();
        b.beq(kRegParity, 0, skip);
        Codeword cw;
        if (op.qubits.size() == 2) {
            cw = bindingFor(c, portOf(q),
                            q::Action::gate2qWhole(op.gate, q,
                                                   op.qubits[1], op.angle));
        } else {
            cw = bindingFor(c, portOf(q),
                            q::Action::gate1q(op.gate, q, op.angle));
        }
        b.cwii(portOf(q), cw);
        if (_ctx.config.scheme != SyncScheme::kLockStep) {
            // Dynamic schemes advance the cursor only when taken.
            b.waiti(durationOf(op));
        }
        b.bind(skip);
    }

    /** Free the storage of bits whose last conditional use this was. */
    void
    releaseDeadBits(const CircuitOp &op, ControllerId c)
    {
        for (CbitId bit : op.condition) {
            DHISQ_ASSERT(_uses_left.at(bit) > 0, "use count underflow");
            if (--_uses_left[bit] == 0)
                releaseCbit(c, bit);
        }
    }

    /**
     * Region synchronization over the smallest router subtree covering
     * `anchors`: every controller under that router flushes, books a
     * region sync and is rebased into one fresh common epoch.
     */
    void
    regionSyncOver(const std::vector<ControllerId> &anchors)
    {
        DHISQ_ASSERT(!anchors.empty(), "region sync with no anchors");
        RouterId region = _topo.parentRouter(anchors.front());
        auto covers = [&](RouterId r) {
            for (ControllerId c : anchors) {
                if (!_topo.inSubtree(c, r))
                    return false;
            }
            return true;
        };
        while (!covers(region)) {
            region = _topo.router(region).parent;
            DHISQ_ASSERT(region != net::kNoRouter, "root does not cover?");
        }

        // Every controller under the region router participates.
        const auto members = _topo.controllersUnder(region);
        const std::uint64_t epoch = _next_epoch++;
        for (ControllerId c : members) {
            Ctrl &ctrl = touch(c);
            Cycle f = flushEpoch(c);
            if (floorOf(ctrl) > f) {
                stream(c).waiti(floorOf(ctrl) - f);
                f = floorOf(ctrl);
                ctrl.cursor = f;
            }
            stream(c).syncRouter(region, _ctx.config.region_residual);
            stream(c).waiti(_ctx.config.region_residual);
            _ctx.stats.inc("region_syncs");
            rebaseEpoch(c, epoch, f + _ctx.config.region_residual);
        }
    }

    /** Region-level barrier between repetitions (Section 2.1.4). */
    void
    repetitionBarrier()
    {
        if (_ctx.config.scheme != SyncScheme::kLockStep) {
            // The lock-step baseline's static global timeline continues
            // (its barrier is implicit); the dynamic schemes synchronize
            // every used controller through the router tree.
            std::vector<ControllerId> used;
            for (ControllerId c = 0; c < _ctrls.size(); ++c) {
                if (_ctx.used[c])
                    used.push_back(c);
            }
            DHISQ_ASSERT(!used.empty(), "barrier with no used controllers");
            regionSyncOver(used);
        }

        for (auto &info : _cbits)
            info.measured = false;
        for (auto &ctrl : _ctrls)
            ctrl.have.clear();
        _uses_left = _uses_total;
    }

    PassContext &_ctx;
    const net::Topology &_topo;

    std::vector<Ctrl> _ctrls;
    std::vector<Cycle> _qready; ///< per physical slot
    std::vector<CbitInfo> _cbits;
    std::vector<std::set<ControllerId>> _users;
    std::vector<std::uint32_t> _uses_left;
    std::vector<std::uint32_t> _uses_total;
    std::map<QubitId, bool> _routed_result;
    std::vector<Binding> _bindings;
    std::vector<std::pair<QubitId, ControllerId>> _meas_routes;
    std::uint64_t _next_epoch = 1;
    Cycle _lockstep_cond_end = 0;
    Cycle _lockstep_flow_floor = 0;
    Cycle _flow_src_start = 0;
};

} // namespace

Status
ScheduleEpochsPass::run(PassContext &ctx)
{
    Scheduler scheduler(ctx);
    scheduler.run();
    return Status::ok();
}

} // namespace dhisq::compiler::passes
