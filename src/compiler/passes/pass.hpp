/**
 * @file
 * The compiler pass pipeline (Section 5, restructured).
 *
 * Compilation is an explicit sequence of named passes over one shared
 * `PassContext`:
 *
 *   Lower          circuit -> compiler IR; capacity validation and the
 *                  oversubscribed blocking factor (structured Status
 *                  diagnostics instead of asserts).
 *   Place          qubit-block -> controller assignment via the
 *                  src/place strategies (path / greedy-affinity /
 *                  kl-mincut over the circuit's interaction graph).
 *   Route          SWAP-insertion qubit routing: rewrites the op stream
 *                  from logical qubits into physical slots, inserting
 *                  SWAP chains along cheapest latency paths wherever a
 *                  two-qubit gate's operands sit on non-adjacent
 *                  controllers with diverged timelines. A no-op (the
 *                  identity slot map) when routing is disabled.
 *   ScheduleEpochs the epoch/sync/feedback core: walks the routed op
 *                  stream and records per-controller code streams,
 *                  bindings, measurement routes and stats.
 *   Codegen        per-controller ISA emission: replays each code
 *                  stream through a ProgramBuilder and assembles the
 *                  final CompiledProgram.
 *
 * Each pass is independently testable; `runPipeline` is what
 * `Compiler::tryCompile` executes. With routing disabled and capacity
 * sufficient the pipeline reproduces the pre-split monolith
 * bit-identically (proven against the committed bench baselines).
 */
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "compiler/compiler.hpp"
#include "compiler/ir.hpp"
#include "compiler/passes/codestream.hpp"
#include "net/topology.hpp"
#include "place/placement.hpp"

namespace dhisq::compiler::passes {

/** One op of the routed stream: qubit operands are PHYSICAL SLOTS. */
struct RoutedOp
{
    CircuitOp op;
    /** True for SWAPs the routing pass inserted (not in the source). */
    bool inserted = false;
};

/** Shared state threaded through the pass pipeline. */
struct PassContext
{
    PassContext(const net::Topology &topology,
                const CompilerConfig &compiler_config,
                const Circuit &source)
        : topo(topology), config(compiler_config), circuit(source)
    {
    }

    const net::Topology &topo;
    const CompilerConfig &config;
    const Circuit &circuit;

    // ---- Lower ------------------------------------------------------------
    /** Lowered op stream (logical qubit ids). */
    std::vector<CircuitOp> ops;
    /** Qubit blocks of `config.qubits_per_controller` qubits. */
    unsigned blocks = 0;
    /** Blocks folded onto one controller (1 unless oversubscribed). */
    unsigned group = 1;
    /** Physical slots per controller: qubits_per_controller * group. */
    unsigned slots_per_controller = 0;

    // ---- Place ------------------------------------------------------------
    /** Placement-slot -> controller permutation (+ inverse). */
    place::PlacementPlan plan;

    // ---- Route ------------------------------------------------------------
    /** Op stream rewritten into physical-slot space (the single stream
     *  every repetition replays — empty when `routed_reps` is used). */
    std::vector<RoutedOp> routed;
    /**
     * Per-repetition routed streams. Non-empty only when SWAP routing
     * is active across multiple repetitions: the live map evolves as
     * SWAPs execute, so each repetition's slot rewrite differs — a
     * repetition must see the positions the previous one left behind,
     * or its gates would hit the wrong logical qubits.
     */
    std::vector<std::vector<RoutedOp>> routed_reps;
    /** Final logical qubit -> physical slot map after routing. */
    std::vector<QubitId> final_slot_of;
    /**
     * Steady-state orbit of the per-repetition streams: once routing
     * detects that a repetition starts from a previously seen router
     * state, repetitions beyond `routed_reps` cycle through
     * `routed_reps[steady_start ..]` with period `steady_period`.
     * A period of 0 means no orbit was found (or single-stream mode).
     */
    unsigned steady_start = 0;
    unsigned steady_period = 0;

    /** The routed stream repetition `rep` executes. Repetitions past
     *  the explicitly routed prefix replay the steady-state orbit
     *  (modulo schedule); with no orbit the last stream repeats — the
     *  degenerate period-1 fixed point of a stabilized live map. */
    const std::vector<RoutedOp> &
    routedFor(unsigned rep) const
    {
        if (routed_reps.empty())
            return routed;
        if (steady_period > 0 && rep >= routed_reps.size())
            return routed_reps[steady_start +
                               (rep - steady_start) % steady_period];
        return routed_reps[std::min<std::size_t>(
            rep, routed_reps.size() - 1)];
    }
    /** (physical slot, logical qubit) per measurement, in program order. */
    std::vector<std::pair<QubitId, QubitId>> meas_log;
    /** 1 + highest physical slot any routed op touches. */
    unsigned device_qubits = 0;

    // ---- ScheduleEpochs ---------------------------------------------------
    /** Per-controller recorded emission streams. */
    std::vector<CodeStream> streams;
    /** Controllers that execute code. */
    std::vector<bool> used;
    std::vector<Binding> bindings;
    /** physical slot -> controller receiving its measurement results. */
    std::vector<std::pair<QubitId, ControllerId>> meas_routes;
    /** Shared counters (routing + scheduling write disjoint keys). */
    StatSet stats;

    // ---- Codegen ----------------------------------------------------------
    CompiledProgram out;

    // ---- Slot-space helpers -----------------------------------------------

    /** Total physical slot space (controllers x slots_per_controller). */
    unsigned
    slotSpace() const
    {
        return topo.numControllers() * slots_per_controller;
    }

    /** Controller hosting a physical slot (static for the whole run). */
    ControllerId
    controllerOfSlot(QubitId slot) const
    {
        return plan.order[slot / slots_per_controller];
    }

    /** Board port a physical slot is wired to. */
    PortId
    portOfSlot(QubitId slot) const
    {
        return slot % slots_per_controller;
    }

    /**
     * The [lo, hi) physical-slot range hosted by controller `c` — the
     * one definition of "this controller's block" shared by every
     * epoch-reset/rebase/ready scan (previously spelled three times as
     * an inline clamp in the monolith).
     */
    std::pair<QubitId, QubitId>
    blockRangeOf(ControllerId c) const
    {
        const QubitId lo =
            QubitId(plan.slot_of[c]) * slots_per_controller;
        return {lo, lo + slots_per_controller};
    }
};

/** One named compilation pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name ("lower", "place", "route", ...). */
    virtual const char *name() const = 0;

    /** Run over the shared context; an error Status aborts the pipeline. */
    virtual Status run(PassContext &ctx) = 0;
};

/** The standard Lower -> Place -> Route -> ScheduleEpochs -> Codegen. */
std::vector<std::unique_ptr<Pass>> standardPipeline();

/** Run `pipeline` over `ctx`, stopping at the first error. */
Status runPipeline(PassContext &ctx,
                   const std::vector<std::unique_ptr<Pass>> &pipeline);

/** Convenience: run the standard pipeline. */
Status runPipeline(PassContext &ctx);

} // namespace dhisq::compiler::passes
