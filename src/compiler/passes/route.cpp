#include "compiler/passes/route.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "compiler/interaction.hpp"
#include "compiler/passes/congestion.hpp"

namespace dhisq::compiler::passes {

namespace {

/** Chain cost of walking `path` up to (not into) its last node. */
double
chainCost(const place::CostModel &cost,
          const std::vector<ControllerId> &path)
{
    double total = 0.0;
    for (std::size_t i = 0; i + 2 < path.size(); ++i)
        total += cost.syncCost(path[i], path[i + 1]);
    return total;
}

/** Candidate SWAP chains per (src, dst) controller pair (windowed mode). */
constexpr unsigned kCandidatePaths = 3;

/** Lookahead decay: the i-th upcoming gate weighs 1 / (kDecay + i). */
constexpr double kLookaheadDecay = 2.0;

/** Per-pair k-shortest-path memo, shared across repetitions/attempts
 *  (the topology never changes inside one compile). */
using KPathCache = std::map<std::pair<ControllerId, ControllerId>,
                            std::vector<std::vector<ControllerId>>>;

const std::vector<std::vector<ControllerId>> &
kPathsOf(const net::Topology &topo, KPathCache &cache, ControllerId a,
         ControllerId b)
{
    auto [it, fresh] = cache.try_emplace({a, b});
    if (fresh)
        it->second = topo.kCheapestPaths(a, b, kCandidatePaths);
    return it->second;
}

/**
 * Everything one routing attempt produces. Route runs at most twice (the
 * route -> place feedback iteration); attempts stay self-contained so the
 * pass can keep the cheaper one and publish exactly its outputs.
 */
struct RouteAttempt
{
    std::vector<RoutedOp> routed;
    std::vector<std::vector<RoutedOp>> routed_reps;
    std::vector<std::pair<QubitId, QubitId>> meas_log;
    std::vector<QubitId> final_slot_of;
    unsigned device_qubits = 0;
    unsigned steady_start = 0;
    unsigned steady_period = 0;
    StatSet stats;
    /** Observed SWAP-chain cost per (block, block) pair — the
     *  route -> place feedback signal. Keys are placement-slot blocks,
     *  lower index first. */
    std::map<std::pair<unsigned, unsigned>, double> pair_costs;
};

/** Observable per-repetition deltas, recorded so a steady-state orbit
 *  can replicate skipped repetitions bit-for-bit. */
struct RepObs
{
    std::size_t log_begin = 0;
    std::size_t log_end = 0;
    std::uint64_t swaps = 0;
    std::uint64_t routed_gates = 0;
    std::uint64_t deferred = 0;
    std::vector<double> swap_costs; ///< ordered routing_swap_cost samples
    std::vector<std::pair<std::pair<unsigned, unsigned>, double>>
        pair_costs;
};

/** Orbit key: the full router state a repetition body starts from. Two
 *  equal keys make the bodies (and everything after them) identical. */
struct RepKey
{
    std::vector<QubitId> slots;
    std::vector<bool> used;
    std::vector<std::uint32_t> epoch_canon;

    bool operator==(const RepKey &) const = default;
};

/**
 * One full routing attempt under the context's current placement plan.
 * Fills `att`; on error the attempt is abandoned (partial state stays
 * local to it).
 */
Status
routeAttempt(PassContext &ctx, const place::CostModel &cost,
             KPathCache &kpaths, RouteAttempt &att)
{
    const unsigned num_qubits = ctx.circuit.numQubits();
    place::LiveMap live(num_qubits, ctx.slotSpace());
    const unsigned nc = ctx.topo.numControllers();
    const unsigned window = std::max(1u, ctx.config.route_window);
    const bool windowed = window > 1;
    const bool collect_pairs = ctx.config.route_feedback;

    // Replay of the scheduler's epoch tracking, including its
    // repetition barriers: routing decisions must mirror exactly the
    // epoch state the scheduler will see when it walks these streams.
    std::vector<std::uint64_t> epoch(nc, 0);
    std::uint64_t next_epoch = 1;
    const bool lockstep = ctx.config.scheme == SyncScheme::kLockStep;
    // Mirror of the scheduler's touch() set: which controllers any
    // emitted op (or barrier region sync) has involved so far.
    std::vector<bool> used(nc, false);

    // Windowed mode's virtual routing timeline: per-controller ready
    // times phase inserted chains against each other, and the
    // congestion map prices link contention between overlapping chains.
    // Both reset at repetition barriers, keeping each repetition's
    // routed stream a pure function of its entry state.
    route::CongestionMap congestion(ctx.topo);
    std::vector<Cycle> vready(nc, 0);

    QubitId max_slot = num_qubits > 0 ? num_qubits - 1 : 0;
    std::vector<RoutedOp> *out = &att.routed;
    auto emit = [&](CircuitOp op, bool inserted) {
        for (QubitId slot : op.qubits) {
            max_slot = std::max(max_slot, slot);
            used[ctx.controllerOfSlot(slot)] = true;
        }
        if (windowed && !op.qubits.empty()) {
            const Cycle dur = op.isMeasure() ? ctx.config.measure
                              : op.qubits.size() >= 2
                                  ? ctx.config.gate2q
                                  : ctx.config.gate1q;
            if (op.qubits.size() >= 2) {
                const ControllerId ca = ctx.controllerOfSlot(op.qubits[0]);
                const ControllerId cb = ctx.controllerOfSlot(op.qubits[1]);
                Cycle start = std::max(vready[ca], vready[cb]);
                if (inserted && ca != cb) {
                    start = congestion.earliestFree(ca, cb, start, dur);
                    congestion.reserve(ca, cb, start, dur);
                }
                vready[ca] = vready[cb] = start + dur;
            } else {
                vready[ctx.controllerOfSlot(op.qubits[0])] += dur;
            }
        }
        out->push_back(RoutedOp{std::move(op), inserted});
    };

    /** Epoch effect of the scheduler's repetition barrier: a region
     *  sync over the smallest router subtree covering every used
     *  controller merges all its members into one fresh epoch (the
     *  lock-step baseline's barrier is implicit — no epoch change). */
    auto barrier = [&]() {
        if (windowed) {
            congestion.clear();
            std::fill(vready.begin(), vready.end(), 0);
        }
        if (lockstep)
            return;
        ControllerId first = kNoController;
        for (ControllerId c = 0; c < nc; ++c) {
            if (used[c]) {
                first = c;
                break;
            }
        }
        DHISQ_ASSERT(first != kNoController,
                     "repetition barrier with no used controllers");
        RouterId region = ctx.topo.parentRouter(first);
        auto covers = [&](RouterId r) {
            for (ControllerId c = 0; c < nc; ++c) {
                if (used[c] && !ctx.topo.inSubtree(c, r))
                    return false;
            }
            return true;
        };
        while (!covers(region))
            region = ctx.topo.router(region).parent;
        const std::uint64_t merged = next_epoch++;
        for (ControllerId c : ctx.topo.controllersUnder(region)) {
            epoch[c] = merged;
            used[c] = true;
        }
    };

    /** Epoch effect of an emitted cross-controller two-qubit gate: the
     *  scheduler books a sync at divergence, merging the pair. */
    auto mergeEpochs = [&](ControllerId a, ControllerId b) {
        if (a != b && epoch[a] != epoch[b])
            epoch[a] = epoch[b] = next_epoch++;
    };

    /** Epoch effect of leaving a non-adjacent diverged pair unrouted:
     *  the scheduler falls back to a region sync over the smallest
     *  subtree covering the pair, merging (and touching) every
     *  controller under it — mirrored here so later routing decisions
     *  see the post-sync epochs. */
    auto regionMerge = [&](ControllerId a, ControllerId b) {
        RouterId region = ctx.topo.parentRouter(a);
        while (!(ctx.topo.inSubtree(a, region) &&
                 ctx.topo.inSubtree(b, region)))
            region = ctx.topo.router(region).parent;
        const std::uint64_t merged = next_epoch++;
        for (ControllerId c : ctx.topo.controllersUnder(region)) {
            epoch[c] = merged;
            used[c] = true;
        }
    };

    /** Victim slot on `c`: empty capacity first, else the lowest slot
     *  not holding either gate operand. kNoQubit when none exists. */
    auto pickVictim = [&](ControllerId c, QubitId exclude_a,
                          QubitId exclude_b) -> QubitId {
        const auto [lo, hi] = ctx.blockRangeOf(c);
        for (QubitId s = lo; s < hi; ++s) {
            if (s != exclude_a && s != exclude_b &&
                live.logicalAt(s) == kNoQubit) {
                return s;
            }
        }
        for (QubitId s = lo; s < hi; ++s) {
            if (s != exclude_a && s != exclude_b)
                return s;
        }
        return kNoQubit;
    };

    // Per-rep observable deltas (steady-state replication input).
    RepObs cur_obs;

    /**
     * SWAP-walk the qubit on `slot` along `path` (a cost-ordered walk
     * from its controller toward the partner's), stopping when adjacent
     * to the far end (or, with `colocate`, on it). A shortest path's
     * suffix is itself shortest, so walking the precomputed path equals
     * re-running Dijkstra per hop. Returns the final slot, or kNoQubit
     * when no victim slot exists (single-slot controllers). When
     * `observed` is non-null the chain's summed sync cost accumulates
     * into it (route -> place feedback).
     */
    auto swapToward = [&](QubitId slot,
                          const std::vector<ControllerId> &path,
                          QubitId partner_slot, bool colocate,
                          double *observed) -> QubitId {
        DHISQ_ASSERT(path.size() >= 2, "path too short");
        const ControllerId dst = path.back();
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const ControllerId cur = path[i];
            DHISQ_ASSERT(ctx.controllerOfSlot(slot) == cur,
                         "swap walk left its path");
            if (!colocate && ctx.topo.areNeighbors(cur, dst))
                break;
            const ControllerId next = path[i + 1];
            const QubitId victim = pickVictim(next, partner_slot, slot);
            if (victim == kNoQubit)
                return kNoQubit;
            CircuitOp swap;
            swap.gate = q::Gate::kSwap;
            swap.qubits = {slot, victim};
            emit(std::move(swap), /*inserted=*/true);
            mergeEpochs(cur, next);
            live.swapSlots(slot, victim);
            const double hop = cost.syncCost(cur, next);
            att.stats.inc("swaps_inserted");
            att.stats.sample("routing_swap_cost", hop);
            ++cur_obs.swaps;
            cur_obs.swap_costs.push_back(hop);
            if (observed != nullptr)
                *observed += hop;
            slot = victim;
        }
        return slot;
    };

    // Upcoming unconditional two-qubit gates (logical operands), plus a
    // per-op-index cursor into them — the windowed lookahead term.
    std::vector<std::pair<QubitId, QubitId>> twoq;
    std::vector<std::size_t> next2q;
    if (windowed) {
        next2q.assign(ctx.ops.size() + 1, 0);
        for (const CircuitOp &op : ctx.ops) {
            if (op.isTwoQubit() && !op.isConditional())
                twoq.emplace_back(op.qubits[0], op.qubits[1]);
        }
        std::size_t k = twoq.size();
        next2q[ctx.ops.size()] = k;
        for (std::size_t i = ctx.ops.size(); i-- > 0;) {
            if (ctx.ops[i].isTwoQubit() && !ctx.ops[i].isConditional())
                --k;
            next2q[i] = k;
        }
    }

    /**
     * Score of routing the gate at op-index `op_idx` by walking the
     * logical qubit `moved_q` (on `slot`) along `path`: the chain's
     * congestion-priced immediate cost plus a decaying lookahead term
     * over the next window-1 upcoming two-qubit gates, evaluated at the
     * hypothetical post-move position. An empty `path` scores the
     * leave-unrouted candidate: the pair costs one region sync and
     * nobody moves.
     */
    auto scoreCandidate = [&](std::size_t op_idx, QubitId moved_q,
                              const std::vector<ControllerId> &path,
                              ControllerId a, ControllerId b) {
        double immediate = 0.0;
        ControllerId end_c = kNoController;
        RouterId merged_region = net::kNoRouter;
        if (path.empty()) {
            immediate = cost.syncCost(a, b) +
                        double(ctx.config.region_residual);
            // The region sync merges every controller under the
            // covering subtree into one epoch: upcoming pairs fully
            // inside it co-schedule for free until the next divergence
            // — the payoff that makes deferral beat dragging a qubit
            // across a sparse fabric.
            merged_region = ctx.topo.parentRouter(a);
            while (!(ctx.topo.inSubtree(a, merged_region) &&
                     ctx.topo.inSubtree(b, merged_region)))
                merged_region = ctx.topo.router(merged_region).parent;
        } else {
            const ControllerId dst = path.back();
            Cycle t = 0;
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                const ControllerId cur = path[i];
                if (ctx.topo.areNeighbors(cur, dst)) {
                    end_c = cur;
                    break;
                }
                const ControllerId next = path[i + 1];
                t = std::max({t, vready[cur], vready[next]});
                const Cycle start = congestion.earliestFree(
                    cur, next, t, ctx.config.gate2q);
                immediate += cost.syncCost(cur, next) +
                             double(start - t) +
                             double(ctx.config.gate2q);
                t = start + ctx.config.gate2q;
                end_c = next;
            }
            if (end_c == kNoController)
                end_c = path[path.size() - 2];
        }
        double look = 0.0;
        std::size_t idx = next2q[op_idx] + 1;
        for (unsigned j = 0; j + 1 < window && idx < twoq.size();
             ++j, ++idx) {
            const auto [qa, qb] = twoq[idx];
            const ControllerId ca =
                (!path.empty() && qa == moved_q)
                    ? end_c
                    : ctx.controllerOfSlot(live.slotOf(qa));
            const ControllerId cb =
                (!path.empty() && qb == moved_q)
                    ? end_c
                    : ctx.controllerOfSlot(live.slotOf(qb));
            if (ca == cb)
                continue;
            if (merged_region != net::kNoRouter &&
                ctx.topo.inSubtree(ca, merged_region) &&
                ctx.topo.inSubtree(cb, merged_region))
                continue; // merged epoch: co-scheduled for free
            look += cost.syncCost(ca, cb) /
                    (kLookaheadDecay + double(j));
        }
        return immediate + look;
    };

    const unsigned reps =
        ctx.config.repetitions > 0 ? ctx.config.repetitions : 1;
    const bool multi = reps > 1;
    const bool steady =
        multi && ctx.config.route_steady_state;

    // Orbit detection: the routed body of a repetition is a pure
    // function of (live map, used set, epoch partition) at its start,
    // so a repeated key means every later repetition cycles with period
    // (rep - match). Live-map snapshots per rep start resolve the final
    // slot assignment of the skipped tail.
    std::vector<RepKey> rep_keys;
    std::vector<std::vector<QubitId>> rep_live;
    std::vector<RepObs> rep_obs;
    auto makeKey = [&]() {
        RepKey key;
        key.slots = live.slots();
        key.used = used;
        key.epoch_canon.reserve(nc);
        std::map<std::uint64_t, std::uint32_t> canon;
        for (ControllerId c = 0; c < nc; ++c) {
            const auto [it, fresh] = canon.try_emplace(
                epoch[c], std::uint32_t(canon.size()));
            key.epoch_canon.push_back(it->second);
        }
        return key;
    };

    bool in_orbit = false;
    for (unsigned rep = 0; rep < reps && !in_orbit; ++rep) {
      if (rep > 0)
          barrier();
      if (steady && rep + 1 < reps) {
          const RepKey key = makeKey();
          for (std::size_t s = 0; s < rep_keys.size(); ++s) {
              if (rep_keys[s] == key) {
                  att.steady_start = unsigned(s);
                  att.steady_period = rep - unsigned(s);
                  in_orbit = true;
                  break;
              }
          }
          if (in_orbit)
              break;
          rep_keys.push_back(std::move(key));
          rep_live.push_back(live.slots());
      }
      if (multi)
          att.routed_reps.emplace_back();
      out = multi ? &att.routed_reps.back() : &att.routed;
      cur_obs = RepObs{};
      cur_obs.log_begin = att.meas_log.size();
      for (std::size_t op_idx = 0; op_idx < ctx.ops.size(); ++op_idx) {
        const CircuitOp &source = ctx.ops[op_idx];
        CircuitOp op = source;
        for (QubitId &q : op.qubits)
            q = live.slotOf(q);

        if (op.isConditional()) {
            if (op.qubits.size() == 2 &&
                ctx.controllerOfSlot(op.qubits[0]) !=
                    ctx.controllerOfSlot(op.qubits[1])) {
                // The scheduler requires both halves of a conditional
                // two-qubit gate on one controller: co-locate.
                const std::pair<unsigned, unsigned> blocks =
                    std::minmax(op.qubits[0] / ctx.slots_per_controller,
                                op.qubits[1] / ctx.slots_per_controller);
                double observed = 0.0;
                const QubitId moved = swapToward(
                    op.qubits[1],
                    ctx.topo.cheapestPath(
                        ctx.controllerOfSlot(op.qubits[1]),
                        ctx.controllerOfSlot(op.qubits[0])),
                    op.qubits[0], /*colocate=*/true,
                    collect_pairs ? &observed : nullptr);
                if (moved == kNoQubit) {
                    return Status::error(
                        "circuit '" + ctx.circuit.name() +
                        "' cannot co-locate a conditional two-qubit "
                        "gate: controllers host only one slot each "
                        "(need qubits_per_controller >= 2 for routed "
                        "conditional 2q gates)");
                }
                if (collect_pairs && observed > 0.0) {
                    att.pair_costs[blocks] += observed;
                    cur_obs.pair_costs.emplace_back(blocks, observed);
                }
                op.qubits[1] = moved;
                att.stats.inc("routed_gates");
                ++cur_obs.routed_gates;
            }
            const ControllerId consumer =
                ctx.controllerOfSlot(op.qubits[0]);
            emit(std::move(op), false);
            // Branches make the consumer's timeline private (dynamic
            // schemes only; lock-step keeps one static timeline).
            if (!lockstep)
                epoch[consumer] = next_epoch++;
        } else if (op.isMeasure()) {
            att.meas_log.emplace_back(op.qubits[0], source.qubits[0]);
            emit(std::move(op), false);
        } else if (op.isTwoQubit()) {
            const ControllerId a = ctx.controllerOfSlot(op.qubits[0]);
            const ControllerId b = ctx.controllerOfSlot(op.qubits[1]);
            if (a != b && epoch[a] != epoch[b] &&
                !ctx.topo.areNeighbors(a, b)) {
                const std::pair<unsigned, unsigned> blocks =
                    std::minmax(op.qubits[0] / ctx.slots_per_controller,
                                op.qubits[1] / ctx.slots_per_controller);
                double observed = 0.0;
                QubitId moved = kNoQubit;
                bool deferred = false;
                if (!windowed) {
                    // Greedy (window = 1): route the cheaper operand
                    // (by the cost model the placement optimized)
                    // until the pair shares a link.
                    const auto path_ab = ctx.topo.cheapestPath(a, b);
                    const auto path_ba = ctx.topo.cheapestPath(b, a);
                    if (chainCost(cost, path_ab) <=
                        chainCost(cost, path_ba)) {
                        moved = swapToward(
                            op.qubits[0], path_ab, op.qubits[1], false,
                            collect_pairs ? &observed : nullptr);
                        if (moved != kNoQubit)
                            op.qubits[0] = moved;
                    } else {
                        moved = swapToward(
                            op.qubits[1], path_ba, op.qubits[0], false,
                            collect_pairs ? &observed : nullptr);
                        if (moved != kNoQubit)
                            op.qubits[1] = moved;
                    }
                } else {
                    // Windowed joint selection: score every k-shortest
                    // chain for either operand (congestion-priced, with
                    // the lookahead term) plus the leave-unrouted
                    // candidate (one region sync, nobody moves); commit
                    // the jointly-cheapest. Ties keep the earliest
                    // candidate in enumeration order.
                    int best_operand = -1;
                    const std::vector<ControllerId> *best_path = nullptr;
                    double best_score = 0.0;
                    bool have = false;
                    auto consider = [&](int operand,
                                        const std::vector<ControllerId>
                                            &path,
                                        double score) {
                        if (!have || score < best_score) {
                            have = true;
                            best_operand = operand;
                            best_path = path.empty() ? nullptr : &path;
                            best_score = score;
                        }
                    };
                    for (const auto &path :
                         kPathsOf(ctx.topo, kpaths, a, b)) {
                        consider(0, path,
                                 scoreCandidate(op_idx,
                                                source.qubits[0], path,
                                                a, b));
                    }
                    for (const auto &path :
                         kPathsOf(ctx.topo, kpaths, b, a)) {
                        consider(1, path,
                                 scoreCandidate(op_idx,
                                                source.qubits[1], path,
                                                b, a));
                    }
                    static const std::vector<ControllerId> kNoPath;
                    consider(-1, kNoPath,
                             scoreCandidate(op_idx, kNoQubit, kNoPath,
                                            a, b));
                    if (best_operand < 0) {
                        // Cheaper to let the scheduler region-sync the
                        // pair than to drag a qubit across the fabric.
                        regionMerge(a, b);
                        att.stats.inc("routing_deferred");
                        ++cur_obs.deferred;
                        deferred = true;
                    } else {
                        const QubitId slot = op.qubits[best_operand];
                        const QubitId partner =
                            op.qubits[1 - best_operand];
                        moved = swapToward(
                            slot, *best_path, partner, false,
                            collect_pairs ? &observed : nullptr);
                        if (moved != kNoQubit)
                            op.qubits[std::size_t(best_operand)] = moved;
                    }
                }
                if (!deferred) {
                    if (moved == kNoQubit) {
                        return Status::error(
                            "circuit '" + ctx.circuit.name() +
                            "' cannot route a two-qubit gate: no victim "
                            "slot available along the SWAP chain");
                    }
                    if (collect_pairs && observed > 0.0) {
                        att.pair_costs[blocks] += observed;
                        cur_obs.pair_costs.emplace_back(blocks,
                                                        observed);
                    }
                    att.stats.inc("routed_gates");
                    ++cur_obs.routed_gates;
                }
            }
            const ControllerId fa = ctx.controllerOfSlot(op.qubits[0]);
            const ControllerId fb = ctx.controllerOfSlot(op.qubits[1]);
            emit(std::move(op), false);
            mergeEpochs(fa, fb);
        } else {
            emit(std::move(op), false);
        }
      }
      cur_obs.log_end = att.meas_log.size();
      if (steady)
          rep_obs.push_back(std::move(cur_obs));
    }

    if (in_orbit) {
        // Steady state reached: repetitions routed_reps.size()..reps-1
        // replay the orbit. Replicate their observable deltas — the
        // measurement-log segments and per-rep stat contributions the
        // naive per-rep replay would have produced — bit-for-bit.
        const unsigned start = att.steady_start;
        const unsigned period = att.steady_period;
        const unsigned generated = unsigned(att.routed_reps.size());
        for (unsigned rep = generated; rep < reps; ++rep) {
            const RepObs &obs =
                rep_obs[start + (rep - start) % period];
            for (std::size_t i = obs.log_begin; i < obs.log_end; ++i)
                att.meas_log.push_back(att.meas_log[i]);
            if (obs.swaps > 0)
                att.stats.inc("swaps_inserted", obs.swaps);
            if (obs.routed_gates > 0)
                att.stats.inc("routed_gates", obs.routed_gates);
            if (obs.deferred > 0)
                att.stats.inc("routing_deferred", obs.deferred);
            for (const double hop : obs.swap_costs)
                att.stats.sample("routing_swap_cost", hop);
            for (const auto &[blocks, observed] : obs.pair_costs)
                att.pair_costs[blocks] += observed;
        }
        // The final live map is the orbit state the last repetition's
        // body ends on: the rep-start snapshot of index `reps` folded
        // into the orbit.
        att.final_slot_of = rep_live[start + (reps - start) % period];
    } else {
        att.final_slot_of = live.slots();
    }
    att.device_qubits = max_slot + 1;
    return Status::ok();
}

} // namespace

Status
RoutePass::run(PassContext &ctx)
{
    const unsigned num_qubits = ctx.circuit.numQubits();
    ctx.routed.clear();
    ctx.routed.reserve(ctx.ops.size());
    ctx.meas_log.clear();

    if (ctx.config.routing == RoutingMode::kNone) {
        // Identity rewrite: logical qubit q is physical slot q.
        for (const CircuitOp &op : ctx.ops) {
            if (op.isMeasure())
                ctx.meas_log.emplace_back(op.qubits[0], op.qubits[0]);
            ctx.routed.push_back(RoutedOp{op, false});
        }
        // The scheduler replays the same stream once per repetition;
        // the measurement log covers every repetition's commits so
        // occurrence-based decoding works identically to the routed
        // modes.
        const std::size_t per_rep = ctx.meas_log.size();
        for (unsigned rep = 1; rep < ctx.config.repetitions; ++rep) {
            for (std::size_t i = 0; i < per_rep; ++i)
                ctx.meas_log.push_back(ctx.meas_log[i]);
        }
        ctx.final_slot_of.resize(num_qubits);
        for (QubitId q = 0; q < num_qubits; ++q)
            ctx.final_slot_of[q] = q;
        ctx.device_qubits = num_qubits;
        return Status::ok();
    }

    const place::CostModel cost(ctx.topo);
    KPathCache kpaths;

    RouteAttempt first;
    const Status st = routeAttempt(ctx, cost, kpaths, first);
    if (!st)
        return st;

    // Route -> place feedback (bounded at two routing passes): fold the
    // observed per-block-pair SWAP-chain costs into the interaction
    // graph as extra sync weight, re-run kl-mincut refinement from the
    // current order, and re-route once. The cheaper attempt (by total
    // observed swap cost) wins; ties keep the first.
    RouteAttempt second;
    RouteAttempt *winner = &first;
    if (ctx.config.route_feedback && !first.pair_costs.empty()) {
        const place::PlacementPlan plan1 = ctx.plan;
        place::InteractionGraph graph = interactionGraphOf(
            ctx.circuit, ctx.slots_per_controller);
        for (const auto &[blocks, observed] : first.pair_costs) {
            // Chains can park victims on spill blocks past the
            // circuit's block count; the graph has no node for those.
            if (blocks.second >= graph.numBlocks())
                continue;
            const double unit = cost.syncCost(plan1.order[blocks.first],
                                              plan1.order[blocks.second]);
            graph.addSyncWeight(blocks.first, blocks.second,
                                unit > 0.0 ? observed / unit : observed);
        }
        std::vector<ControllerId> order = plan1.order;
        place::klRefine(cost, graph, order);
        if (order != plan1.order) {
            place::PlacementPlan plan2;
            plan2.strategy = plan1.strategy;
            plan2.order = order;
            plan2.slot_of.assign(order.size(), 0);
            for (std::size_t i = 0; i < order.size(); ++i)
                plan2.slot_of[order[i]] = unsigned(i);
            ctx.plan = plan2;
            first.stats.inc("route_feedback_attempts");
            const Status st2 = routeAttempt(ctx, cost, kpaths, second);
            const double cost1 =
                first.stats.scalar("routing_swap_cost").sum;
            const double cost2 =
                second.stats.scalar("routing_swap_cost").sum;
            if (st2 && cost2 < cost1) {
                winner = &second;
                second.stats.inc("route_feedback_attempts");
                second.stats.inc("route_feedback_adopted");
            } else {
                ctx.plan = plan1;
            }
        }
    }

    ctx.routed = std::move(winner->routed);
    ctx.routed_reps = std::move(winner->routed_reps);
    ctx.meas_log = std::move(winner->meas_log);
    ctx.final_slot_of = std::move(winner->final_slot_of);
    ctx.device_qubits = winner->device_qubits;
    ctx.steady_start = winner->steady_start;
    ctx.steady_period = winner->steady_period;
    ctx.stats.mergeFrom(winner->stats);
    return Status::ok();
}

} // namespace dhisq::compiler::passes
