#include "compiler/passes/route.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"

namespace dhisq::compiler::passes {

namespace {

/** Chain cost of walking `path` up to (not into) its last node. */
double
chainCost(const place::CostModel &cost,
          const std::vector<ControllerId> &path)
{
    double total = 0.0;
    for (std::size_t i = 0; i + 2 < path.size(); ++i)
        total += cost.syncCost(path[i], path[i + 1]);
    return total;
}

} // namespace

Status
RoutePass::run(PassContext &ctx)
{
    const unsigned num_qubits = ctx.circuit.numQubits();
    ctx.routed.clear();
    ctx.routed.reserve(ctx.ops.size());
    ctx.meas_log.clear();

    if (ctx.config.routing == RoutingMode::kNone) {
        // Identity rewrite: logical qubit q is physical slot q.
        for (const CircuitOp &op : ctx.ops) {
            if (op.isMeasure())
                ctx.meas_log.emplace_back(op.qubits[0], op.qubits[0]);
            ctx.routed.push_back(RoutedOp{op, false});
        }
        // The scheduler replays the same stream once per repetition;
        // the measurement log covers every repetition's commits so
        // occurrence-based decoding works identically to the routed
        // modes.
        const std::size_t per_rep = ctx.meas_log.size();
        for (unsigned rep = 1; rep < ctx.config.repetitions; ++rep) {
            for (std::size_t i = 0; i < per_rep; ++i)
                ctx.meas_log.push_back(ctx.meas_log[i]);
        }
        ctx.final_slot_of.resize(num_qubits);
        for (QubitId q = 0; q < num_qubits; ++q)
            ctx.final_slot_of[q] = q;
        ctx.device_qubits = num_qubits;
        return Status::ok();
    }

    place::LiveMap live(num_qubits, ctx.slotSpace());
    const place::CostModel cost(ctx.topo);
    const unsigned nc = ctx.topo.numControllers();

    // Replay of the scheduler's epoch tracking, including its
    // repetition barriers: routing decisions must mirror exactly the
    // epoch state the scheduler will see when it walks these streams.
    std::vector<std::uint64_t> epoch(nc, 0);
    std::uint64_t next_epoch = 1;
    const bool lockstep = ctx.config.scheme == SyncScheme::kLockStep;
    // Mirror of the scheduler's touch() set: which controllers any
    // emitted op (or barrier region sync) has involved so far.
    std::vector<bool> used(nc, false);

    QubitId max_slot = num_qubits > 0 ? num_qubits - 1 : 0;
    std::vector<RoutedOp> *out = &ctx.routed;
    auto emit = [&](CircuitOp op, bool inserted) {
        for (QubitId slot : op.qubits) {
            max_slot = std::max(max_slot, slot);
            used[ctx.controllerOfSlot(slot)] = true;
        }
        out->push_back(RoutedOp{std::move(op), inserted});
    };

    /** Epoch effect of the scheduler's repetition barrier: a region
     *  sync over the smallest router subtree covering every used
     *  controller merges all its members into one fresh epoch (the
     *  lock-step baseline's barrier is implicit — no epoch change). */
    auto barrier = [&]() {
        if (lockstep)
            return;
        ControllerId first = kNoController;
        for (ControllerId c = 0; c < nc; ++c) {
            if (used[c]) {
                first = c;
                break;
            }
        }
        DHISQ_ASSERT(first != kNoController,
                     "repetition barrier with no used controllers");
        RouterId region = ctx.topo.parentRouter(first);
        auto covers = [&](RouterId r) {
            for (ControllerId c = 0; c < nc; ++c) {
                if (used[c] && !ctx.topo.inSubtree(c, r))
                    return false;
            }
            return true;
        };
        while (!covers(region))
            region = ctx.topo.router(region).parent;
        const std::uint64_t merged = next_epoch++;
        for (ControllerId c : ctx.topo.controllersUnder(region)) {
            epoch[c] = merged;
            used[c] = true;
        }
    };

    /** Epoch effect of an emitted cross-controller two-qubit gate: the
     *  scheduler books a sync at divergence, merging the pair. */
    auto mergeEpochs = [&](ControllerId a, ControllerId b) {
        if (a != b && epoch[a] != epoch[b])
            epoch[a] = epoch[b] = next_epoch++;
    };

    /** Victim slot on `c`: empty capacity first, else the lowest slot
     *  not holding either gate operand. kNoQubit when none exists. */
    auto pickVictim = [&](ControllerId c, QubitId exclude_a,
                          QubitId exclude_b) -> QubitId {
        const auto [lo, hi] = ctx.blockRangeOf(c);
        for (QubitId s = lo; s < hi; ++s) {
            if (s != exclude_a && s != exclude_b &&
                live.logicalAt(s) == kNoQubit) {
                return s;
            }
        }
        for (QubitId s = lo; s < hi; ++s) {
            if (s != exclude_a && s != exclude_b)
                return s;
        }
        return kNoQubit;
    };

    /**
     * SWAP-walk the qubit on `slot` along `path` (the cheapest latency
     * walk from its controller toward the partner's), stopping when
     * adjacent to the far end (or, with `colocate`, on it). A shortest
     * path's suffix is itself shortest, so walking the precomputed path
     * equals re-running Dijkstra per hop. Returns the final slot, or
     * kNoQubit when no victim slot exists (single-slot controllers).
     */
    auto swapToward = [&](QubitId slot,
                          const std::vector<ControllerId> &path,
                          QubitId partner_slot,
                          bool colocate) -> QubitId {
        DHISQ_ASSERT(path.size() >= 2, "path too short");
        const ControllerId dst = path.back();
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const ControllerId cur = path[i];
            DHISQ_ASSERT(ctx.controllerOfSlot(slot) == cur,
                         "swap walk left its path");
            if (!colocate && ctx.topo.areNeighbors(cur, dst))
                break;
            const ControllerId next = path[i + 1];
            const QubitId victim = pickVictim(next, partner_slot, slot);
            if (victim == kNoQubit)
                return kNoQubit;
            CircuitOp swap;
            swap.gate = q::Gate::kSwap;
            swap.qubits = {slot, victim};
            emit(std::move(swap), /*inserted=*/true);
            mergeEpochs(cur, next);
            live.swapSlots(slot, victim);
            ctx.stats.inc("swaps_inserted");
            ctx.stats.sample("routing_swap_cost",
                             cost.syncCost(cur, next));
            slot = victim;
        }
        return slot;
    };

    const unsigned reps = ctx.config.repetitions > 0
                              ? ctx.config.repetitions
                              : 1;
    const bool multi = reps > 1;
    for (unsigned rep = 0; rep < reps; ++rep) {
      if (rep > 0)
          barrier();
      if (multi)
          ctx.routed_reps.emplace_back();
      out = multi ? &ctx.routed_reps.back() : &ctx.routed;
      const std::uint64_t swaps_before =
          ctx.stats.counter("swaps_inserted");
      const std::size_t log_before = ctx.meas_log.size();
      for (const CircuitOp &source : ctx.ops) {
        CircuitOp op = source;
        for (QubitId &q : op.qubits)
            q = live.slotOf(q);

        if (op.isConditional()) {
            if (op.qubits.size() == 2 &&
                ctx.controllerOfSlot(op.qubits[0]) !=
                    ctx.controllerOfSlot(op.qubits[1])) {
                // The scheduler requires both halves of a conditional
                // two-qubit gate on one controller: co-locate.
                const QubitId moved = swapToward(
                    op.qubits[1],
                    ctx.topo.cheapestPath(
                        ctx.controllerOfSlot(op.qubits[1]),
                        ctx.controllerOfSlot(op.qubits[0])),
                    op.qubits[0], /*colocate=*/true);
                if (moved == kNoQubit) {
                    return Status::error(
                        "circuit '" + ctx.circuit.name() +
                        "' cannot co-locate a conditional two-qubit "
                        "gate: controllers host only one slot each "
                        "(need qubits_per_controller >= 2 for routed "
                        "conditional 2q gates)");
                }
                op.qubits[1] = moved;
                ctx.stats.inc("routed_gates");
            }
            const ControllerId consumer =
                ctx.controllerOfSlot(op.qubits[0]);
            emit(std::move(op), false);
            // Branches make the consumer's timeline private (dynamic
            // schemes only; lock-step keeps one static timeline).
            if (!lockstep)
                epoch[consumer] = next_epoch++;
        } else if (op.isMeasure()) {
            ctx.meas_log.emplace_back(op.qubits[0], source.qubits[0]);
            emit(std::move(op), false);
        } else if (op.isTwoQubit()) {
            const ControllerId a = ctx.controllerOfSlot(op.qubits[0]);
            const ControllerId b = ctx.controllerOfSlot(op.qubits[1]);
            if (a != b && epoch[a] != epoch[b] &&
                !ctx.topo.areNeighbors(a, b)) {
                // Not adjacent-or-cheap: route the cheaper operand (by
                // the cost model the placement optimized) until the
                // pair shares a link.
                const auto path_ab = ctx.topo.cheapestPath(a, b);
                const auto path_ba = ctx.topo.cheapestPath(b, a);
                QubitId moved;
                if (chainCost(cost, path_ab) <=
                    chainCost(cost, path_ba)) {
                    moved = swapToward(op.qubits[0], path_ab,
                                       op.qubits[1], false);
                    if (moved != kNoQubit)
                        op.qubits[0] = moved;
                } else {
                    moved = swapToward(op.qubits[1], path_ba,
                                       op.qubits[0], false);
                    if (moved != kNoQubit)
                        op.qubits[1] = moved;
                }
                if (moved == kNoQubit) {
                    return Status::error(
                        "circuit '" + ctx.circuit.name() +
                        "' cannot route a two-qubit gate: no victim "
                        "slot available along the SWAP chain");
                }
                ctx.stats.inc("routed_gates");
            }
            const ControllerId fa = ctx.controllerOfSlot(op.qubits[0]);
            const ControllerId fb = ctx.controllerOfSlot(op.qubits[1]);
            emit(std::move(op), false);
            mergeEpochs(fa, fb);
        } else {
            emit(std::move(op), false);
        }
      }

      // Fixed point: a post-barrier repetition that inserted no SWAPs
      // left the live map unchanged, so every later repetition would
      // route to the identical stream — reuse this one (routedFor
      // clamps) and just extend the measurement log to cover them.
      if (rep > 0 && rep + 1 < reps &&
          ctx.stats.counter("swaps_inserted") == swaps_before) {
          const std::size_t log_per_rep = ctx.meas_log.size() - log_before;
          for (unsigned later = rep + 1; later < reps; ++later) {
              for (std::size_t i = 0; i < log_per_rep; ++i)
                  ctx.meas_log.push_back(ctx.meas_log[log_before + i]);
          }
          break;
      }
    }

    ctx.final_slot_of = live.slots();
    ctx.device_qubits = max_slot + 1;
    return Status::ok();
}

} // namespace dhisq::compiler::passes
