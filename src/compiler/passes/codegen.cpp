#include "compiler/passes/codegen.hpp"

#include <string>

#include "compiler/program_builder.hpp"

namespace dhisq::compiler::passes {

Status
CodegenPass::run(PassContext &ctx)
{
    const unsigned nc = ctx.topo.numControllers();
    CompiledProgram out;
    out.programs.resize(nc);
    out.used.assign(nc, false);
    for (ControllerId c = 0; c < nc; ++c) {
        if (!ctx.used[c])
            continue;
        out.used[c] = true;
        ProgramBuilder builder(ctx.circuit.name() + ".C" +
                               std::to_string(c));
        ctx.streams[c].replay(builder);
        out.programs[c] = builder.finish();
    }
    out.bindings = std::move(ctx.bindings);
    // Gate census for the backend tier selector: the program is
    // Clifford-only iff every bound gate action is. Measurement/reset
    // pseudo-gates and nops are Clifford by definition.
    out.clifford_only = true;
    for (const Binding &b : out.bindings) {
        if (b.action.kind == q::ActionKind::Nop)
            continue;
        if (!q::isCliffordGate(b.action.gate)) {
            out.clifford_only = false;
            break;
        }
    }
    out.meas_routes = std::move(ctx.meas_routes);
    out.stats = std::move(ctx.stats);
    out.ports_per_controller = ctx.slots_per_controller;
    out.device_qubits = ctx.device_qubits;
    out.meas_log = std::move(ctx.meas_log);
    ctx.out = std::move(out);
    return Status::ok();
}

} // namespace dhisq::compiler::passes
