#include "compiler/passes/congestion.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dhisq::compiler::route {

CongestionMap::CongestionMap(const net::Topology &topo)
{
    const unsigned nc = topo.numControllers();
    _peer_index.resize(nc);
    std::uint32_t links = 0;
    for (ControllerId c = 0; c < nc; ++c) {
        for (const net::Topology::Link &link : topo.linksOf(c)) {
            if (link.peer < c)
                continue; // undirected: index once, from the lower id
            _peer_index[c].emplace_back(link.peer, links);
            _peer_index[link.peer].emplace_back(c, links);
            ++links;
        }
    }
    _busy.resize(links);
}

void
CongestionMap::clear()
{
    for (auto &intervals : _busy)
        intervals.clear();
}

std::size_t
CongestionMap::linkIndex(ControllerId a, ControllerId b) const
{
    DHISQ_ASSERT(a < _peer_index.size() && b < _peer_index.size(),
                 "controller out of range");
    for (const auto &[peer, index] : _peer_index[a]) {
        if (peer == b)
            return index;
    }
    DHISQ_PANIC("controllers ", a, " and ", b, " share no link");
}

Cycle
CongestionMap::earliestFree(ControllerId a, ControllerId b, Cycle t,
                            Cycle dur) const
{
    Cycle start = t;
    for (const Interval &busy : _busy[linkIndex(a, b)]) {
        if (busy.end <= start)
            continue;
        if (busy.begin >= start + dur)
            break;
        start = busy.end;
    }
    return start;
}

void
CongestionMap::reserve(ControllerId a, ControllerId b, Cycle t, Cycle dur)
{
    if (dur == 0)
        return;
    auto &intervals = _busy[linkIndex(a, b)];
    Interval booked{t, t + dur};
    // First interval ending at/after the new booking's start: everything
    // before it is disjoint, everything overlapping or touching merges.
    auto first = std::lower_bound(
        intervals.begin(), intervals.end(), booked.begin,
        [](const Interval &iv, Cycle begin) { return iv.end < begin; });
    auto last = first;
    while (last != intervals.end() && last->begin <= booked.end) {
        booked.begin = std::min(booked.begin, last->begin);
        booked.end = std::max(booked.end, last->end);
        ++last;
    }
    if (first == last) {
        intervals.insert(first, booked);
    } else {
        *first = booked;
        intervals.erase(std::next(first), last);
    }
}

std::size_t
CongestionMap::intervalCount() const
{
    std::size_t total = 0;
    for (const auto &intervals : _busy)
        total += intervals.size();
    return total;
}

} // namespace dhisq::compiler::route
