/**
 * @file
 * Recorded per-controller emission stream: the interface between the
 * ScheduleEpochs pass (which decides *what* to emit and *when*) and the
 * Codegen pass (which lowers the decisions to ISA instructions).
 *
 * A CodeStream mirrors exactly the ProgramBuilder calls the scheduler
 * makes, including the builder's instruction count (`size()` — the
 * lock-step scheme prices conditional blocks by their instruction
 * footprint), so replaying a stream through a real ProgramBuilder
 * reproduces the monolithic compiler's output bit-identically. Codegen
 * asserts the replayed builder size matches the recorded size, so any
 * drift between the mirror and the builder fails loudly.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dhisq::compiler {

class ProgramBuilder;

namespace passes {

/** Records ProgramBuilder calls for later replay. */
class CodeStream
{
  public:
    /** Allocate a branch label; ids are dense from 0. */
    std::size_t newLabel();

    /** Bind a label to the next emission point. */
    void bind(std::size_t label);

    void waiti(Cycle cycles);
    void cwii(PortId port, Codeword cw);
    void syncController(ControllerId peer);
    void syncRouter(RouterId router, Cycle residual);
    void wtrig(std::uint32_t src);
    void send(ControllerId dst, unsigned rs2);
    void recv(unsigned rd, std::uint32_t src);
    void andi(unsigned rd, unsigned rs1, std::int32_t imm);
    void lw(unsigned rd, unsigned base, std::int32_t offset);
    void sw(unsigned rs2, unsigned base, std::int32_t offset);
    void xorReg(unsigned rd, unsigned rs1, unsigned rs2);
    void beq(unsigned rs1, unsigned rs2, std::size_t label);
    void halt();

    /** Instruction count the replayed builder will report (mirrored). */
    std::size_t size() const { return _instructions; }

    /** Recorded call count (labels and multi-chunk waits fold in). */
    std::size_t opCount() const { return _ops.size(); }

    /** Replay every recorded call into `builder`, in order. */
    void replay(ProgramBuilder &builder) const;

  private:
    enum class Kind : std::uint8_t
    {
        kBind,
        kWaiti,
        kCwii,
        kSyncController,
        kSyncRouter,
        kWtrig,
        kSend,
        kRecv,
        kAndi,
        kLw,
        kSw,
        kXor,
        kBeq,
        kHalt,
    };

    struct Op
    {
        Kind kind;
        std::uint64_t a = 0;
        std::int64_t b = 0;
        std::int64_t c = 0;
    };

    std::vector<Op> _ops;
    std::size_t _instructions = 0;
    std::size_t _labels = 0;
};

} // namespace passes
} // namespace dhisq::compiler
