#include "compiler/passes/place_pass.hpp"

#include "compiler/interaction.hpp"

namespace dhisq::compiler::passes {

Status
PlacePass::run(PassContext &ctx)
{
    // The interaction graph is built at super-block granularity: one
    // node per controller-sized slot block, so the strategies place
    // exactly what the slot map will host (with group == 1 this is the
    // plain qubits_per_controller blocking, bit-compatible).
    const place::InteractionGraph graph =
        interactionGraphOf(ctx.circuit, ctx.slots_per_controller);
    ctx.plan =
        place::makePlacement(ctx.topo, graph, ctx.config.placement);
    return Status::ok();
}

} // namespace dhisq::compiler::passes
