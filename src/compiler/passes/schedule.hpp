/**
 * @file
 * ScheduleEpochs pass: the epoch/sync/feedback core of the compiler.
 *
 * Walks the routed op stream (physical-slot space) once per repetition
 * and decides *what* each controller does *when*: per-controller epochs
 * and their merges (nearby sync pairs, region syncs over covering
 * router subtrees), timed codeword events, measurement tails and
 * feedback receive blocks, and the three sync schemes' timing rules
 * (BISP booking leads, demand-driven bounces, the lock-step static
 * timeline). Decisions are recorded as per-controller CodeStreams plus
 * bindings, measurement routes and stats; the Codegen pass lowers the
 * streams to ISA. The walk itself is the pre-split monolith's,
 * reproduced call-for-call so the recorded streams replay to the exact
 * same binaries.
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class ScheduleEpochsPass : public Pass
{
  public:
    const char *name() const override { return "schedule-epochs"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
