/**
 * @file
 * Codegen pass: per-controller ISA emission.
 *
 * Replays each used controller's recorded CodeStream through a
 * ProgramBuilder (label fixups, waiti chunking, word encoding) and
 * assembles the final CompiledProgram: binaries, bindings, measurement
 * routes, the compiled slot geometry and the measurement log.
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class CodegenPass : public Pass
{
  public:
    const char *name() const override { return "codegen"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
