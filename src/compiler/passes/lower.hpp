/**
 * @file
 * Lower pass: circuit -> compiler IR.
 *
 * Copies the circuit's op stream into the context, validates it against
 * the machine (capacity, well-formed conditions) and derives the block
 * geometry: the number of qubit blocks, and — when the circuit exceeds
 * `controllers x qubits_per_controller` under RoutingMode::kSwap — the
 * oversubscribed grouping factor that folds consecutive blocks onto one
 * controller. With routing disabled an over-capacity circuit is a
 * structured error naming the workload and the capacity (not an assert).
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class LowerPass : public Pass
{
  public:
    const char *name() const override { return "lower"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
