#include "compiler/passes/codestream.hpp"

#include "common/logging.hpp"
#include "compiler/program_builder.hpp"
#include "isa/encoding.hpp"

namespace dhisq::compiler::passes {

std::size_t
CodeStream::newLabel()
{
    return _labels++;
}

void
CodeStream::bind(std::size_t label)
{
    DHISQ_ASSERT(label < _labels, "unknown label ", label);
    _ops.push_back(Op{Kind::kBind, label, 0, 0});
}

void
CodeStream::waiti(Cycle cycles)
{
    if (cycles == 0)
        return;
    // Mirror ProgramBuilder::waiti's chunking so size() stays exact.
    Cycle remaining = cycles;
    while (remaining > Cycle(isa::kMaxWaitImmediate)) {
        ++_instructions;
        remaining -= Cycle(isa::kMaxWaitImmediate);
    }
    if (remaining > 0)
        ++_instructions;
    _ops.push_back(Op{Kind::kWaiti, cycles, 0, 0});
}

void
CodeStream::cwii(PortId port, Codeword cw)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kCwii, port, std::int64_t(cw), 0});
}

void
CodeStream::syncController(ControllerId peer)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kSyncController, peer, 0, 0});
}

void
CodeStream::syncRouter(RouterId router, Cycle residual)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kSyncRouter, router, std::int64_t(residual), 0});
}

void
CodeStream::wtrig(std::uint32_t src)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kWtrig, src, 0, 0});
}

void
CodeStream::send(ControllerId dst, unsigned rs2)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kSend, dst, std::int64_t(rs2), 0});
}

void
CodeStream::recv(unsigned rd, std::uint32_t src)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kRecv, rd, std::int64_t(src), 0});
}

void
CodeStream::andi(unsigned rd, unsigned rs1, std::int32_t imm)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kAndi, rd, std::int64_t(rs1),
                      std::int64_t(imm)});
}

void
CodeStream::lw(unsigned rd, unsigned base, std::int32_t offset)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kLw, rd, std::int64_t(base),
                      std::int64_t(offset)});
}

void
CodeStream::sw(unsigned rs2, unsigned base, std::int32_t offset)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kSw, rs2, std::int64_t(base),
                      std::int64_t(offset)});
}

void
CodeStream::xorReg(unsigned rd, unsigned rs1, unsigned rs2)
{
    ++_instructions;
    _ops.push_back(Op{Kind::kXor, rd, std::int64_t(rs1),
                      std::int64_t(rs2)});
}

void
CodeStream::beq(unsigned rs1, unsigned rs2, std::size_t label)
{
    DHISQ_ASSERT(label < _labels, "unknown label ", label);
    ++_instructions;
    _ops.push_back(Op{Kind::kBeq, rs1, std::int64_t(rs2),
                      std::int64_t(label)});
}

void
CodeStream::halt()
{
    ++_instructions;
    _ops.push_back(Op{Kind::kHalt, 0, 0, 0});
}

void
CodeStream::replay(ProgramBuilder &builder) const
{
    // Labels carry no instructions, so creating them all up front (in id
    // order, matching allocation order) is emission-equivalent.
    std::vector<Label> labels;
    labels.reserve(_labels);
    for (std::size_t i = 0; i < _labels; ++i)
        labels.push_back(builder.newLabel());

    for (const Op &op : _ops) {
        switch (op.kind) {
          case Kind::kBind:
            builder.bind(labels.at(op.a));
            break;
          case Kind::kWaiti:
            builder.waiti(Cycle(op.a));
            break;
          case Kind::kCwii:
            builder.cwii(PortId(op.a), Codeword(op.b));
            break;
          case Kind::kSyncController:
            builder.syncController(ControllerId(op.a));
            break;
          case Kind::kSyncRouter:
            builder.syncRouter(RouterId(op.a), Cycle(op.b));
            break;
          case Kind::kWtrig:
            builder.wtrig(std::uint32_t(op.a));
            break;
          case Kind::kSend:
            builder.send(ControllerId(op.a), unsigned(op.b));
            break;
          case Kind::kRecv:
            builder.recv(unsigned(op.a), std::uint32_t(op.b));
            break;
          case Kind::kAndi:
            builder.andi(unsigned(op.a), unsigned(op.b),
                         std::int32_t(op.c));
            break;
          case Kind::kLw:
            builder.lw(unsigned(op.a), unsigned(op.b),
                       std::int32_t(op.c));
            break;
          case Kind::kSw:
            builder.sw(unsigned(op.a), unsigned(op.b),
                       std::int32_t(op.c));
            break;
          case Kind::kXor:
            builder.xorReg(unsigned(op.a), unsigned(op.b),
                           unsigned(op.c));
            break;
          case Kind::kBeq:
            builder.beq(unsigned(op.a), unsigned(op.b),
                        labels.at(std::size_t(op.c)));
            break;
          case Kind::kHalt:
            builder.halt();
            break;
        }
    }
    DHISQ_ASSERT(builder.size() == _instructions,
                 "CodeStream size mirror drifted from ProgramBuilder: ",
                 _instructions, " recorded vs ", builder.size(),
                 " replayed");
}

} // namespace dhisq::compiler::passes
