/**
 * @file
 * Route pass: SWAP-insertion qubit routing.
 *
 * Rewrites the lowered op stream from logical qubits into physical
 * slots against the live `place::LiveMap`. With RoutingMode::kNone the
 * rewrite is the identity (logical qubit q IS slot q) — bit-compatible
 * with the pre-pipeline compiler. With RoutingMode::kSwap the pass
 * replays the scheduler's epoch semantics over the stream and, whenever
 * a two-qubit gate's operands sit on controllers the placement could
 * not make adjacent-or-cheap — non-adjacent controllers whose timelines
 * have diverged (a same-epoch pair co-schedules for free on any shape,
 * and an adjacent pair pays only a nearby sync) — moves one operand
 * along the `Topology::cheapestPath` SWAP chain until the pair is
 * adjacent. Conditional two-qubit gates are co-located outright (the
 * scheduler requires both operands on one controller). Inserted SWAPs
 * are priced through the `place::CostModel` the placement strategies
 * optimize (`routing_swap_cost`), so a better placement directly buys
 * cheaper routing.
 *
 * Victim slots prefer empty capacity (oversubscribed/unused slots) over
 * displacing live qubits. The live map is updated per SWAP, so every
 * later pass sees routed positions; the final map and a per-measurement
 * (slot, logical) log are published for result decoding.
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class RoutePass : public Pass
{
  public:
    const char *name() const override { return "route"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
