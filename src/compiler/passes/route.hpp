/**
 * @file
 * Route pass: SWAP-insertion qubit routing.
 *
 * Rewrites the lowered op stream from logical qubits into physical
 * slots against the live `place::LiveMap`. With RoutingMode::kNone the
 * rewrite is the identity (logical qubit q IS slot q) — bit-compatible
 * with the pre-pipeline compiler. With RoutingMode::kSwap the pass
 * replays the scheduler's epoch semantics over the stream and decides,
 * per two-qubit gate whose operands sit on non-adjacent controllers
 * with diverged timelines (a same-epoch pair co-schedules for free on
 * any shape, and an adjacent pair pays only a nearby sync), how to make
 * the pair schedulable:
 *
 *  - `route_window == 1` (default): greedy — move the cheaper operand
 *    along the `Topology::cheapestPath` SWAP chain until the pair is
 *    adjacent. Bit-identical to the historical per-gate router.
 *  - `route_window > 1`: windowed joint selection — score the
 *    `Topology::kCheapestPaths` chains of either operand through the
 *    `route::CongestionMap` (static latency + time-phased link
 *    queueing) plus a decaying lookahead over the next window-1
 *    two-qubit gates, against a leave-unrouted candidate priced at the
 *    region sync the scheduler would book instead; commit the cheapest.
 *
 * Conditional two-qubit gates are co-located outright (the scheduler
 * requires both operands on one controller). Inserted SWAPs are priced
 * through the `place::CostModel` the placement strategies optimize
 * (`routing_swap_cost`); with `route_feedback` the observed per-block-
 * pair chain costs fold back into the interaction graph for one bounded
 * kl-mincut re-placement, and the cheaper of the two attempts wins.
 *
 * Multi-repetition circuits are routed per repetition until the router
 * state (live map, touched set, epoch partition) revisits a previous
 * repetition's entry state; the remaining repetitions then replay that
 * steady-state orbit (`PassContext::steady_start/steady_period`, a
 * modulo schedule) instead of being re-routed — bit-identical to naive
 * per-rep replay, which `route_steady_state = false` forces.
 *
 * Victim slots prefer empty capacity (oversubscribed/unused slots) over
 * displacing live qubits. The live map is updated per SWAP, so every
 * later pass sees routed positions; the final map and a per-measurement
 * (slot, logical) log are published for result decoding.
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class RoutePass : public Pass
{
  public:
    const char *name() const override { return "route"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
