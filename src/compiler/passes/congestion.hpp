/**
 * @file
 * Time-phased link-contention model of the windowed Route pass.
 *
 * The greedy router prices a candidate SWAP chain against static link
 * latencies, so two chains crossing the same link in the same stretch of
 * the program collide for free. `route::CongestionMap` keeps, per
 * undirected intra-layer link, the sorted occupancy intervals already
 * booked on a virtual routing timeline; a candidate hop wanting the link
 * at time t pays its queueing delay (`earliestFree(t) - t`) on top of
 * the static latency, and the winning chain `reserve`s its hops so later
 * windows see the traffic. The timeline is virtual — it orders chains
 * relative to each other, it does not model the scheduler's cycle-exact
 * timing — and it is reset at every repetition barrier so the routed
 * stream of a repetition stays a pure function of its entry state (the
 * steady-state orbit detection depends on that).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace dhisq::compiler::route {

/** Per-link occupancy intervals on the virtual routing timeline. */
class CongestionMap
{
  public:
    explicit CongestionMap(const net::Topology &topo);

    /** Drop every reservation (repetition barrier / new attempt). */
    void clear();

    /**
     * Earliest start >= `t` at which link (a, b) is free for `dur`
     * consecutive cycles. Returns `t` itself on an idle link.
     */
    Cycle earliestFree(ControllerId a, ControllerId b, Cycle t,
                       Cycle dur) const;

    /** Queueing delay of a transfer wanting [t, t+dur) on link (a, b). */
    Cycle
    queueDelay(ControllerId a, ControllerId b, Cycle t, Cycle dur) const
    {
        return earliestFree(a, b, t, dur) - t;
    }

    /** Book [t, t+dur) on link (a, b); overlapping bookings merge. */
    void reserve(ControllerId a, ControllerId b, Cycle t, Cycle dur);

    /** Number of distinct busy intervals currently booked (all links). */
    std::size_t intervalCount() const;

  private:
    struct Interval
    {
        Cycle begin = 0;
        Cycle end = 0;
    };

    /** Index of the undirected link (a, b); asserts the link exists. */
    std::size_t linkIndex(ControllerId a, ControllerId b) const;

    /** Per controller: (peer, undirected link index), generator order. */
    std::vector<std::vector<std::pair<ControllerId, std::uint32_t>>>
        _peer_index;
    /** Per link: sorted, disjoint busy intervals. */
    std::vector<std::vector<Interval>> _busy;
};

} // namespace dhisq::compiler::route
