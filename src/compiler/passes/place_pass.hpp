/**
 * @file
 * Place pass: qubit-block -> controller assignment.
 *
 * Builds the circuit's interaction graph at the effective blocking
 * factor (qubits_per_controller, widened by the oversubscribed group
 * when the Lower pass engaged it) and delegates to the `src/place`
 * strategies. The resulting PlacementPlan defines the physical slot
 * space every later pass works in.
 */
#pragma once

#include "compiler/passes/pass.hpp"

namespace dhisq::compiler::passes {

class PlacePass : public Pass
{
  public:
    const char *name() const override { return "place"; }
    Status run(PassContext &ctx) override;
};

} // namespace dhisq::compiler::passes
