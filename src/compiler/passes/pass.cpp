#include "compiler/passes/pass.hpp"

#include "compiler/passes/codegen.hpp"
#include "compiler/passes/lower.hpp"
#include "compiler/passes/place_pass.hpp"
#include "compiler/passes/route.hpp"
#include "compiler/passes/schedule.hpp"

namespace dhisq::compiler::passes {

std::vector<std::unique_ptr<Pass>>
standardPipeline()
{
    std::vector<std::unique_ptr<Pass>> pipeline;
    pipeline.push_back(std::make_unique<LowerPass>());
    pipeline.push_back(std::make_unique<PlacePass>());
    pipeline.push_back(std::make_unique<RoutePass>());
    pipeline.push_back(std::make_unique<ScheduleEpochsPass>());
    pipeline.push_back(std::make_unique<CodegenPass>());
    return pipeline;
}

Status
runPipeline(PassContext &ctx,
            const std::vector<std::unique_ptr<Pass>> &pipeline)
{
    for (const auto &pass : pipeline) {
        if (Status status = pass->run(ctx); !status) {
            return Status::error(std::string(pass->name()) + ": " +
                                 status.message());
        }
    }
    return Status::ok();
}

Status
runPipeline(PassContext &ctx)
{
    return runPipeline(ctx, standardPipeline());
}

} // namespace dhisq::compiler::passes
