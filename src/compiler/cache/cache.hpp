/**
 * @file
 * Content-addressed store of `CompiledProgram`s.
 *
 * One process-wide cache (CompileCache::global()) sits behind
 * `Compiler::tryCompile`: when a `CompilerConfig` enables caching, every
 * compile first computes the 128-bit content key (cache/key.hpp) and asks
 * the store. The store provides
 *
 *  - an in-memory LRU map (bounded, default 1024 entries);
 *  - an optional on-disk tier (`CacheMode::kDisk`): one JSON file per key
 *    under the configured directory, stamped with schema + version + key
 *    echo so stale or foreign entries are rejected and recompiled;
 *  - single-flight deduplication: concurrent requests for the same key
 *    block on the first compile instead of duplicating it;
 *  - first-class counters (lookups, hits, misses, inflight joins,
 *    evictions, disk hits/stale/writes).
 *
 * Determinism contract: the canonical key identifies circuits up to
 * dependency-preserving op reordering, so a hit may return the program of
 * a canonically-equal earlier circuit — semantically equivalent, and
 * byte-identical whenever the resubmitted circuit is the same build (the
 * case for every generator-produced workload). Compile *failures* are
 * never cached; each failing request recompiles and reports its own error.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/status.hpp"
#include "compiler/cache/key.hpp"
#include "compiler/compiler.hpp"

namespace dhisq::compiler::cache {

/** Cache statistics snapshot (all monotonic until resetStats()). */
struct CacheStats
{
    std::uint64_t lookups = 0;        ///< getOrCompile calls.
    std::uint64_t hits = 0;           ///< Served from memory.
    std::uint64_t misses = 0;         ///< Required a compile (or disk read).
    std::uint64_t inflight_joins = 0; ///< Waited on another thread's compile.
    std::uint64_t evictions = 0;      ///< LRU entries dropped.
    std::uint64_t disk_hits = 0;      ///< Misses satisfied from disk.
    std::uint64_t disk_stale = 0;     ///< Disk entries rejected (version/key).
    std::uint64_t disk_writes = 0;    ///< Entries persisted to disk.
};

/** Bounded LRU + optional disk store with single-flight compiles. */
class CompileCache
{
  public:
    /** The process-wide instance `Compiler::tryCompile` consults. */
    static CompileCache &global();

    CompileCache() = default;
    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    /**
     * Look up `key`; on a miss run `compile` (exactly once across
     * concurrent requests for the same key) and store the result.
     * `mode` must be kMemory or kDisk; `dir` is only read for kDisk.
     */
    Result<CompiledProgram>
    getOrCompile(const Hash128 &key, CacheMode mode, const std::string &dir,
                 const std::function<Result<CompiledProgram>()> &compile);

    /** Drop every cached entry (counters keep accumulating). */
    void clear();

    /** Zero the counters (entries stay cached). */
    void resetStats();

    /** Current counters. */
    CacheStats stats() const;

    /** Resize the LRU bound; evicts immediately if shrinking. */
    void setCapacity(std::size_t entries);

    /** Entries currently held in memory. */
    std::size_t size() const;

    /** Serialize one entry to the on-disk JSON form (exposed for tests). */
    static Json toJson(const Hash128 &key, const CompiledProgram &program);

    /**
     * Parse an on-disk entry; rejects wrong schema, wrong version, or a
     * key echo that does not match `key` (reported via Result error so
     * callers count it as `disk_stale` and recompile).
     */
    static Result<CompiledProgram> fromJson(const Json &doc,
                                            const Hash128 &key);

  private:
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool ok = false;
        CompiledProgram program;
        std::string error;
    };

    using LruList = std::list<std::pair<Hash128, CompiledProgram>>;

    /** Insert under _m (already locked); evicts past capacity. */
    void insertLocked(const Hash128 &key, const CompiledProgram &program);

    std::string diskPath(const std::string &dir, const Hash128 &key) const;

    mutable std::mutex _m;
    LruList _lru;
    std::unordered_map<Hash128, LruList::iterator, Hash128Hasher> _index;
    std::unordered_map<Hash128, std::shared_ptr<Inflight>, Hash128Hasher>
        _inflight;
    std::size_t _capacity = 1024;
    CacheStats _stats;
};

} // namespace dhisq::compiler::cache
