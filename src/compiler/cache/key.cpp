#include "compiler/cache/key.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace dhisq::compiler::cache {

namespace {

constexpr std::size_t kNoOp = static_cast<std::size_t>(-1);

/** Dependency metadata of one op, computed in insertion order. */
struct OpInfo
{
    /** ASAP dependency depth: 0 = no predecessor touches my operands. */
    unsigned layer = 0;
    /** Producing op (original index) of each condition bit, parallel to
     *  op.condition; kNoOp when the bit was never written. */
    std::vector<std::size_t> producers;
    /** Smallest operand qubit (unique within a layer: two ops sharing a
     *  qubit are dependency-ordered into different layers). */
    QubitId min_qubit = 0;
};

/**
 * Layer every op by its data dependencies. Ordering constraints:
 *  - ops sharing a qubit keep their relative order (gates on one qubit
 *    do not commute in general);
 *  - a condition read depends on the last write of that classical bit;
 *  - a classical-bit write depends on the previous write and on every
 *    read since it (a rewritten bit must not change earlier reads).
 * Ops with disjoint operands commute and land in the same layer
 * regardless of insertion order.
 */
std::vector<OpInfo>
layerOps(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    std::vector<OpInfo> info(ops.size());

    std::vector<std::size_t> last_on_qubit(circuit.numQubits(), kNoOp);
    // Classical bits can exceed numCbits() when ops are appended with
    // hand-set result ids; size the tables to the max referenced bit.
    CbitId max_bit = circuit.numCbits();
    for (const auto &op : ops) {
        if (op.result != kNoCbit && op.result >= max_bit)
            max_bit = op.result + 1;
        for (const CbitId b : op.condition) {
            if (b != kNoCbit && b >= max_bit)
                max_bit = b + 1;
        }
    }
    std::vector<std::size_t> last_writer(max_bit, kNoOp);
    std::vector<std::vector<std::size_t>> readers_since_write(max_bit);

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const CircuitOp &op = ops[i];
        unsigned layer = 0;
        const auto depend = [&](std::size_t dep) {
            if (dep != kNoOp)
                layer = std::max(layer, info[dep].layer + 1);
        };

        info[i].min_qubit = op.qubits.empty() ? 0 : op.qubits[0];
        for (const QubitId q : op.qubits) {
            info[i].min_qubit = std::min(info[i].min_qubit, q);
            if (q < last_on_qubit.size())
                depend(last_on_qubit[q]);
        }
        info[i].producers.reserve(op.condition.size());
        for (const CbitId b : op.condition) {
            const std::size_t producer =
                (b != kNoCbit && b < last_writer.size()) ? last_writer[b]
                                                         : kNoOp;
            info[i].producers.push_back(producer);
            depend(producer);
            if (b != kNoCbit && b < readers_since_write.size())
                readers_since_write[b].push_back(i);
        }
        if (op.result != kNoCbit && op.result < last_writer.size()) {
            depend(last_writer[op.result]);
            for (const std::size_t reader :
                 readers_since_write[op.result])
                depend(reader);
        }

        info[i].layer = layer;
        for (const QubitId q : op.qubits) {
            if (q < last_on_qubit.size())
                last_on_qubit[q] = i;
        }
        if (op.result != kNoCbit && op.result < last_writer.size()) {
            last_writer[op.result] = i;
            readers_since_write[op.result].clear();
        }
    }
    return info;
}

} // namespace

Hash128
circuitDigest(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    const std::vector<OpInfo> info = layerOps(circuit);

    // Canonical order: by layer, then by smallest operand qubit (ops in
    // one layer touch disjoint qubits, so this is a strict total order;
    // the insertion-index tiebreak is belt-and-braces determinism).
    std::vector<std::size_t> order(ops.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (info[a].layer != info[b].layer)
                      return info[a].layer < info[b].layer;
                  if (info[a].min_qubit != info[b].min_qubit)
                      return info[a].min_qubit < info[b].min_qubit;
                  return a < b;
              });

    // Renumber classical bits in canonical op order so insertion-order
    // differences in measurement numbering cancel out. Conditions are
    // remapped through their *producing op*, which is exact even when a
    // bit id is written more than once.
    std::vector<CbitId> canonical_bit_of_op(ops.size(), kNoCbit);
    CbitId next_bit = 0;
    for (const std::size_t i : order) {
        if (ops[i].result != kNoCbit)
            canonical_bit_of_op[i] = next_bit++;
    }

    Hasher128 h;
    h.str(kCacheSchema);
    h.u32(kCacheVersion);
    h.str("circuit");
    h.str(circuit.name());
    h.u32(circuit.numQubits());
    h.u64(ops.size());
    for (const std::size_t i : order) {
        const CircuitOp &op = ops[i];
        h.u32(static_cast<std::uint32_t>(op.gate));
        h.f64(op.angle);
        h.u64(op.qubits.size());
        for (const QubitId q : op.qubits)
            h.u32(q);
        h.u32(op.result == kNoCbit ? kNoCbit : canonical_bit_of_op[i]);
        // Parity conditions are XORs — order-insensitive — so the
        // remapped bits are absorbed sorted.
        std::vector<CbitId> bits;
        bits.reserve(op.condition.size());
        for (std::size_t j = 0; j < op.condition.size(); ++j) {
            const std::size_t producer = info[i].producers[j];
            bits.push_back(producer == kNoOp
                               ? op.condition[j]
                               : canonical_bit_of_op[producer]);
        }
        std::sort(bits.begin(), bits.end());
        h.u64(bits.size());
        for (const CbitId b : bits)
            h.u32(b);
    }
    return h.digest();
}

Hash128
cacheKey(const Circuit &circuit, const CompilerConfig &config,
         const net::TopologyConfig &topo)
{
    Hasher128 h;
    const Hash128 circ = circuitDigest(circuit);
    h.u64(circ.hi);
    h.u64(circ.lo);

    // Every compiler knob that steers the pipeline. The cache-control
    // fields (cache, cache_dir) are excluded on purpose: they select
    // where the result is stored, not what it is.
    h.str("compiler");
    h.u32(static_cast<std::uint32_t>(config.scheme));
    h.u32(config.qubits_per_controller);
    h.u32(static_cast<std::uint32_t>(config.placement));
    h.u32(static_cast<std::uint32_t>(config.routing));
    h.u32(config.route_window);
    h.u32(config.route_feedback ? 1u : 0u);
    h.u32(config.route_steady_state ? 1u : 0u);
    h.u64(config.gate1q);
    h.u64(config.gate2q);
    h.u64(config.measure);
    h.u64(config.feedback_margin);
    h.u64(config.pipeline_slack);
    h.u64(config.region_residual);
    h.u32(config.repetitions);
    h.u32(static_cast<std::uint32_t>(config.backend));
    h.u32(static_cast<std::uint32_t>(config.fusion));

    h.str("topology");
    h.u32(static_cast<std::uint32_t>(topo.shape));
    h.u32(topo.width);
    h.u32(topo.height);
    h.u32(topo.tree_arity);
    h.u64(topo.neighbor_latency);
    h.u64(topo.hop_latency);
    h.u64(topo.hub_latency);
    h.u32(static_cast<std::uint32_t>(topo.latency_model));
    h.u64(topo.latency_seed);
    h.u32(static_cast<std::uint32_t>(topo.clustering));

    return h.digest();
}

} // namespace dhisq::compiler::cache
