/**
 * @file
 * Content-addressed compile-cache keys.
 *
 * PR 5 made `CompiledProgram` a pure function of (circuit, CompilerConfig,
 * TopologyConfig); this file turns that triple into a 128-bit key. The
 * circuit contribution is a *canonical* serialization, stable under
 * op-insertion order: ops are layered by their data dependencies (same
 * qubit, or a classical bit flowing from a measurement into a condition),
 * sorted deterministically inside each layer, and classical bits are
 * renumbered in canonical order. Two builds of the same circuit that
 * interleave independent ops differently therefore hash equal, while any
 * semantic difference — one gate, one angle bit, one condition — changes
 * the key. Every `CompilerConfig`/`TopologyConfig` field that can steer
 * the pass pipeline is absorbed too; the cache-control fields themselves
 * (`cache`, `cache_dir`) are deliberately excluded because they do not
 * affect the compiled output.
 *
 * Key anatomy (absorption order):
 *   schema tag + version | circuit name, qubit/cbit counts |
 *   canonical op stream | compiler knobs | topology knobs
 */
#pragma once

#include "common/hash.hpp"
#include "compiler/compiler.hpp"
#include "compiler/ir.hpp"
#include "net/topology.hpp"

namespace dhisq::compiler::cache {

/** Version stamp of both the key schema and the on-disk entry format.
 *  Bump whenever CompiledProgram's layout or the pass pipeline's
 *  semantics change: old disk entries are then rejected and recompiled. */
inline constexpr std::uint32_t kCacheVersion = 1;

/** Schema tag of on-disk entries (and the key preamble). */
inline constexpr const char *kCacheSchema = "dhisq-compile-cache-v1";

/** Canonical digest of the circuit alone (insertion-order stable). */
Hash128 circuitDigest(const Circuit &circuit);

/** Full content-addressed key for one compilation. */
Hash128 cacheKey(const Circuit &circuit, const CompilerConfig &config,
                 const net::TopologyConfig &topo);

} // namespace dhisq::compiler::cache
