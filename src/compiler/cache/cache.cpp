#include "compiler/cache/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "isa/encoding.hpp"

namespace dhisq::compiler::cache {

CompileCache &
CompileCache::global()
{
    static CompileCache cache;
    return cache;
}

Result<CompiledProgram>
CompileCache::getOrCompile(
    const Hash128 &key, CacheMode mode, const std::string &dir,
    const std::function<Result<CompiledProgram>()> &compile)
{
    std::shared_ptr<Inflight> flight;
    bool leader = false;
    {
        std::unique_lock<std::mutex> lock(_m);
        ++_stats.lookups;
        if (auto it = _index.find(key); it != _index.end()) {
            ++_stats.hits;
            _lru.splice(_lru.begin(), _lru, it->second);
            return it->second->second;
        }
        if (auto fit = _inflight.find(key); fit != _inflight.end()) {
            ++_stats.inflight_joins;
            flight = fit->second;
        } else {
            ++_stats.misses;
            flight = std::make_shared<Inflight>();
            _inflight.emplace(key, flight);
            leader = true;
        }
    }

    if (!leader) {
        std::unique_lock<std::mutex> fl(flight->m);
        flight->cv.wait(fl, [&] { return flight->done; });
        if (flight->ok)
            return flight->program;
        return Result<CompiledProgram>::error(flight->error);
    }

    // Leader: probe the disk tier, fall back to a fresh compile.
    bool from_disk = false;
    bool stale_on_disk = false;
    Result<CompiledProgram> result =
        Result<CompiledProgram>::error("uncompiled");
    if (mode == CacheMode::kDisk) {
        std::ifstream in(diskPath(dir, key));
        if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            if (auto doc = Json::parse(text.str())) {
                if (auto entry = fromJson(doc.value(), key)) {
                    result = std::move(entry);
                    from_disk = true;
                } else {
                    stale_on_disk = true;
                }
            } else {
                stale_on_disk = true;
            }
        }
    }
    if (!from_disk)
        result = compile();

    bool wrote_disk = false;
    if (result && mode == CacheMode::kDisk && !from_disk) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        const std::string path = diskPath(dir, key);
        const std::string tmp = path + ".tmp";
        std::ofstream out(tmp);
        if (out) {
            out << toJson(key, result.value()).dump(2) << "\n";
            out.close();
            // Atomic publish: readers only ever see complete entries.
            std::filesystem::rename(tmp, path, ec);
            wrote_disk = !ec;
            if (!wrote_disk)
                std::filesystem::remove(tmp, ec);
        }
    }

    {
        std::unique_lock<std::mutex> lock(_m);
        if (stale_on_disk)
            ++_stats.disk_stale;
        if (from_disk)
            ++_stats.disk_hits;
        if (wrote_disk)
            ++_stats.disk_writes;
        if (result)
            insertLocked(key, result.value());
        _inflight.erase(key);
    }

    {
        std::lock_guard<std::mutex> fl(flight->m);
        flight->done = true;
        flight->ok = static_cast<bool>(result);
        if (result)
            flight->program = result.value();
        else
            flight->error = result.message();
    }
    flight->cv.notify_all();
    return result;
}

void
CompileCache::insertLocked(const Hash128 &key, const CompiledProgram &program)
{
    if (_index.contains(key))
        return;
    _lru.emplace_front(key, program);
    _index.emplace(key, _lru.begin());
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().first);
        _lru.pop_back();
        ++_stats.evictions;
    }
}

void
CompileCache::clear()
{
    std::unique_lock<std::mutex> lock(_m);
    _lru.clear();
    _index.clear();
}

void
CompileCache::resetStats()
{
    std::unique_lock<std::mutex> lock(_m);
    _stats = CacheStats{};
}

CacheStats
CompileCache::stats() const
{
    std::unique_lock<std::mutex> lock(_m);
    return _stats;
}

void
CompileCache::setCapacity(std::size_t entries)
{
    std::unique_lock<std::mutex> lock(_m);
    _capacity = entries == 0 ? 1 : entries;
    while (_lru.size() > _capacity) {
        _index.erase(_lru.back().first);
        _lru.pop_back();
        ++_stats.evictions;
    }
}

std::size_t
CompileCache::size() const
{
    std::unique_lock<std::mutex> lock(_m);
    return _lru.size();
}

std::string
CompileCache::diskPath(const std::string &dir, const Hash128 &key) const
{
    return dir + "/" + key.hex() + ".json";
}

Json
CompileCache::toJson(const Hash128 &key, const CompiledProgram &p)
{
    Json doc = Json::object();
    doc["schema"] = kCacheSchema;
    doc["version"] = kCacheVersion;
    doc["key"] = key.hex();

    Json programs = Json::array();
    for (std::size_t c = 0; c < p.programs.size(); ++c) {
        if (!p.used[c]) {
            programs.push(Json());
            continue;
        }
        const isa::Program &prog = p.programs[c];
        Json jp = Json::object();
        jp["name"] = prog.name;
        Json words = Json::array();
        for (const std::uint32_t w : prog.words)
            words.push(w);
        jp["words"] = std::move(words);
        Json lines = Json::array();
        for (const int line : prog.lines)
            lines.push(line);
        jp["lines"] = std::move(lines);
        programs.push(std::move(jp));
    }
    doc["programs"] = std::move(programs);

    Json bindings = Json::array();
    for (const Binding &b : p.bindings) {
        Json jb = Json::array();
        jb.push(b.controller);
        jb.push(b.port);
        jb.push(b.codeword);
        jb.push(static_cast<unsigned>(b.action.kind));
        jb.push(static_cast<unsigned>(b.action.gate));
        jb.push(b.action.angle);
        jb.push(b.action.q0);
        jb.push(b.action.q1);
        bindings.push(std::move(jb));
    }
    doc["bindings"] = std::move(bindings);

    Json routes = Json::array();
    for (const auto &[qubit, ctrl] : p.meas_routes) {
        Json jr = Json::array();
        jr.push(qubit);
        jr.push(ctrl);
        routes.push(std::move(jr));
    }
    doc["meas_routes"] = std::move(routes);

    Json meas_log = Json::array();
    for (const auto &[slot, logical] : p.meas_log) {
        Json jm = Json::array();
        jm.push(slot);
        jm.push(logical);
        meas_log.push(std::move(jm));
    }
    doc["meas_log"] = std::move(meas_log);

    doc["ports_per_controller"] = p.ports_per_controller;
    doc["device_qubits"] = p.device_qubits;
    doc["clifford_only"] = p.clifford_only;

    Json stats = Json::object();
    Json counters = Json::object();
    for (const auto &[name, value] : p.stats.counters())
        counters[name] = value;
    stats["counters"] = std::move(counters);
    Json scalars = Json::object();
    for (const auto &[name, s] : p.stats.scalars()) {
        Json js = Json::array();
        js.push(s.sum);
        js.push(s.min);
        js.push(s.max);
        js.push(s.samples);
        scalars[name] = std::move(js);
    }
    stats["scalars"] = std::move(scalars);
    doc["stats"] = std::move(stats);
    return doc;
}

Result<CompiledProgram>
CompileCache::fromJson(const Json &doc, const Hash128 &key)
{
    using R = Result<CompiledProgram>;
    const Json *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != kCacheSchema)
        return R::error("cache entry: wrong schema");
    const Json *version = doc.find("version");
    if (version == nullptr || !version->isInt() ||
        version->asInt() != kCacheVersion)
        return R::error("cache entry: stale version");
    const Json *echo = doc.find("key");
    if (echo == nullptr || !echo->isString() || echo->asString() != key.hex())
        return R::error("cache entry: key mismatch");

    const Json *programs = doc.find("programs");
    const Json *bindings = doc.find("bindings");
    const Json *routes = doc.find("meas_routes");
    const Json *meas_log = doc.find("meas_log");
    const Json *ports = doc.find("ports_per_controller");
    const Json *qubits = doc.find("device_qubits");
    const Json *clifford = doc.find("clifford_only");
    if (programs == nullptr || !programs->isArray() || bindings == nullptr ||
        !bindings->isArray() || routes == nullptr || !routes->isArray() ||
        meas_log == nullptr || !meas_log->isArray() || ports == nullptr ||
        !ports->isInt() || qubits == nullptr || !qubits->isInt() ||
        clifford == nullptr || !clifford->isBool())
        return R::error("cache entry: malformed body");

    CompiledProgram p;
    for (const Json &jp : programs->asArray()) {
        if (jp.isNull()) {
            p.programs.emplace_back();
            p.used.push_back(false);
            continue;
        }
        const Json *name = jp.find("name");
        const Json *words = jp.find("words");
        const Json *lines = jp.find("lines");
        if (name == nullptr || !name->isString() || words == nullptr ||
            !words->isArray() || lines == nullptr || !lines->isArray() ||
            lines->size() != words->size())
            return R::error("cache entry: malformed program");
        isa::Program prog;
        prog.name = name->asString();
        prog.words.reserve(words->size());
        prog.instructions.reserve(words->size());
        prog.lines.reserve(lines->size());
        for (const Json &w : words->asArray()) {
            if (!w.isInt())
                return R::error("cache entry: malformed word");
            const auto word = static_cast<std::uint32_t>(w.asInt());
            prog.words.push_back(word);
            prog.instructions.push_back(isa::decode(word));
        }
        for (const Json &line : lines->asArray()) {
            if (!line.isInt())
                return R::error("cache entry: malformed line table");
            prog.lines.push_back(static_cast<int>(line.asInt()));
        }
        p.programs.push_back(std::move(prog));
        p.used.push_back(true);
    }

    for (const Json &jb : bindings->asArray()) {
        if (!jb.isArray() || jb.size() != 8)
            return R::error("cache entry: malformed binding");
        Binding b;
        b.controller = static_cast<ControllerId>(jb.at(0).asInt());
        b.port = static_cast<PortId>(jb.at(1).asInt());
        b.codeword = static_cast<Codeword>(jb.at(2).asInt());
        b.action.kind = static_cast<q::ActionKind>(jb.at(3).asInt());
        b.action.gate = static_cast<q::Gate>(jb.at(4).asInt());
        b.action.angle = jb.at(5).asDouble();
        b.action.q0 = static_cast<QubitId>(jb.at(6).asInt());
        b.action.q1 = static_cast<QubitId>(jb.at(7).asInt());
        p.bindings.push_back(b);
    }

    for (const Json &jr : routes->asArray()) {
        if (!jr.isArray() || jr.size() != 2)
            return R::error("cache entry: malformed route");
        p.meas_routes.emplace_back(static_cast<QubitId>(jr.at(0).asInt()),
                                   static_cast<ControllerId>(jr.at(1).asInt()));
    }

    for (const Json &jm : meas_log->asArray()) {
        if (!jm.isArray() || jm.size() != 2)
            return R::error("cache entry: malformed meas log");
        p.meas_log.emplace_back(static_cast<QubitId>(jm.at(0).asInt()),
                                static_cast<QubitId>(jm.at(1).asInt()));
    }

    p.ports_per_controller = static_cast<unsigned>(ports->asInt());
    p.device_qubits = static_cast<unsigned>(qubits->asInt());
    p.clifford_only = clifford->asBool();

    if (const Json *stats = doc.find("stats"); stats != nullptr) {
        if (const Json *counters = stats->find("counters");
            counters != nullptr && counters->isObject()) {
            for (const auto &[name, value] : counters->asObject()) {
                if (value.isInt())
                    p.stats.setCounter(
                        name, static_cast<std::uint64_t>(value.asInt()));
            }
        }
        if (const Json *scalars = stats->find("scalars");
            scalars != nullptr && scalars->isObject()) {
            for (const auto &[name, value] : scalars->asObject()) {
                if (!value.isArray() || value.size() != 4)
                    continue;
                ScalarStat s;
                s.sum = value.at(0).asDouble();
                s.min = value.at(1).asDouble();
                s.max = value.at(2).asDouble();
                s.samples = static_cast<std::uint64_t>(value.at(3).asInt());
                p.stats.setScalar(name, s);
            }
        }
    }
    return p;
}

} // namespace dhisq::compiler::cache
