/**
 * @file
 * Figure 11 reproduction: the four qubit-calibration experiments run
 * against the analog-frontend/qubit-physics substitute for the paper's
 * superconducting test bed. Each experiment prints its data series (CSV)
 * and the fitted physical parameter, which must match the paper's values:
 * readout circle with neighbour-interference deviation (a), qubit
 * frequency 4.62 GHz (b), Rabi oscillation (c), T1 = 9.9 us (d).
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "quantum/fitting.hpp"
#include "quantum/physics.hpp"

using namespace dhisq;

int
main()
{
    q::PhysicsConfig cfg;
    cfg.f01_ghz = 4.62;
    cfg.t1_us = 9.9;
    cfg.noise = 0.01;
    q::QubitPhysics qubit(cfg, /*seed=*/2025);

    // ---- (a) Draw circle ---------------------------------------------------
    std::printf("==== Figure 11(a): draw circle (IQ locus) ====\n");
    std::printf("phase_deg,I,Q\n");
    double min_r = 1e18, max_r = 0;
    for (int deg = 0; deg < 360; deg += 15) {
        const double phi = deg * M_PI / 180.0;
        const auto p = qubit.readoutIQ(phi);
        const double r = std::hypot(p.i, p.q);
        min_r = std::min(min_r, r);
        max_r = std::max(max_r, r);
        std::printf("%d,%.1f,%.1f\n", deg, p.i, p.q);
    }
    std::printf("-> circular locus, radius %.0f..%.0f (deviation from "
                "feedline neighbours)\n\n",
                min_r, max_r);

    // ---- (b) Qubit frequency ----------------------------------------------
    std::printf("==== Figure 11(b): qubit spectroscopy ====\n");
    std::printf("freq_GHz,P(e)\n");
    std::vector<double> freqs, pops;
    const double pi_pulse_us = M_PI / (cfg.rabi_rate_per_amp * 0.5);
    for (double f = 4.52; f <= 4.72 + 1e-9; f += 0.002) {
        const double p = qubit.drivenPopulation(f, 0.5, pi_pulse_us);
        freqs.push_back(f);
        pops.push_back(p);
        std::printf("%.3f,%.4f\n", f, p);
    }
    const double f01 = q::fitPeak(freqs, pops);
    std::printf("-> fitted f01 = %.3f GHz (paper: 4.62 GHz)\n\n", f01);

    // ---- (c) Rabi oscillation ----------------------------------------------
    std::printf("==== Figure 11(c): Rabi oscillation ====\n");
    std::printf("amplitude,P(e)\n");
    std::vector<double> amps, rabi;
    const double t_us = 0.05;
    for (double a = 0.0; a <= 4.0 + 1e-9; a += 0.05) {
        const double p = qubit.drivenPopulation(cfg.f01_ghz, a, t_us);
        amps.push_back(a);
        rabi.push_back(p);
        std::printf("%.2f,%.4f\n", a, p);
    }
    const auto rabi_fit = q::fitRabi(amps, rabi, 0.5, 10.0);
    std::printf("-> Rabi rate %.3f rad/amp (expected %.3f); pi-pulse "
                "amplitude = %.3f\n\n",
                rabi_fit.omega, cfg.rabi_rate_per_amp * t_us,
                M_PI / rabi_fit.omega);

    // ---- (d) Relaxation time T1 --------------------------------------------
    std::printf("==== Figure 11(d): relaxation time (T1) ====\n");
    std::printf("delay_us,P(e)\n");
    std::vector<double> delays, decays;
    for (double d = 0.0; d <= 40.0 + 1e-9; d += 1.0) {
        const double p = qubit.decayedPopulation(1.0, d);
        delays.push_back(d);
        decays.push_back(p);
        std::printf("%.1f,%.4f\n", d, p);
    }
    const auto t1_fit = q::fitExponentialDecay(delays, decays);
    std::printf("-> fitted T1 = %.2f us (paper: 9.9 us; reference stack "
                "measured 10.2 us)\n",
                t1_fit.tau);
    return 0;
}
