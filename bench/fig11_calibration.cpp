/**
 * @file
 * Figure 11 reproduction: the four qubit-calibration experiments run
 * against the analog-frontend/qubit-physics substitute for the paper's
 * superconducting test bed. Each experiment is one sweep task whose
 * fitted physical parameter must match the paper's value: readout circle
 * with neighbour-interference deviation (a), qubit frequency 4.62 GHz
 * (b), Rabi oscillation (c), T1 = 9.9 us (d). A fit outside tolerance
 * marks the point unhealthy ("misfit") and fails the binary; --json
 * serializes the fitted values, --quick coarsens the sampling.
 */
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "quantum/fitting.hpp"
#include "quantum/physics.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

q::PhysicsConfig
paperQubit()
{
    q::PhysicsConfig cfg;
    cfg.f01_ghz = 4.62;
    cfg.t1_us = 9.9;
    cfg.noise = 0.01;
    return cfg;
}

void
check(sweep::PointResult &out, double fitted, double expected,
      double tolerance)
{
    if (std::abs(fitted - expected) > tolerance) {
        out.healthy = false;
        out.health = "misfit";
    }
}

/** (a) Readout IQ locus: a circle whose radius wobbles with interference. */
sweep::PointResult
drawCircle(int step_deg)
{
    const auto cfg = paperQubit();
    q::QubitPhysics qubit(cfg, /*seed=*/2025);
    double min_r = 1e18, max_r = 0;
    for (int deg = 0; deg < 360; deg += step_deg) {
        const double phi = deg * M_PI / 180.0;
        const auto p = qubit.readoutIQ(phi);
        const double r = std::hypot(p.i, p.q);
        min_r = std::min(min_r, r);
        max_r = std::max(max_r, r);
    }

    sweep::PointResult out;
    out.label = "fig11a/draw_circle";
    out.params["experiment"] = "draw_circle";
    out.params["step_deg"] = step_deg;
    out.metrics["radius_min"] = min_r;
    out.metrics["radius_max"] = max_r;
    // A circular locus: the interference deviation stays a fraction of
    // the radius (the paper's panel shows a mild wobble, not a blob).
    if (!(min_r > 0.0) || max_r > 2.0 * min_r) {
        out.healthy = false;
        out.health = "misfit";
    }
    return out;
}

/** (b) Spectroscopy: fitted f01 must be the paper's 4.62 GHz. */
sweep::PointResult
spectroscopy(double step_ghz)
{
    const auto cfg = paperQubit();
    q::QubitPhysics qubit(cfg, /*seed=*/2025);
    std::vector<double> freqs, pops;
    const double pi_pulse_us = M_PI / (cfg.rabi_rate_per_amp * 0.5);
    for (double f = 4.52; f <= 4.72 + 1e-9; f += step_ghz) {
        freqs.push_back(f);
        pops.push_back(qubit.drivenPopulation(f, 0.5, pi_pulse_us));
    }
    const double f01 = q::fitPeak(freqs, pops);

    sweep::PointResult out;
    out.label = "fig11b/spectroscopy";
    out.params["experiment"] = "spectroscopy";
    out.params["samples"] = (long long)freqs.size();
    out.metrics["f01_ghz"] = f01;
    out.metrics["f01_expected_ghz"] = cfg.f01_ghz;
    check(out, f01, cfg.f01_ghz, 2.5 * step_ghz);
    return out;
}

/** (c) Rabi oscillation: fitted rate and pi-pulse amplitude. */
sweep::PointResult
rabi(double step_amp)
{
    const auto cfg = paperQubit();
    q::QubitPhysics qubit(cfg, /*seed=*/2025);
    std::vector<double> amps, pops;
    const double t_us = 0.05;
    for (double a = 0.0; a <= 4.0 + 1e-9; a += step_amp) {
        amps.push_back(a);
        pops.push_back(qubit.drivenPopulation(cfg.f01_ghz, a, t_us));
    }
    const auto fit = q::fitRabi(amps, pops, 0.5, 10.0);
    const double expected = cfg.rabi_rate_per_amp * t_us;

    sweep::PointResult out;
    out.label = "fig11c/rabi";
    out.params["experiment"] = "rabi";
    out.params["samples"] = (long long)amps.size();
    out.metrics["omega_rad_per_amp"] = fit.omega;
    out.metrics["omega_expected"] = expected;
    out.metrics["pi_pulse_amp"] = M_PI / fit.omega;
    check(out, fit.omega, expected, 0.05 * expected);
    return out;
}

/** (d) Relaxation: fitted T1 must be the paper's 9.9 us. */
sweep::PointResult
relaxation(double step_us)
{
    const auto cfg = paperQubit();
    q::QubitPhysics qubit(cfg, /*seed=*/2025);
    std::vector<double> delays, pops;
    for (double d = 0.0; d <= 40.0 + 1e-9; d += step_us) {
        delays.push_back(d);
        pops.push_back(qubit.decayedPopulation(1.0, d));
    }
    const auto fit = q::fitExponentialDecay(delays, pops);

    sweep::PointResult out;
    out.label = "fig11d/t1";
    out.params["experiment"] = "t1";
    out.params["samples"] = (long long)delays.size();
    out.metrics["t1_us"] = fit.tau;
    out.metrics["t1_expected_us"] = cfg.t1_us;
    check(out, fit.tau, cfg.t1_us, 0.1 * cfg.t1_us);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const int circle_step = cli.quick ? 30 : 15;
    const double spec_step = cli.quick ? 0.004 : 0.002;
    const double rabi_step = cli.quick ? 0.1 : 0.05;
    const double t1_step = cli.quick ? 2.0 : 1.0;

    std::vector<sweep::SweepTask> tasks = {
        {"fig11a/draw_circle",
         [circle_step] { return drawCircle(circle_step); }},
        {"fig11b/spectroscopy",
         [spec_step] { return spectroscopy(spec_step); }},
        {"fig11c/rabi", [rabi_step] { return rabi(rabi_step); }},
        {"fig11d/t1", [t1_step] { return relaxation(t1_step); }},
    };

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Figure 11: qubit-calibration experiments ====\n");
    std::printf("(a) draw circle:  radius %.0f..%.0f [%s]\n",
                results[0].metrics.find("radius_min")->asDouble(),
                results[0].metrics.find("radius_max")->asDouble(),
                results[0].health.c_str());
    std::printf("(b) spectroscopy: f01 = %.3f GHz (paper: %.2f GHz) "
                "[%s]\n",
                results[1].metrics.find("f01_ghz")->asDouble(),
                results[1].metrics.find("f01_expected_ghz")->asDouble(),
                results[1].health.c_str());
    std::printf("(c) Rabi:         omega = %.3f rad/amp (expected %.3f), "
                "pi-pulse amp %.3f [%s]\n",
                results[2].metrics.find("omega_rad_per_amp")->asDouble(),
                results[2].metrics.find("omega_expected")->asDouble(),
                results[2].metrics.find("pi_pulse_amp")->asDouble(),
                results[2].health.c_str());
    std::printf("(d) relaxation:   T1 = %.2f us (paper: %.1f us; "
                "reference stack measured 10.2 us) [%s]\n",
                results[3].metrics.find("t1_us")->asDouble(),
                results[3].metrics.find("t1_expected_us")->asDouble(),
                results[3].health.c_str());

    sweep::BenchReport report;
    report.bench = "fig11_calibration";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
