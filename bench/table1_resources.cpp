/**
 * @file
 * Table 1 reproduction: FPGA resource consumption of HISQ on the control
 * and readout boards, via the calibrated linear resource model
 * (src/hwmodel). The three paper rows are reproduced exactly; the bench
 * additionally extrapolates to multi-core boards (Section 7.1) and deeper
 * event queues to show the model's scaling behaviour.
 *
 * Sweep-harness port: every table row and extrapolation cell is one sweep
 * task. The three paper rows must match the published numbers exactly —
 * a mismatch marks the point unhealthy ("mismatch") and fails the binary.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "hwmodel/resources.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

/** Paper reference row for the exact-match check. */
struct PaperRow
{
    const char *name;
    unsigned queues;
    std::uint64_t luts;
    double bram;
    std::uint64_t ffs;
};

constexpr PaperRow kPaperRows[] = {
    {"control_board", hw::kControlBoardQueues, 4155, 75.0, 6392},
    {"readout_board", hw::kReadoutBoardQueues, 2435, 45.0, 3192},
};

sweep::PointResult
paperRowPoint(const PaperRow &row)
{
    hw::ResourceModel model;
    const auto r = model.board(row.queues);

    sweep::PointResult out;
    out.label = std::string("table1/") + row.name;
    out.params["row"] = row.name;
    out.params["queues"] = row.queues;
    out.metrics["luts"] = (long long)r.luts;
    out.metrics["ffs"] = (long long)r.ffs;
    out.metrics["bram_blocks"] = r.bram_blocks;
    if (r.luts != row.luts || r.ffs != row.ffs ||
        r.bram_blocks != row.bram) {
        out.healthy = false;
        out.health = "mismatch";
    }
    return out;
}

sweep::PointResult
eventQueuePoint()
{
    hw::ResourceModel model;
    const auto q = model.event_queue;

    sweep::PointResult out;
    out.label = "table1/event_queue";
    out.params["row"] = "event_queue";
    out.metrics["luts"] = (long long)q.luts;
    out.metrics["ffs"] = (long long)q.ffs;
    out.metrics["bram_blocks"] = q.bram_blocks;
    if (q.luts != 86 || q.ffs != 160 || q.bram_blocks != 1.5) {
        out.healthy = false;
        out.health = "mismatch";
    }
    return out;
}

sweep::PointResult
multiCorePoint(unsigned cores)
{
    hw::ResourceModel model;
    const auto r = model.board(hw::kControlBoardQueues, cores);

    sweep::PointResult out;
    out.label = "extrapolate/cores" + std::to_string(cores);
    out.params["cores"] = cores;
    out.metrics["luts"] = (long long)r.luts;
    out.metrics["ffs"] = (long long)r.ffs;
    out.metrics["bram_blocks"] = r.bram_blocks;
    return out;
}

sweep::PointResult
queueDepthPoint(unsigned depth)
{
    hw::ResourceModel model;
    const auto q = model.eventQueueWithDepth(depth);

    sweep::PointResult out;
    out.label = "extrapolate/depth" + std::to_string(depth);
    out.params["depth"] = depth;
    out.metrics["luts"] = (long long)q.luts;
    out.metrics["bram_blocks"] = q.bram_blocks;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const std::vector<unsigned> core_counts = {1u, 2u, 4u, 7u};
    const std::vector<unsigned> depths = {256u, 1024u, 4096u};

    std::vector<sweep::SweepTask> tasks;
    for (const auto &row : kPaperRows) {
        tasks.push_back(sweep::SweepTask{
            std::string("table1/") + row.name,
            [&row] { return paperRowPoint(row); }});
    }
    tasks.push_back(sweep::SweepTask{"table1/event_queue", eventQueuePoint});
    for (const unsigned cores : core_counts) {
        tasks.push_back(sweep::SweepTask{
            "extrapolate/cores" + std::to_string(cores),
            [cores] { return multiCorePoint(cores); }});
    }
    for (const unsigned depth : depths) {
        tasks.push_back(sweep::SweepTask{
            "extrapolate/depth" + std::to_string(depth),
            [depth] { return queueDepthPoint(depth); }});
    }

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    hw::ResourceModel model;
    std::printf("%s\n", hw::renderTable1(model).c_str());

    std::printf("paper reference rows:\n");
    std::printf("  Control Board  4155 LUTs, 75 BRAM blocks, 6392 FFs "
                "[%s]\n",
                results[0].health.c_str());
    std::printf("  Readout Board  2435 LUTs, 45 BRAM blocks, 3192 FFs "
                "[%s]\n",
                results[1].health.c_str());
    std::printf("  Event Queue    86 LUTs, 1.5 BRAM blocks, 160 FFs "
                "[%s]\n",
                results[2].health.c_str());

    std::printf("\nExtrapolation: multi-core control boards (Section 7.1)\n");
    std::printf("%8s %10s %10s %12s\n", "cores", "#LUTs", "#FFs",
                "#BRAM(32Kb)");
    std::size_t i = 3;
    for (const unsigned cores : core_counts) {
        const auto &r = results[i++];
        std::printf("%8u %10lld %10lld %12.1f\n", cores,
                    (long long)r.metrics.find("luts")->asInt(),
                    (long long)r.metrics.find("ffs")->asInt(),
                    r.metrics.find("bram_blocks")->asDouble());
    }

    std::printf("\nExtrapolation: event-queue depth scaling\n");
    std::printf("%8s %10s %12s\n", "depth", "#LUTs", "#BRAM(32Kb)");
    for (const unsigned depth : depths) {
        const auto &r = results[i++];
        std::printf("%8u %10lld %12.2f\n", depth,
                    (long long)r.metrics.find("luts")->asInt(),
                    r.metrics.find("bram_blocks")->asDouble());
    }

    std::printf("\nSyncU cost (Section 4.1): %llu LUTs — %.3f%% of a "
                "control board\n",
                (unsigned long long)model.sync_unit.luts,
                100.0 * double(model.sync_unit.luts) /
                    double(model.board(hw::kControlBoardQueues).luts));

    sweep::BenchReport report;
    report.bench = "table1_resources";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
