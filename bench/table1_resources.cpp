/**
 * @file
 * Table 1 reproduction: FPGA resource consumption of HISQ on the control
 * and readout boards, via the calibrated linear resource model
 * (src/hwmodel). The three paper rows are reproduced exactly; the bench
 * additionally extrapolates to multi-core boards (Section 7.1) and deeper
 * event queues to show the model's scaling behaviour.
 */
#include <cstdio>

#include "hwmodel/resources.hpp"

using namespace dhisq;

int
main()
{
    hw::ResourceModel model;
    std::printf("%s\n", hw::renderTable1(model).c_str());

    std::printf("paper reference rows:\n");
    std::printf("  Control Board  4155 LUTs, 75 BRAM blocks, 6392 FFs\n");
    std::printf("  Readout Board  2435 LUTs, 45 BRAM blocks, 3192 FFs\n");
    std::printf("  Event Queue    86 LUTs, 1.5 BRAM blocks, 160 FFs\n");

    std::printf("\nExtrapolation: multi-core control boards (Section 7.1)\n");
    std::printf("%8s %10s %10s %12s\n", "cores", "#LUTs", "#FFs",
                "#BRAM(32Kb)");
    for (unsigned cores : {1u, 2u, 4u, 7u}) {
        const auto r = model.board(hw::kControlBoardQueues, cores);
        std::printf("%8u %10llu %10llu %12.1f\n", cores,
                    (unsigned long long)r.luts, (unsigned long long)r.ffs,
                    r.bram_blocks);
    }

    std::printf("\nExtrapolation: event-queue depth scaling\n");
    std::printf("%8s %10s %12s\n", "depth", "#LUTs", "#BRAM(32Kb)");
    for (unsigned depth : {256u, 1024u, 4096u}) {
        const auto q = model.eventQueueWithDepth(depth);
        std::printf("%8u %10llu %12.2f\n", depth,
                    (unsigned long long)q.luts, q.bram_blocks);
    }

    std::printf("\nSyncU cost (Section 4.1): %llu LUTs — %.3f%% of a "
                "control board\n",
                (unsigned long long)model.sync_unit.luts,
                100.0 * double(model.sync_unit.luts) /
                    double(model.board(hw::kControlBoardQueues).luts));
    return 0;
}
