/**
 * @file
 * Figures 5 and 7 reproduction: BISP timing diagrams.
 *
 * (a) Nearby synchronization — two controllers with different booking
 *     times; the table shows booking (B), Condition I, the sync-signal
 *     arrival (Condition II) and the synchronous-task commit cycle, which
 *     must be identical on both sides and equal to max(T0, T1) when the
 *     deterministic lead covers the link latency (zero overhead).
 * (b) Remote synchronization through a router — three controllers booking
 *     T0 < T1 < T2; all commit at T2.
 * (c) Figure 7's non-zero-overhead case: the booking lead D2 of the last
 *     controller is swept below the communication latency L2; the measured
 *     overhead follows max(0, L2 - D2).
 *
 * Sweep-harness port: each scenario and each lead value is one sweep task
 * (parallelized with --threads, serialized with --json). Misaligned
 * commits or overheads off the max(0, L-D) law mark the point unhealthy
 * and fail the binary.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "isa/assembler.hpp"
#include "runtime/machine.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

runtime::MachineConfig
lineConfig(unsigned n, Cycle neighbor_latency, Cycle hop_latency)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = n;
    cfg.topology.height = 1;
    cfg.topology.tree_arity = 4;
    cfg.topology.neighbor_latency = neighbor_latency;
    cfg.topology.hop_latency = hop_latency;
    cfg.device.num_qubits = n;
    cfg.ports_per_controller = 2;
    return cfg;
}

std::string
syncProgram(Cycle booking, const std::string &tgt, Cycle residual)
{
    std::string src = prefixedNumber("waiti ", booking) + "\n";
    src += "sync " + tgt;
    if (tgt[0] == 'r')
        src += prefixedNumber(", ", residual);
    src += "\nwaiti " + std::to_string(residual) + "\ncw.i.i 0, 9\nhalt\n";
    return src;
}

Cycle
commitCycle(const TelfLog &telf, const std::string &board)
{
    for (const auto &r : telf.records()) {
        if (r.kind == TelfKind::CodewordCommit && r.source == board)
            return r.cycle;
    }
    return kNoCycle;
}

Cycle
syncBookCycle(const TelfLog &telf, const std::string &core)
{
    for (const auto &r : telf.records()) {
        if (r.kind == TelfKind::SyncBook && r.source == core)
            return r.cycle;
    }
    return kNoCycle;
}

/** Figure 5(a): two controllers, nearby sync; both commit at max(T0,T1). */
sweep::PointResult
nearbyPoint()
{
    const Cycle b0 = 10, b1 = 24, res = 8, latency = 2;
    runtime::Machine m(lineConfig(2, latency, 4));
    m.loadProgram(0, isa::assembleOrDie(syncProgram(b0, "1", res)));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(b1, "0", res)));
    const auto run = m.run();

    sweep::PointResult out;
    out.label = "fig5a/nearby";
    out.params["scenario"] = "nearby";
    out.params["latency"] = latency;
    const Cycle expect = std::max(b0, b1) + res;
    Cycle commits[2];
    for (unsigned c = 0; c < 2; ++c) {
        const std::string core = prefixedNumber("C", c);
        commits[c] = commitCycle(m.telf(), prefixedNumber("B", c));
        out.metrics[prefixedNumber("booking_c", c)] =
            syncBookCycle(m.telf(), core);
        out.metrics[prefixedNumber("commit_c", c)] = commits[c];
    }
    out.metrics["expected_commit"] = expect;
    out.metrics["events"] = run.events_executed;
    if (run.deadlock) {
        out.healthy = false;
        out.health = "deadlock";
    } else if (commits[0] != commits[1] || commits[0] != expect) {
        out.healthy = false;
        out.health = "misaligned";
    }
    return out;
}

/** Figure 5(b): three controllers sync via the root router. */
sweep::PointResult
remotePoint()
{
    const Cycle bookings[3] = {10, 22, 34};
    const Cycle res = 40;
    runtime::Machine m(lineConfig(3, 2, 4));
    for (unsigned c = 0; c < 3; ++c) {
        m.loadProgram(c, isa::assembleOrDie(
                             syncProgram(bookings[c], "r0", res)));
    }
    const auto run = m.run();

    sweep::PointResult out;
    out.label = "fig5b/remote";
    out.params["scenario"] = "remote";
    const Cycle expect = bookings[2] + res; // T_m = max(T_i)
    bool aligned = true;
    for (unsigned c = 0; c < 3; ++c) {
        const Cycle commit = commitCycle(m.telf(), prefixedNumber("B", c));
        out.metrics[prefixedNumber("commit_c", c)] = commit;
        aligned = aligned && commit == expect;
    }
    out.metrics["expected_commit"] = expect;
    out.metrics["events"] = run.events_executed;
    if (run.deadlock) {
        out.healthy = false;
        out.health = "deadlock";
    } else if (!aligned) {
        out.healthy = false;
        out.health = "misaligned";
    }
    return out;
}

/** Figure 7: one lead value D against link latency L; overhead = L - D. */
sweep::PointResult
leadPoint(Cycle lead, Cycle latency)
{
    // The compiler pads the residual to at least N; the pad is the
    // overhead L - D when D < L.
    const Cycle res = std::max(lead, latency);
    runtime::Machine m(lineConfig(2, latency, 4));
    m.loadProgram(0, isa::assembleOrDie(syncProgram(100, "1", res)));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(100, "0", res)));
    const auto run = m.run();

    const Cycle actual = commitCycle(m.telf(), "B0");
    const Cycle ideal = 100 + lead;
    const long long overhead = (long long)actual - (long long)ideal;
    const long long expect =
        lead < latency ? (long long)(latency - lead) : 0;

    sweep::PointResult out;
    out.label = "fig7/lead" + std::to_string(lead);
    out.params["scenario"] = "lead_sweep";
    out.params["lead"] = lead;
    out.params["latency"] = latency;
    out.metrics["ideal"] = ideal;
    out.metrics["actual"] = actual;
    out.metrics["overhead_cycles"] = overhead;
    out.metrics["events"] = run.events_executed;
    if (run.deadlock) {
        out.healthy = false;
        out.health = "deadlock";
    } else if (overhead != expect) {
        // Zero-cycle overhead iff D >= L (Section 4.4) must hold exactly.
        out.healthy = false;
        out.health = "off-law";
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const Cycle fig7_latency = 8;
    const Cycle max_lead = cli.quick ? 6 : 12;

    std::vector<sweep::SweepTask> tasks;
    tasks.push_back(sweep::SweepTask{"fig5a/nearby", nearbyPoint});
    tasks.push_back(sweep::SweepTask{"fig5b/remote", remotePoint});
    for (Cycle lead = 1; lead <= max_lead; ++lead) {
        tasks.push_back(sweep::SweepTask{
            "fig7/lead" + std::to_string(lead),
            [lead, fig7_latency] { return leadPoint(lead, fig7_latency); }});
    }

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Figure 5(a): nearby synchronization (N = 2) ====\n");
    {
        const auto &r = results[0];
        for (unsigned c = 0; c < 2; ++c) {
            std::printf("C%u: booking=%lld commit=%lld\n", c,
                        (long long)r.metrics
                            .find(prefixedNumber("booking_c", c))
                            ->asInt(),
                        (long long)r.metrics
                            .find(prefixedNumber("commit_c", c))
                            ->asInt());
        }
        std::printf("both commit at max(T0, T1) = %lld -> zero-cycle "
                    "overhead [%s]\n\n",
                    (long long)r.metrics.find("expected_commit")->asInt(),
                    r.health.c_str());
    }

    std::printf("==== Figure 5(b): remote synchronization via router ====\n");
    {
        const auto &r = results[1];
        for (unsigned c = 0; c < 3; ++c) {
            std::printf("C%u: commit=%lld\n", c,
                        (long long)r.metrics
                            .find(prefixedNumber("commit_c", c))
                            ->asInt());
        }
        std::printf("all commit at T_m = max(T_i) = %lld [%s]\n\n",
                    (long long)r.metrics.find("expected_commit")->asInt(),
                    r.health.c_str());
    }

    std::printf("==== Figure 7: sync overhead vs deterministic lead ====\n");
    std::printf("(two controllers, link latency L = %llu; lead D swept)\n",
                (unsigned long long)fig7_latency);
    std::printf("%6s %12s %12s %14s\n", "D", "ideal", "actual",
                "overhead(L-D)");
    for (std::size_t i = 2; i < results.size(); ++i) {
        const auto &r = results[i];
        std::printf("%6lld %12lld %12lld %14lld\n",
                    (long long)r.params.find("lead")->asInt(),
                    (long long)r.metrics.find("ideal")->asInt(),
                    (long long)r.metrics.find("actual")->asInt(),
                    (long long)r.metrics.find("overhead_cycles")->asInt());
    }
    std::printf("zero-cycle overhead iff D >= L "
                "(max(B_i + L_i) = max(T_i), Section 4.4)\n");

    sweep::BenchReport report;
    report.bench = "fig5_bisp_timing";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["fig7_latency"] = fig7_latency;
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
