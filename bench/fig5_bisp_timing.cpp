/**
 * @file
 * Figures 5 and 7 reproduction: BISP timing diagrams.
 *
 * (a) Nearby synchronization — two controllers with different booking
 *     times; the table shows booking (B), Condition I, the sync-signal
 *     arrival (Condition II) and the synchronous-task commit cycle, which
 *     must be identical on both sides and equal to max(T0, T1) when the
 *     deterministic lead covers the link latency (zero overhead).
 * (b) Remote synchronization through a router — three controllers booking
 *     T0 < T1 < T2; all commit at T2.
 * (c) Figure 7's non-zero-overhead case: the booking lead D2 of the last
 *     controller is swept below the communication latency L2; the measured
 *     overhead follows max(0, L2 - D2).
 */
#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

namespace {

runtime::MachineConfig
lineConfig(unsigned n, Cycle neighbor_latency, Cycle hop_latency)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = n;
    cfg.topology.height = 1;
    cfg.topology.tree_arity = 4;
    cfg.topology.neighbor_latency = neighbor_latency;
    cfg.topology.hop_latency = hop_latency;
    cfg.device.num_qubits = n;
    cfg.ports_per_controller = 2;
    return cfg;
}

std::string
syncProgram(Cycle booking, const std::string &tgt, Cycle residual)
{
    std::string src = prefixedNumber("waiti ", booking) + "\n";
    src += "sync " + tgt;
    if (tgt[0] == 'r')
        src += prefixedNumber(", ", residual);
    src += "\nwaiti " + std::to_string(residual) + "\ncw.i.i 0, 9\nhalt\n";
    return src;
}

Cycle
commitCycle(const TelfLog &telf, const std::string &board)
{
    for (const auto &r : telf.records()) {
        if (r.kind == TelfKind::CodewordCommit && r.source == board)
            return r.cycle;
    }
    return kNoCycle;
}

Cycle
syncBookCycle(const TelfLog &telf, const std::string &core)
{
    for (const auto &r : telf.records()) {
        if (r.kind == TelfKind::SyncBook && r.source == core)
            return r.cycle;
    }
    return kNoCycle;
}

} // namespace

int
main()
{
    // ---- Figure 5(a): nearby synchronization ------------------------------
    std::printf("==== Figure 5(a): nearby synchronization (N = 2) ====\n");
    std::printf("%6s %10s %10s %10s %10s\n", "ctrl", "booking", "cond_I",
                "T_i", "commit");
    {
        const Cycle b0 = 10, b1 = 24, res = 8, latency = 2;
        runtime::Machine m(lineConfig(2, latency, 4));
        m.loadProgram(0, isa::assembleOrDie(syncProgram(b0, "1", res)));
        m.loadProgram(1, isa::assembleOrDie(syncProgram(b1, "0", res)));
        m.run();
        for (unsigned c = 0; c < 2; ++c) {
            const std::string core = prefixedNumber("C", c);
            const Cycle book = syncBookCycle(m.telf(), core);
            const Cycle commit =
                commitCycle(m.telf(), prefixedNumber("B", c));
            std::printf("%6s %10llu %10llu %10llu %10llu\n", core.c_str(),
                        (unsigned long long)book,
                        (unsigned long long)(book + latency),
                        (unsigned long long)(book + res),
                        (unsigned long long)commit);
        }
        std::printf("both commit at max(T0, T1) = %llu -> zero-cycle "
                    "overhead\n\n",
                    (unsigned long long)(std::max(b0, b1) + res));
    }

    // ---- Figure 5(b): remote synchronization -------------------------------
    std::printf("==== Figure 5(b): remote synchronization via router ====\n");
    std::printf("%6s %10s %10s %10s\n", "ctrl", "booking", "T_i", "commit");
    {
        const Cycle bookings[3] = {10, 22, 34};
        const Cycle res = 40;
        runtime::Machine m(lineConfig(3, 2, 4));
        for (unsigned c = 0; c < 3; ++c) {
            m.loadProgram(c, isa::assembleOrDie(
                                 syncProgram(bookings[c], "r0", res)));
        }
        m.run();
        for (unsigned c = 0; c < 3; ++c) {
            const Cycle commit =
                commitCycle(m.telf(), prefixedNumber("B", c));
            std::printf("%6s %10llu %10llu %10llu\n",
                        (prefixedNumber("C", c)).c_str(),
                        (unsigned long long)bookings[c],
                        (unsigned long long)(bookings[c] + res),
                        (unsigned long long)commit);
        }
        std::printf("all commit at T_m = max(T_i) = %llu\n\n",
                    (unsigned long long)(bookings[2] + res));
    }

    // ---- Figure 7: overhead when the booking lead is too small -------------
    std::printf("==== Figure 7: sync overhead vs deterministic lead ====\n");
    std::printf("(two controllers, link latency L = 8; lead D swept)\n");
    std::printf("%6s %12s %12s %14s\n", "D", "ideal", "actual",
                "overhead(L-D)");
    {
        const Cycle latency = 8;
        for (Cycle lead = 1; lead <= 12; ++lead) {
            // The compiler pads the residual to at least N; the pad is the
            // overhead L - D when D < L.
            const Cycle res = std::max(lead, latency);
            runtime::Machine m(lineConfig(2, latency, 4));
            m.loadProgram(0,
                          isa::assembleOrDie(syncProgram(100, "1", res)));
            m.loadProgram(1,
                          isa::assembleOrDie(syncProgram(100, "0", res)));
            m.run();
            const Cycle actual = commitCycle(m.telf(), "B0");
            const Cycle ideal = 100 + lead;
            std::printf("%6llu %12llu %12llu %14lld\n",
                        (unsigned long long)lead,
                        (unsigned long long)ideal,
                        (unsigned long long)actual,
                        (long long)(actual - ideal));
        }
        std::printf("zero-cycle overhead iff D >= L "
                    "(max(B_i + L_i) = max(T_i), Section 4.4)\n");
    }
    return 0;
}
