/**
 * @file
 * Compile/run job-service throughput under a zipf request mix — the
 * acceptance bench of the content-addressed compile cache (PR 8).
 *
 * A catalog of distinct jobs (a VQE parameter sweep plus a few structural
 * outliers) is sampled with a seeded zipf distribution into request
 * batches of increasing size — the canonical service workload: a handful
 * of hot programs resubmitted over and over, a long tail of cold ones.
 * Every batch runs twice through a service::JobServer, cache off and
 * cache on, and the bench reports
 *
 *  - sustained requests/second for both paths (wall time, stored under
 *    UNTRACKED metric keys like backend_kernels' — bench_compare never
 *    thresholds them);
 *  - the cache-hit ratio as a first-class deterministic metric (single-
 *    flight dedup makes `distinct compiles` scheduling-independent);
 *  - a byte-identical check: the concatenated per-job measurement-record
 *    streams of the cache-off and cache-on runs must match exactly.
 *
 * Health gate (the committed-baseline regression bar): at the LARGEST
 * mix the cache-on path must beat cache-off by kSpeedupFloor outright,
 * and every mix's results must be byte-identical across cache modes.
 * Wall noise cannot flip the speedup at the largest mix — the hot set is
 * compiled once instead of hundreds of times.
 *
 * Like backend_kernels this binary times its batches serially (one mode
 * at a time); --threads sets the JobServer's worker pool, which both
 * modes share equally.
 *
 * `--cache <mode> --results <path>` runs a single mode and writes the
 * deterministic per-job results artifact; CI invokes it once per mode
 * and byte-compares the two files.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/job_server.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

namespace {

/** Minimum cache-on/cache-off speedup at the largest mix. The hot set's
 *  compiles vanish entirely, so the real margin is far above this. */
constexpr double kSpeedupFloor = 1.05;

/** Zipf exponent of the request mix (rank 0 hottest). */
constexpr double kZipfExponent = 1.1;

std::vector<service::JobRequest>
buildCatalog(bool quick)
{
    // Mostly a VQE parameter sweep — near-identical circuits, fresh
    // angles per iteration — plus structural outliers so the service
    // sees more than one compilation shape. Placement + routing are the
    // expensive pipeline knobs: kl-mincut partitioning and SWAP
    // insertion both do real work per compile, which is exactly what
    // the cache amortizes.
    std::vector<service::JobRequest> catalog;
    const unsigned iterations = quick ? 6 : 10;
    for (unsigned i = 0; i < iterations; ++i) {
        service::JobRequest req;
        req.circuit.kind = sweep::CircuitSpec::Kind::kVqeSweep;
        req.circuit.vqe.qubits = quick ? 10 : 12;
        req.circuit.vqe.layers = 3;
        req.circuit.vqe.iteration = i;
        req.config.placement = place::PlacementStrategy::kKlMincut;
        req.config.routing = compiler::RoutingMode::kSwap;
        catalog.push_back(req);
    }
    {
        service::JobRequest req;
        req.circuit.kind = sweep::CircuitSpec::Kind::kGhzFanout;
        req.circuit.qubits = quick ? 10 : 12;
        req.circuit.expand_fraction = 1.0;
        req.config.placement = place::PlacementStrategy::kKlMincut;
        catalog.push_back(req);
    }
    {
        service::JobRequest req;
        req.circuit.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        req.circuit.random.qubits = quick ? 10 : 12;
        req.circuit.random.layers = quick ? 8 : 12;
        req.config.routing = compiler::RoutingMode::kSwap;
        catalog.push_back(req);
    }
    return catalog;
}

/** Seeded zipf sample over catalog ranks: p(rank) ~ 1/(rank+1)^s. */
std::vector<std::size_t>
zipfSample(std::size_t catalog_size, std::size_t count, std::uint64_t seed)
{
    std::vector<double> cdf(catalog_size);
    double total = 0.0;
    for (std::size_t rank = 0; rank < catalog_size; ++rank) {
        total += 1.0 / std::pow(double(rank + 1), kZipfExponent);
        cdf[rank] = total;
    }
    Rng rng(seed);
    std::vector<std::size_t> picks;
    picks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double u = rng.uniform() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        picks.push_back(std::size_t(it - cdf.begin()));
    }
    return picks;
}

/** Deterministic serialization of a batch's results, request order. */
std::string
resultsDoc(const std::vector<service::JobResult> &results)
{
    Json doc = Json::object();
    doc["schema"] = "dhisq-service-results-v1";
    Json jobs = Json::array();
    for (const auto &r : results)
        jobs.push(r.toJson());
    doc["jobs"] = std::move(jobs);
    return doc.dump(2) + "\n";
}

struct ModeRun
{
    double seconds = 0.0;
    double hit_ratio = 0.0;
    std::uint64_t compiles = 0;
    std::string results;
    bool all_ok = true;
};

ModeRun
runBatch(const std::vector<service::JobRequest> &batch,
         compiler::CacheMode mode, unsigned threads)
{
    // Every mode starts cold: the store is process-global, so leftover
    // entries from the previous mix would turn misses into hits.
    compiler::cache::CompileCache::global().clear();

    service::JobServer::Options so;
    so.threads = threads;
    so.cache = mode;
    so.verify_points = 0; // re-running leading jobs would skew the clock
    service::JobServer server(so);

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const auto results = server.submit(batch);
    const auto t1 = clock::now();

    ModeRun out;
    out.seconds =
        double(std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                   .count()) /
        1e6;
    const auto report = server.benchReport("throughput_service");
    out.hit_ratio = report.derived.find("cache_hit_ratio")->asDouble();
    out.compiles = std::uint64_t(
        report.derived.find("cache_compiles")->asInt());
    out.results = resultsDoc(results);
    for (const auto &r : results)
        out.all_ok = out.all_ok && r.ok;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    std::vector<service::JobRequest> catalog = buildCatalog(cli.quick);
    // --fusion: run the catalog functionally (state-vector devices) under
    // the given lazy-fusion mode, so the per-job measurement streams
    // actually exercise the fusion tier. CI invokes the bench once per
    // mode and byte-compares the --results artifacts (the same pattern
    // as the cache-mode determinism check).
    if (!cli.fusions.empty()) {
        for (auto &req : catalog) {
            req.state_vector = true;
            req.config.fusion = cli.fusions.back();
        }
    }
    const std::vector<std::size_t> mixes =
        cli.quick ? std::vector<std::size_t>{24, 96}
                  : std::vector<std::size_t>{64, 256};

    // Default axis: the off-vs-memory comparison the health gate needs.
    std::vector<compiler::CacheMode> modes = cli.cache_modes;
    if (modes.empty())
        modes = {compiler::CacheMode::kOff, compiler::CacheMode::kMemory};

    if (cli.list) {
        for (const std::size_t mix : mixes) {
            for (const auto mode : modes)
                std::printf("mix%zu/cache-%s\n", mix,
                            compiler::toString(mode));
        }
        return 0;
    }

    std::printf("==== job-service throughput: zipf mix, cache off/on ====\n");
    std::printf("(catalog: %zu distinct jobs, zipf s=%.2f, %u workers)\n",
                catalog.size(), kZipfExponent, cli.threads);
    std::printf("%-20s %10s %12s %10s %9s\n", "point", "requests",
                "reqs/sec", "hit-ratio", "compiles");

    std::vector<sweep::PointResult> points;
    bool results_written = false;
    for (const std::size_t mix : mixes) {
        const auto picks = zipfSample(catalog.size(), mix, /*seed=*/2025);
        std::vector<service::JobRequest> batch;
        batch.reserve(mix);
        for (std::size_t j = 0; j < picks.size(); ++j) {
            service::JobRequest req = catalog[picks[j]];
            req.id = "req" + std::to_string(j) + "/" + req.circuit.id();
            batch.push_back(std::move(req));
        }

        std::vector<ModeRun> runs;
        for (const auto mode : modes)
            runs.push_back(runBatch(batch, mode, cli.threads));

        const bool largest = mix == mixes.back();
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const ModeRun &run = runs[m];
            const double rps =
                run.seconds > 0.0 ? double(mix) / run.seconds : 0.0;

            sweep::PointResult out;
            out.label = "mix" + std::to_string(mix) + "/cache-" +
                        compiler::toString(modes[m]);
            out.params["mix"] = mix;
            out.params["cache"] = compiler::toString(modes[m]);
            out.params["catalog"] = catalog.size();
            out.metrics["requests"] = mix;
            out.metrics["cache_hit_ratio"] = run.hit_ratio;
            out.metrics["cache_compiles"] = run.compiles;
            // Wall-clock rates: untracked keys, never thresholded.
            out.metrics["reqs_per_sec"] = rps;

            if (!run.all_ok) {
                out.healthy = false;
                out.health = "job-failed";
            } else if (run.results != runs[0].results) {
                // The determinism bar: per-job outcomes (measurement
                // streams included) must not depend on the cache mode.
                out.healthy = false;
                out.health = "results-mismatch";
            } else if (largest && modes[m] == compiler::CacheMode::kOff &&
                       modes.size() > 1) {
                // The perf bar lives on the largest mix's off-point so a
                // missing speedup is visible exactly once: cache-on must
                // beat this wall time by the floor.
                const ModeRun *on = nullptr;
                for (std::size_t k = 0; k < modes.size(); ++k) {
                    if (modes[k] != compiler::CacheMode::kOff)
                        on = &runs[k];
                }
                if (on != nullptr &&
                    !(run.seconds > on->seconds * kSpeedupFloor)) {
                    out.healthy = false;
                    out.health = "cache-not-faster";
                }
            }
            points.push_back(out);
            std::printf("%-20s %10zu %12.1f %10.3f %9llu%s\n",
                        out.label.c_str(), mix, rps, run.hit_ratio,
                        static_cast<unsigned long long>(run.compiles),
                        out.healthy ? "" : "  [REGRESSION]");
        }

        if (largest && !cli.results_path.empty()) {
            // Deterministic results artifact of the largest mix (first
            // mode's run; all modes are byte-identical or unhealthy).
            std::FILE *f = std::fopen(cli.results_path.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot write %s\n",
                             cli.results_path.c_str());
                return 1;
            }
            std::fwrite(runs[0].results.data(), 1, runs[0].results.size(),
                        f);
            std::fclose(f);
            results_written = true;
        }
    }
    (void)results_written;

    sweep::BenchReport report;
    report.bench = "throughput_service";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["catalog"] = catalog.size();
    report.config["zipf_exponent"] = kZipfExponent;
    report.config["speedup_floor"] = kSpeedupFloor;
    report.config["threads"] = cli.threads;
    if (!cli.fusions.empty())
        report.config["fusion"] = q::toString(cli.fusions.back());
    report.points = points;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
