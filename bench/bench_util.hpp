/**
 * @file
 * Shared helpers for the figure/table reproduction benches: compile a
 * circuit under a given sync scheme, run it on a matching machine and
 * report the end-to-end execution time plus health counters.
 */
#pragma once

#include <cstdio>
#include <string>

#include "compiler/compiler.hpp"
#include "net/topology.hpp"
#include "quantum/noise.hpp"
#include "runtime/machine.hpp"

namespace dhisq::bench {

/** Result of one compiled-and-simulated execution. */
struct ExecResult
{
    Cycle makespan = 0;
    double makespan_us = 0.0;
    std::uint64_t violations = 0;       ///< timing slips + coincidence
    std::uint64_t coincidence = 0;      ///< two-qubit half misalignments
    std::uint64_t syncs = 0;
    bool deadlock = false;
    /** Per-qubit live-window activity for the fidelity model. */
    q::ActivityTracker activity{0};
    std::uint64_t events = 0;
};

/** Standard line-topology config for n controllers. */
inline net::TopologyConfig
lineTopology(unsigned controllers)
{
    net::TopologyConfig topo;
    topo.width = controllers;
    topo.height = 1;
    topo.tree_arity = 4;
    topo.neighbor_latency = 2;
    topo.hop_latency = 4;
    return topo;
}

/** Compile + run with an explicit compiler configuration. */
inline ExecResult
executeWith(const compiler::Circuit &circuit,
            const compiler::CompilerConfig &cc, bool state_vector = false,
            std::uint64_t seed = 1)
{
    const unsigned controllers =
        (circuit.numQubits() + cc.qubits_per_controller - 1) /
        cc.qubits_per_controller;
    const auto topo_cfg = lineTopology(controllers);
    net::Topology topo = net::Topology::grid(topo_cfg);

    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);

    auto mc = compiler::machineConfigFor(topo_cfg, cc, circuit.numQubits(),
                                         state_vector, seed);
    mc.fabric.star_messages =
        (cc.scheme == compiler::SyncScheme::kLockStep);
    runtime::Machine machine(mc);
    compiled.applyTo(machine);

    const auto report = machine.run();
    ExecResult result;
    result.makespan = report.makespan;
    result.makespan_us = cyclesToNs(report.makespan) / 1000.0;
    result.violations =
        report.timing_violations + report.coincidence_violations;
    result.coincidence = report.coincidence_violations;
    result.syncs = report.syncs_completed;
    result.deadlock = report.deadlock;
    result.activity = machine.device().activity();
    result.events = report.events_executed;
    return result;
}

/**
 * Compile `circuit` for `scheme` with default knobs and execute it.
 * @param state_vector functional device (small circuits only).
 */
inline ExecResult
execute(const compiler::Circuit &circuit, compiler::SyncScheme scheme,
        bool state_vector = false, std::uint64_t seed = 1,
        unsigned qubits_per_controller = 1)
{
    compiler::CompilerConfig cc;
    cc.scheme = scheme;
    cc.qubits_per_controller = qubits_per_controller;
    return executeWith(circuit, cc, state_vector, seed);
}

/** Print a separator headline. */
inline void
headline(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace dhisq::bench
