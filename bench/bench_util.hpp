/**
 * @file
 * Shared presentation helpers for the figure/table reproduction benches.
 * The execution logic that used to live here was promoted into the sweep
 * library (src/sweep/exec.hpp) so the parallel sweep harness, the tests
 * and the bench binaries share one definition.
 */
#pragma once

#include <cstdio>
#include <string>

namespace dhisq::bench {

/** Print a separator headline. */
inline void
headline(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace dhisq::bench
