/**
 * @file
 * Ablation B: region-synchronization latency across the inter-layer tree
 * design space (Section 5.1): tree arity (height), booking lead, and the
 * router notification policy (paper's T_m broadcast vs the robust
 * worst-arrival guard). Measures the wall-clock release time of a global
 * region sync relative to the theoretical earliest start.
 */
#include <cstdio>
#include <string>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

namespace {

/** Run one region-sync storm; return (commit - ideal) overhead. */
long long
regionOverhead(unsigned controllers, unsigned arity, Cycle residual,
               net::RouterPolicy policy)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = controllers;
    cfg.topology.height = 1;
    cfg.topology.tree_arity = arity;
    cfg.topology.neighbor_latency = 2;
    cfg.topology.hop_latency = 4;
    cfg.fabric.policy = policy;
    cfg.device.num_qubits = controllers;
    cfg.device.state_vector = false; // timing-only run
    cfg.ports_per_controller = 1;
    runtime::Machine m(cfg);

    const net::Topology &topo = m.topology();
    const RouterId root = topo.rootRouter();

    Cycle ideal = 0;
    for (unsigned c = 0; c < controllers; ++c) {
        const Cycle booking = 10 + 3 * c;
        ideal = std::max(ideal, booking + residual);
        std::string src = "waiti " + std::to_string(booking) + "\n";
        src += "sync r" + std::to_string(root) + ", " +
               std::to_string(residual) + "\n";
        src += "waiti " + std::to_string(residual) + "\n";
        src += "cw.i.i 0, 9\nhalt\n";
        m.loadProgram(c, isa::assembleOrDie(src));
    }
    m.run();

    Cycle commit = 0;
    bool aligned = true;
    Cycle first = kNoCycle;
    for (const auto &r : m.telf().records()) {
        if (r.kind != TelfKind::CodewordCommit)
            continue;
        if (first == kNoCycle)
            first = r.cycle;
        aligned = aligned && (r.cycle == first);
        commit = std::max(commit, r.cycle);
    }
    if (!aligned)
        return -1; // cycle alignment broken — must never happen
    return (long long)commit - (long long)ideal;
}

} // namespace

int
main()
{
    std::printf("==== Ablation: region sync vs tree arity ====\n");
    std::printf("(64 controllers; overhead = release - max(T_i); lead "
                "residual swept)\n");
    std::printf("%6s %6s | %22s | %22s\n", "arity", "height",
                "lead=16 paper/robust", "lead=96 paper/robust");
    for (unsigned arity : {2u, 4u, 8u, 16u}) {
        runtime::MachineConfig probe;
        probe.topology.width = 64;
        probe.topology.tree_arity = arity;
        net::Topology topo = net::Topology::grid(probe.topology);
        const unsigned height = topo.maxDepthBelow(topo.rootRouter());

        long long small_p =
            regionOverhead(64, arity, 16, net::RouterPolicy::Paper);
        long long small_r =
            regionOverhead(64, arity, 16, net::RouterPolicy::Robust);
        long long big_p =
            regionOverhead(64, arity, 96, net::RouterPolicy::Paper);
        long long big_r =
            regionOverhead(64, arity, 96, net::RouterPolicy::Robust);
        std::printf("%6u %6u | %10lld %11lld | %10lld %11lld\n", arity,
                    height, small_p, small_r, big_p, big_r);
    }
    std::printf("\nTaller trees (small arity) add hop latency that a small "
                "booking lead cannot hide;\nwith a generous lead every "
                "configuration reaches zero-cycle overhead (Section 4.4)."
                "\nBoth policies stay cycle-aligned; `robust` simply "
                "guarantees it by construction.\n");

    std::printf("\n==== Scaling: controllers vs region-sync overhead "
                "(arity 4, lead 16) ====\n");
    std::printf("%12s %10s\n", "controllers", "overhead");
    for (unsigned n : {4u, 16u, 64u, 256u}) {
        std::printf("%12u %10lld\n", n,
                    regionOverhead(n, 4, 16, net::RouterPolicy::Robust));
    }
    return 0;
}
