/**
 * @file
 * Ablation B: the interconnect design space.
 *
 * Part 1 — topology shapes. One declarative GridSpec sweeps a feedback-
 * heavy dynamic workload across every `net::TopologyShape` (line, grid,
 * ring, torus, heavy_hex, star) under BISP and demand sync. Shapes that
 * lack the edge between communicating controllers pay subtree region
 * syncs instead of nearby bounces, which is precisely the latency the
 * paper's "only the controllers that must agree ever stall" claim saves
 * on richer graphs. `--topology <shape>` restricts the axis.
 *
 * Part 2 — region-synchronization latency across the inter-layer tree
 * design space (Section 5.1): tree arity (height), booking lead, and the
 * router notification policy (paper's T_m broadcast vs the robust
 * worst-arrival guard). Measures the wall-clock release time of a global
 * region sync relative to the theoretical earliest start.
 *
 * Every cell is a sweep task (parallelized with --threads, serialized
 * with --json). A broken cycle alignment marks a point unhealthy
 * ("misaligned") and fails the binary.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"
#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

/** Run one region-sync storm; report (commit - ideal) overhead. */
sweep::PointResult
regionOverhead(unsigned controllers, unsigned arity, Cycle residual,
               net::RouterPolicy policy)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = controllers;
    cfg.topology.height = 1;
    cfg.topology.tree_arity = arity;
    cfg.topology.neighbor_latency = 2;
    cfg.topology.hop_latency = 4;
    cfg.fabric.policy = policy;
    cfg.device.num_qubits = controllers;
    cfg.device.state_vector = false; // timing-only run
    cfg.ports_per_controller = 1;
    runtime::Machine m(cfg);

    const net::Topology &topo = m.topology();
    const RouterId root = topo.rootRouter();

    Cycle ideal = 0;
    for (unsigned c = 0; c < controllers; ++c) {
        const Cycle booking = 10 + 3 * c;
        ideal = std::max(ideal, booking + residual);
        std::string src = "waiti " + std::to_string(booking) + "\n";
        src += "sync r" + std::to_string(root) + ", " +
               std::to_string(residual) + "\n";
        src += "waiti " + std::to_string(residual) + "\n";
        src += "cw.i.i 0, 9\nhalt\n";
        m.loadProgram(c, isa::assembleOrDie(src));
    }
    const auto run_report = m.run();

    Cycle commit = 0;
    bool aligned = true;
    Cycle first = kNoCycle;
    for (const auto &r : m.telf().records()) {
        if (r.kind != TelfKind::CodewordCommit)
            continue;
        if (first == kNoCycle)
            first = r.cycle;
        aligned = aligned && (r.cycle == first);
        commit = std::max(commit, r.cycle);
    }

    sweep::PointResult out;
    out.label = "n" + std::to_string(controllers) + "/arity" +
                std::to_string(arity) + "/lead" +
                std::to_string(residual) + "/" + net::toString(policy);
    out.params["controllers"] = controllers;
    out.params["arity"] = arity;
    out.params["lead"] = residual;
    out.params["policy"] = net::toString(policy);
    out.metrics["overhead_cycles"] =
        (long long)commit - (long long)ideal;
    out.metrics["aligned"] = aligned;
    out.metrics["events"] = run_report.events_executed;
    if (run_report.deadlock) {
        out.healthy = false;
        out.health = "deadlock";
    } else if (!aligned) {
        // Cycle alignment of the committed codewords must never break.
        out.healthy = false;
        out.health = "misaligned";
    }
    return out;
}

long long
overheadOf(const sweep::PointResult &r)
{
    return r.healthy ? r.metrics.find("overhead_cycles")->asInt() : -1;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    // ---- Part 1: the topology-shape axis, from one declarative grid ----
    sweep::GridSpec shape_grid;
    {
        sweep::CircuitSpec feedback;
        feedback.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        feedback.random.qubits = cli.quick ? 12 : 24;
        feedback.random.layers = cli.quick ? 8 : 16;
        feedback.random.feedback_fraction = 0.4;
        feedback.random.seed = 5;
        feedback.expand_fraction = 1.0;
        feedback.expand_seed = 2025;
        shape_grid.circuits.push_back(std::move(feedback));

        sweep::CircuitSpec chain;
        chain.kind = sweep::CircuitSpec::Kind::kLrCnotChain;
        chain.qubits = cli.quick ? 9 : 17;
        shape_grid.circuits.push_back(std::move(chain));
    }
    shape_grid.schemes = {compiler::SyncScheme::kBisp,
                          compiler::SyncScheme::kDemand};
    shape_grid.topologies = net::allTopologyShapes();
    shape_grid.base_config.repetitions = 2;
    if (!cli.topologies.empty())
        shape_grid.topologies = cli.topologies;

    std::vector<sweep::SweepTask> tasks =
        sweep::makeTasks(sweep::expandGrid(shape_grid));
    const std::size_t shape_count = tasks.size();

    // ---- Part 2: region sync vs tree arity / lead / policy -------------
    const unsigned grid_controllers = cli.quick ? 16 : 64;
    const std::vector<unsigned> arities =
        cli.quick ? std::vector<unsigned>{2u, 4u}
                  : std::vector<unsigned>{2u, 4u, 8u, 16u};
    const std::vector<Cycle> leads = {16u, 96u};
    const std::vector<net::RouterPolicy> policies = {
        net::RouterPolicy::Paper, net::RouterPolicy::Robust};
    const std::vector<unsigned> scaling =
        cli.quick ? std::vector<unsigned>{4u, 16u}
                  : std::vector<unsigned>{4u, 16u, 64u, 256u};

    for (const unsigned arity : arities) {
        for (const Cycle lead : leads) {
            for (const net::RouterPolicy policy : policies) {
                tasks.push_back(sweep::SweepTask{
                    "arity" + std::to_string(arity) + "/lead" +
                        std::to_string(lead) + "/" + net::toString(policy),
                    [=] {
                        return regionOverhead(grid_controllers, arity,
                                              lead, policy);
                    }});
            }
        }
    }
    const std::size_t scaling_offset = tasks.size();
    for (const unsigned n : scaling) {
        tasks.push_back(sweep::SweepTask{
            "scaling/n" + std::to_string(n), [=] {
                return regionOverhead(n, 4, 16,
                                      net::RouterPolicy::Robust);
            }});
    }

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Ablation: interconnect shape (one grid, %zu points) "
                "====\n",
                shape_count);
    std::printf("%-44s %12s %8s %8s\n", "point", "makespan", "syncs",
                "health");
    for (std::size_t i = 0; i < shape_count; ++i) {
        const auto &r = results[i];
        std::printf("%-44s %12lld %8lld %8s\n", r.label.c_str(),
                    (long long)r.metrics.find("makespan_cycles")->asInt(),
                    (long long)r.metrics.find("syncs")->asInt(),
                    r.health.c_str());
    }
    std::printf("\nShapes without the needed edge (star, sparse heavy-hex "
                "bridges) replace nearby\nbounces with subtree region "
                "syncs: everyone under the covering router stalls,\n"
                "which is the cost the hybrid mesh avoids.\n");

    std::printf("\n==== Ablation: region sync vs tree arity ====\n");
    std::printf("(%u controllers; overhead = release - max(T_i); lead "
                "residual swept)\n",
                grid_controllers);
    std::printf("%6s %6s | %22s | %22s\n", "arity", "height",
                "lead=16 paper/robust", "lead=96 paper/robust");
    std::size_t i = shape_count;
    for (const unsigned arity : arities) {
        runtime::MachineConfig probe;
        probe.topology.width = grid_controllers;
        probe.topology.tree_arity = arity;
        net::Topology topo = net::Topology::grid(probe.topology);
        const unsigned height = topo.maxDepthBelow(topo.rootRouter());

        const long long small_p = overheadOf(results[i++]);
        const long long small_r = overheadOf(results[i++]);
        const long long big_p = overheadOf(results[i++]);
        const long long big_r = overheadOf(results[i++]);
        std::printf("%6u %6u | %10lld %11lld | %10lld %11lld\n", arity,
                    height, small_p, small_r, big_p, big_r);
    }
    std::printf("\nTaller trees (small arity) add hop latency that a small "
                "booking lead cannot hide;\nwith a generous lead every "
                "configuration reaches zero-cycle overhead (Section 4.4)."
                "\nBoth policies stay cycle-aligned; `robust` simply "
                "guarantees it by construction.\n");

    std::printf("\n==== Scaling: controllers vs region-sync overhead "
                "(arity 4, lead 16) ====\n");
    std::printf("%12s %10s\n", "controllers", "overhead");
    for (std::size_t s = 0; s < scaling.size(); ++s) {
        std::printf("%12u %10lld\n", scaling[s],
                    overheadOf(results[scaling_offset + s]));
    }

    sweep::BenchReport report;
    report.bench = "ablation_topology";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["grid_controllers"] = grid_controllers;
    Json shapes = Json::array();
    for (const auto shape : shape_grid.topologies)
        shapes.push(net::toString(shape));
    report.config["shapes"] = std::move(shapes);
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
