/**
 * @file
 * Figures 12/13 reproduction: electronics-level verification of BISP.
 *
 * The two HISQ programs of Figure 12 run on a control board and a readout
 * board. The control board's inner loop grows by 120 ns each iteration via
 * `waitr $1` — unpredictable to the readout board — yet the synchronized
 * pulses (yellow = control port 0, blue = readout port 0) must commit in
 * the same cycle every iteration. The bench prints the committed pulse
 * edges as an ASCII "oscilloscope" plus the raw TELF trace.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

int
main()
{
    // Figure 12 programs, loop bounded to 4 iterations for the bench.
    // $1 grows by 30 cycles (120 ns on the 4 ns grid) per iteration.
    const char *control = R"(
            waiti 8           # pipeline-fill prologue
            addi $2, $0, 120
            addi $1, $0, 0
        inner:
            waiti 1
            cw.i.i 1, 2        # channel-2 marker (Ch1 of the scope)
            addi $1, $1, 30
            cw.i.i 1, 2
            waitr $1
            sync 1
            waiti 8
            cw.i.i 0, 1        # synchronized pulse (yellow)
            waiti 50
            bne $1, $2, inner
            halt
    )";
    const char *readout = R"(
            waiti 8           # pipeline-fill prologue
            addi $3, $0, 4
            addi $4, $0, 0
        inner:
            waiti 2
            sync 0
            waiti 8
            cw.i.i 0, 1        # synchronized pulse (blue)
            waiti 50
            addi $4, $4, 1
            bne $4, $3, inner
            halt
    )";

    runtime::MachineConfig cfg;
    cfg.topology.width = 2;
    cfg.topology.height = 1;
    cfg.topology.neighbor_latency = 2;
    cfg.device.num_qubits = 2;
    cfg.ports_per_controller = 2;
    runtime::Machine m(cfg);
    m.loadProgram(0, isa::assembleOrDie(control, "control_board"));
    m.loadProgram(1, isa::assembleOrDie(readout, "readout_board"));
    const auto report = m.run();

    std::printf("==== Figure 13: two-board synchronization waveform ====\n");
    std::printf("run: %s\n\n", report.summary().c_str());

    std::vector<Cycle> yellow, blue;
    for (const auto &r : m.telf().records()) {
        if (r.kind != TelfKind::CodewordCommit || r.port != 0)
            continue;
        (r.source == "B0" ? yellow : blue).push_back(r.cycle);
    }

    std::printf("%6s %16s %16s %10s %12s\n", "iter", "ctrl pulse(cy)",
                "ro pulse(cy)", "aligned", "period(ns)");
    for (std::size_t i = 0; i < yellow.size() && i < blue.size(); ++i) {
        const double period =
            i ? cyclesToNs(yellow[i] - yellow[i - 1]) : 0.0;
        std::printf("%6zu %16llu %16llu %10s %12.0f\n", i,
                    (unsigned long long)yellow[i],
                    (unsigned long long)blue[i],
                    yellow[i] == blue[i] ? "YES" : "NO", period);
    }
    std::printf("\nperiod grows by 120 ns per iteration (the waitr $1 "
                "increment),\nyet the yellow/blue pulses stay cycle-"
                "aligned — Figure 13's result.\n");

    // ASCII scope: one row per channel, '|' at pulse cycles (scaled).
    const Cycle last = m.telf().lastCycle();
    const int width = 100;
    auto lane = [&](const std::vector<Cycle> &edges, const char *name) {
        std::string row(width, '-');
        for (Cycle e : edges) {
            const int x = int(double(e) / double(last + 1) * width);
            row[std::min(x, width - 1)] = '|';
        }
        std::printf("%-8s %s\n", name, row.c_str());
    };
    std::printf("\n");
    lane(yellow, "ctrl");
    lane(blue, "readout");
    return 0;
}
