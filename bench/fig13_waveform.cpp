/**
 * @file
 * Figures 12/13 reproduction: electronics-level verification of BISP.
 *
 * The two HISQ programs of Figure 12 run on a control board and a readout
 * board. The control board's inner loop grows by 120 ns each iteration via
 * `waitr $1` — unpredictable to the readout board — yet the synchronized
 * pulses (yellow = control port 0, blue = readout port 0) must commit in
 * the same cycle every iteration. Each iteration count is one sweep task;
 * any misaligned pulse pair marks the point unhealthy ("misaligned") and
 * fails the binary. The console output keeps the per-iteration table and
 * the ASCII "oscilloscope" for the largest run.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

struct WaveformRun
{
    runtime::RunReport report;
    std::vector<Cycle> yellow; ///< control-board pulse commits
    std::vector<Cycle> blue;   ///< readout-board pulse commits
    Cycle last_cycle = 0;
};

/** Figure 12's programs, loop bounded to `iterations`. */
WaveformRun
runWaveform(unsigned iterations)
{
    // $1 grows by 30 cycles (120 ns on the 4 ns grid) per iteration.
    const std::string control = R"(
            waiti 8           # pipeline-fill prologue
            addi $2, $0, )" + std::to_string(30 * iterations) + R"(
            addi $1, $0, 0
        inner:
            waiti 1
            cw.i.i 1, 2        # channel-2 marker (Ch1 of the scope)
            addi $1, $1, 30
            cw.i.i 1, 2
            waitr $1
            sync 1
            waiti 8
            cw.i.i 0, 1        # synchronized pulse (yellow)
            waiti 50
            bne $1, $2, inner
            halt
    )";
    const std::string readout = R"(
            waiti 8           # pipeline-fill prologue
            addi $3, $0, )" + std::to_string(iterations) + R"(
            addi $4, $0, 0
        inner:
            waiti 2
            sync 0
            waiti 8
            cw.i.i 0, 1        # synchronized pulse (blue)
            waiti 50
            addi $4, $4, 1
            bne $4, $3, inner
            halt
    )";

    runtime::MachineConfig cfg;
    cfg.topology.width = 2;
    cfg.topology.height = 1;
    cfg.topology.neighbor_latency = 2;
    cfg.device.num_qubits = 2;
    cfg.ports_per_controller = 2;
    runtime::Machine m(cfg);
    m.loadProgram(0, isa::assembleOrDie(control, "control_board"));
    m.loadProgram(1, isa::assembleOrDie(readout, "readout_board"));

    WaveformRun run;
    run.report = m.run();
    for (const auto &r : m.telf().records()) {
        if (r.kind != TelfKind::CodewordCommit || r.port != 0)
            continue;
        (r.source == "B0" ? run.yellow : run.blue).push_back(r.cycle);
    }
    run.last_cycle = m.telf().lastCycle();
    return run;
}

sweep::PointResult
waveformPoint(unsigned iterations)
{
    const WaveformRun run = runWaveform(iterations);

    unsigned aligned = 0;
    for (std::size_t i = 0;
         i < run.yellow.size() && i < run.blue.size(); ++i) {
        aligned += run.yellow[i] == run.blue[i] ? 1 : 0;
    }

    sweep::PointResult out;
    out.label = "fig13/iters" + std::to_string(iterations);
    out.params["iterations"] = iterations;
    out.metrics["pulse_pairs"] = (long long)run.yellow.size();
    out.metrics["aligned_pairs"] = aligned;
    out.metrics["makespan_cycles"] = run.report.makespan;
    out.metrics["events"] = run.report.events_executed;
    if (run.report.deadlock) {
        out.healthy = false;
        out.health = "deadlock";
    } else if (run.yellow.size() != iterations ||
               run.blue.size() != iterations ||
               aligned != iterations) {
        out.healthy = false;
        out.health = "misaligned";
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const std::vector<unsigned> iteration_counts =
        cli.quick ? std::vector<unsigned>{2u, 4u}
                  : std::vector<unsigned>{2u, 4u, 8u, 16u};

    std::vector<sweep::SweepTask> tasks;
    for (const unsigned iters : iteration_counts) {
        tasks.push_back(sweep::SweepTask{
            "fig13/iters" + std::to_string(iters),
            [iters] { return waveformPoint(iters); }});
    }

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Figure 13: two-board synchronization waveform ====\n");
    std::printf("%6s %12s %12s %10s\n", "iters", "pulse pairs", "aligned",
                "health");
    for (const auto &r : results) {
        std::printf("%6lld %12lld %12lld %10s\n",
                    (long long)r.params.find("iterations")->asInt(),
                    (long long)r.metrics.find("pulse_pairs")->asInt(),
                    (long long)r.metrics.find("aligned_pairs")->asInt(),
                    r.health.c_str());
    }

    // Detail view for the largest run: per-iteration commits + the ASCII
    // scope (deterministic re-run, so the table matches the swept point).
    const unsigned detail_iters = iteration_counts.back();
    const WaveformRun detail = runWaveform(detail_iters);
    std::printf("\nrun (%u iterations): %s\n\n", detail_iters,
                detail.report.summary().c_str());
    std::printf("%6s %16s %16s %10s %12s\n", "iter", "ctrl pulse(cy)",
                "ro pulse(cy)", "aligned", "period(ns)");
    for (std::size_t i = 0;
         i < detail.yellow.size() && i < detail.blue.size(); ++i) {
        const double period =
            i ? cyclesToNs(detail.yellow[i] - detail.yellow[i - 1]) : 0.0;
        std::printf("%6zu %16llu %16llu %10s %12.0f\n", i,
                    (unsigned long long)detail.yellow[i],
                    (unsigned long long)detail.blue[i],
                    detail.yellow[i] == detail.blue[i] ? "YES" : "NO",
                    period);
    }
    std::printf("\nperiod grows by 120 ns per iteration (the waitr $1 "
                "increment),\nyet the yellow/blue pulses stay cycle-"
                "aligned — Figure 13's result.\n");

    // ASCII scope: one row per channel, '|' at pulse cycles (scaled).
    const Cycle last = detail.last_cycle;
    const int width = 100;
    auto lane = [&](const std::vector<Cycle> &edges, const char *name) {
        std::string row(width, '-');
        for (Cycle e : edges) {
            const int x = int(double(e) / double(last + 1) * width);
            row[std::min(x, width - 1)] = '|';
        }
        std::printf("%-8s %s\n", name, row.c_str());
    };
    std::printf("\n");
    lane(detail.yellow, "ctrl");
    lane(detail.blue, "readout");

    sweep::BenchReport report;
    report.bench = "fig13_waveform";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
