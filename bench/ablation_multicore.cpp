/**
 * @file
 * Section 7.1 ablation: the instruction issue-rate bottleneck.
 *
 * A single HISQ core feeding many ports with a dense schedule (one
 * codeword per port per 4-cycle slot) cannot keep up — events slip past
 * their time-points (timing violations). Partitioning the same ports over
 * more cores removes the bottleneck, which is exactly the multi-core
 * configuration the paper proposes.
 */
#include <cstdio>
#include <string>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

namespace {

/** Dense program: `slots` timing points, one codeword per port each. */
std::string
denseProgram(unsigned ports, unsigned slots, Cycle slot_cycles)
{
    std::string src = "waiti 16\n"; // pipeline fill prologue
    for (unsigned s = 0; s < slots; ++s) {
        for (unsigned p = 0; p < ports; ++p)
            src += "cw.i.i " + std::to_string(p) + ", 1\n";
        src += "waiti " + std::to_string(slot_cycles) + "\n";
    }
    src += "halt\n";
    return src;
}

struct Outcome
{
    std::uint64_t violations;
    double achieved_rate; // codewords per us
};

/** `total_ports` split across `cores` controllers. */
Outcome
run(unsigned total_ports, unsigned cores, unsigned slots,
    Cycle slot_cycles)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = cores;
    cfg.topology.height = 1;
    cfg.device.num_qubits = 2;
    cfg.ports_per_controller = total_ports / cores;
    runtime::Machine m(cfg);
    for (unsigned c = 0; c < cores; ++c) {
        m.loadProgram(c, isa::assembleOrDie(denseProgram(
                             total_ports / cores, slots, slot_cycles)));
    }
    const auto report = m.run();
    Outcome out;
    out.violations = report.timing_violations;
    const double us = cyclesToNs(report.makespan) / 1000.0;
    out.achieved_rate = double(total_ports) * slots / us;
    return out;
}

} // namespace

int
main()
{
    const unsigned total_ports = 28; // the full control board
    const unsigned slots = 200;

    std::printf("==== Section 7.1: issue rate vs cores per board ====\n");
    std::printf("(28 ports, %u timing points, one codeword per port per "
                "point)\n\n",
                slots);
    std::printf("%12s %8s %12s %16s\n", "slot(cycles)", "cores",
                "violations", "rate(cw/us)");
    for (Cycle slot_cycles : {32u, 16u, 8u}) {
        for (unsigned cores : {1u, 2u, 4u, 7u}) {
            const auto o = run(total_ports, cores, slots, slot_cycles);
            std::printf("%12llu %8u %12llu %16.1f\n",
                        (unsigned long long)slot_cycles, cores,
                        (unsigned long long)o.violations,
                        o.achieved_rate);
        }
        std::printf("\n");
    }
    std::printf("a single core slips once the per-port schedule outpaces "
                "its 1 instruction/cycle\nissue rate; partitioning ports "
                "across cores (Section 7.1) removes the violations.\n");
    return 0;
}
