/**
 * @file
 * Section 7.1 ablation: the instruction issue-rate bottleneck.
 *
 * A single HISQ core feeding many ports with a dense schedule (one
 * codeword per port per 4-cycle slot) cannot keep up — events slip past
 * their time-points (timing violations). Partitioning the same ports over
 * more cores removes the bottleneck, which is exactly the multi-core
 * configuration the paper proposes.
 *
 * Sweep-harness port: each (slot period x cores) cell is a custom sweep
 * task (these are raw machine runs, not compiled circuits), parallelized
 * with --threads and serialized with --json. Timing violations here are
 * the measurement, not a failure; only deadlock fails the run.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

namespace {

/** Dense program: `slots` timing points, one codeword per port each. */
std::string
denseProgram(unsigned ports, unsigned slots, Cycle slot_cycles)
{
    std::string src = "waiti 16\n"; // pipeline fill prologue
    for (unsigned s = 0; s < slots; ++s) {
        for (unsigned p = 0; p < ports; ++p)
            src += "cw.i.i " + std::to_string(p) + ", 1\n";
        src += "waiti " + std::to_string(slot_cycles) + "\n";
    }
    src += "halt\n";
    return src;
}

/** `total_ports` split across `cores` controllers. */
sweep::PointResult
run(unsigned total_ports, unsigned cores, unsigned slots,
    Cycle slot_cycles)
{
    runtime::MachineConfig cfg;
    cfg.topology.width = cores;
    cfg.topology.height = 1;
    cfg.device.num_qubits = 2;
    cfg.ports_per_controller = total_ports / cores;
    runtime::Machine m(cfg);
    for (unsigned c = 0; c < cores; ++c) {
        m.loadProgram(c, isa::assembleOrDie(denseProgram(
                             total_ports / cores, slots, slot_cycles)));
    }
    const auto report = m.run();
    const double us = cyclesToNs(report.makespan) / 1000.0;

    sweep::PointResult out;
    out.label = "slot" + std::to_string(slot_cycles) + "/cores" +
                std::to_string(cores);
    out.params["slot_cycles"] = slot_cycles;
    out.params["cores"] = cores;
    out.params["total_ports"] = total_ports;
    out.params["slots"] = slots;
    out.metrics["violations"] = report.timing_violations;
    out.metrics["makespan_us"] = us;
    out.metrics["rate_cw_per_us"] =
        us > 0.0 ? Json(double(total_ports) * slots / us) : Json();
    out.metrics["events"] = report.events_executed;
    out.healthy = !report.deadlock;
    out.health = report.deadlock ? "deadlock" : "ok";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const unsigned total_ports = 28; // the full control board
    const unsigned slots = cli.quick ? 50 : 200;
    const std::vector<unsigned> slot_periods = {32u, 16u, 8u};
    const std::vector<unsigned> core_counts =
        cli.quick ? std::vector<unsigned>{1u, 4u}
                  : std::vector<unsigned>{1u, 2u, 4u, 7u};

    std::vector<sweep::SweepTask> tasks;
    for (const unsigned slot_cycles : slot_periods) {
        for (const unsigned cores : core_counts) {
            tasks.push_back(sweep::SweepTask{
                "slot" + std::to_string(slot_cycles) + "/cores" +
                    std::to_string(cores),
                [=] {
                    return run(total_ports, cores, slots, slot_cycles);
                }});
        }
    }

    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Section 7.1: issue rate vs cores per board ====\n");
    std::printf("(28 ports, %u timing points, one codeword per port per "
                "point)\n\n",
                slots);
    std::printf("%12s %8s %12s %16s\n", "slot(cycles)", "cores",
                "violations", "rate(cw/us)");
    std::size_t i = 0;
    for (const unsigned slot_cycles : slot_periods) {
        for (const unsigned cores : core_counts) {
            const auto &r = results[i++];
            const Json *rate = r.metrics.find("rate_cw_per_us");
            char rate_text[24];
            if (rate != nullptr && rate->isNumber())
                std::snprintf(rate_text, sizeof(rate_text), "%.1f",
                              rate->asDouble());
            else
                std::snprintf(rate_text, sizeof(rate_text), "n/a");
            std::printf(
                "%12llu %8u %12llu %16s\n",
                (unsigned long long)slot_cycles, cores,
                (unsigned long long)r.metrics.find("violations")->asInt(),
                rate_text);
        }
        std::printf("\n");
    }
    std::printf("a single core slips once the per-port schedule outpaces "
                "its 1 instruction/cycle\nissue rate; partitioning ports "
                "across cores (Section 7.1) removes the violations.\n");

    sweep::BenchReport report;
    report.bench = "ablation_multicore";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["total_ports"] = total_ports;
    report.config["slots"] = slots;
    report.points = results;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
