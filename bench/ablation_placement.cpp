/**
 * @file
 * Ablation C: topology-aware placement (Insight #2).
 *
 * One declarative grid sweeps two feedback-heavy workloads — a dynamic
 * GHZ fan-out (star-shaped interaction graph) and an unexpanded random
 * dynamic circuit (path-plus-chords graph) — across interconnect shapes,
 * the three placement strategies (`path` embedding, `greedy-affinity`,
 * `kl-mincut`), both link-latency models and both router-tree
 * clusterings. The derived `kl_vs_path` section reports, per cell, the
 * end-to-end makespan of every strategy and the kl-mincut/path ratio.
 * The bench itself enforces the headline claim: on torus and heavy-hex
 * with distance-scaled links, kl-mincut must strictly beat the fixed
 * path embedding for at least two workloads per clustering, or the
 * binary exits nonzero (and CI's bench-smoke run fails); the committed
 * baseline additionally gates the per-point makespans via
 * `bench_compare`.
 *
 * `--placement`, `--latency-model`, `--clustering` and `--topology`
 * restrict the axes; every cell is a sweep task (--threads) serialized
 * with --json.
 */
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    sweep::GridSpec grid;
    {
        // Expanded Bernstein–Vazirani: every oracle CNOT targets the
        // ancilla, so the converted dynamic circuit funnels feedback
        // toward one hot block — the star-shaped interaction graph a
        // fixed path embedding serves worst.
        sweep::CircuitSpec bv;
        bv.kind = sweep::CircuitSpec::Kind::kFigure15;
        bv.name = "bv_n13";
        bv.expand_fraction = 1.0;
        bv.expand_seed = 2025;
        grid.circuits.push_back(std::move(bv));

        // Unexpanded random dynamic: adjacent CZs plus measurement
        // feedback up to `feedback_span` blocks away — a path with
        // chords the snake embedding cannot honour on 2D shapes.
        sweep::CircuitSpec feedback;
        feedback.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        feedback.random.qubits = cli.quick ? 12 : 24;
        feedback.random.layers = cli.quick ? 12 : 20;
        feedback.random.feedback_fraction = 0.5;
        feedback.random.feedback_span = 6;
        feedback.random.seed = 9;
        grid.circuits.push_back(std::move(feedback));

        // Dynamic GHZ fan-out: every CNOT is long-range from the root;
        // the expansion's parity corrections feed back to the root and
        // each leaf (the examples/placement_compare.cpp workload).
        sweep::CircuitSpec fanout;
        fanout.kind = sweep::CircuitSpec::Kind::kGhzFanout;
        fanout.qubits = cli.quick ? 12 : 20;
        fanout.expand_fraction = 1.0;
        fanout.expand_seed = 2025;
        grid.circuits.push_back(std::move(fanout));
    }
    grid.schemes = {compiler::SyncScheme::kBisp};
    grid.topologies = {net::TopologyShape::kLine, net::TopologyShape::kTorus,
                       net::TopologyShape::kHeavyHex};
    grid.placements = place::allPlacementStrategies();
    grid.latency_models = {net::LinkLatencyModel::kUniform,
                           net::LinkLatencyModel::kDistanceScaled};
    grid.clusterings = net::allRouterClusterings();
    grid.base_config.repetitions = 2;
    if (!cli.topologies.empty())
        grid.topologies = cli.topologies;
    if (!cli.placements.empty())
        grid.placements = cli.placements;
    if (!cli.latency_models.empty())
        grid.latency_models = cli.latency_models;
    if (!cli.clusterings.empty())
        grid.clusterings = cli.clusterings;

    const auto points = sweep::expandGrid(grid);
    const auto tasks = sweep::makeTasks(points);
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Ablation: placement strategy x shape x links (%zu "
                "points) ====\n",
                results.size());
    std::printf("%-56s %12s %8s %8s\n", "point", "makespan", "syncs",
                "health");
    for (const auto &r : results) {
        std::printf("%-56s %12lld %8lld %8s\n", r.label.c_str(),
                    (long long)r.metrics.find("makespan_cycles")->asInt(),
                    (long long)r.metrics.find("syncs")->asInt(),
                    r.health.c_str());
    }

    // Group cells by everything but the placement strategy and derive the
    // kl-mincut / path makespan ratio per cell (keyed lookups, not index
    // arithmetic, so axis restrictions cannot skew the pairing).
    auto cellOf = [](const sweep::PointResult &r) {
        // Fallbacks are the axis defaults the emission omits — spelled
        // via toString(default) so they can never drift apart.
        auto param = [&r](const char *key, const char *fallback) {
            const Json *v = r.params.find(key);
            return v != nullptr ? v->asString() : std::string(fallback);
        };
        return std::make_tuple(
            r.params.find("workload")->asString(),
            r.params.find("topology")->asString(),
            param("latency_model",
                  net::toString(net::LinkLatencyModel::kUniform)),
            param("clustering",
                  net::toString(net::RouterClustering::kIdBlocks)));
    };
    std::map<std::tuple<std::string, std::string, std::string, std::string>,
             std::map<std::string, long long>>
        cells;
    const std::string path_name =
        place::toString(place::PlacementStrategy::kPath);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const Json *strategy = r.params.find("placement");
        cells[cellOf(r)][strategy != nullptr ? strategy->asString()
                                             : path_name] =
            r.metrics.find("makespan_cycles")->asInt();
    }

    std::printf("\n==== kl-mincut vs the fixed path embedding ====\n");
    std::printf("%-52s %10s %10s %10s %8s\n", "cell", "path", "greedy",
                "kl", "kl/path");
    Json ratios = Json::array();
    for (const auto &[key, by_strategy] : cells) {
        const auto &[workload, topology, latency_model, clustering] = key;
        auto makespan = [&by_strategy](const char *name) -> long long {
            auto it = by_strategy.find(name);
            return it != by_strategy.end() ? it->second : -1;
        };
        const long long path = makespan("path");
        const long long greedy = makespan("greedy-affinity");
        const long long kl = makespan("kl-mincut");
        const std::string cell = workload + "/" + topology + "/" +
                                 latency_model + "/" + clustering;
        Json entry = Json::object();
        entry["workload"] = workload;
        entry["topology"] = topology;
        entry["latency_model"] = latency_model;
        entry["clustering"] = clustering;
        entry["path_makespan"] = path;
        entry["greedy_makespan"] = greedy;
        entry["kl_makespan"] = kl;
        if (path > 0 && kl > 0) {
            const double ratio = double(kl) / double(path);
            std::printf("%-52s %10lld %10lld %10lld %7.3fx\n", cell.c_str(),
                        path, greedy, kl, ratio);
            entry["kl_over_path"] = ratio;
        } else {
            std::printf("%-52s %10lld %10lld %10lld %8s\n", cell.c_str(),
                        path, greedy, kl, "n/a");
            entry["kl_over_path"] = nullptr;
        }
        ratios.push(std::move(entry));
    }
    std::printf("\nOn torus/heavy-hex with distance-scaled links the "
                "min-cut placement routes the\nheavy feedback edges over "
                "short, fast links; the fixed snake embedding pays\n"
                "region syncs and slow cables for the same traffic.\n");

    // Enforce the headline claim wherever the (possibly CLI-restricted)
    // grid produced the comparison: per (2D topology, clustering) group
    // of distance-scaled cells with both strategies present, kl-mincut
    // must strictly beat the path embedding for >= 2 workloads.
    const std::string distance_name =
        net::toString(net::LinkLatencyModel::kDistanceScaled);
    std::map<std::pair<std::string, std::string>, std::pair<int, int>>
        win_groups; // (topology, clustering) -> (wins, comparable cells)
    for (const auto &[key, by_strategy] : cells) {
        const auto &[workload, topology, latency_model, clustering] = key;
        if (latency_model != distance_name ||
            (topology != "torus" && topology != "heavy_hex")) {
            continue;
        }
        const auto path_it = by_strategy.find(path_name);
        const auto kl_it = by_strategy.find(
            place::toString(place::PlacementStrategy::kKlMincut));
        if (path_it == by_strategy.end() || kl_it == by_strategy.end())
            continue;
        auto &group = win_groups[{topology, clustering}];
        ++group.second;
        if (kl_it->second < path_it->second)
            ++group.first;
    }
    bool optimizer_wins = true;
    for (const auto &[group, tally] : win_groups) {
        if (tally.second >= 2 && tally.first < 2) {
            std::printf("GATE FAILED: kl-mincut beats path on only %d/%d "
                        "workloads (%s/%s, distance-scaled)\n",
                        tally.first, tally.second, group.first.c_str(),
                        group.second.c_str());
            optimizer_wins = false;
        }
    }

    sweep::BenchReport report;
    report.bench = "ablation_placement";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    Json shapes = Json::array();
    for (const auto shape : grid.topologies)
        shapes.push(net::toString(shape));
    report.config["shapes"] = std::move(shapes);
    Json strategies = Json::array();
    for (const auto strategy : grid.placements)
        strategies.push(place::toString(strategy));
    report.config["placements"] = std::move(strategies);
    report.points = results;
    report.derived["kl_vs_path"] = std::move(ratios);

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() && optimizer_wins ? 0 : 1;
}
