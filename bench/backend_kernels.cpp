/**
 * @file
 * Backend-tier wall-clock kernels: the same Clifford shot (GHZ chain,
 * repeated syndrome extraction) driven through the abstract q::Backend
 * interface on the dense state vector and the stabilizer tableau, timed
 * with std::chrono so the artifact needs no external benchmark library.
 *
 * The emitted BENCH_backend_kernels.json is regression-gated like every
 * other bench, with one twist: wall times are inherently noisy, so they
 * are stored under UNTRACKED metric keys (dense_ns_per_shot,
 * tableau_ns_per_shot, speedup) that bench_compare never thresholds.
 * What the gate does hold is the healthy flag of the largest-common-size
 * point per kernel: it is true iff the tableau beats the dense backend
 * outright there, and a healthy-in-baseline point turning unhealthy is
 * always a regression. The margin is orders of magnitude (O(n) vs
 * O(2^n) per gate), so scheduler noise cannot flip it.
 *
 * Unlike the sweep benches this binary runs its points serially and
 * ignores --threads: concurrent timing runs would contend for cores and
 * corrupt each other's numbers, and the sweep runner's determinism
 * re-check rightly refuses wall-clock metrics.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "quantum/backend.hpp"
#include "quantum/state_vector.hpp"
#include "quantum/tableau.hpp"
#include "sweep/cli.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

namespace {

/** One GHZ shot: H + CNOT chain + measure every qubit. */
void
ghzShot(q::Backend &b, Rng &rng)
{
    b.reset();
    const unsigned n = b.numQubits();
    b.apply1q(q::Gate::kH, 0);
    for (QubitId i = 0; i + 1 < n; ++i)
        b.apply2q(q::Gate::kCNOT, i, i + 1);
    int parity = 0;
    for (QubitId i = 0; i < n; ++i)
        parity ^= b.measure(i, rng);
    // Keep the measurement results observable so the loop cannot be
    // optimized into nothing.
    volatile int sink = parity;
    (void)sink;
}

/**
 * One syndrome-extraction shot: odd qubits are ancillas reading the ZZ
 * parity of their even neighbours; four rounds of extract + active reset.
 */
void
syndromeShot(q::Backend &b, Rng &rng)
{
    b.reset();
    const unsigned n = b.numQubits();
    for (QubitId d = 0; d < n; d += 2)
        b.apply1q(q::Gate::kH, d);
    for (int round = 0; round < 4; ++round) {
        for (QubitId a = 1; a < n; a += 2) {
            b.apply2q(q::Gate::kCNOT, a - 1, a);
            if (a + 1 < n)
                b.apply2q(q::Gate::kCNOT, a + 1, a);
        }
        for (QubitId a = 1; a < n; a += 2)
            b.resetQubit(a, rng);
    }
}

using ShotFn = void (*)(q::Backend &, Rng &);

struct KernelSpec
{
    const char *name;
    ShotFn shot;
};

// ---- dense-kernel section: classified fast path vs general matmul ----
//
// The same circuits driven twice on the dense StateVector: once through
// apply1q/apply2q (which dispatch on classifyGate() to the specialized
// diagonal/permutation/controlled kernels) and once through the explicit
// applyMatrix1q/2q general path every gate used to take. Measurement and
// reset are shared between the two variants, so the ratio isolates the
// gate kernels. Wall times land under UNTRACKED metric keys like the
// tableau section's; the health gate holds the classified-vs-general
// ratio at the largest vqe (non-Clifford) size.

/** Minimum classified/general speedup at the largest vqe size. The vqe
 *  ansatz is the worst case for the fast path — its Ry layers stay on
 *  the general kernel and only the CNOT entanglers specialize — so the
 *  measured margin (~2x) sits well above this floor. */
constexpr double kDenseSpeedupFloor = 1.3;

/** How a dense shot applies its gates. */
struct DenseOps
{
    void (*g1)(q::StateVector &, q::Gate, QubitId, double);
    void (*g2)(q::StateVector &, q::Gate, QubitId, QubitId, double);
};

void
fast1q(q::StateVector &sv, q::Gate g, QubitId q, double a)
{
    sv.apply1q(g, q, a);
}

void
fast2q(q::StateVector &sv, q::Gate g, QubitId q0, QubitId q1, double a)
{
    sv.apply2q(g, q0, q1, a);
}

void
general1q(q::StateVector &sv, q::Gate g, QubitId q, double a)
{
    sv.applyMatrix1q(q::matrix1q(g, a), q);
}

void
general2q(q::StateVector &sv, q::Gate g, QubitId q0, QubitId q1, double a)
{
    sv.applyMatrix2q(q::matrix2q(g, a), q0, q1);
}

constexpr DenseOps kFastOps{fast1q, fast2q};
constexpr DenseOps kGeneralOps{general1q, general2q};

using DenseShotFn = void (*)(q::StateVector &, Rng &, const DenseOps &);

/** GHZ chain via the chosen gate path. */
void
denseGhzShot(q::StateVector &sv, Rng &rng, const DenseOps &ops)
{
    sv.reset();
    const unsigned n = sv.numQubits();
    ops.g1(sv, q::Gate::kH, 0, 0.0);
    for (QubitId i = 0; i + 1 < n; ++i)
        ops.g2(sv, q::Gate::kCNOT, i, i + 1, 0.0);
    int parity = 0;
    for (QubitId i = 0; i < n; ++i)
        parity ^= sv.measure(i, rng);
    volatile int sink = parity;
    (void)sink;
}

/** Syndrome extraction via the chosen gate path. */
void
denseSyndromeShot(q::StateVector &sv, Rng &rng, const DenseOps &ops)
{
    sv.reset();
    const unsigned n = sv.numQubits();
    for (QubitId d = 0; d < n; d += 2)
        ops.g1(sv, q::Gate::kH, d, 0.0);
    for (int round = 0; round < 4; ++round) {
        for (QubitId a = 1; a < n; a += 2) {
            ops.g2(sv, q::Gate::kCNOT, a - 1, a, 0.0);
            if (a + 1 < n)
                ops.g2(sv, q::Gate::kCNOT, a + 1, a, 0.0);
        }
        for (QubitId a = 1; a < n; a += 2)
            sv.resetQubit(a, rng);
    }
}

/**
 * The vqeSweep ansatz shape (workloads/generators): per layer a wall of
 * Ry rotations with seeded angles and an adjacent-CNOT entangler chain,
 * a final rotation layer, measure everything. Non-Clifford — exactly
 * the traffic only the dense backend can serve.
 */
void
denseVqeShot(q::StateVector &sv, Rng &rng, const DenseOps &ops)
{
    sv.reset();
    const unsigned n = sv.numQubits();
    Rng angles(21);
    const unsigned layers = 3;
    for (unsigned l = 0; l < layers; ++l) {
        for (QubitId i = 0; i < n; ++i)
            ops.g1(sv, q::Gate::kRy, i, angles.uniform() * 6.283);
        for (QubitId i = 0; i + 1 < n; ++i)
            ops.g2(sv, q::Gate::kCNOT, i, i + 1, 0.0);
    }
    for (QubitId i = 0; i < n; ++i)
        ops.g1(sv, q::Gate::kRy, i, angles.uniform() * 6.283);
    int parity = 0;
    for (QubitId i = 0; i < n; ++i)
        parity ^= sv.measure(i, rng);
    volatile int sink = parity;
    (void)sink;
}

struct DenseKernelSpec
{
    const char *name;
    DenseShotFn shot;
};

/** Best-of-3 ns/shot for a dense shot under the given gate path. */
double
denseNsPerShot(q::StateVector &sv, DenseShotFn shot, const DenseOps &ops,
               unsigned shots)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        Rng rng(1000003u * unsigned(rep) + 17u);
        const auto t0 = clock::now();
        for (unsigned s = 0; s < shots; ++s)
            shot(sv, rng, ops);
        const auto t1 = clock::now();
        const double ns =
            double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()) /
            double(shots);
        best = (rep == 0) ? ns : std::min(best, ns);
    }
    return best;
}

/**
 * Best-of-3 repetitions, nanoseconds per shot. Each repetition reseeds
 * the Rng identically, so dense and tableau perform the same logical
 * work (same circuits, same measurement outcomes) and the comparison is
 * apples-to-apples.
 */
double
nsPerShot(q::Backend &b, ShotFn shot, unsigned shots)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        Rng rng(1000003u * unsigned(rep) + 17u);
        const auto t0 = clock::now();
        for (unsigned s = 0; s < shots; ++s)
            shot(b, rng);
        const auto t1 = clock::now();
        const double ns =
            double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()) /
            double(shots);
        best = (rep == 0) ? ns : std::min(best, ns);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    // Common sizes run on both backends; the largest is the gated
    // comparison point. The scaling size runs tableau-only — its dense
    // equivalent would need 2^n amplitudes.
    const std::vector<unsigned> common =
        cli.quick ? std::vector<unsigned>{6, 10, 12}
                  : std::vector<unsigned>{8, 12, 14};
    const unsigned largest = common.back();
    const unsigned scaling = cli.quick ? 128 : 512;
    const unsigned shots = cli.quick ? 24 : 48;

    const KernelSpec kernels[] = {{"ghz", ghzShot},
                                  {"syndrome", syndromeShot}};
    const DenseKernelSpec dense_kernels[] = {
        {"ghz", denseGhzShot},
        {"syndrome", denseSyndromeShot},
        {"vqe", denseVqeShot}};

    std::vector<sweep::PointResult> points;
    if (cli.list) {
        for (const auto &k : kernels) {
            for (const unsigned n : common)
                std::printf("%s/n%u\n", k.name, n);
            std::printf("%s/n%u/tableau-only\n", k.name, scaling);
        }
        for (const auto &k : dense_kernels) {
            for (const unsigned n : common)
                std::printf("dense-%s/n%u\n", k.name, n);
        }
        return 0;
    }

    std::printf("==== backend kernels: dense vs tableau wall time ====\n");
    std::printf("(%u shots per point, best of 3 repetitions)\n", shots);
    std::printf("%-16s %14s %14s %10s\n", "point", "dense ns/shot",
                "tableau ns/shot", "speedup");
    for (const auto &k : kernels) {
        for (const unsigned n : common) {
            q::StateVector dense(n);
            q::TableauState tab(n);
            const double dns = nsPerShot(dense, k.shot, shots);
            const double tns = nsPerShot(tab, k.shot, shots);
            const double speedup = tns > 0.0 ? dns / tns : 0.0;

            sweep::PointResult out;
            out.label = std::string(k.name) + "/n" + std::to_string(n);
            out.params["kernel"] = k.name;
            out.params["qubits"] = n;
            out.params["shots"] = shots;
            out.metrics["dense_ns_per_shot"] = dns;
            out.metrics["tableau_ns_per_shot"] = tns;
            out.metrics["speedup"] = speedup;
            if (n == largest && !(tns < dns)) {
                // The acceptance bar: at the largest size both backends
                // can run, the tableau must win outright.
                out.healthy = false;
                out.health = "tableau-not-faster";
            }
            points.push_back(out);
            std::printf("%-16s %14.0f %14.0f %9.1fx%s\n",
                        out.label.c_str(), dns, tns, speedup,
                        out.healthy ? "" : "  [REGRESSION]");
        }
        {
            // Tableau-only scaling point: far beyond any dense limit.
            q::TableauState tab(scaling);
            const double tns = nsPerShot(tab, k.shot, shots);
            sweep::PointResult out;
            out.label = std::string(k.name) + "/n" +
                        std::to_string(scaling) + "/tableau-only";
            out.params["kernel"] = k.name;
            out.params["qubits"] = scaling;
            out.params["shots"] = shots;
            out.metrics["tableau_ns_per_shot"] = tns;
            points.push_back(out);
            std::printf("%-16s %14s %14.0f %10s\n", out.label.c_str(),
                        "-", tns, "-");
        }
    }

    // Dense-kernel section: classified fast path vs the general matmul
    // path on the same StateVector. The vqe kernel at the largest size
    // carries the health gate — it is the non-Clifford shape the fast
    // path exists for (the tableau cannot serve it at all).
    std::printf("\n==== dense kernels: classified fast path vs general "
                "matmul ====\n");
    std::printf("%-16s %14s %14s %10s\n", "point", "fast ns/shot",
                "general ns/shot", "speedup");
    for (const auto &k : dense_kernels) {
        for (const unsigned n : common) {
            q::StateVector sv(n);
            const double fns = denseNsPerShot(sv, k.shot, kFastOps, shots);
            const double gns =
                denseNsPerShot(sv, k.shot, kGeneralOps, shots);
            const double speedup = fns > 0.0 ? gns / fns : 0.0;

            sweep::PointResult out;
            out.label =
                std::string("dense-") + k.name + "/n" + std::to_string(n);
            out.params["kernel"] = k.name;
            out.params["qubits"] = n;
            out.params["shots"] = shots;
            // Wall-clock metrics: untracked keys, never thresholded.
            out.metrics["classified_ns_per_shot"] = fns;
            out.metrics["general_ns_per_shot"] = gns;
            out.metrics["dense_speedup"] = speedup;
            if (k.shot == denseVqeShot && n == largest &&
                !(speedup >= kDenseSpeedupFloor)) {
                out.healthy = false;
                out.health = "dense-fast-path-not-faster";
            }
            points.push_back(out);
            std::printf("%-16s %14.0f %14.0f %9.2fx%s\n",
                        out.label.c_str(), fns, gns, speedup,
                        out.healthy ? "" : "  [REGRESSION]");
        }
    }

    sweep::BenchReport report;
    report.bench = "backend_kernels";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["shots"] = shots;
    report.config["largest_common_qubits"] = largest;
    report.config["scaling_qubits"] = scaling;
    report.config["dense_speedup_floor"] = kDenseSpeedupFloor;
    report.points = points;

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
