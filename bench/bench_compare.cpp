/**
 * @file
 * CI regression gate CLI: compares a freshly-emitted BENCH_*.json against
 * the committed baseline under bench/baselines/ and exits nonzero when a
 * tracked metric regressed past the threshold (default 15%).
 *
 *   bench_compare <baseline.json> <current.json> [--threshold 0.15]
 *
 * Exit codes: 0 ok, 1 regression found, 2 usage/IO/parse error.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "sweep/regress.hpp"

using namespace dhisq;

namespace {

int
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <current.json> "
                 "[--threshold F]\n"
                 "  --threshold F  tolerated relative worsening "
                 "(default 0.15 = 15%%)\n",
                 prog);
    return 2;
}

Result<Json>
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Result<Json>::error("cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = Json::parse(text.str());
    if (!parsed)
        return Result<Json>::error(path + ": " + parsed.message());
    return parsed;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    double threshold = 0.15;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--threshold") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || threshold < 0.0) {
                std::fprintf(stderr, "bad --threshold value: %s\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (baseline_path.empty() || current_path.empty())
        return usage(argv[0]);

    auto baseline = loadJson(baseline_path);
    if (!baseline) {
        std::fprintf(stderr, "%s\n", baseline.message().c_str());
        return 2;
    }
    auto current = loadJson(current_path);
    if (!current) {
        std::fprintf(stderr, "%s\n", current.message().c_str());
        return 2;
    }

    auto compared = sweep::compareBenchReports(baseline.value(),
                                               current.value(), threshold);
    if (!compared) {
        std::fprintf(stderr, "%s\n", compared.message().c_str());
        return 2;
    }

    const auto &report = compared.value();
    for (const auto &note : report.notes)
        std::printf("note: %s\n", note.c_str());
    for (const auto &finding : report.regressions)
        std::printf("REGRESSION: %s\n", finding.describe().c_str());
    std::printf("%s vs %s: %zu points, %zu metrics compared, "
                "%zu regression(s) at %+.0f%% threshold\n",
                baseline_path.c_str(), current_path.c_str(),
                report.compared_points, report.compared_metrics,
                report.regressions.size(), threshold * 100.0);
    return report.ok() ? 0 : 1;
}
