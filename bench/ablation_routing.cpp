/**
 * @file
 * Ablation: SWAP-insertion qubit routing (the Route pass).
 *
 * Three declarative grids share one sweep run:
 *
 *  1. Capacity-sufficient cells sweep feedback-heavy stride-coupled
 *     workloads across shapes with routing off vs on — the derived
 *     `routed_vs_unrouted` section reports the makespan ratio and the
 *     inserted-SWAP counts (routing trades extra two-qubit gates for
 *     avoided region syncs).
 *  1b. The same cells again under the windowed congestion-aware router
 *     (route_window 8 by default; --route-window restricts/extends the
 *     axis). The derived `windowed_vs_greedy` section prices joint
 *     selection against the greedy router, and the run exits nonzero
 *     if the windowed column is more than 10% worse than greedy on any
 *     cell (the routed-over-unrouted regression gate).
 *  2. Over-capacity cells run workloads with MORE qubits than the
 *     8-controller machine's block capacity — the exact circuits the
 *     pre-routing compiler hard-rejected — on torus and heavy-hex with
 *     routing enabled. The binary exits nonzero unless (a) compiling
 *     any of them with routing disabled still fails with the structured
 *     capacity diagnostic, (b) every over-capacity point runs healthy,
 *     with at least two distinct workloads per shape, and (c) the
 *     dynamic over-capacity workloads actually routed (swaps > 0).
 *
 * `--topology` and `--routing` restrict the capacity grid's axes; the
 * over-capacity gate grid keeps its committed shape so CI always
 * exercises the acceptance claim (restrict with --topology to probe a
 * single shape). Points are sweep tasks (--threads), serialized with
 * --json and gated against the committed baseline by `bench_compare`.
 */
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sweep/cli.hpp"
#include "sweep/exec.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace dhisq;

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    // ---- Grid 1: routed vs unrouted where capacity suffices ----------
    sweep::GridSpec capacity;
    {
        sweep::CircuitSpec stress;
        stress.kind = sweep::CircuitSpec::Kind::kRoutingStress;
        stress.routing_stress.qubits = cli.quick ? 12 : 18;
        stress.routing_stress.layers = cli.quick ? 6 : 12;
        stress.routing_stress.stride = 5;
        capacity.circuits.push_back(stress);

        sweep::CircuitSpec feedback;
        feedback.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        feedback.random.qubits = cli.quick ? 12 : 20;
        feedback.random.layers = cli.quick ? 8 : 16;
        feedback.random.feedback_fraction = 0.5;
        feedback.random.feedback_span = 6;
        feedback.random.seed = 9;
        capacity.circuits.push_back(feedback);
    }
    capacity.schemes = {compiler::SyncScheme::kBisp};
    capacity.topologies = {net::TopologyShape::kLine,
                           net::TopologyShape::kTorus,
                           net::TopologyShape::kHeavyHex};
    capacity.routings = compiler::allRoutingModes();
    if (!cli.topologies.empty())
        capacity.topologies = cli.topologies;
    if (!cli.routings.empty())
        capacity.routings = cli.routings;

    // ---- Grid 1b: the windowed router on the same capacity cells -----
    // Same circuits and shapes, SWAP routing fixed on, lookahead window
    // swept (default: one windowed column at window 8). The derived
    // `windowed_vs_greedy` section prices the joint selection against
    // the greedy per-gate router, and a health gate fails the run if the
    // windowed column regresses any shape's makespan ratio by > 10%.
    sweep::GridSpec windowed = capacity;
    windowed.routings = {compiler::RoutingMode::kSwap};
    windowed.route_windows = {8};
    if (!cli.route_windows.empty())
        windowed.route_windows = cli.route_windows;
    if (!cli.route_feedbacks.empty())
        windowed.route_feedbacks = cli.route_feedbacks;
    // Window 1 IS the greedy column from grid 1 — drop it here so one
    // point never appears under two labels in the same report.
    std::erase(windowed.route_windows, 1u);

    // ---- Grid 2: over-capacity workloads on an 8-controller machine --
    constexpr unsigned kMachineControllers = 8;
    sweep::GridSpec overcap;
    {
        // Static arithmetic (oversubscribed mapping, swap-free)...
        sweep::CircuitSpec adder;
        adder.kind = sweep::CircuitSpec::Kind::kFigure15;
        adder.name = "adder_n12";
        overcap.circuits.push_back(adder);

        // ...a converted long-range benchmark (feedback + SWAP chains)...
        sweep::CircuitSpec bv;
        bv.kind = sweep::CircuitSpec::Kind::kFigure15;
        bv.name = "bv_n13";
        bv.expand_fraction = 1.0;
        bv.expand_seed = 2025;
        overcap.circuits.push_back(bv);

        // ...and the dedicated stride-coupled routing stress.
        sweep::CircuitSpec stress;
        stress.kind = sweep::CircuitSpec::Kind::kRoutingStress;
        stress.routing_stress.qubits = 12;
        stress.routing_stress.layers = cli.quick ? 6 : 10;
        stress.routing_stress.stride = 5;
        overcap.circuits.push_back(stress);
    }
    overcap.schemes = {compiler::SyncScheme::kBisp};
    overcap.topologies = {net::TopologyShape::kTorus,
                          net::TopologyShape::kHeavyHex};
    overcap.routings = {compiler::RoutingMode::kSwap};
    overcap.controllers = kMachineControllers;
    if (!cli.topologies.empty())
        overcap.topologies = cli.topologies;

    // ---- Gate (a): the rejection path still rejects ------------------
    // Compiling an over-capacity workload with routing disabled must
    // fail with the structured capacity diagnostic, not compile.
    bool rejection_ok = true;
    {
        sweep::ExperimentPoint probe;
        probe.circuit = overcap.circuits.front();
        probe.controllers = kMachineControllers;
        const auto r = sweep::runPoint(probe);
        if (r.healthy ||
            r.health.rfind("rejected:", 0) != 0) {
            std::printf("GATE FAILED: over-capacity %s with routing "
                        "disabled did not produce a rejection (health: "
                        "%s)\n",
                        probe.circuit.id().c_str(), r.health.c_str());
            rejection_ok = false;
        } else {
            std::printf("rejection path ok: %s\n", r.health.c_str());
        }
    }

    auto points = sweep::expandGrid(capacity);
    const std::size_t windowed_begin = points.size();
    {
        const auto extra = sweep::expandGrid(windowed);
        points.insert(points.end(), extra.begin(), extra.end());
    }
    const std::size_t overcap_begin = points.size();
    {
        const auto extra = sweep::expandGrid(overcap);
        points.insert(points.end(), extra.begin(), extra.end());
    }
    const auto tasks = sweep::makeTasks(points);
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    std::printf("==== Ablation: SWAP routing (%zu points: %zu capacity, "
                "%zu windowed, %zu over-capacity) ====\n",
                results.size(), windowed_begin,
                overcap_begin - windowed_begin,
                results.size() - overcap_begin);
    std::printf("%-56s %12s %8s %8s %8s\n", "point", "makespan", "syncs",
                "swaps", "health");
    for (const auto &r : results) {
        const Json *swaps = r.metrics.find("swaps_inserted");
        std::printf("%-56s %12lld %8lld %8lld %8s\n", r.label.c_str(),
                    (long long)r.metrics.find("makespan_cycles")->asInt(),
                    (long long)r.metrics.find("syncs")->asInt(),
                    swaps != nullptr ? (long long)swaps->asInt() : 0ll,
                    r.health.c_str());
    }

    // ---- Derived: routed vs unrouted on the capacity grid ------------
    auto cellOf = [](const sweep::PointResult &r) {
        return std::make_pair(r.params.find("workload")->asString(),
                              r.params.find("topology")->asString());
    };
    std::map<std::pair<std::string, std::string>,
             std::map<std::string, const sweep::PointResult *>>
        cells;
    const std::string none_name =
        compiler::toString(compiler::RoutingMode::kNone);
    for (std::size_t i = 0; i < windowed_begin; ++i) {
        const auto &r = results[i];
        const Json *routing = r.params.find("routing");
        cells[cellOf(r)][routing != nullptr ? routing->asString()
                                            : none_name] = &r;
    }
    // Windowed points of grid 1b, keyed by (cell, window).
    std::map<std::pair<std::pair<std::string, std::string>, long long>,
             const sweep::PointResult *>
        windowed_cells;
    for (std::size_t i = windowed_begin; i < overcap_begin; ++i) {
        const auto &r = results[i];
        const Json *window = r.params.find("route_window");
        windowed_cells[{cellOf(r),
                        window != nullptr ? window->asInt() : 1}] = &r;
    }

    std::printf("\n==== routed vs unrouted (capacity sufficient) ====\n");
    std::printf("%-44s %10s %10s %9s %6s\n", "cell", "unrouted", "routed",
                "ratio", "swaps");
    Json ratios = Json::array();
    for (const auto &[key, by_mode] : cells) {
        const auto &[workload, topology] = key;
        auto find = [&by_mode](const char *mode) {
            auto it = by_mode.find(mode);
            return it != by_mode.end() ? it->second : nullptr;
        };
        const auto *unrouted = find("none");
        const auto *routed = find("swap");
        if (unrouted == nullptr || routed == nullptr)
            continue; // axis restricted away: nothing to compare
        const long long base =
            unrouted->metrics.find("makespan_cycles")->asInt();
        const long long with =
            routed->metrics.find("makespan_cycles")->asInt();
        const long long swaps =
            routed->metrics.find("swaps_inserted")->asInt();
        Json entry = Json::object();
        entry["workload"] = workload;
        entry["topology"] = topology;
        entry["unrouted_makespan"] = base;
        entry["routed_makespan"] = with;
        entry["swaps"] = swaps;
        const std::string cell = workload + "/" + topology;
        if (base > 0) {
            const double ratio = double(with) / double(base);
            entry["routed_over_unrouted"] = ratio;
            std::printf("%-44s %10lld %10lld %8.3fx %6lld\n", cell.c_str(),
                        base, with, ratio, swaps);
        } else {
            entry["routed_over_unrouted"] = nullptr;
            std::printf("%-44s %10lld %10lld %9s %6lld\n", cell.c_str(),
                        base, with, "n/a", swaps);
        }
        ratios.push(std::move(entry));
    }

    // ---- Derived: windowed vs greedy + the regression gate -----------
    // Per (cell, window): price the windowed router against the greedy
    // one (same unrouted base). Gate: the windowed column must never be
    // more than 10% worse than greedy on any cell — lookahead is allowed
    // to trade a little on well-connected shapes only within that band,
    // and must pay off where the greedy router thrashes (line).
    std::printf("\n==== windowed vs greedy (capacity sufficient) ====\n");
    std::printf("%-40s %4s %10s %10s %9s %9s %6s\n", "cell", "W",
                "greedy", "windowed", "w/unrtd", "w/greedy", "swaps");
    Json windowed_ratios = Json::array();
    bool windowed_ok = true;
    for (const auto &[key, r] : windowed_cells) {
        const auto &[cell_key, window] = key;
        const auto &[workload, topology] = cell_key;
        const sweep::PointResult *unrouted = nullptr;
        const sweep::PointResult *greedy = nullptr;
        if (auto it = cells.find(cell_key); it != cells.end()) {
            if (auto m = it->second.find("none"); m != it->second.end())
                unrouted = m->second;
            if (auto m = it->second.find("swap"); m != it->second.end())
                greedy = m->second;
        }
        const long long with =
            r->metrics.find("makespan_cycles")->asInt();
        const long long swaps =
            r->metrics.find("swaps_inserted")->asInt();
        Json entry = Json::object();
        entry["workload"] = workload;
        entry["topology"] = topology;
        entry["route_window"] = window;
        entry["windowed_makespan"] = with;
        entry["swaps"] = swaps;
        const long long base =
            unrouted != nullptr
                ? unrouted->metrics.find("makespan_cycles")->asInt()
                : 0;
        const long long gbase =
            greedy != nullptr
                ? greedy->metrics.find("makespan_cycles")->asInt()
                : 0;
        entry["windowed_over_unrouted"] =
            base > 0 ? Json(double(with) / double(base)) : Json(nullptr);
        entry["windowed_vs_greedy"] =
            gbase > 0 ? Json(double(with) / double(gbase))
                      : Json(nullptr);
        const std::string cell = workload + "/" + topology;
        char vs_unrouted[32] = "n/a";
        char vs_greedy[32] = "n/a";
        if (base > 0) {
            std::snprintf(vs_unrouted, sizeof(vs_unrouted), "%.3fx",
                          double(with) / double(base));
        }
        if (gbase > 0) {
            std::snprintf(vs_greedy, sizeof(vs_greedy), "%.3fx",
                          double(with) / double(gbase));
        }
        std::printf("%-40s %4lld %10lld %10lld %9s %9s %6lld\n",
                    cell.c_str(), window, gbase, with, vs_unrouted,
                    vs_greedy, swaps);
        if (gbase > 0 && double(with) > 1.10 * double(gbase)) {
            std::printf("GATE FAILED: windowed router (window %lld) "
                        "regresses %s by %.3fx over greedy (> 1.10x)\n",
                        window, cell.c_str(),
                        double(with) / double(gbase));
            windowed_ok = false;
        }
        windowed_ratios.push(std::move(entry));
    }

    // ---- Gates (b) + (c): over-capacity cells ------------------------
    // Per shape: >= 2 distinct workloads must run healthy over-capacity,
    // and the dynamic ones (feedback present) must have routed for real.
    std::map<std::string, int> healthy_workloads;
    bool overcap_ok = true;
    Json overcap_json = Json::array();
    for (std::size_t i = overcap_begin; i < results.size(); ++i) {
        const auto &r = results[i];
        const std::string workload =
            r.params.find("workload")->asString();
        const std::string topology =
            r.params.find("topology")->asString();
        const long long swaps =
            r.metrics.find("swaps_inserted")->asInt();
        Json entry = Json::object();
        entry["workload"] = workload;
        entry["topology"] = topology;
        entry["makespan"] = r.metrics.find("makespan_cycles")->asInt();
        entry["swaps"] = swaps;
        entry["healthy"] = r.healthy;
        overcap_json.push(std::move(entry));
        if (r.healthy)
            ++healthy_workloads[topology];
        else {
            std::printf("GATE FAILED: over-capacity %s unhealthy (%s)\n",
                        r.label.c_str(), r.health.c_str());
            overcap_ok = false;
        }
        // The stride-coupled probe is constructed so placement cannot
        // make its post-feedback pairs adjacent: it must truly route.
        // (bv/adder may legitimately need zero swaps on well-connected
        // shapes — their gate is compiling and running at all.)
        const bool is_probe = workload.rfind("routing_stress", 0) == 0;
        if (r.healthy && is_probe && swaps == 0) {
            std::printf("GATE FAILED: over-capacity probe %s inserted "
                        "no swaps\n",
                        r.label.c_str());
            overcap_ok = false;
        }
    }
    for (const auto &[topology, healthy] : healthy_workloads) {
        if (healthy < 2) {
            std::printf("GATE FAILED: only %d over-capacity workloads "
                        "healthy on %s (need >= 2)\n",
                        healthy, topology.c_str());
            overcap_ok = false;
        }
    }
    if (overcap_ok && !healthy_workloads.empty()) {
        std::printf("\nover-capacity gate ok: every workload compiled and "
                    "ran healthy on every probed shape\n");
    }

    sweep::BenchReport report;
    report.bench = "ablation_routing";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.config["machine_controllers"] = kMachineControllers;
    Json shapes = Json::array();
    for (const auto shape : overcap.topologies)
        shapes.push(net::toString(shape));
    report.config["overcap_shapes"] = std::move(shapes);
    Json windows = Json::array();
    for (const unsigned window : windowed.route_windows)
        windows.push((long long)window);
    report.config["route_windows"] = std::move(windows);
    report.points = results;
    report.derived["routed_vs_unrouted"] = std::move(ratios);
    report.derived["windowed_vs_greedy"] = std::move(windowed_ratios);
    report.derived["over_capacity"] = std::move(overcap_json);

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() && rejection_ok && overcap_ok &&
                   windowed_ok
               ? 0
               : 1;
}
