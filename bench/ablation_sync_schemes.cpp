/**
 * @file
 * Ablation A: the three synchronization schemes (BISP, demand-driven,
 * lock-step) across feedback density. As the fraction of layers followed
 * by measure+feedback grows, lock-step's broadcast-per-measurement and
 * serialization penalties grow linearly, demand-driven pays a bounce per
 * re-synchronization, and BISP masks what the booking lead allows — the
 * quantitative version of Section 2.1's qualitative comparison.
 *
 * The router design space rides along as first-class grid axes: the
 * region-sync notification policy (`--policy paper|robust`) and the tree
 * fan-out (`--tree-arity N`) sweep jointly with the schemes, showing that
 * the scheme ordering is invariant to the inter-layer tree design while
 * the absolute sync cost tracks tree height.
 *
 * Sweep-harness port: the (feedback density x scheme x policy x arity)
 * grid runs on the SweepRunner (--threads) and serializes with --json.
 */
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const std::vector<double> fractions =
        cli.quick ? std::vector<double>{0.0, 0.4, 1.0}
                  : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

    sweep::GridSpec grid;
    std::map<std::string, double> fraction_of; // workload id -> fraction
    for (const double frac : fractions) {
        sweep::CircuitSpec spec;
        spec.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        spec.random.qubits = cli.quick ? 12 : 24;
        spec.random.layers = cli.quick ? 15 : 30;
        spec.random.feedback_fraction = frac;
        spec.random.feedback_span = 4;
        spec.random.seed = 11;
        spec.expand_fraction = 1.0;
        spec.expand_seed = 3;
        fraction_of[spec.id()] = frac;
        grid.circuits.push_back(std::move(spec));
    }
    grid.schemes = {compiler::SyncScheme::kBisp,
                    compiler::SyncScheme::kDemand,
                    compiler::SyncScheme::kLockStep};
    grid.policies = {net::RouterPolicy::Robust, net::RouterPolicy::Paper};
    grid.tree_arities = {4, 2};
    if (!cli.topologies.empty())
        grid.topologies = cli.topologies;
    if (!cli.policies.empty())
        grid.policies = cli.policies;
    if (!cli.tree_arities.empty())
        grid.tree_arities = cli.tree_arities;

    const auto tasks = sweep::makeTasks(sweep::expandGrid(grid));
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    bench::headline("Ablation: sync schemes vs feedback density");
    std::printf("%22s %12s %12s %12s %18s\n", "feedback/cell", "bisp(us)",
                "demand(us)", "lockstep(us)", "lockstep/bisp");

    sweep::BenchReport report;
    report.bench = "ablation_sync_schemes";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    // Group cells by every axis but the scheme (keyed lookups: axis
    // restrictions or new axes cannot skew the pairing).
    using CellKey = std::tuple<std::string, std::string, std::string,
                               long long>;
    std::map<CellKey, std::map<std::string, double>> cells;
    std::vector<CellKey> cell_order;
    const std::string default_policy =
        net::toString(net::RouterPolicy::Robust);
    for (const auto &r : results) {
        // Fallbacks are the axis defaults the emission omits — spelled
        // via toString(default) so they can never drift apart.
        auto param = [&r](const char *key, const char *fallback) {
            const Json *v = r.params.find(key);
            return v != nullptr ? v->asString() : std::string(fallback);
        };
        const Json *arity = r.params.find("tree_arity");
        const CellKey key{
            r.params.find("workload")->asString(),
            param("topology", net::toString(net::TopologyShape::kLine)),
            param("policy", default_policy.c_str()),
            arity != nullptr ? arity->asInt()
                             : (long long)sweep::kDefaultTreeArity};
        if (cells.find(key) == cells.end())
            cell_order.push_back(key);
        if (!r.healthy || r.metrics.find("violations")->asInt() != 0)
            std::printf("UNHEALTHY run (%s)\n", r.label.c_str());
        cells[key][r.params.find("scheme")->asString()] =
            r.metrics.find("makespan_us")->asDouble();
    }

    Json ratios = Json::array();
    for (const auto &key : cell_order) {
        const auto &[workload, topology, policy, arity] = key;
        const auto &by_scheme = cells[key];
        const double bisp = by_scheme.count("bisp") ? by_scheme.at("bisp")
                                                    : 0.0;
        const double demand =
            by_scheme.count("demand") ? by_scheme.at("demand") : 0.0;
        const double lockstep =
            by_scheme.count("lockstep") ? by_scheme.at("lockstep") : 0.0;

        char frac_text[16];
        std::snprintf(frac_text, sizeof(frac_text), "%.1f",
                      fraction_of.count(workload) ? fraction_of[workload]
                                                  : -1.0);
        std::string row_name = frac_text;
        if (topology != net::toString(net::TopologyShape::kLine))
            row_name += "/" + topology;
        if (policy != default_policy)
            row_name += "/" + policy;
        if (arity != sweep::kDefaultTreeArity)
            row_name += "/arity" + std::to_string(arity);

        Json entry = Json::object();
        entry["feedback_fraction"] =
            fraction_of.count(workload) ? fraction_of[workload] : -1.0;
        entry["topology"] = topology;
        entry["policy"] = policy;
        entry["tree_arity"] = arity;
        if (bisp > 0.0) {
            std::printf("%22s %12.2f %12.2f %12.2f %17.2fx\n",
                        row_name.c_str(), bisp, demand, lockstep,
                        lockstep / bisp);
            entry["lockstep_over_bisp"] = lockstep / bisp;
        } else {
            std::printf("%22s %12.2f %12.2f %12.2f %18s\n",
                        row_name.c_str(), bisp, demand, lockstep, "n/a");
            entry["lockstep_over_bisp"] = nullptr;
        }
        ratios.push(std::move(entry));
    }
    report.derived["lockstep_over_bisp"] = std::move(ratios);

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
