/**
 * @file
 * Ablation A: the three synchronization schemes (BISP, demand-driven,
 * lock-step) across feedback density. As the fraction of layers followed
 * by measure+feedback grows, lock-step's broadcast-per-measurement and
 * serialization penalties grow linearly, demand-driven pays a bounce per
 * re-synchronization, and BISP masks what the booking lead allows — the
 * quantitative version of Section 2.1's qualitative comparison.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    bench::headline("Ablation: sync schemes vs feedback density");
    std::printf("%10s %12s %12s %12s %18s\n", "feedback", "bisp(us)",
                "demand(us)", "lockstep(us)", "lockstep/bisp");

    for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        workloads::RandomDynamicOptions opt;
        opt.qubits = 24;
        opt.layers = 30;
        opt.feedback_fraction = frac;
        opt.feedback_span = 4;
        opt.seed = 11;
        auto circuit = workloads::randomDynamic(opt);
        Rng er(3);
        auto dyn = workloads::expandNonAdjacentGates(circuit, 1.0, er);

        double us[3] = {};
        int i = 0;
        for (auto scheme :
             {compiler::SyncScheme::kBisp, compiler::SyncScheme::kDemand,
              compiler::SyncScheme::kLockStep}) {
            const auto r = bench::execute(dyn, scheme);
            if (r.deadlock || r.violations) {
                std::printf("UNHEALTHY run (%s)\n",
                            compiler::toString(scheme));
            }
            us[i++] = r.makespan_us;
        }
        std::printf("%10.1f %12.2f %12.2f %12.2f %17.2fx\n", frac, us[0],
                    us[1], us[2], us[2] / us[0]);
    }
    return 0;
}
