/**
 * @file
 * Ablation A: the three synchronization schemes (BISP, demand-driven,
 * lock-step) across feedback density. As the fraction of layers followed
 * by measure+feedback grows, lock-step's broadcast-per-measurement and
 * serialization penalties grow linearly, demand-driven pays a bounce per
 * re-synchronization, and BISP masks what the booking lead allows — the
 * quantitative version of Section 2.1's qualitative comparison.
 *
 * Sweep-harness port: the (feedback density x scheme) grid runs on the
 * SweepRunner (--threads) and serializes with --json.
 */
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const std::vector<double> fractions =
        cli.quick ? std::vector<double>{0.0, 0.4, 1.0}
                  : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

    sweep::GridSpec grid;
    for (const double frac : fractions) {
        sweep::CircuitSpec spec;
        spec.kind = sweep::CircuitSpec::Kind::kRandomDynamic;
        spec.random.qubits = cli.quick ? 12 : 24;
        spec.random.layers = cli.quick ? 15 : 30;
        spec.random.feedback_fraction = frac;
        spec.random.feedback_span = 4;
        spec.random.seed = 11;
        spec.expand_fraction = 1.0;
        spec.expand_seed = 3;
        grid.circuits.push_back(std::move(spec));
    }
    grid.schemes = {compiler::SyncScheme::kBisp,
                    compiler::SyncScheme::kDemand,
                    compiler::SyncScheme::kLockStep};
    if (!cli.topologies.empty())
        grid.topologies = cli.topologies;

    const auto tasks = sweep::makeTasks(sweep::expandGrid(grid));
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    bench::headline("Ablation: sync schemes vs feedback density");
    std::printf("%10s %12s %12s %12s %18s\n", "feedback", "bisp(us)",
                "demand(us)", "lockstep(us)", "lockstep/bisp");

    sweep::BenchReport report;
    report.bench = "ablation_sync_schemes";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    // Axis order is circuit > scheme > topology: each feedback fraction
    // contributes a block of schemes x topologies points, with the
    // scheme's partner for a given topology one topology-stride apart.
    Json ratios = Json::array();
    const std::size_t schemes = grid.schemes.size();
    const std::size_t stride = grid.topologies.size();
    for (std::size_t row = 0; row * schemes * stride < results.size();
         ++row) {
        const double frac = fractions[row];
        for (std::size_t t = 0; t < stride; ++t) {
            double us[3] = {};
            const std::string &topo_name =
                results[row * schemes * stride + t]
                    .params.find("topology")
                    ->asString();
            for (std::size_t s = 0; s < schemes; ++s) {
                const auto &r =
                    results[(row * schemes + s) * stride + t];
                if (!r.healthy ||
                    r.metrics.find("violations")->asInt() != 0) {
                    std::printf("UNHEALTHY run (%s)\n",
                                r.label.c_str());
                }
                us[s] = r.metrics.find("makespan_us")->asDouble();
            }
            char frac_text[16];
            std::snprintf(frac_text, sizeof(frac_text), "%.1f", frac);
            std::string row_name = frac_text;
            if (topo_name != "line")
                row_name += "/" + topo_name;
            Json entry = Json::object();
            entry["feedback_fraction"] = frac;
            entry["topology"] = topo_name;
            if (us[0] > 0.0) {
                std::printf("%10s %12.2f %12.2f %12.2f %17.2fx\n",
                            row_name.c_str(), us[0], us[1], us[2],
                            us[2] / us[0]);
                entry["lockstep_over_bisp"] = us[2] / us[0];
            } else {
                std::printf("%10s %12.2f %12.2f %12.2f %18s\n",
                            row_name.c_str(), us[0], us[1], us[2], "n/a");
                entry["lockstep_over_bisp"] = nullptr;
            }
            ratios.push(std::move(entry));
        }
    }
    report.derived["lockstep_over_bisp"] = std::move(ratios);

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
