/**
 * @file
 * Figure 16 reproduction: infidelity of the long-range CNOT circuit
 * (Figure 14) under Distributed-HISQ vs the lock-step baseline, sweeping
 * the qubit relaxation time T1 (= T2) from 30 us to 300 us.
 *
 * Mechanism (Section 6.4.5): the baseline's shared program flow serializes
 * the measurement rounds and corrections behind central-hub broadcasts
 * (with a superconducting-feedback-scale hub latency of ~500 ns each way —
 * the paper's constant-latency assumption), while Distributed-HISQ
 * performs the feedback concurrently per endpoint with neighbour-level
 * messages. Infidelity follows the live-window decoherence model
 * 1 - prod_q exp(-live_q / T1), so the reduction tracks the live-time
 * ratio; the paper reports a roughly constant ~5x.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    // The Figure 14 scenario: a teleportation-based long-range CNOT chain
    // (three back-to-back long-range CNOTs across a 9-qubit line, as in a
    // distributed-QFT slice) — multiple measurement+feed-forward rounds.
    const unsigned n = 9;
    compiler::Circuit circuit(n, "fig14_lrcnot_chain");
    circuit.gate(q::Gate::kH, 0);
    circuit.gate(q::Gate::kH, 4);
    // Ancilla reuse without active reset (Pauli-frame corrected), as in
    // the paper's dynamic-circuit conversion: the timing structure is what
    // matters for the fidelity comparison.
    workloads::appendLongRangeCnotLine(circuit, 0, 4);
    workloads::appendLongRangeCnotLine(circuit, 4, 8);
    workloads::appendLongRangeCnotLine(circuit, 8, 0);

    compiler::CompilerConfig base_cc;
    base_cc.scheme = compiler::SyncScheme::kLockStep;
    // Superconducting feedback chains cost O(1.5 us) round trip through
    // a central controller; 175 cycles = 700 ns each way.
    base_cc.star_latency = 175;
    compiler::CompilerConfig hisq_cc;
    hisq_cc.scheme = compiler::SyncScheme::kBisp;

    const auto base = bench::executeWith(circuit, base_cc,
                                         /*state_vector=*/true);
    const auto hisq = bench::executeWith(circuit, hisq_cc,
                                         /*state_vector=*/true);

    bench::headline("Figure 16: infidelity vs relaxation time");
    std::printf("execution: baseline %.2f us, dhisq %.2f us "
                "(live-window cycles: %llu vs %llu)\n",
                base.makespan_us, hisq.makespan_us,
                (unsigned long long)base.activity.totalLiveCycles(),
                (unsigned long long)hisq.activity.totalLiveCycles());
    std::printf("health: baseline %llu violations, dhisq %llu "
                "(coincidence %llu/%llu)\n\n",
                (unsigned long long)base.violations,
                (unsigned long long)hisq.violations,
                (unsigned long long)base.coincidence,
                (unsigned long long)hisq.coincidence);
    std::printf("%10s %16s %16s %12s\n", "T1 (us)", "baseline",
                "dhisq", "reduction");

    for (double t1 = 30.0; t1 <= 300.0 + 1e-9; t1 += 30.0) {
        const double inf_base =
            q::decoherenceInfidelity(base.activity, t1);
        const double inf_hisq =
            q::decoherenceInfidelity(hisq.activity, t1);
        std::printf("%10.0f %16.3e %16.3e %11.2fx\n", t1, inf_base,
                    inf_hisq, inf_base / inf_hisq);
    }
    std::printf("\npaper: ~5x constant infidelity reduction across the "
                "sweep\n");
    return 0;
}
