/**
 * @file
 * Figure 16 reproduction: infidelity of the long-range CNOT circuit
 * (Figure 14) under Distributed-HISQ vs the lock-step baseline, sweeping
 * the qubit relaxation time T1 (= T2) from 30 us to 300 us.
 *
 * Mechanism (Section 6.4.5): the baseline's shared program flow serializes
 * the measurement rounds and corrections behind central-hub broadcasts
 * (with a superconducting-feedback-scale hub latency of ~500 ns each way —
 * the paper's constant-latency assumption), while Distributed-HISQ
 * performs the feedback concurrently per endpoint with neighbour-level
 * messages. Infidelity follows the live-window decoherence model
 * 1 - prod_q exp(-live_q / T1), so the reduction tracks the live-time
 * ratio; the paper reports a roughly constant ~5x.
 *
 * Sweep-harness port: the two scheme points run on the SweepRunner
 * (--threads), the per-T1 infidelities are computed inside each point from
 * the per-qubit activity and serialized with --json.
 */
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

namespace {

std::vector<double>
t1Sweep()
{
    std::vector<double> t1s;
    for (double t1 = 30.0; t1 <= 300.0 + 1e-9; t1 += 30.0)
        t1s.push_back(t1);
    return t1s;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);
    const std::vector<double> t1s = t1Sweep();

    // The Figure 14 scenario: three back-to-back long-range CNOTs across
    // a 9-qubit line (a distributed-QFT slice) — multiple measurement +
    // feed-forward rounds. Ancillas are reused without active reset
    // (Pauli-frame corrected), as in the paper's conversion.
    sweep::CircuitSpec chain;
    chain.kind = sweep::CircuitSpec::Kind::kLrCnotChain;
    chain.qubits = 9;

    sweep::ExperimentPoint base_point;
    base_point.circuit = chain;
    base_point.config.scheme = compiler::SyncScheme::kLockStep;
    // Superconducting feedback chains cost O(1.5 us) round trip through
    // a central controller; 175 cycles = 700 ns each way. The topology's
    // hub latency is the single source of truth for that constant.
    base_point.hub_latency = 175;
    base_point.state_vector = true;

    sweep::ExperimentPoint hisq_point;
    hisq_point.circuit = chain;
    hisq_point.config.scheme = compiler::SyncScheme::kBisp;
    hisq_point.state_vector = true;

    // Each point computes its own T1 -> infidelity curve from the
    // per-qubit live windows (which are not serialized wholesale).
    const sweep::MetricsHook infidelities =
        [&t1s](const sweep::ExecResult &r, sweep::PointResult &out) {
            Json curve = Json::array();
            for (const double t1 : t1s) {
                Json sample = Json::object();
                sample["t1_us"] = t1;
                sample["infidelity"] =
                    q::decoherenceInfidelity(r.activity, t1);
                curve.push(std::move(sample));
            }
            out.metrics["infidelity_vs_t1"] = std::move(curve);
        };

    const auto tasks =
        sweep::makeTasks({base_point, hisq_point}, infidelities);
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);
    const auto &base = results[0];
    const auto &hisq = results[1];

    bench::headline("Figure 16: infidelity vs relaxation time");
    std::printf("execution: baseline %.2f us, dhisq %.2f us "
                "(live-window cycles: %lld vs %lld)\n",
                base.metrics.find("makespan_us")->asDouble(),
                hisq.metrics.find("makespan_us")->asDouble(),
                (long long)base.metrics.find("live_cycles")->asInt(),
                (long long)hisq.metrics.find("live_cycles")->asInt());
    std::printf("health: baseline %lld violations, dhisq %lld "
                "(coincidence %lld/%lld)\n\n",
                (long long)base.metrics.find("violations")->asInt(),
                (long long)hisq.metrics.find("violations")->asInt(),
                (long long)base.metrics.find("coincidence")->asInt(),
                (long long)hisq.metrics.find("coincidence")->asInt());
    std::printf("%10s %16s %16s %12s\n", "T1 (us)", "baseline", "dhisq",
                "reduction");

    sweep::BenchReport report;
    report.bench = "fig16_infidelity";
    report.config["circuit"] = chain.id();
    report.config["baseline_star_latency"] = base_point.hub_latency;
    report.points = results;

    Json reductions = Json::array();
    const auto &base_curve =
        base.metrics.find("infidelity_vs_t1")->asArray();
    const auto &hisq_curve =
        hisq.metrics.find("infidelity_vs_t1")->asArray();
    for (std::size_t i = 0; i < t1s.size(); ++i) {
        const double inf_base =
            base_curve[i].find("infidelity")->asDouble();
        const double inf_hisq =
            hisq_curve[i].find("infidelity")->asDouble();
        Json entry = Json::object();
        entry["t1_us"] = t1s[i];
        if (inf_hisq > 0.0) {
            std::printf("%10.0f %16.3e %16.3e %11.2fx\n", t1s[i],
                        inf_base, inf_hisq, inf_base / inf_hisq);
            entry["reduction"] = inf_base / inf_hisq;
        } else {
            std::printf("%10.0f %16.3e %16.3e %12s\n", t1s[i], inf_base,
                        inf_hisq, "n/a");
            entry["reduction"] = nullptr;
        }
        reductions.push(std::move(entry));
    }
    report.derived["reduction_vs_t1"] = std::move(reductions);
    std::printf("\npaper: ~5x constant infidelity reduction across the "
                "sweep\n");

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return report.allHealthy() ? 0 : 1;
}
