/**
 * @file
 * Figure 15 reproduction: normalized end-to-end runtime of Distributed-HISQ
 * (BISP) against the lock-step baseline on the converted dynamic-circuit
 * benchmark suite (adder, bv, logical_t, qft, w_state at the paper's
 * sizes). The paper reports an average normalized runtime of 0.772
 * (a 22.8% reduction), with `bv` the one case the baseline wins because of
 * its optimistic constant-latency broadcast assumption.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    bench::headline(
        "Figure 15: normalized runtime, Distributed-HISQ vs lock-step");
    std::printf("%-16s %14s %14s %12s %20s\n", "benchmark",
                "baseline(us)", "dhisq(us)", "normalized", "b-slip/b-coin/d-slip");

    double sum_norm = 0.0;
    unsigned count = 0;

    for (const auto &name : workloads::figure15Names()) {
        auto circuit = workloads::figure15Benchmark(name);
        Rng expand_rng(2025);
        auto dyn =
            workloads::expandNonAdjacentGates(circuit, 1.0, expand_rng);

        const auto base =
            bench::execute(dyn, compiler::SyncScheme::kLockStep);
        const auto hisq = bench::execute(dyn, compiler::SyncScheme::kBisp);

        const double norm = hisq.makespan_us / base.makespan_us;
        sum_norm += norm;
        ++count;
        // BISP must be violation-free; the baseline's slips are the
        // issue-rate pressure the paper's Section 1.1 attributes to
        // lock-step result distribution.
        char health[48];
        if (hisq.deadlock || base.deadlock) {
            std::snprintf(health, sizeof(health), "DEADLOCK");
        } else if (hisq.coincidence != 0) {
            // BISP's cycle-level commitment guarantee must never break.
            std::snprintf(health, sizeof(health), "DHISQ-COINC!");
        } else {
            std::snprintf(health, sizeof(health), "%llu/%llu/%llu",
                          (unsigned long long)(base.violations -
                                               base.coincidence),
                          (unsigned long long)base.coincidence,
                          (unsigned long long)(hisq.violations -
                                               hisq.coincidence));
        }
        std::printf("%-16s %14.2f %14.2f %12.3f %20s\n", name.c_str(),
                    base.makespan_us, hisq.makespan_us, norm, health);
    }

    std::printf("%-16s %14s %14s %12.3f\n", "avg", "", "",
                sum_norm / count);
    std::printf(
        "(b-slip/b-coin/d-slip = baseline issue-rate slips, baseline\n"
        "two-qubit coincidence breaks, dhisq issue-rate slips. BISP's\n"
        "coincidence violations are asserted zero: cycle-level gate\n"
        "alignment holds even when bv's machine-spanning parity\n"
        "feed-forward saturates the classical issue rate — bv is the\n"
        "paper's anomalous benchmark too.)\n");
    std::printf("\npaper: avg normalized runtime 0.772 "
                "(22.8%% reduction); bv favours the baseline\n");
    return 0;
}
