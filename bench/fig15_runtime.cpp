/**
 * @file
 * Figure 15 reproduction: normalized end-to-end runtime of Distributed-HISQ
 * (BISP) against the lock-step baseline on the converted dynamic-circuit
 * benchmark suite (adder, bv, logical_t, qft, w_state at the paper's
 * sizes). The paper reports an average normalized runtime of 0.772
 * (a 22.8% reduction), with `bv` the one case the baseline wins because of
 * its optimistic constant-latency broadcast assumption.
 *
 * Runs on the parallel sweep harness: `--threads N` distributes the grid
 * across workers (results are asserted identical to a serial run),
 * `--json <path>` emits the dhisq-bench-v1 report, `--quick` shrinks the
 * instances for the CI smoke job. Exits nonzero on deadlock or a BISP
 * coincidence (commitment-guarantee) break.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/report.hpp"

using namespace dhisq;

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseCliOrExit(argc, argv);

    const std::vector<std::string> names =
        cli.quick ? std::vector<std::string>{"adder_n97", "bv_n60",
                                             "logical_t_n108", "qft_n30",
                                             "w_state_n80"}
                  : workloads::figure15Names();

    sweep::GridSpec grid;
    for (const auto &name : names) {
        sweep::CircuitSpec spec;
        spec.kind = sweep::CircuitSpec::Kind::kFigure15;
        spec.name = name;
        spec.expand_fraction = 1.0;
        spec.expand_seed = 2025;
        grid.circuits.push_back(std::move(spec));
    }
    // Scheme is the inner axis: points land as [baseline, dhisq] pairs.
    grid.schemes = {compiler::SyncScheme::kLockStep,
                    compiler::SyncScheme::kBisp};
    if (!cli.topologies.empty())
        grid.topologies = cli.topologies;
    grid.sim_threads = cli.sim_threads;

    const auto tasks = sweep::makeTasks(sweep::expandGrid(grid));
    if (cli.list) {
        sweep::listTasks(tasks);
        return 0;
    }

    sweep::SweepRunner::Options ropt;
    ropt.threads = cli.threads;
    sweep::SweepRunner runner(ropt);
    const auto results = runner.run(tasks);

    bench::headline(
        "Figure 15: normalized runtime, Distributed-HISQ vs lock-step");
    std::printf("%-16s %14s %14s %12s %20s\n", "benchmark",
                "baseline(us)", "dhisq(us)", "normalized",
                "b-slip/b-coin/d-slip");

    sweep::BenchReport report;
    report.bench = "fig15_runtime";
    report.config["suite"] = cli.quick ? "quick" : "paper";
    report.points = results;

    Json normalized = Json::array();
    double sum_norm = 0.0;
    unsigned count = 0;
    bool unhealthy = false;

    // Axis order is circuit > scheme > topology: each circuit contributes
    // a block of [lockstep x topologies..., bisp x topologies...], so the
    // baseline/dhisq partner sits one topology-axis stride apart.
    const std::size_t stride = grid.topologies.size();
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t block = 0; block + 2 * stride <= results.size();
         block += 2 * stride) {
        for (std::size_t t = 0; t < stride; ++t)
            pairs.emplace_back(block + t, block + stride + t);
    }
    for (const auto &[base_i, hisq_i] : pairs) {
        const auto &base = results[base_i];
        const auto &hisq = results[hisq_i];
        std::string name = base.params.find("workload")->asString();
        const std::string &topo =
            base.params.find("topology")->asString();
        if (topo != "line")
            name += "/" + topo;
        const double base_us =
            base.metrics.find("makespan_us")->asDouble();
        const double hisq_us =
            hisq.metrics.find("makespan_us")->asDouble();

        char health[48];
        char norm_text[24];
        Json norm_value; // null = n/a
        if (!base.healthy || !hisq.healthy) {
            // BISP's cycle-level commitment guarantee must never break,
            // and nothing may deadlock.
            std::snprintf(health, sizeof(health), "%s",
                          !hisq.healthy ? hisq.health.c_str()
                                        : base.health.c_str());
            std::snprintf(norm_text, sizeof(norm_text), "n/a");
            unhealthy = true;
        } else if (base_us <= 0.0) {
            // An empty baseline makespan makes "normalized" meaningless;
            // report n/a instead of printing inf/nan.
            std::snprintf(health, sizeof(health), "empty-baseline");
            std::snprintf(norm_text, sizeof(norm_text), "n/a");
        } else {
            const double norm = hisq_us / base_us;
            sum_norm += norm;
            ++count;
            norm_value = norm;
            std::snprintf(norm_text, sizeof(norm_text), "%.3f", norm);
            // The baseline's slips are the issue-rate pressure the
            // paper's Section 1.1 attributes to lock-step distribution.
            const auto slips = [](const sweep::PointResult &r) {
                return (unsigned long long)(r.metrics.find("violations")
                                                ->asInt() -
                                            r.metrics.find("coincidence")
                                                ->asInt());
            };
            std::snprintf(
                health, sizeof(health), "%llu/%llu/%llu", slips(base),
                (unsigned long long)base.metrics.find("coincidence")
                    ->asInt(),
                slips(hisq));
        }
        std::printf("%-16s %14.2f %14.2f %12s %20s\n", name.c_str(),
                    base_us, hisq_us, norm_text, health);

        Json entry = Json::object();
        entry["workload"] = name;
        entry["normalized"] = norm_value;
        normalized.push(std::move(entry));
    }

    if (count > 0) {
        std::printf("%-16s %14s %14s %12.3f\n", "avg", "", "",
                    sum_norm / count);
        report.derived["avg_normalized"] = sum_norm / count;
    } else {
        std::printf("%-16s %14s %14s %12s\n", "avg", "", "", "n/a");
        report.derived["avg_normalized"] = nullptr;
    }
    report.derived["normalized"] = std::move(normalized);
    std::printf("\npaper: avg normalized runtime 0.772 "
                "(22.8%% reduction); bv favours the baseline\n");

    if (!cli.json_path.empty()) {
        if (auto st = sweep::writeBenchJson(cli.json_path, report); !st) {
            std::fprintf(stderr, "%s\n", st.message().c_str());
            return 1;
        }
    }
    return (unhealthy || !report.allHealthy()) ? 1 : 0;
}
