/**
 * @file
 * google-benchmark micro kernels: throughput of the simulator building
 * blocks (event kernel, state vector, assembler, compiler, end-to-end
 * machine) so performance regressions in the substrate are visible.
 */
#include <benchmark/benchmark.h>

#include "compiler/cache/cache.hpp"
#include "compiler/compiler.hpp"
#include "compiler/passes/congestion.hpp"
#include "isa/assembler.hpp"
#include "common/rng.hpp"
#include "quantum/state_vector.hpp"
#include "quantum/tableau.hpp"
#include "runtime/machine.hpp"
#include "sim/scheduler.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

static void
BM_SchedulerEventThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Scheduler sched;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i) {
            sched.schedule(Cycle(i), [&fired, &sched, i] {
                ++fired;
                sched.scheduleIn(1000, [&fired] { ++fired; });
            });
        }
        sched.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SchedulerEventThroughput);

static void
BM_SchedulerCancelHeavy(benchmark::State &state)
{
    // The sync-guard pattern that dominates large sweeps: every controller
    // schedules a far-future timeout guard, then cancels it when the real
    // event arrives. The kernel stresses cancellation bookkeeping: n live
    // guards are cancelled while n foreground events drain.
    const int n = int(state.range(0));
    std::vector<sim::EventId> guards(std::size_t(n), sim::kNoEvent);
    for (auto _ : state) {
        sim::Scheduler sched;
        std::uint64_t fired = 0;
        for (int i = 0; i < n; ++i) {
            guards[std::size_t(i)] = sched.schedule(
                Cycle(1000000 + i), [&fired] { ++fired; });
        }
        for (int i = 0; i < n; ++i) {
            sched.schedule(Cycle(i), [&sched, &guards, &fired, i] {
                ++fired;
                sched.cancel(guards[std::size_t(i)]);
            });
        }
        sched.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * uint64_t(n) * 2);
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(1000)->Arg(10000);

static void
BM_StateVectorGate(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply1q(q::Gate::kH, q);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorGate)->Arg(8)->Arg(12)->Arg(16);

static void
BM_StateVectorCz(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply2q(q::Gate::kCZ, q, (q + 1) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateVectorCz)->Arg(8)->Arg(16);

// -------------------------------------------------------------------------
// Dense classified kernels vs the general matmul path. Each BM_Dense*
// pair times one gate class through apply1q/apply2q (which dispatch on
// classifyGate()) against the same gate forced through the explicit
// applyMatrix1q/2q general kernel it used to take.
// -------------------------------------------------------------------------

static void
BM_DenseDiagRz(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply1q(q::Gate::kRz, q, 0.37); // diagonal kernel
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseDiagRz)->Arg(8)->Arg(16);

static void
BM_DenseDiagRzGeneral(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.applyMatrix1q(q::matrix1q(q::Gate::kRz, 0.37), q);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseDiagRzGeneral)->Arg(8)->Arg(16);

static void
BM_DensePermX(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply1q(q::Gate::kX, q); // permutation kernel: pure moves
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DensePermX)->Arg(8)->Arg(16);

static void
BM_DenseCnot(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply2q(q::Gate::kCNOT, q, (q + 1) % n); // controlled kernel
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseCnot)->Arg(8)->Arg(16);

static void
BM_DenseCnotGeneral(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    unsigned q = 0;
    for (auto _ : state) {
        sv.applyMatrix2q(q::matrix2q(q::Gate::kCNOT), q, (q + 1) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseCnotGeneral)->Arg(8)->Arg(16);

static void
BM_DenseMeasure(benchmark::State &state)
{
    // Single-pass measurement path: one blocked p1 reduction + one
    // collapse sweep per measure (was three passes).
    const unsigned n = unsigned(state.range(0));
    q::StateVector sv(n);
    Rng rng(7);
    unsigned q = 0;
    for (auto _ : state) {
        sv.apply1q(q::Gate::kH, q); // keep the outcome undetermined
        benchmark::DoNotOptimize(sv.measure(q, rng));
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseMeasure)->Arg(8)->Arg(16);

// -------------------------------------------------------------------------
// Backend-tier kernels: the same Clifford shot driven through the abstract
// q::Backend interface on both implementations, so the numbers include the
// virtual dispatch the device actually pays. bench/backend_kernels.cpp runs
// the same shots under the regression-gated dhisq-bench-v1 artifact.
// -------------------------------------------------------------------------

/** One GHZ shot: H + CNOT chain + measure every qubit. */
static void
ghzShot(q::Backend &b, Rng &rng)
{
    b.reset();
    const unsigned n = b.numQubits();
    b.apply1q(q::Gate::kH, 0);
    for (QubitId i = 0; i + 1 < n; ++i)
        b.apply2q(q::Gate::kCNOT, i, i + 1);
    for (QubitId i = 0; i < n; ++i)
        benchmark::DoNotOptimize(b.measure(i, rng));
}

/**
 * One syndrome-extraction shot: odd qubits are ancillas reading the ZZ
 * parity of their even neighbours; four rounds of extract + active reset.
 */
static void
syndromeShot(q::Backend &b, Rng &rng)
{
    b.reset();
    const unsigned n = b.numQubits();
    for (QubitId d = 0; d < n; d += 2)
        b.apply1q(q::Gate::kH, d);
    for (int round = 0; round < 4; ++round) {
        for (QubitId a = 1; a < n; a += 2) {
            b.apply2q(q::Gate::kCNOT, a - 1, a);
            if (a + 1 < n)
                b.apply2q(q::Gate::kCNOT, a + 1, a);
        }
        for (QubitId a = 1; a < n; a += 2)
            b.resetQubit(a, rng);
    }
}

static void
BM_BackendGhzDense(benchmark::State &state)
{
    q::StateVector sv(unsigned(state.range(0)));
    Rng rng(1);
    for (auto _ : state)
        ghzShot(sv, rng);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackendGhzDense)->Arg(8)->Arg(14);

static void
BM_BackendGhzTableau(benchmark::State &state)
{
    q::TableauState tab(unsigned(state.range(0)));
    Rng rng(1);
    for (auto _ : state)
        ghzShot(tab, rng);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackendGhzTableau)->Arg(8)->Arg(14)->Arg(256);

static void
BM_BackendSyndromeDense(benchmark::State &state)
{
    q::StateVector sv(unsigned(state.range(0)));
    Rng rng(1);
    for (auto _ : state)
        syndromeShot(sv, rng);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackendSyndromeDense)->Arg(8)->Arg(14);

static void
BM_BackendSyndromeTableau(benchmark::State &state)
{
    q::TableauState tab(unsigned(state.range(0)));
    Rng rng(1);
    for (auto _ : state)
        syndromeShot(tab, rng);
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BackendSyndromeTableau)->Arg(8)->Arg(14)->Arg(256);

static void
BM_Assembler(benchmark::State &state)
{
    std::string src;
    for (int i = 0; i < 100; ++i)
        src += "addi $1, $1, 1\ncw.i.i 2, 3\nwaiti 8\n";
    src += "halt\n";
    for (auto _ : state) {
        auto program = isa::assemble(src);
        benchmark::DoNotOptimize(program);
    }
    state.SetItemsProcessed(state.iterations() * 301);
}
BENCHMARK(BM_Assembler);

static void
BM_CompileGhz(benchmark::State &state)
{
    const unsigned n = unsigned(state.range(0));
    const auto circuit = workloads::ghz(n);
    net::TopologyConfig tc;
    tc.width = n;
    net::Topology topo = net::Topology::grid(tc);
    for (auto _ : state) {
        compiler::Compiler comp(topo, compiler::CompilerConfig{});
        auto compiled = comp.compile(circuit);
        benchmark::DoNotOptimize(compiled);
    }
}
BENCHMARK(BM_CompileGhz)->Arg(16)->Arg(64);

static void
BM_CompileCacheHit(benchmark::State &state)
{
    // Warm path of the content-addressed cache: key computation + LRU
    // lookup + program copy-out. This is the per-request floor a batch
    // service pays for a repeated circuit.
    const unsigned n = unsigned(state.range(0));
    const auto circuit = workloads::ghz(n);
    net::TopologyConfig tc;
    tc.width = n;
    net::Topology topo = net::Topology::grid(tc);
    compiler::CompilerConfig cc;
    cc.cache = compiler::CacheMode::kMemory;
    compiler::Compiler comp(topo, cc);
    compiler::cache::CompileCache::global().clear();
    benchmark::DoNotOptimize(comp.tryCompile(circuit)); // warm the entry
    for (auto _ : state) {
        auto compiled = comp.tryCompile(circuit);
        benchmark::DoNotOptimize(compiled);
    }
    compiler::cache::CompileCache::global().clear();
}
BENCHMARK(BM_CompileCacheHit)->Arg(16)->Arg(64);

static void
BM_CompileCacheMiss(benchmark::State &state)
{
    // Cold path: key computation + full pipeline + store insert. The
    // delta against BM_CompileGhz is the cache's bookkeeping overhead;
    // the ratio against BM_CompileCacheHit is what a hit saves.
    const unsigned n = unsigned(state.range(0));
    const auto circuit = workloads::ghz(n);
    net::TopologyConfig tc;
    tc.width = n;
    net::Topology topo = net::Topology::grid(tc);
    compiler::CompilerConfig cc;
    cc.cache = compiler::CacheMode::kMemory;
    compiler::Compiler comp(topo, cc);
    for (auto _ : state) {
        compiler::cache::CompileCache::global().clear();
        auto compiled = comp.tryCompile(circuit);
        benchmark::DoNotOptimize(compiled);
    }
    compiler::cache::CompileCache::global().clear();
}
BENCHMARK(BM_CompileCacheMiss)->Arg(16)->Arg(64);

// -------------------------------------------------------------------------
// Route-pass kernels: compile-time cost of SWAP routing on the line (the
// shape where chains are longest). BM_RouteGreedy is the per-gate greedy
// router (route_window = 1); BM_RouteWindowed is the congestion-aware
// joint selection at windows 4/8/16 — the delta is what lookahead costs
// at compile time (its payoff is measured by ablation_routing).
// -------------------------------------------------------------------------

static void
routeKernel(benchmark::State &state, unsigned window)
{
    workloads::RoutingStressOptions opt;
    opt.qubits = 18;
    opt.layers = 12;
    opt.stride = 5;
    const auto circuit = workloads::routingStress(opt);
    net::Topology topo = net::Topology::line(opt.qubits);
    compiler::CompilerConfig cc;
    cc.routing = compiler::RoutingMode::kSwap;
    cc.route_window = window;
    for (auto _ : state) {
        compiler::Compiler comp(topo, cc);
        auto compiled = comp.compile(circuit);
        benchmark::DoNotOptimize(compiled);
    }
    state.SetItemsProcessed(state.iterations());
}

static void
BM_RouteGreedy(benchmark::State &state)
{
    routeKernel(state, 1);
}
BENCHMARK(BM_RouteGreedy);

static void
BM_RouteWindowed(benchmark::State &state)
{
    routeKernel(state, unsigned(state.range(0)));
}
BENCHMARK(BM_RouteWindowed)->Arg(4)->Arg(8)->Arg(16);

static void
BM_CongestionMapUpdateQuery(benchmark::State &state)
{
    // Steady-state occupancy bookkeeping: book a rolling pattern of
    // transfers over every link of a line fabric, querying the earliest
    // free slot before each reservation (the exact query/update pair the
    // windowed router issues per considered hop).
    const unsigned n = unsigned(state.range(0));
    net::Topology topo = net::Topology::line(n);
    compiler::route::CongestionMap map(topo);
    for (auto _ : state) {
        map.clear();
        Cycle t = 0;
        for (unsigned round = 0; round < 64; ++round) {
            for (ControllerId c = 0; c + 1 < n; ++c) {
                const Cycle start = map.earliestFree(c, c + 1, t, 10);
                map.reserve(c, c + 1, start, 10);
            }
            t += 5;
        }
        benchmark::DoNotOptimize(map.intervalCount());
    }
    state.SetItemsProcessed(state.iterations() * 64 * (state.range(0) - 1));
}
BENCHMARK(BM_CongestionMapUpdateQuery)->Arg(16)->Arg(64);

static void
BM_EndToEndLrCnot(benchmark::State &state)
{
    const unsigned n = 8;
    compiler::Circuit circuit(n, "bm");
    circuit.gate(q::Gate::kH, 0);
    workloads::appendLongRangeCnotLine(circuit, 0, n - 1);

    net::TopologyConfig tc;
    tc.width = n;
    net::Topology topo = net::Topology::grid(tc);
    compiler::CompilerConfig cc;
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);

    for (auto _ : state) {
        auto mc = compiler::machineConfigFor(tc, cc, n, true, 1);
        runtime::Machine machine(mc);
        compiled.applyTo(machine);
        auto report = machine.run();
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_EndToEndLrCnot);

BENCHMARK_MAIN();
