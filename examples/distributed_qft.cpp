/**
 * @file
 * The paper's motivational scenario (Figure 1): a QFT distributed across
 * controllers, with cross-chip CNOTs realized as dynamic circuits whose
 * feedback makes every controller's timeline non-deterministic — compiled
 * under all three synchronization schemes and compared.
 */
#include <cstdio>

#include "compiler/compiler.hpp"
#include "runtime/machine.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    // A 10-qubit QFT on a line: controlled phases up to distance 4 are
    // decomposed and the non-adjacent CNOTs become long-range dynamic
    // circuits (the Figure 1 "communication qubit" pattern).
    workloads::QftOptions opt;
    opt.approx_window = 4;
    opt.measure_all = true;
    auto qft = workloads::qft(10, opt);
    Rng expand_rng(7);
    auto dyn = workloads::expandNonAdjacentGates(qft, 1.0, expand_rng);

    std::printf("distributed QFT (Figure 1 scenario): %zu ops, %zu "
                "measurements, %zu feedback ops\n\n",
                dyn.size(), dyn.countMeasurements(),
                dyn.countConditionals());
    std::printf("%-10s %12s %10s %12s %12s\n", "scheme", "runtime(us)",
                "syncs", "violations", "coincidence");

    for (auto scheme :
         {compiler::SyncScheme::kBisp, compiler::SyncScheme::kDemand,
          compiler::SyncScheme::kLockStep}) {
        net::TopologyConfig topo_cfg;
        topo_cfg.width = dyn.numQubits();
        net::Topology topo = net::Topology::grid(topo_cfg);
        compiler::CompilerConfig cc;
        cc.scheme = scheme;
        compiler::Compiler comp(topo, cc);
        auto compiled = comp.compile(dyn);

        auto mc = compiler::machineConfigFor(topo_cfg, cc, dyn.numQubits(),
                                             /*state_vector=*/true, 42);
        mc.fabric.star_messages =
            (scheme == compiler::SyncScheme::kLockStep);
        runtime::Machine machine(mc);
        compiled.applyTo(machine);
        const auto report = machine.run();

        std::printf("%-10s %12.2f %10llu %12llu %12zu\n",
                    compiler::toString(scheme),
                    cyclesToNs(report.makespan) / 1000.0,
                    (unsigned long long)report.syncs_completed,
                    (unsigned long long)report.timing_violations,
                    report.coincidence_violations);
    }

    std::printf("\nBISP re-synchronizes only where feedback made timelines "
                "diverge, books\neach sync as early as possible, and lets "
                "independent feedback overlap —\nthe lock-step baseline "
                "serializes everything behind hub broadcasts.\n");
    return 0;
}
