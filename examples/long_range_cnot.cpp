/**
 * @file
 * The headline dynamic circuit (Figure 14): a long-range CNOT across a
 * chain of controllers, compiled through the full software stack, executed
 * on the distributed machine and verified against a direct CNOT on the
 * state-vector device — every measurement branch converges thanks to the
 * feed-forward corrections.
 */
#include <cstdio>

#include "compiler/compiler.hpp"
#include "quantum/state_vector.hpp"
#include "runtime/machine.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    const unsigned n = 7;

    // Build: prepare control in (|0>+|1>)/sqrt(2), then CNOT(0 -> 6).
    compiler::Circuit circuit(n, "lrcnot_example");
    circuit.gate(q::Gate::kH, 0);
    workloads::appendLongRangeCnotLine(circuit, 0, n - 1);

    std::printf("long-range CNOT over %u qubits: %zu ops, %zu "
                "measurements, %zu feed-forward corrections\n",
                n, circuit.size(), circuit.countMeasurements(),
                circuit.countConditionals());

    // Compile for Distributed-HISQ (BISP) on a line of controllers.
    net::TopologyConfig topo_cfg;
    topo_cfg.width = n;
    net::Topology topo = net::Topology::grid(topo_cfg);
    compiler::CompilerConfig cc;
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);
    std::printf("compiled to %u controllers, %zu instructions, %zu "
                "codeword bindings\n",
                compiled.usedControllers(), compiled.totalInstructions(),
                compiled.bindings.size());

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto mc = compiler::machineConfigFor(topo_cfg, cc, n,
                                             /*state_vector=*/true, seed);
        runtime::Machine machine(mc);
        compiled.applyTo(machine);
        const auto report = machine.run();

        // Reference: direct CNOT with the ancillas forced to the outcomes
        // the machine actually measured.
        q::StateVector ref(n);
        ref.apply1q(q::Gate::kH, 0);
        ref.apply2q(q::Gate::kCNOT, 0, n - 1);
        std::printf("seed %llu: outcomes [", (unsigned long long)seed);
        for (const auto &m : machine.device().measurements()) {
            std::printf("%d", m.bit);
            if (m.bit)
                ref.apply1q(q::Gate::kX, m.qubit);
        }
        const double fidelity =
            machine.device().state().fidelityWith(ref);
        std::printf("]  fidelity vs direct CNOT = %.12f  (%s, %llu ns, "
                    "%llu syncs)\n",
                    fidelity, report.coincidence_violations == 0
                                  ? "coincidence ok"
                                  : "COINCIDENCE BROKEN",
                    (unsigned long long)cyclesToNs(report.makespan),
                    (unsigned long long)report.syncs_completed);
    }
    std::printf("\nconstant depth, one round of measurements, two parity "
                "corrections —\nthe dynamic-circuit trade the paper's "
                "evaluation is built on.\n");
    return 0;
}
