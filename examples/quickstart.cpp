/**
 * @file
 * Quickstart: assemble a HISQ program by hand, bind its codewords to
 * physical actions, run it on a one-controller machine and inspect the
 * TELF trace — the smallest end-to-end tour of the public API.
 */
#include <cstdio>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "quantum/device.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

int
main()
{
    // 1. Write a HISQ program: X then measure, timed on the 4 ns grid.
    const char *source = R"(
        waiti 8            # pipeline-fill prologue
        cw.i.i 0, 1        # codeword 1 on port 0 (bound to X below)
        waiti 5            # 20 ns single-qubit gate
        cw.i.i 0, 2        # codeword 2 (bound to measure)
        waiti 75           # 300 ns measurement
        recv $5, 4094      # discriminated result from the readout chain
        andi $5, $5, 1
        halt
    )";
    isa::Program program = isa::assembleOrDie(source, "quickstart");
    std::printf("assembled %zu instructions:\n%s\n", program.size(),
                isa::disassemble(program).c_str());

    // 2. Build a one-controller machine with a one-qubit device.
    runtime::MachineConfig config;
    config.topology.width = 1;
    config.device.num_qubits = 1;
    config.ports_per_controller = 1;
    runtime::Machine machine(config);

    // 3. Bind the codewords: this is Insight #3 — the same instruction
    //    set drives any action the board maps a codeword to.
    machine.bind(0, /*port=*/0, /*cw=*/1, q::Action::gate1q(q::Gate::kX, 0));
    machine.bind(0, /*port=*/0, /*cw=*/2, q::Action::measure(0));
    machine.routeMeasResult(/*qubit=*/0, /*controller=*/0);

    // 4. Run and inspect.
    machine.loadProgram(0, program);
    const auto report = machine.run();
    std::printf("run: %s\n", report.summary().c_str());
    std::printf("measured bit (|1> expected after X): %u\n",
                machine.core(0).reg(5));
    std::printf("\nTELF trace:\n%s", machine.telf().toText().c_str());
    return 0;
}
