/**
 * @file
 * Qubit bring-up, Section 6.2 style: run Rabi and T1 calibration sweeps
 * through the analog-frontend model, fit the physical parameters, then use
 * the calibration to fire an X gate + measurement shot loop on the
 * machine — the everyday workflow of the paper's software stack.
 */
#include <cstdio>
#include <vector>

#include "isa/assembler.hpp"
#include "quantum/fitting.hpp"
#include "quantum/physics.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

int
main()
{
    q::PhysicsConfig physics;
    physics.f01_ghz = 4.62;
    physics.t1_us = 9.9;
    q::QubitPhysics qubit(physics, 11);

    // ---- Rabi sweep: find the pi-pulse amplitude -------------------------
    std::vector<double> amps, pops;
    const double t_us = 0.05;
    for (double a = 0.0; a <= 4.0; a += 0.05) {
        amps.push_back(a);
        pops.push_back(qubit.drivenPopulation(physics.f01_ghz, a, t_us));
    }
    const auto rabi = q::fitRabi(amps, pops, 0.5, 10.0);
    const double pi_amp = M_PI / rabi.omega;
    std::printf("Rabi fit: omega = %.3f rad/amp -> pi-pulse amplitude "
                "= %.3f\n",
                rabi.omega, pi_amp);

    // ---- T1 sweep ---------------------------------------------------------
    std::vector<double> delays, decays;
    for (double d = 0.0; d <= 30.0; d += 0.75) {
        delays.push_back(d);
        decays.push_back(qubit.decayedPopulation(1.0, d));
    }
    const auto t1 = q::fitExponentialDecay(delays, decays);
    std::printf("T1 fit: %.2f us (configured %.2f us)\n\n", t1.tau,
                physics.t1_us);

    // ---- Shot loop on the machine ------------------------------------------
    // The calibrated pi pulse becomes a codeword binding; a HISQ loop fires
    // X + measure 20 times (one shot per 2 us trigger interval).
    const char *shots = R"(
            waiti 16
            addi $2, $0, 20
            addi $1, $0, 0
        loop:
            cw.i.i 0, 3       # active reset to |0>
            waiti 75
            cw.i.i 0, 1       # calibrated pi pulse
            waiti 5
            cw.i.i 0, 2       # readout
            waiti 420         # shot period 2 us
            recv $5, 4094
            andi $5, $5, 1
            add $6, $6, $5    # tally of |1> outcomes
            addi $1, $1, 1
            bne $1, $2, loop
            halt
    )";

    runtime::MachineConfig mc;
    mc.topology.width = 1;
    mc.device.num_qubits = 1;
    mc.ports_per_controller = 1;
    runtime::Machine machine(mc);
    machine.bind(0, 0, 1, q::Action::gate1q(q::Gate::kX, 0));
    machine.bind(0, 0, 2, q::Action::measure(0));
    machine.bind(0, 0, 3, q::Action::prep(0));
    machine.routeMeasResult(0, 0);
    machine.loadProgram(0, isa::assembleOrDie(shots, "shot_loop"));
    const auto report = machine.run();

    std::printf("shot loop: %s\n", report.summary().c_str());
    std::printf("|1> outcomes: %u / 20 (pi pulse -> all ones on a "
                "noiseless device)\n",
                machine.core(0).reg(6));
    return 0;
}
