/**
 * @file
 * Placement strategies side by side on one workload.
 *
 * A 12-qubit GHZ state is prepared by fan-out — every CNOT long-range
 * from the root — and converted to dynamic-circuit form, so mid-chain
 * measurements feed parity corrections back to the root and each leaf.
 * On a heavy-hex interconnect with distance-scaled link latencies the
 * fixed path embedding strands that star-shaped traffic across the
 * lattice; the topology-aware strategies (src/place) pull the hot blocks
 * together and the end-to-end makespan drops.
 *
 * Build & run:  ./build/examples/placement_compare
 */
#include <cstdio>

#include "common/rng.hpp"
#include "sweep/exec.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

using namespace dhisq;

int
main()
{
    compiler::Circuit fanout = workloads::ghzFanout(12, /*measure_all=*/true);
    Rng rng(2025);
    const compiler::Circuit dyn =
        workloads::expandNonAdjacentGates(fanout, 1.0, rng);

    std::printf("GHZ fan-out, %u qubits -> dynamic form: %zu ops\n",
                dyn.numQubits(), dyn.size());
    std::printf("heavy-hex interconnect, distance-scaled link latencies\n\n");
    std::printf("%-18s %14s %10s %12s\n", "placement", "makespan (cyc)",
                "syncs", "vs path");

    sweep::ExecOptions opts;
    opts.topology = net::TopologyShape::kHeavyHex;
    opts.latency_model = net::LinkLatencyModel::kDistanceScaled;

    long long path_makespan = 0;
    bool all_healthy = true;
    for (const auto strategy : place::allPlacementStrategies()) {
        compiler::CompilerConfig cc;
        cc.scheme = compiler::SyncScheme::kBisp;
        cc.placement = strategy;
        cc.repetitions = 2;
        const sweep::ExecResult r = sweep::executeWith(dyn, cc, opts);
        all_healthy = all_healthy && r.healthy();

        const long long makespan = (long long)r.makespan;
        if (strategy == place::PlacementStrategy::kPath)
            path_makespan = makespan;
        std::printf("%-18s %14lld %10llu %11.1f%%\n",
                    place::toString(strategy), makespan,
                    (unsigned long long)r.syncs,
                    path_makespan > 0
                        ? 100.0 * double(makespan) / double(path_makespan) -
                              100.0
                        : 0.0);
    }

    std::printf("\nThe optimizers win exactly where Insight #2 predicts: "
                "the interaction graph\nis a star, the path embedding is a "
                "line, and every percent above is traffic\nthat stopped "
                "crossing the lattice.\n");
    return all_healthy ? 0 : 1;
}
