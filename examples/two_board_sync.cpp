/**
 * @file
 * The paper's electronics-level verification scenario (Figures 12/13): a
 * control board whose loop timing grows unpredictably via `waitr`, and a
 * readout board that stays cycle-aligned with it through BISP `sync`
 * instructions — run here step by step with a narrated trace.
 */
#include <cstdio>

#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

using namespace dhisq;

int
main()
{
    const char *control = R"(
            waiti 8
            addi $2, $0, 90
            addi $1, $0, 0
        inner:
            addi $1, $1, 30    # +120 ns per iteration
            waitr $1           # non-deterministic to the peer
            sync 1             # book the synchronization
            waiti 8            # deterministic lead (masks N = 2)
            cw.i.i 0, 7        # synchronous pulse
            waiti 40
            bne $1, $2, inner
            halt
    )";
    const char *readout = R"(
            waiti 8
            addi $3, $0, 3
            addi $4, $0, 0
        inner:
            sync 0
            waiti 8
            cw.i.i 0, 7        # synchronous pulse
            waiti 40
            addi $4, $4, 1
            bne $4, $3, inner
            halt
    )";

    runtime::MachineConfig config;
    config.topology.width = 2;
    config.topology.neighbor_latency = 2;
    config.device.num_qubits = 2;
    config.ports_per_controller = 1;
    runtime::Machine machine(config);
    machine.loadProgram(0, isa::assembleOrDie(control, "control"));
    machine.loadProgram(1, isa::assembleOrDie(readout, "readout"));
    const auto report = machine.run();

    std::printf("two-board BISP synchronization (Figures 12/13)\n");
    std::printf("run: %s\n\n", report.summary().c_str());
    std::printf("%-8s %-10s %-22s\n", "cycle", "source", "event");
    for (const auto &r : machine.telf().records()) {
        if (r.kind == TelfKind::CodewordCommit ||
            r.kind == TelfKind::SyncBook ||
            r.kind == TelfKind::TimerPause ||
            r.kind == TelfKind::TimerResume) {
            std::printf("%-8llu %-10s %s%s\n",
                        (unsigned long long)r.cycle, r.source.c_str(),
                        toString(r.kind),
                        r.kind == TelfKind::CodewordCommit
                            ? "  <-- synchronous pulse"
                            : "");
        }
    }
    std::printf("\nevery pair of pulses shares a cycle although the "
                "control board's\nloop grows by 120 ns per iteration — "
                "cycle-level instruction\ncommitment synchronization with "
                "zero-cycle overhead.\n");
    return 0;
}
