/**
 * @file
 * Unit tests for the common JSON writer/parser: construction, escaping,
 * number fidelity, deterministic serialization and round-trips.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/json.hpp"

namespace dhisq {
namespace {

TEST(Json, DefaultIsNull)
{
    Json j;
    EXPECT_TRUE(j.isNull());
    EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(3.5).dump(), "3.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegerKeepsFullInt64Precision)
{
    const std::int64_t big = (std::int64_t(1) << 62) + 12345;
    const Json j(big);
    EXPECT_TRUE(j.isInt());
    EXPECT_EQ(j.asInt(), big);

    auto parsed = Json::parse(j.dump());
    ASSERT_TRUE(parsed.isOk());
    EXPECT_TRUE(parsed.value().isInt());
    EXPECT_EQ(parsed.value().asInt(), big);
}

TEST(Json, DoubleAlwaysReparsesAsDouble)
{
    // A double that happens to hold an integral value must not silently
    // become an integer across a round-trip.
    const Json j(2.0);
    EXPECT_EQ(j.dump(), "2.0");
    auto parsed = Json::parse(j.dump());
    ASSERT_TRUE(parsed.isOk());
    EXPECT_TRUE(parsed.value().isDouble());
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = 1;
    j["alpha"] = 2;
    j["mid"] = 3;
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
    // Overwriting does not move the key.
    j["zebra"] = 9;
    EXPECT_EQ(j.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ArrayPush)
{
    Json j; // null promotes to array on push
    j.push(1);
    j.push("two");
    j.push(Json::array());
    EXPECT_EQ(j.dump(), "[1,\"two\",[]]");
    EXPECT_EQ(j.size(), 3u);
    EXPECT_EQ(j.at(1).asString(), "two");
}

TEST(Json, EscapingAllSpecialCharacters)
{
    const std::string nasty = "q\"b\\s\b\f\n\r\tx\x01y";
    const Json j(nasty);
    EXPECT_EQ(j.dump(),
              "\"q\\\"b\\\\s\\b\\f\\n\\r\\tx\\u0001y\"");
    auto parsed = Json::parse(j.dump());
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().asString(), nasty);
}

TEST(Json, Utf8PassThrough)
{
    const std::string s = "q\xC3\xBC"
                          "bit \xE2\x9C\x93";
    auto parsed = Json::parse(Json(s).dump());
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().asString(), s);
}

TEST(Json, ParseUnicodeEscapes)
{
    auto parsed = Json::parse("\"\\u0041\\u00e9\\u20ac\"");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().asString(), "A\xC3\xA9\xE2\x82\xAC");
    // Surrogate pair: U+1F600.
    auto emoji = Json::parse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(emoji.isOk());
    EXPECT_EQ(emoji.value().asString(), "\xF0\x9F\x98\x80");
}

TEST(Json, NestedRoundTrip)
{
    Json j = Json::object();
    j["name"] = "fig15";
    j["healthy"] = true;
    j["nothing"] = nullptr;
    Json point = Json::object();
    point["makespan_cycles"] = std::int64_t(123456789012345);
    point["makespan_us"] = 493.827156;
    Json arr = Json::array();
    arr.push(point);
    arr.push(Json::object());
    j["points"] = std::move(arr);

    for (const int indent : {-1, 0, 2}) {
        auto parsed = Json::parse(j.dump(indent));
        ASSERT_TRUE(parsed.isOk()) << parsed.message();
        EXPECT_EQ(parsed.value(), j) << "indent=" << indent;
        // Serialization is a pure function of the value.
        EXPECT_EQ(parsed.value().dump(indent), j.dump(indent));
    }
}

TEST(Json, PrettyPrintShape)
{
    Json j = Json::object();
    j["a"] = 1;
    Json arr = Json::array();
    arr.push(2);
    j["b"] = std::move(arr);
    EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, FindAndContains)
{
    Json j = Json::object();
    j["x"] = 5;
    EXPECT_TRUE(j.contains("x"));
    EXPECT_FALSE(j.contains("y"));
    ASSERT_NE(j.find("x"), nullptr);
    EXPECT_EQ(j.find("x")->asInt(), 5);
    EXPECT_EQ(Json(3).find("x"), nullptr); // non-objects have no members
}

TEST(Json, ParseWhitespaceAndLiterals)
{
    auto parsed = Json::parse(" \t\r\n { \"k\" : [ true , false , null ] } ");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().dump(), "{\"k\":[true,false,null]}");
}

TEST(Json, ParseNumbers)
{
    auto parsed = Json::parse("[0, -1, 12.25, 1e3, -2.5e-2, 9007199254740993]");
    ASSERT_TRUE(parsed.isOk());
    const auto &a = parsed.value().asArray();
    EXPECT_TRUE(a[0].isInt());
    EXPECT_EQ(a[1].asInt(), -1);
    EXPECT_DOUBLE_EQ(a[2].asDouble(), 12.25);
    EXPECT_DOUBLE_EQ(a[3].asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(a[4].asDouble(), -0.025);
    // Larger than 2^53: must stay exact via the int64 path.
    EXPECT_EQ(a[5].asInt(), 9007199254740993LL);
}

TEST(Json, ParseErrors)
{
    const char *bad[] = {
        "",          "{",         "[1,",       "\"unterminated",
        "tru",       "nul",       "01x",       "{\"a\" 1}",
        "[1] junk",  "\"\\q\"",   "\"\\u12\"", "-",
    };
    for (const char *text : bad) {
        auto parsed = Json::parse(text);
        EXPECT_FALSE(parsed.isOk()) << "should reject: " << text;
        EXPECT_NE(parsed.message(), "") << text;
    }
}

TEST(Json, ParseRejectsRawControlCharInString)
{
    const std::string text = std::string("\"a\nb\"");
    EXPECT_FALSE(Json::parse(text).isOk());
}

TEST(Json, DeepNestingIsRejectedNotCrashed)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(Json::parse(deep).isOk());
}

TEST(JsonEscape, Identity)
{
    EXPECT_EQ(jsonEscape("plain ascii 123"), "plain ascii 123");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
}

} // namespace
} // namespace dhisq
