/**
 * @file
 * Placement-subsystem invariants: every strategy yields a controller
 * permutation on every shape, the path strategy is exactly the topology's
 * embedding (the PR 3 bit-compatibility contract), kl-mincut never cuts
 * worse than greedy-affinity on the property-test circuit corpus, and the
 * interaction-graph builder replays codegen's epoch semantics.
 */
#include <gtest/gtest.h>

#include <vector>

#include "compiler/interaction.hpp"
#include "place/placement.hpp"
#include "runtime/machine.hpp"
#include "sweep/exec.hpp"
#include "workloads/generators.hpp"

namespace dhisq {
namespace {

using place::InteractionGraph;
using place::PlacementStrategy;

net::Topology
shapeAt(net::TopologyShape shape, unsigned w = 5, unsigned h = 3)
{
    net::TopologyConfig cfg;
    cfg.shape = shape;
    cfg.width = w;
    cfg.height = h;
    return net::Topology::build(cfg);
}

/** A small feedback-heavy circuit's graph, blocked at one qubit each. */
InteractionGraph
corpusGraph(std::uint64_t seed, unsigned qubits = 10)
{
    workloads::RandomDynamicOptions opt;
    opt.qubits = qubits;
    opt.layers = 10;
    opt.feedback_fraction = 0.5;
    opt.feedback_span = 5;
    opt.seed = seed;
    return compiler::interactionGraphOf(workloads::randomDynamic(opt), 1);
}

void
expectPermutation(const place::PlacementPlan &plan, unsigned controllers,
                  const char *context)
{
    ASSERT_EQ(plan.order.size(), controllers) << context;
    ASSERT_EQ(plan.slot_of.size(), controllers) << context;
    std::vector<bool> seen(controllers, false);
    for (unsigned slot = 0; slot < controllers; ++slot) {
        const ControllerId c = plan.order[slot];
        ASSERT_LT(c, controllers) << context;
        EXPECT_FALSE(seen[c]) << context << " duplicates controller " << c;
        seen[c] = true;
        EXPECT_EQ(plan.slot_of[c], slot) << context;
    }
}

TEST(Placement, StrategyNamesRoundTrip)
{
    for (PlacementStrategy strategy : place::allPlacementStrategies()) {
        PlacementStrategy parsed;
        ASSERT_TRUE(
            place::parsePlacementStrategy(toString(strategy), parsed))
            << place::toString(strategy);
        EXPECT_EQ(parsed, strategy);
    }
    PlacementStrategy ignored;
    EXPECT_FALSE(place::parsePlacementStrategy("annealing", ignored));
    EXPECT_FALSE(place::parsePlacementStrategy("", ignored));
}

TEST(Placement, PathIsExactlyTheTopologyEmbeddingOnAllShapes)
{
    const InteractionGraph graph = corpusGraph(3);
    for (net::TopologyShape shape : net::allTopologyShapes()) {
        const net::Topology topo = shapeAt(shape);
        const auto plan =
            place::makePlacement(topo, graph, PlacementStrategy::kPath);
        EXPECT_EQ(plan.order, topo.placementOrder())
            << net::toString(shape);
    }
}

TEST(Placement, EveryStrategyYieldsAControllerPermutation)
{
    // Fewer blocks than controllers: the unused tail must still complete
    // the permutation on every shape (heavy-hex adds bridge controllers).
    const InteractionGraph graph = corpusGraph(7, /*qubits=*/8);
    for (net::TopologyShape shape : net::allTopologyShapes()) {
        const net::Topology topo = shapeAt(shape);
        for (PlacementStrategy strategy : place::allPlacementStrategies()) {
            const auto plan = place::makePlacement(topo, graph, strategy);
            expectPermutation(plan, topo.numControllers(),
                              net::toString(shape));
        }
    }
}

TEST(Placement, DeterministicForFixedInputs)
{
    const InteractionGraph graph = corpusGraph(11);
    const net::Topology topo = shapeAt(net::TopologyShape::kTorus, 4, 3);
    for (PlacementStrategy strategy : place::allPlacementStrategies()) {
        const auto a = place::makePlacement(topo, graph, strategy);
        const auto b = place::makePlacement(topo, graph, strategy);
        EXPECT_EQ(a.order, b.order) << place::toString(strategy);
    }
}

TEST(Placement, KlNeverCutsWorseThanGreedyOnTheCorpus)
{
    for (const std::uint64_t seed : {1ull, 7ull, 13ull, 29ull}) {
        const InteractionGraph graph = corpusGraph(seed);
        for (net::TopologyShape shape :
             {net::TopologyShape::kGrid, net::TopologyShape::kTorus,
              net::TopologyShape::kHeavyHex, net::TopologyShape::kRing}) {
            for (net::LinkLatencyModel model :
                 net::allLinkLatencyModels()) {
                net::TopologyConfig cfg;
                cfg.shape = shape;
                cfg.width = 5;
                cfg.height = 3;
                cfg.latency_model = model;
                const net::Topology topo = net::Topology::build(cfg);
                const place::CostModel cost(topo);
                const auto greedy = place::makePlacement(
                    topo, graph, PlacementStrategy::kGreedyAffinity);
                const auto kl = place::makePlacement(
                    topo, graph, PlacementStrategy::kKlMincut);
                EXPECT_LE(place::weightedCutCost(cost, graph, kl.order),
                          place::weightedCutCost(cost, graph,
                                                 greedy.order) +
                              1e-9)
                    << net::toString(shape) << "/" << net::toString(model)
                    << " seed " << seed;
            }
        }
    }
}

TEST(Placement, KlBeatsThePathOnAStarInteractionGraph)
{
    // A star-shaped interaction graph (every block talks to block 0) on a
    // grid (not a torus — those are vertex-transitive, so every hub
    // position costs the same): the path embedding strands block 0 in a
    // corner; min-cut must place it centrally and strictly lower the cut.
    InteractionGraph star(12);
    for (unsigned b = 1; b < 12; ++b)
        star.addSyncWeight(0, b, 2.0);
    const net::Topology topo = shapeAt(net::TopologyShape::kGrid, 4, 3);
    const place::CostModel cost(topo);
    const auto path =
        place::makePlacement(topo, star, PlacementStrategy::kPath);
    const auto kl =
        place::makePlacement(topo, star, PlacementStrategy::kKlMincut);
    EXPECT_LT(place::weightedCutCost(cost, star, kl.order),
              place::weightedCutCost(cost, star, path.order));
}

TEST(Placement, CostModelPricesAdjacencyBelowRegionSync)
{
    const net::Topology topo = shapeAt(net::TopologyShape::kGrid, 4, 4);
    const place::CostModel model(topo);
    // Adjacent pair: the calibrated link latency, on both channels.
    EXPECT_DOUBLE_EQ(model.syncCost(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(model.messageCost(0, 1), 2.0);
    // Distant pair: the sync channel must dominate the message channel
    // (region-sync span vs a routed payload).
    EXPECT_GT(model.syncCost(0, 15), model.messageCost(0, 15));
    EXPECT_GT(model.syncCost(0, 15), model.syncCost(0, 1));
    // Symmetry.
    EXPECT_DOUBLE_EQ(model.syncCost(3, 12), model.syncCost(12, 3));
}

TEST(InteractionGraph, AccumulatesUndirectedWeights)
{
    InteractionGraph graph(4);
    graph.addSyncWeight(0, 1, 1.5);
    graph.addSyncWeight(1, 0, 0.5);
    graph.addMessageWeight(0, 1, 2.0);
    graph.addSyncWeight(2, 2, 9.0); // self-edge: dropped
    EXPECT_DOUBLE_EQ(graph.weight(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(graph.weight(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(graph.weight(2, 2), 0.0);
    EXPECT_DOUBLE_EQ(graph.weight(2, 3), 0.0);
    EXPECT_DOUBLE_EQ(graph.totalWeightOf(0), 4.0);
    ASSERT_EQ(graph.edgesOf(0).size(), 1u);
    EXPECT_DOUBLE_EQ(graph.edgesOf(0)[0].sync_weight, 2.0);
    EXPECT_DOUBLE_EQ(graph.edgesOf(0)[0].msg_weight, 2.0);
}

TEST(InteractionGraph, BuilderReplaysEpochSemantics)
{
    using compiler::kCoscheduleWeight;
    using compiler::kFeedbackWeight;
    using compiler::kSyncWeight;

    compiler::Circuit c(4, "epochs");
    c.gate2(q::Gate::kCNOT, 0, 1); // common epoch: co-schedule weight only
    const CbitId bit = c.measure(2);
    c.conditionalGate(q::Gate::kX, 3, {bit}); // message 2 -> 3; 3 diverges
    c.gate2(q::Gate::kCNOT, 3, 0);            // diverged: sync weight
    c.gate2(q::Gate::kCNOT, 3, 0);            // merged again: co-schedule

    const auto graph = compiler::interactionGraphOf(c, 1);
    EXPECT_DOUBLE_EQ(graph.weight(0, 1), kCoscheduleWeight);
    EXPECT_DOUBLE_EQ(graph.weight(2, 3), kFeedbackWeight);
    EXPECT_DOUBLE_EQ(graph.weight(3, 0),
                     kSyncWeight + kCoscheduleWeight);
    ASSERT_EQ(graph.edgesOf(2).size(), 1u);
    EXPECT_DOUBLE_EQ(graph.edgesOf(2)[0].msg_weight, kFeedbackWeight);
    EXPECT_DOUBLE_EQ(graph.edgesOf(2)[0].sync_weight, 0.0);
}

TEST(InteractionGraph, BlocksFollowQubitsPerController)
{
    compiler::Circuit c(4, "blocked");
    c.gate2(q::Gate::kCNOT, 0, 1); // same block under qpc=2
    c.gate2(q::Gate::kCNOT, 1, 2); // cross-block
    const auto graph = compiler::interactionGraphOf(c, 2);
    ASSERT_EQ(graph.numBlocks(), 2u);
    EXPECT_DOUBLE_EQ(graph.weight(0, 1), compiler::kCoscheduleWeight);
}

// ---- End-to-end: optimized placements stay correct and healthy ----------

TEST(PlacementE2e, OptimizedPlacementsRunHealthyOnEveryShape)
{
    workloads::RandomDynamicOptions opt;
    opt.qubits = 9;
    opt.layers = 8;
    opt.feedback_fraction = 0.5;
    opt.seed = 21;
    const auto circuit = workloads::randomDynamic(opt);
    for (net::TopologyShape shape : net::allTopologyShapes()) {
        for (PlacementStrategy strategy : place::allPlacementStrategies()) {
            compiler::CompilerConfig cc;
            cc.placement = strategy;
            cc.repetitions = 2;
            sweep::ExecOptions opts;
            opts.topology = shape;
            const auto r = sweep::executeWith(circuit, cc, opts);
            EXPECT_TRUE(r.healthy())
                << net::toString(shape) << "/"
                << place::toString(strategy);
            EXPECT_GT(r.makespan, 0u);
        }
    }
}

TEST(PlacementE2e, AdderSumAgreesAcrossStrategies)
{
    // The ripple-carry adder's outputs are input-determined: permuting
    // the block -> controller assignment must not change the sum.
    workloads::AdderOptions opt;
    opt.seed = 9;
    const auto circuit = workloads::adder(8, opt);
    std::vector<unsigned> sums;
    for (PlacementStrategy strategy : place::allPlacementStrategies()) {
        net::TopologyConfig topo_cfg;
        topo_cfg.shape = net::TopologyShape::kGrid;
        topo_cfg.width = 2;
        topo_cfg.height = 2;
        const net::Topology topo = net::Topology::build(topo_cfg);
        compiler::CompilerConfig cc;
        cc.placement = strategy;
        cc.qubits_per_controller = 2;
        compiler::Compiler comp(topo, cc);
        auto compiled = comp.compile(circuit);
        auto mc = compiler::machineConfigFor(topo_cfg, cc, 8, true, 3);
        runtime::Machine machine(mc);
        compiled.applyTo(machine);
        const auto report = machine.run();
        ASSERT_FALSE(report.deadlock) << place::toString(strategy);
        unsigned sum = 0;
        for (const auto &m : machine.device().measurements()) {
            if (m.qubit == 7)
                sum |= unsigned(m.bit) << 3;
            else
                sum |= unsigned(m.bit) << ((m.qubit - 2) / 2);
        }
        sums.push_back(sum);
    }
    ASSERT_EQ(sums.size(), 3u);
    EXPECT_EQ(sums[0], sums[1]);
    EXPECT_EQ(sums[1], sums[2]);
}

TEST(PlacementE2e, HeterogeneousLatenciesRunHealthy)
{
    workloads::RandomDynamicOptions opt;
    opt.qubits = 8;
    opt.layers = 6;
    opt.feedback_fraction = 0.4;
    opt.seed = 5;
    const auto circuit = workloads::randomDynamic(opt);
    for (net::LinkLatencyModel model : net::allLinkLatencyModels()) {
        for (net::RouterClustering clustering :
             {net::RouterClustering::kIdBlocks,
              net::RouterClustering::kLocality}) {
            compiler::CompilerConfig cc;
            cc.placement = PlacementStrategy::kKlMincut;
            sweep::ExecOptions opts;
            opts.topology = net::TopologyShape::kTorus;
            opts.latency_model = model;
            opts.clustering = clustering;
            const auto r = sweep::executeWith(circuit, cc, opts);
            EXPECT_TRUE(r.healthy())
                << net::toString(model) << "/" << net::toString(clustering);
        }
    }
}

} // namespace
} // namespace dhisq
