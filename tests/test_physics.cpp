/**
 * @file
 * Analog/qubit physics and fitting tests: the calibration experiments of
 * Figure 11 must recover the configured physical parameters.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "quantum/fitting.hpp"
#include "quantum/physics.hpp"

namespace dhisq::q {
namespace {

TEST(Physics, SpectroscopyPeaksAtQubitFrequency)
{
    PhysicsConfig cfg;
    cfg.f01_ghz = 4.62;
    QubitPhysics qp(cfg);

    std::vector<double> freqs, pops;
    for (double f = 4.5; f <= 4.75; f += 0.001) {
        freqs.push_back(f);
        pops.push_back(qp.drivenPopulation(f, 0.5, M_PI / (50.0 * 0.5)));
    }
    const double peak = fitPeak(freqs, pops);
    EXPECT_NEAR(peak, 4.62, 0.002);
}

TEST(Physics, RabiOscillationPeriodMatchesRate)
{
    PhysicsConfig cfg;
    QubitPhysics qp(cfg);
    // On resonance: P(e) = sin^2(k A t / 2) = 0.5(1 - cos(k t A)).
    const double t_us = 0.05;
    std::vector<double> amps, pops;
    for (double a = 0.0; a <= 4.0; a += 0.02) {
        amps.push_back(a);
        pops.push_back(qp.drivenPopulation(cfg.f01_ghz, a, t_us));
    }
    const auto fit = fitRabi(amps, pops, 0.5, 10.0);
    EXPECT_NEAR(fit.omega, cfg.rabi_rate_per_amp * t_us, 0.05);
    EXPECT_LT(fit.rms_error, 1e-6);
}

TEST(Physics, T1DecayRecoversConfiguredRelaxation)
{
    PhysicsConfig cfg;
    cfg.t1_us = 9.9;
    QubitPhysics qp(cfg);
    std::vector<double> delays, pops;
    for (double d = 0.0; d <= 40.0; d += 0.5) {
        delays.push_back(d);
        pops.push_back(qp.decayedPopulation(1.0, d));
    }
    const auto fit = fitExponentialDecay(delays, pops);
    EXPECT_NEAR(fit.tau, 9.9, 0.01);
    EXPECT_NEAR(fit.amplitude, 1.0, 1e-9);
}

TEST(Physics, ReadoutCircleHasExpectedRadiusAndWobble)
{
    PhysicsConfig cfg;
    cfg.readout_radius = 1000.0;
    cfg.interference = 0.06;
    QubitPhysics qp(cfg);

    double min_r = 1e18, max_r = 0.0;
    for (int i = 0; i < 360; ++i) {
        const double phi = 2.0 * M_PI * i / 360.0;
        const IQPoint p = qp.readoutIQ(phi);
        const double r = std::hypot(p.i, p.q);
        min_r = std::min(min_r, r);
        max_r = std::max(max_r, r);
    }
    // Circle of radius ~1000 with +-6% neighbour-interference deviation —
    // the shape of Figure 11(a).
    EXPECT_NEAR(max_r, 1060.0, 1.0);
    EXPECT_NEAR(min_r, 940.0, 1.0);
}

TEST(Physics, DetunedDriveHasReducedContrast)
{
    PhysicsConfig cfg;
    QubitPhysics qp(cfg);
    const double on = qp.drivenPopulation(cfg.f01_ghz, 1.0, 0.0314);
    const double off = qp.drivenPopulation(cfg.f01_ghz + 0.05, 1.0, 0.0314);
    EXPECT_GT(on, 10.0 * off);
}

TEST(Physics, DiscriminationIsSeededAndFollowsPopulation)
{
    PhysicsConfig cfg;
    QubitPhysics qp(cfg, 99);
    int ones = 0;
    for (int i = 0; i < 2000; ++i)
        ones += qp.discriminate(0.8);
    EXPECT_NEAR(ones / 2000.0, 0.8, 0.04);
    EXPECT_EQ(qp.discriminate(0.0), 0);
    EXPECT_EQ(qp.discriminate(1.0), 1);
}

// ---------------------------------------------------------------------------
// Fitting toolbox edge cases.
// ---------------------------------------------------------------------------

TEST(Fitting, PeakInteriorRefinement)
{
    // Parabola peaking at x = 1.3 sampled on a coarse grid.
    std::vector<double> x, y;
    for (double v = 0.0; v <= 3.0; v += 0.25) {
        x.push_back(v);
        y.push_back(10.0 - (v - 1.3) * (v - 1.3));
    }
    EXPECT_NEAR(fitPeak(x, y), 1.3, 1e-9);
}

TEST(Fitting, PeakAtBoundaryReturnsBoundary)
{
    std::vector<double> x{0, 1, 2}, y{5, 3, 1};
    EXPECT_DOUBLE_EQ(fitPeak(x, y), 0.0);
}

TEST(Fitting, ExponentialFitIgnoresNonPositiveSamples)
{
    std::vector<double> x{0, 1, 2, 3, 100};
    std::vector<double> y{1.0, std::exp(-0.5), std::exp(-1.0),
                          std::exp(-1.5), 0.0};
    const auto fit = fitExponentialDecay(x, y);
    EXPECT_NEAR(fit.tau, 2.0, 1e-6);
}

TEST(Fitting, RmsErrorZeroForExactModel)
{
    std::vector<double> y{1, 2, 3};
    EXPECT_DOUBLE_EQ(rmsError(y, y), 0.0);
}

} // namespace
} // namespace dhisq::q
