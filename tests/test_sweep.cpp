/**
 * @file
 * Tests for the parallel sweep harness: grid expansion order, runner
 * aggregation and thread-count independence, point health semantics, and
 * the BENCH_*.json report writer.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "sweep/cli.hpp"
#include "sweep/grid.hpp"
#include "sweep/regress.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace dhisq::sweep {
namespace {

GridSpec
smallGrid()
{
    GridSpec grid;
    CircuitSpec rand_circuit;
    rand_circuit.kind = CircuitSpec::Kind::kRandomDynamic;
    rand_circuit.random.qubits = 6;
    rand_circuit.random.layers = 4;
    rand_circuit.random.feedback_fraction = 0.5;
    rand_circuit.random.seed = 11;
    rand_circuit.expand_fraction = 1.0;
    rand_circuit.expand_seed = 3;
    grid.circuits.push_back(rand_circuit);

    CircuitSpec chain;
    chain.kind = CircuitSpec::Kind::kLrCnotChain;
    chain.qubits = 5;
    grid.circuits.push_back(chain);

    grid.schemes = {compiler::SyncScheme::kLockStep,
                    compiler::SyncScheme::kBisp};
    grid.seeds = {1, 7};
    return grid;
}

TEST(Grid, ExpandOrderIsCircuitMajor)
{
    const auto points = expandGrid(smallGrid());
    ASSERT_EQ(points.size(), 2u * 2u * 2u);
    // circuit-major, then scheme, then qpc, then seed.
    EXPECT_EQ(points[0].label(), "rand_q6_l4_f0.5_s11/lockstep");
    EXPECT_EQ(points[1].label(), "rand_q6_l4_f0.5_s11/lockstep/s7");
    EXPECT_EQ(points[2].label(), "rand_q6_l4_f0.5_s11/bisp");
    EXPECT_EQ(points[4].label(), "lrcnot_chain_n5/lockstep");
    EXPECT_EQ(points[7].label(), "lrcnot_chain_n5/bisp/s7");
}

TEST(Grid, CircuitSpecBuildIsDeterministic)
{
    const auto spec = smallGrid().circuits[0];
    const auto a = spec.build();
    const auto b = spec.build();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.numQubits(), b.numQubits());
}

TEST(Grid, RunPointFillsStandardMetrics)
{
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 5;
    point.config.scheme = compiler::SyncScheme::kBisp;
    const auto r = runPoint(point);
    EXPECT_TRUE(r.healthy);
    EXPECT_EQ(r.health, "ok");
    for (const char *key :
         {"makespan_cycles", "makespan_us", "violations", "coincidence",
          "syncs", "deadlock", "events", "controllers", "live_cycles"}) {
        EXPECT_TRUE(r.metrics.contains(key)) << key;
    }
    EXPECT_GT(r.metrics.find("makespan_cycles")->asInt(), 0);
    EXPECT_EQ(r.params.find("scheme")->asString(), "bisp");
}

TEST(Grid, MetricsHookExtends)
{
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 5;
    const auto r = runPoint(point, [](const ExecResult &exec,
                                      PointResult &out) {
        out.metrics["extra_live"] = exec.activity.totalLiveCycles();
    });
    ASSERT_TRUE(r.metrics.contains("extra_live"));
    EXPECT_EQ(r.metrics.find("extra_live")->asInt(),
              r.metrics.find("live_cycles")->asInt());
}

TEST(Runner, ResultsArriveInTaskOrder)
{
    std::vector<SweepTask> tasks;
    for (int i = 0; i < 20; ++i) {
        tasks.push_back(SweepTask{prefixedNumber("t", unsigned(i)), [i] {
                                      PointResult r;
                                      r.label =
                                          prefixedNumber("t", unsigned(i));
                                      r.metrics["i"] = i;
                                      return r;
                                  }});
    }
    SweepRunner::Options opt;
    opt.threads = 8;
    opt.verify_points = 2;
    const auto results = SweepRunner(opt).run(tasks);
    ASSERT_EQ(results.size(), tasks.size());
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(results[std::size_t(i)].metrics.find("i")->asInt(), i);
    }
}

TEST(Runner, EveryTaskRunsExactlyOnceAcrossThreads)
{
    std::atomic<int> calls{0};
    std::vector<SweepTask> tasks;
    for (int i = 0; i < 50; ++i) {
        tasks.push_back(SweepTask{prefixedNumber("c", unsigned(i)),
                                  [&calls] {
                                      calls.fetch_add(1);
                                      return PointResult{};
                                  }});
    }
    SweepRunner::Options opt;
    opt.threads = 4;
    opt.verify_points = 0; // a verify re-run would double-count
    SweepRunner(opt).run(tasks);
    EXPECT_EQ(calls.load(), 50);
}

/** The acceptance property: same grid, same results, any thread count. */
TEST(Runner, ThreadCountDoesNotChangeResults)
{
    const auto points = expandGrid(smallGrid());
    const auto tasks = makeTasks(points);

    SweepRunner::Options serial;
    serial.threads = 1;
    const auto r1 = SweepRunner(serial).run(tasks);

    SweepRunner::Options parallel;
    parallel.threads = 8;
    parallel.verify_points = unsigned(tasks.size()); // re-check them all
    const auto r8 = SweepRunner(parallel).run(tasks);

    ASSERT_EQ(r1.size(), r8.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].toJson().dump(), r8[i].toJson().dump())
            << "point " << i << " differs with threads=8";
    }
}

TEST(Runner, AllHealthy)
{
    std::vector<PointResult> results(2);
    EXPECT_TRUE(SweepRunner::allHealthy(results));
    results[1].healthy = false;
    EXPECT_FALSE(SweepRunner::allHealthy(results));
}

TEST(Report, ToJsonSchema)
{
    BenchReport report;
    report.bench = "unit_test";
    report.config["knob"] = 3;
    PointResult p;
    p.label = "p0";
    p.metrics["makespan_cycles"] = 17;
    report.points.push_back(p);
    report.derived["avg"] = 1.5;

    const Json j = report.toJson();
    EXPECT_EQ(j.find("schema")->asString(), "dhisq-bench-v1");
    EXPECT_EQ(j.find("bench")->asString(), "unit_test");
    EXPECT_EQ(j.find("points")->size(), 1u);
    EXPECT_TRUE(j.find("healthy")->asBool());
    EXPECT_EQ(j.find("points")
                  ->at(0)
                  .find("metrics")
                  ->find("makespan_cycles")
                  ->asInt(),
              17);
}

TEST(Report, WriteAndReparse)
{
    BenchReport report;
    report.bench = "roundtrip";
    PointResult p;
    p.label = "only";
    p.params["scheme"] = "bisp";
    p.metrics["makespan_us"] = 12.5;
    report.points.push_back(p);

    const std::string path =
        ::testing::TempDir() + "dhisq_test_report.json";
    ASSERT_TRUE(writeBenchJson(path, report).isOk());

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path.c_str());

    auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.message();
    EXPECT_EQ(*parsed.value().find("bench"), Json("roundtrip"));
    EXPECT_EQ(parsed.value()
                  .find("points")
                  ->at(0)
                  .find("params")
                  ->find("scheme")
                  ->asString(),
              "bisp");
}

TEST(Report, WriteFailsOnBadPath)
{
    BenchReport report;
    // Assign through a named value: GCC 12's -Wrestrict false-positives
    // on short-string-literal assignment once surrounding inlining
    // changes (same class of noise PR 1 silenced in src/).
    const std::string name = "x";
    report.bench = name;
    EXPECT_FALSE(
        writeBenchJson("/nonexistent-dir/nope/x.json", report).isOk());
}

TEST(Cli, ParsesFlags)
{
    const char *argv[] = {"bench", "--json", "out.json", "--threads", "8",
                          "--quick"};
    auto parsed = parseCli(6, const_cast<char **>(argv));
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().json_path, "out.json");
    EXPECT_EQ(parsed.value().threads, 8u);
    EXPECT_TRUE(parsed.value().quick);
}

TEST(Grid, TopologyAxisExpandsBetweenSchemeAndQpc)
{
    GridSpec grid;
    CircuitSpec chain;
    chain.kind = CircuitSpec::Kind::kLrCnotChain;
    chain.qubits = 5;
    grid.circuits.push_back(chain);
    grid.schemes = {compiler::SyncScheme::kBisp};
    grid.topologies = {net::TopologyShape::kLine,
                       net::TopologyShape::kRing,
                       net::TopologyShape::kStar};
    grid.qubits_per_controller = {1, 2};

    const auto points = expandGrid(grid);
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].label(), "lrcnot_chain_n5/bisp");
    EXPECT_EQ(points[1].label(), "lrcnot_chain_n5/bisp/qpc2");
    EXPECT_EQ(points[2].label(), "lrcnot_chain_n5/bisp/ring");
    EXPECT_EQ(points[3].label(), "lrcnot_chain_n5/bisp/ring/qpc2");
    EXPECT_EQ(points[4].label(), "lrcnot_chain_n5/bisp/star");
    EXPECT_EQ(points[5].label(), "lrcnot_chain_n5/bisp/star/qpc2");
}

TEST(Grid, RunPointRecordsTopologyParam)
{
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 5;
    point.topology = net::TopologyShape::kRing;
    const auto r = runPoint(point);
    EXPECT_TRUE(r.healthy);
    EXPECT_EQ(r.params.find("topology")->asString(), "ring");
}

TEST(Grid, EveryShapeRunsHealthy)
{
    for (const auto shape : net::allTopologyShapes()) {
        ExperimentPoint point;
        point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
        point.circuit.qubits = 7;
        point.config.repetitions = 2;
        point.topology = shape;
        const auto r = runPoint(point);
        EXPECT_TRUE(r.healthy) << net::toString(shape) << ": " << r.health;
        EXPECT_GT(r.metrics.find("syncs")->asInt(), 0)
            << net::toString(shape);
    }
}

TEST(Cli, RejectsBadInput)
{
    {
        const char *argv[] = {"bench", "--threads", "zero"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--threads"};
        EXPECT_FALSE(parseCli(2, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--wat"};
        EXPECT_FALSE(parseCli(2, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench"};
        auto parsed = parseCli(1, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value().threads, 1u);
        EXPECT_TRUE(parsed.value().json_path.empty());
        EXPECT_FALSE(parsed.value().list);
        EXPECT_TRUE(parsed.value().topologies.empty());
    }
}

TEST(Cli, ParsesTopologyAxisSelection)
{
    {
        const char *argv[] = {"bench", "--topology", "ring", "--topology",
                              "star", "--topology", "ring"};
        auto parsed = parseCli(7, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        // Duplicates collapse; order of first mention is kept.
        ASSERT_EQ(parsed.value().topologies.size(), 2u);
        EXPECT_EQ(parsed.value().topologies[0],
                  net::TopologyShape::kRing);
        EXPECT_EQ(parsed.value().topologies[1],
                  net::TopologyShape::kStar);
    }
    {
        const char *argv[] = {"bench", "--topology", "all"};
        auto parsed = parseCli(3, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value().topologies.size(),
                  net::allTopologyShapes().size());
    }
    {
        const char *argv[] = {"bench", "--topology", "moebius"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--topology"};
        EXPECT_FALSE(parseCli(2, const_cast<char **>(argv)).isOk());
    }
}

TEST(Cli, ParsesPlacementAndLatencyModelAxes)
{
    {
        const char *argv[] = {"bench",           "--placement",
                              "kl-mincut",       "--placement",
                              "greedy-affinity", "--placement",
                              "kl-mincut"};
        auto parsed = parseCli(7, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        ASSERT_EQ(parsed.value().placements.size(), 2u);
        EXPECT_EQ(parsed.value().placements[0],
                  place::PlacementStrategy::kKlMincut);
        EXPECT_EQ(parsed.value().placements[1],
                  place::PlacementStrategy::kGreedyAffinity);
    }
    {
        const char *argv[] = {"bench", "--placement", "all",
                              "--latency-model", "all"};
        auto parsed = parseCli(5, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value().placements.size(),
                  place::allPlacementStrategies().size());
        EXPECT_EQ(parsed.value().latency_models.size(),
                  net::allLinkLatencyModels().size());
    }
    {
        const char *argv[] = {"bench", "--latency-model", "jitter"};
        auto parsed = parseCli(3, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        ASSERT_EQ(parsed.value().latency_models.size(), 1u);
        EXPECT_EQ(parsed.value().latency_models[0],
                  net::LinkLatencyModel::kSeededJitter);
    }
    {
        const char *argv[] = {"bench", "--placement", "anneal"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--latency-model"};
        EXPECT_FALSE(parseCli(2, const_cast<char **>(argv)).isOk());
    }
}

TEST(Cli, ParsesPolicyAndTreeArityAxes)
{
    {
        const char *argv[] = {"bench",  "--policy",     "paper",
                              "--tree-arity", "8", "--tree-arity", "2"};
        auto parsed = parseCli(7, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        ASSERT_EQ(parsed.value().policies.size(), 1u);
        EXPECT_EQ(parsed.value().policies[0], net::RouterPolicy::Paper);
        ASSERT_EQ(parsed.value().tree_arities.size(), 2u);
        EXPECT_EQ(parsed.value().tree_arities[0], 8u);
        EXPECT_EQ(parsed.value().tree_arities[1], 2u);
    }
    {
        const char *argv[] = {"bench", "--policy", "all"};
        auto parsed = parseCli(3, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value().policies.size(), 2u);
    }
    {
        const char *argv[] = {"bench", "--tree-arity", "1"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--policy", "fastest"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
}

TEST(Grid, PlacementAxisExpandsAndLabels)
{
    GridSpec grid;
    CircuitSpec chain;
    chain.kind = CircuitSpec::Kind::kLrCnotChain;
    chain.qubits = 5;
    grid.circuits.push_back(chain);
    grid.schemes = {compiler::SyncScheme::kBisp};
    grid.topologies = {net::TopologyShape::kTorus};
    grid.placements = place::allPlacementStrategies();
    grid.latency_models = {net::LinkLatencyModel::kUniform,
                           net::LinkLatencyModel::kDistanceScaled};
    grid.policies = {net::RouterPolicy::Robust, net::RouterPolicy::Paper};
    grid.tree_arities = {4, 2};

    const auto points = expandGrid(grid);
    ASSERT_EQ(points.size(), 3u * 2u * 2u * 2u);
    EXPECT_EQ(points[0].label(), "lrcnot_chain_n5/bisp/torus");
    EXPECT_EQ(points[1].label(), "lrcnot_chain_n5/bisp/torus/arity2");
    EXPECT_EQ(points[2].label(), "lrcnot_chain_n5/bisp/torus/paper");
    EXPECT_EQ(points[4].label(),
              "lrcnot_chain_n5/bisp/torus/distance_scaled");
    EXPECT_EQ(points[8].label(),
              "lrcnot_chain_n5/bisp/torus/greedy-affinity");
    EXPECT_EQ(
        points[15].label(),
        "lrcnot_chain_n5/bisp/torus/greedy-affinity/distance_scaled/"
        "paper/arity2");
}

TEST(Grid, RunPointOmitsDefaultAxisParams)
{
    // Byte-compat contract: grids that do not use the new axes must emit
    // exactly the PR 3 params.
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 5;
    const auto r = runPoint(point);
    for (const char *key :
         {"placement", "latency_model", "clustering", "policy",
          "tree_arity"}) {
        EXPECT_FALSE(r.params.contains(key)) << key;
    }

    ExperimentPoint tuned = point;
    tuned.config.placement = place::PlacementStrategy::kKlMincut;
    tuned.latency_model = net::LinkLatencyModel::kDistanceScaled;
    tuned.clustering = net::RouterClustering::kLocality;
    tuned.policy = net::RouterPolicy::Paper;
    tuned.tree_arity = 2;
    tuned.topology = net::TopologyShape::kTorus;
    const auto t = runPoint(tuned);
    EXPECT_TRUE(t.healthy);
    EXPECT_EQ(t.params.find("placement")->asString(), "kl-mincut");
    EXPECT_EQ(t.params.find("latency_model")->asString(),
              "distance_scaled");
    EXPECT_EQ(t.params.find("clustering")->asString(), "locality");
    EXPECT_EQ(t.params.find("policy")->asString(), "paper");
    EXPECT_EQ(t.params.find("tree_arity")->asInt(), 2);
}

TEST(Cli, ParsesClusteringAndRoutingAxes)
{
    {
        const char *argv[] = {"bench",      "--clustering", "locality",
                              "--routing",  "swap",         "--routing",
                              "swap"};
        auto parsed = parseCli(7, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        ASSERT_EQ(parsed.value().clusterings.size(), 1u);
        EXPECT_EQ(parsed.value().clusterings[0],
                  net::RouterClustering::kLocality);
        ASSERT_EQ(parsed.value().routings.size(), 1u);
        EXPECT_EQ(parsed.value().routings[0],
                  compiler::RoutingMode::kSwap);
    }
    {
        const char *argv[] = {"bench", "--clustering", "all",
                              "--routing", "all"};
        auto parsed = parseCli(5, const_cast<char **>(argv));
        ASSERT_TRUE(parsed.isOk());
        EXPECT_EQ(parsed.value().clusterings.size(), 2u);
        EXPECT_EQ(parsed.value().routings.size(),
                  compiler::allRoutingModes().size());
    }
    {
        const char *argv[] = {"bench", "--clustering", "diagonal"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--routing", "teleport"};
        EXPECT_FALSE(parseCli(3, const_cast<char **>(argv)).isOk());
    }
    {
        const char *argv[] = {"bench", "--routing"};
        EXPECT_FALSE(parseCli(2, const_cast<char **>(argv)).isOk());
    }
}

TEST(Grid, RoutingAxisExpandsAndLabels)
{
    GridSpec grid;
    CircuitSpec chain;
    chain.kind = CircuitSpec::Kind::kLrCnotChain;
    chain.qubits = 5;
    grid.circuits.push_back(chain);
    grid.schemes = {compiler::SyncScheme::kBisp};
    grid.routings = {compiler::RoutingMode::kNone,
                     compiler::RoutingMode::kSwap};
    grid.controllers = 3;

    const auto points = expandGrid(grid);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label(), "lrcnot_chain_n5/bisp/c3");
    EXPECT_EQ(points[1].label(), "lrcnot_chain_n5/bisp/routed-swap/c3");
    EXPECT_EQ(points[0].config.routing, compiler::RoutingMode::kNone);
    EXPECT_EQ(points[1].config.routing, compiler::RoutingMode::kSwap);
    EXPECT_EQ(points[0].controllers, 3u);
}

TEST(Grid, RunPointOmitsRoutingParamsAtDefaults)
{
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 5;
    const auto r = runPoint(point);
    EXPECT_FALSE(r.params.contains("routing"));
    EXPECT_FALSE(r.params.contains("controllers"));
    EXPECT_FALSE(r.metrics.contains("swaps_inserted"));

    ExperimentPoint routed = point;
    routed.config.routing = compiler::RoutingMode::kSwap;
    routed.controllers = 3;
    const auto t = runPoint(routed);
    EXPECT_TRUE(t.healthy) << t.health;
    EXPECT_EQ(t.params.find("routing")->asString(), "swap");
    EXPECT_EQ(t.params.find("controllers")->asInt(), 3);
    EXPECT_TRUE(t.metrics.contains("swaps_inserted"));
}

TEST(Grid, OverCapacityWithoutRoutingReportsRejected)
{
    ExperimentPoint point;
    point.circuit.kind = CircuitSpec::Kind::kLrCnotChain;
    point.circuit.qubits = 9;
    point.controllers = 4; // capacity 4 < 9 qubits
    const auto r = runPoint(point);
    EXPECT_FALSE(r.healthy);
    EXPECT_EQ(r.health.rfind("rejected:", 0), 0u) << r.health;

    ExperimentPoint routed = point;
    routed.config.routing = compiler::RoutingMode::kSwap;
    const auto t = runPoint(routed);
    EXPECT_TRUE(t.healthy) << t.health;
}

TEST(Grid, RoutingStressCircuitSpecBuilds)
{
    CircuitSpec spec;
    spec.kind = CircuitSpec::Kind::kRoutingStress;
    spec.routing_stress.qubits = 10;
    spec.routing_stress.stride = 4;
    spec.routing_stress.seed = 3;
    EXPECT_EQ(spec.id(), "routing_stress_n10_d4_s3");
    const auto circuit = spec.build();
    EXPECT_EQ(circuit.numQubits(), 10u);
    EXPECT_GT(circuit.countTwoQubit(), 0u);
}

TEST(Grid, GhzFanoutCircuitSpecBuilds)
{
    CircuitSpec spec;
    spec.kind = CircuitSpec::Kind::kGhzFanout;
    spec.qubits = 8;
    spec.expand_fraction = 1.0;
    EXPECT_EQ(spec.id(), "ghz_fanout_n8");
    const auto circuit = spec.build();
    EXPECT_EQ(circuit.numQubits(), 8u);
    EXPECT_GT(circuit.size(), 8u); // expansion adds the dynamic chains
}

TEST(Cli, ParsesListFlag)
{
    const char *argv[] = {"bench", "--list", "--quick"};
    auto parsed = parseCli(3, const_cast<char **>(argv));
    ASSERT_TRUE(parsed.isOk());
    EXPECT_TRUE(parsed.value().list);
    EXPECT_TRUE(parsed.value().quick);
}

// ---- Baseline regression gate -------------------------------------------

namespace {

Json
benchDoc(long long makespan, bool healthy = true,
         const char *label = "p0")
{
    BenchReport report;
    report.bench = "regress_test";
    PointResult p;
    p.label = label;
    p.metrics["makespan_cycles"] = makespan;
    p.healthy = healthy;
    p.health = healthy ? "ok" : "deadlock";
    report.points.push_back(std::move(p));
    return report.toJson();
}

} // namespace

TEST(Regress, IdenticalReportsPass)
{
    const Json doc = benchDoc(1000);
    auto r = compareBenchReports(doc, doc, 0.15);
    ASSERT_TRUE(r.isOk()) << r.message();
    EXPECT_TRUE(r.value().ok());
    EXPECT_EQ(r.value().compared_points, 1u);
    EXPECT_GE(r.value().compared_metrics, 1u);
}

TEST(Regress, WithinThresholdPasses)
{
    auto r = compareBenchReports(benchDoc(1000), benchDoc(1100), 0.15);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().ok());
}

TEST(Regress, BeyondThresholdFails)
{
    auto r = compareBenchReports(benchDoc(1000), benchDoc(1200), 0.15);
    ASSERT_TRUE(r.isOk());
    ASSERT_EQ(r.value().regressions.size(), 1u);
    EXPECT_EQ(r.value().regressions[0].metric, "makespan_cycles");
    EXPECT_DOUBLE_EQ(r.value().regressions[0].ratio, 1.2);
}

TEST(Regress, ThresholdIsOverridable)
{
    auto r = compareBenchReports(benchDoc(1000), benchDoc(1200), 0.30);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().ok());
}

TEST(Regress, ImprovementNeverFails)
{
    auto r = compareBenchReports(benchDoc(1000), benchDoc(400), 0.15);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().ok());
}

TEST(Regress, HealthyToUnhealthyFails)
{
    auto r = compareBenchReports(benchDoc(1000),
                                 benchDoc(1000, /*healthy=*/false), 0.15);
    ASSERT_TRUE(r.isOk());
    ASSERT_EQ(r.value().regressions.size(), 1u);
    EXPECT_EQ(r.value().regressions[0].metric, "healthy -> unhealthy");
}

TEST(Regress, MissingPointFailsNewPointIsANote)
{
    const Json baseline = benchDoc(1000, true, "old_point");
    const Json current = benchDoc(1000, true, "new_point");
    auto r = compareBenchReports(baseline, current, 0.15);
    ASSERT_TRUE(r.isOk());
    ASSERT_EQ(r.value().regressions.size(), 1u);
    EXPECT_EQ(r.value().regressions[0].label, "old_point");
    ASSERT_EQ(r.value().notes.size(), 1u);
    EXPECT_NE(r.value().notes[0].find("new_point"), std::string::npos);
}

namespace {

/** One-point report with an arbitrary (or no) metric. */
Json
benchDocMetric(const char *metric_key, double value)
{
    BenchReport report;
    report.bench = "regress_test";
    PointResult p;
    p.label = "p0";
    if (metric_key != nullptr)
        p.metrics[metric_key] = value;
    report.points.push_back(std::move(p));
    return report.toJson();
}

} // namespace

TEST(Regress, TrackedMetricOnlyInBaselineFails)
{
    // A current run that silently stops emitting a tracked metric must
    // not pass — it would hide every future regression of that metric.
    auto r = compareBenchReports(benchDocMetric("makespan_cycles", 1000),
                                 benchDocMetric(nullptr, 0), 0.15);
    ASSERT_TRUE(r.isOk());
    ASSERT_EQ(r.value().regressions.size(), 1u);
    EXPECT_NE(r.value().regressions[0].metric.find(
                  "present only in baseline"),
              std::string::npos);
}

TEST(Regress, TrackedMetricOnlyInCurrentFails)
{
    // The other direction too: a metric the baseline never recorded is
    // un-gated, so the mismatch must be surfaced, not skipped.
    auto r = compareBenchReports(benchDocMetric(nullptr, 0),
                                 benchDocMetric("makespan_cycles", 1000),
                                 0.15);
    ASSERT_TRUE(r.isOk());
    ASSERT_EQ(r.value().regressions.size(), 1u);
    EXPECT_NE(r.value().regressions[0].metric.find(
                  "present only in current"),
              std::string::npos);
}

TEST(Regress, UntrackedMetricsAreNeverCompared)
{
    // Wall-clock rates (reqs_per_sec and friends) are noise by design:
    // absent, present, or wildly different, they never gate.
    auto r = compareBenchReports(benchDocMetric("reqs_per_sec", 5000.0),
                                 benchDocMetric("reqs_per_sec", 5.0),
                                 0.15);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().ok());

    auto one_sided = compareBenchReports(
        benchDocMetric("reqs_per_sec", 5000.0), benchDocMetric(nullptr, 0),
        0.15);
    ASSERT_TRUE(one_sided.isOk());
    EXPECT_TRUE(one_sided.value().ok());
}

TEST(Regress, RejectsWrongSchema)
{
    Json bogus = Json::object();
    bogus["schema"] = "not-a-bench";
    EXPECT_FALSE(compareBenchReports(bogus, benchDoc(1), 0.15).isOk());
    EXPECT_FALSE(compareBenchReports(benchDoc(1), bogus, 0.15).isOk());
    EXPECT_FALSE(
        compareBenchReports(benchDoc(1), benchDoc(1), -0.5).isOk());
}

} // namespace
} // namespace dhisq::sweep
