/**
 * @file
 * BISP protocol integration tests (Section 4): nearby and region
 * synchronization through the full machine (cores + TCU + SyncU + fabric +
 * routers), zero-overhead conditions, the Section 4.4 overhead formula,
 * repeated loop synchronization (Figure 12/13), and failure injection via
 * link mis-calibration.
 */
#include <gtest/gtest.h>

#include <string>

#include "common/strings.hpp"
#include "isa/assembler.hpp"
#include "runtime/machine.hpp"

namespace dhisq {
namespace {

using runtime::Machine;
using runtime::MachineConfig;

MachineConfig
lineMachine(unsigned n, Cycle neighbor_latency = 2, Cycle hop_latency = 4)
{
    MachineConfig cfg;
    cfg.topology.width = n;
    cfg.topology.height = 1;
    cfg.topology.tree_arity = 4;
    cfg.topology.neighbor_latency = neighbor_latency;
    cfg.topology.hop_latency = hop_latency;
    cfg.device.num_qubits = std::max(2u, n);
    cfg.ports_per_controller = 4;
    return cfg;
}

/** Build "waiti B; sync <tgt>; waiti R; cw.i.i 0, 9; halt". */
std::string
syncProgram(Cycle booking, const std::string &tgt, Cycle residual)
{
    std::string src;
    src += prefixedNumber("waiti ", booking) + "\n";
    src += "sync " + tgt;
    if (tgt[0] == 'r')
        src += prefixedNumber(", ", residual);
    src += "\n";
    src += prefixedNumber("waiti ", residual) + "\n";
    src += "cw.i.i 0, 9\n";
    src += "halt\n";
    return src;
}

/** Wall cycle of the single marker codeword (value 9) on board `name`. */
Cycle
markerCycle(const TelfLog &telf, const std::string &board)
{
    const auto commits = telf.filter([&](const TelfRecord &r) {
        return r.kind == TelfKind::CodewordCommit && r.source == board &&
               r.value == 9;
    });
    EXPECT_EQ(commits.size(), 1u) << "expected one marker on " << board;
    return commits.empty() ? kNoCycle : commits[0].cycle;
}

// ---------------------------------------------------------------------------
// Nearby synchronization.
// ---------------------------------------------------------------------------

struct NearbyCase
{
    const char *label;
    Cycle b0, b1;      ///< Booking times of C0 / C1 (local).
    Cycle residual;    ///< Equal residual after booking on both sides.
    Cycle latency;     ///< Link latency N.
};

class NearbySync : public ::testing::TestWithParam<NearbyCase>
{
};

TEST_P(NearbySync, BothControllersCommitInTheSameCycle)
{
    const auto &p = GetParam();
    Machine m(lineMachine(2, p.latency));
    m.loadProgram(0, isa::assembleOrDie(syncProgram(p.b0, "1", p.residual),
                                        "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(p.b1, "0", p.residual),
                                        "c1"));
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    EXPECT_EQ(report.syncs_completed, 2u);

    const Cycle t0 = markerCycle(m.telf(), "B0");
    const Cycle t1 = markerCycle(m.telf(), "B1");
    EXPECT_EQ(t0, t1) << "cycle-level commitment synchronization violated";

    // BISP commits at max(B0, B1) + residual when residual >= N
    // (zero-overhead regime, Section 4.2).
    const Cycle expected = std::max(p.b0, p.b1) + p.residual;
    EXPECT_EQ(t0, expected);
}

INSTANTIATE_TEST_SUITE_P(
    ZeroOverheadRegime, NearbySync,
    ::testing::Values(
        NearbyCase{"c0_books_first", 10, 14, 8, 2},
        NearbyCase{"c1_books_first", 14, 10, 8, 2},
        NearbyCase{"equal_bookings", 10, 10, 8, 2},
        NearbyCase{"residual_equals_latency", 10, 30, 2, 2},
        NearbyCase{"large_gap", 5, 500, 16, 2},
        NearbyCase{"slow_link", 20, 26, 12, 6},
        NearbyCase{"unit_latency", 7, 9, 4, 1}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(NearbySyncOverhead, ZeroWhenResidualCoversLatency)
{
    // Both book at the same time; residual == N: Condition I and the
    // sync-point coincide — no pause on either side.
    Machine m(lineMachine(2, 4));
    m.loadProgram(0, isa::assembleOrDie(syncProgram(50, "1", 4), "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(50, "0", 4), "c1"));
    const auto report = m.run();
    EXPECT_EQ(report.pause_cycles, 0u);
    EXPECT_EQ(markerCycle(m.telf(), "B0"), 54u);
    EXPECT_EQ(markerCycle(m.telf(), "B1"), 54u);
}

TEST(NearbySyncOverhead, LateBookerStallsPeerByBookingDelta)
{
    // C1 books 20 cycles later: C0's timer pauses for 20 cycles awaiting
    // C1's signal (Figure 5a); C1 sails through without pausing.
    Machine m(lineMachine(2, 2));
    m.loadProgram(0, isa::assembleOrDie(syncProgram(10, "1", 8), "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(30, "0", 8), "c1"));
    const auto report = m.run();
    EXPECT_EQ(markerCycle(m.telf(), "B0"), 38u);
    EXPECT_EQ(markerCycle(m.telf(), "B1"), 38u);
    EXPECT_EQ(report.pause_cycles, 20u);
    EXPECT_EQ(m.core(0).tcu().stats().counter("pause_cycles"), 20u);
    EXPECT_EQ(m.core(1).tcu().stats().counter("pause_cycles"), 0u);
}

TEST(NearbySyncOverhead, Section44FormulaWhenLeadTooSmall)
{
    // Section 4.4: if the deterministic gap D before the sync point is
    // smaller than the link latency L, the overhead is L - D. The compiler
    // pads the residual up to N, so the synchronous task lands at
    // max(B0, B1) + N instead of max(T0, T1) = max(B0, B1) + D.
    const Cycle latency = 10;
    const Cycle gap = 4; // D < L
    Machine m(lineMachine(2, latency));
    // Residual is forced to N (the pad): tasks would ideally run at B + D.
    m.loadProgram(0, isa::assembleOrDie(syncProgram(100, "1", latency),
                                        "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(100, "0", latency),
                                        "c1"));
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    const Cycle actual = markerCycle(m.telf(), "B0");
    const Cycle ideal = 100 + gap;
    EXPECT_EQ(actual, 100 + latency);
    EXPECT_EQ(actual - ideal, latency - gap) << "overhead formula L - D";
}

TEST(NearbySyncLoop, Figure12StyleRepeatedSyncStaysAligned)
{
    // Control-board-style program: a loop whose iteration time grows via
    // waitr $1 (non-deterministic to the peer), synchronized each turn.
    // Readout-board-style program: deterministic, just syncs and fires.
    const char *control = R"(
            addi $2, $0, 480
            addi $1, $0, 0
        inner:
            waiti 20
            cw.i.i 1, 2       # growing-offset pulse
            addi $1, $1, 120
            waitr $1
            sync 1
            waiti 8
            cw.i.i 0, 9       # synchronized pulse (yellow)
            waiti 50
            bne $1, $2, inner
            halt
    )";
    const char *readout = R"(
            addi $3, $0, 4
            addi $4, $0, 0
        inner:
            sync 0
            waiti 8
            cw.i.i 0, 9       # synchronized pulse (blue)
            waiti 50
            addi $4, $4, 1
            bne $4, $3, inner
            halt
    )";
    Machine m(lineMachine(2, 2));
    m.loadProgram(0, isa::assembleOrDie(control, "control"));
    m.loadProgram(1, isa::assembleOrDie(readout, "readout"));
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    EXPECT_EQ(report.syncs_completed, 8u); // 4 iterations x 2 controllers

    const auto c0 = m.telf().filter([](const TelfRecord &r) {
        return r.kind == TelfKind::CodewordCommit && r.source == "B0" &&
               r.port == 0;
    });
    const auto c1 = m.telf().filter([](const TelfRecord &r) {
        return r.kind == TelfKind::CodewordCommit && r.source == "B1" &&
               r.port == 0;
    });
    ASSERT_EQ(c0.size(), 4u);
    ASSERT_EQ(c1.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(c0[i].cycle, c1[i].cycle)
            << "iteration " << i << " lost cycle alignment";
    }
    // The control board's iteration period grows by 120 cycles per loop.
    for (std::size_t i = 1; i < 4; ++i) {
        const Cycle delta = c0[i].cycle - c0[i - 1].cycle;
        const Cycle prev =
            (i >= 2) ? c0[i - 1].cycle - c0[i - 2].cycle : delta - 120;
        EXPECT_EQ(delta, prev + 120);
    }
}

// ---------------------------------------------------------------------------
// Region synchronization through the router tree.
// ---------------------------------------------------------------------------

TEST(RegionSync, FourControllersMeetAtTheLatestBooking)
{
    Machine m(lineMachine(4));
    const Cycle bookings[4] = {10, 20, 30, 40};
    const Cycle residual = 30;
    for (ControllerId c = 0; c < 4; ++c) {
        m.loadProgram(c, isa::assembleOrDie(
                             syncProgram(bookings[c], "r0", residual),
                             prefixedNumber("c", c)));
    }
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    EXPECT_EQ(report.syncs_completed, 4u);

    // T_i = B_i + residual; all requests reach R0 by max(B)+hop = 44,
    // worst notify arrival 48 < T_max = 70: zero overhead.
    for (ControllerId c = 0; c < 4; ++c) {
        EXPECT_EQ(markerCycle(m.telf(), prefixedNumber("B", c)), 70u)
            << "controller " << c;
    }
}

TEST(RegionSync, InsufficientLeadAddsUniformDelayButKeepsAlignment)
{
    Machine m(lineMachine(4));
    const Cycle bookings[4] = {10, 20, 30, 40};
    const Cycle residual = 5; // T_max = 45 < notify arrival
    for (ControllerId c = 0; c < 4; ++c) {
        m.loadProgram(c, isa::assembleOrDie(
                             syncProgram(bookings[c], "r0", residual),
                             prefixedNumber("c", c)));
    }
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);

    // Robust policy: decision at max(B)+hop = 44, T_final =
    // max(45, 44 + 4) = 48; all controllers align at 48.
    Cycle first = markerCycle(m.telf(), "B0");
    EXPECT_EQ(first, 48u);
    for (ControllerId c = 1; c < 4; ++c)
        EXPECT_EQ(markerCycle(m.telf(), prefixedNumber("B", c)), first);
    EXPECT_GT(report.pause_cycles, 0u);
}

TEST(RegionSync, TwoLevelTreeAlignsAllSixteen)
{
    Machine m(lineMachine(16));
    const Cycle residual = 60;
    for (ControllerId c = 0; c < 16; ++c) {
        m.loadProgram(c, isa::assembleOrDie(
                             syncProgram(10 + 3 * c, "r4", residual),
                             prefixedNumber("c", c)));
    }
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    EXPECT_EQ(report.syncs_completed, 16u);
    // Root router for 16 controllers with arity 4 is R4.
    const Cycle expected = (10 + 3 * 15) + residual; // latest T_i = 115
    for (ControllerId c = 0; c < 16; ++c) {
        EXPECT_EQ(markerCycle(m.telf(), prefixedNumber("B", c)),
                  expected)
            << "controller " << c;
    }
}

TEST(RegionSync, PaperPolicyStaysAlignedOnBalancedTree)
{
    // With a balanced tree every leaf receives the broadcast at the same
    // cycle, so even the paper's T_m-only notification stays cycle-aligned;
    // the release is simply late when the lead is too small.
    auto cfg = lineMachine(4);
    cfg.fabric.policy = net::RouterPolicy::Paper;
    Machine m(cfg);
    for (ControllerId c = 0; c < 4; ++c) {
        m.loadProgram(c, isa::assembleOrDie(
                             syncProgram(10 + 10 * c, "r0", 5),
                             prefixedNumber("c", c)));
    }
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    const Cycle first = markerCycle(m.telf(), "B0");
    for (ControllerId c = 1; c < 4; ++c)
        EXPECT_EQ(markerCycle(m.telf(), prefixedNumber("B", c)), first);
    // Notifications arrived after T_m = 45: late-notify counter fires.
    std::uint64_t late = 0;
    for (ControllerId c = 0; c < 4; ++c)
        late += m.core(c).syncu().stats().counter("late_region_notifies");
    EXPECT_GT(late, 0u);
}

TEST(RegionSync, RepeatedRoundsKeepAlignment)
{
    // Three consecutive region syncs (program repetitions, Section 2.1.4).
    Machine m(lineMachine(4));
    for (ControllerId c = 0; c < 4; ++c) {
        std::string src;
        for (int round = 0; round < 3; ++round) {
            src += prefixedNumber("waiti ", 10 + 7 * c) + "\n";
            src += "sync r0, 40\n";
            src += "waiti 40\n";
            src += "cw.i.i 0, 9\n";
        }
        src += "halt\n";
        m.loadProgram(c, isa::assembleOrDie(src, prefixedNumber("c", c)));
    }
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    EXPECT_EQ(report.syncs_completed, 12u);
    for (int round = 0; round < 3; ++round) {
        Cycle t_first = kNoCycle;
        for (ControllerId c = 0; c < 4; ++c) {
            const auto commits = m.telf().filter([&](const TelfRecord &r) {
                return r.kind == TelfKind::CodewordCommit &&
                       r.source == prefixedNumber("B", c);
            });
            ASSERT_EQ(commits.size(), 3u);
            if (c == 0)
                t_first = commits[round].cycle;
            else
                EXPECT_EQ(commits[round].cycle, t_first)
                    << "round " << round << " controller " << c;
        }
    }
}

// ---------------------------------------------------------------------------
// Failure injection: a mis-calibrated nearby link breaks cycle alignment.
// ---------------------------------------------------------------------------

TEST(FailureInjection, MiscalibratedLinkBreaksAlignment)
{
    auto cfg = lineMachine(2, /*neighbor_latency=*/4);
    cfg.fabric.nearby_calibration_error = -2; // SyncU believes N = 2
    Machine m(cfg);
    // C1 books later, so C0 must pause-and-resume on C1's signal; with N
    // mis-calibrated low, C0 resumes 2 cycles early.
    m.loadProgram(0, isa::assembleOrDie(syncProgram(10, "1", 8), "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(40, "0", 8), "c1"));
    const auto report = m.run();
    ASSERT_FALSE(report.deadlock);
    const Cycle t0 = markerCycle(m.telf(), "B0");
    const Cycle t1 = markerCycle(m.telf(), "B1");
    EXPECT_NE(t0, t1) << "mis-calibration should break cycle alignment";
}

TEST(FailureInjection, CorrectCalibrationRestoresAlignment)
{
    auto cfg = lineMachine(2, 4);
    cfg.fabric.nearby_calibration_error = 0;
    Machine m(cfg);
    m.loadProgram(0, isa::assembleOrDie(syncProgram(10, "1", 8), "c0"));
    m.loadProgram(1, isa::assembleOrDie(syncProgram(40, "0", 8), "c1"));
    m.run();
    EXPECT_EQ(markerCycle(m.telf(), "B0"), markerCycle(m.telf(), "B1"));
}

} // namespace
} // namespace dhisq
