/**
 * @file
 * End-to-end property sweeps across the whole stack: for many seeds,
 * spans and schemes, compiled executions must (a) terminate, (b) keep
 * cycle-level gate coincidence, (c) stay violation-free, and (d) agree
 * with reference state-vector semantics wherever the final state is
 * branch-independent.
 */
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "compiler/compiler.hpp"
#include "quantum/state_vector.hpp"
#include "runtime/machine.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

namespace dhisq {
namespace {

using compiler::Circuit;
using compiler::CompilerConfig;
using compiler::SyncScheme;
using runtime::Machine;

struct RunResult
{
    runtime::RunReport report;
    q::StateVector state{1};
    std::vector<q::QuantumDevice::MeasurementRecord> measurements;
};

RunResult
run(const Circuit &circuit, SyncScheme scheme, std::uint64_t seed,
    unsigned repetitions = 1)
{
    net::TopologyConfig topo_cfg;
    topo_cfg.width = circuit.numQubits();
    net::Topology topo = net::Topology::grid(topo_cfg);
    CompilerConfig cc;
    cc.scheme = scheme;
    cc.repetitions = repetitions;
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);

    auto mc = compiler::machineConfigFor(topo_cfg, cc,
                                         circuit.numQubits(), true, seed);
    mc.fabric.star_messages = (scheme == SyncScheme::kLockStep);
    Machine machine(mc);
    compiled.applyTo(machine);
    RunResult out;
    out.report = machine.run();
    out.state = machine.device().state();
    out.measurements = machine.device().measurements();
    return out;
}

// ---------------------------------------------------------------------------
// Property: the long-range CNOT converges on every branch, for every span,
// seed and scheme combination.
// ---------------------------------------------------------------------------

using LrParam = std::tuple<unsigned, std::uint64_t, SyncScheme>;

class LrCnotEverywhere : public ::testing::TestWithParam<LrParam>
{
};

TEST_P(LrCnotEverywhere, ConvergesToDirectCnot)
{
    const auto [span, seed, scheme] = GetParam();
    const unsigned n = span + 1;
    Circuit circuit(n, "sweep");
    circuit.gate(q::Gate::kH, 0);
    circuit.gate(q::Gate::kT, 0);
    workloads::appendLongRangeCnotLine(circuit, 0, n - 1);

    auto result = run(circuit, scheme, seed);
    ASSERT_FALSE(result.report.deadlock);
    ASSERT_EQ(result.report.coincidence_violations, 0u);
    ASSERT_EQ(result.report.timing_violations, 0u);

    q::StateVector ref(n);
    ref.apply1q(q::Gate::kH, 0);
    ref.apply1q(q::Gate::kT, 0);
    ref.apply2q(q::Gate::kCNOT, 0, n - 1);
    for (const auto &m : result.measurements) {
        if (m.bit)
            ref.apply1q(q::Gate::kX, m.qubit);
    }
    EXPECT_NEAR(result.state.fidelityWith(ref), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrCnotEverywhere,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 8u),
                       ::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(SyncScheme::kBisp,
                                         SyncScheme::kDemand,
                                         SyncScheme::kLockStep)),
    [](const auto &info) {
        return "span" + std::to_string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::string(compiler::toString(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: random dynamic circuits never deadlock, never break timing or
// coincidence, under every scheme.
// ---------------------------------------------------------------------------

using RdParam = std::tuple<std::uint64_t, SyncScheme>;

class RandomDynamicHealthy : public ::testing::TestWithParam<RdParam>
{
};

TEST_P(RandomDynamicHealthy, RunsCleanly)
{
    const auto [seed, scheme] = GetParam();
    workloads::RandomDynamicOptions opt;
    opt.qubits = 10;
    opt.layers = 10;
    opt.feedback_fraction = 0.5;
    opt.feedback_span = 4;
    opt.seed = seed;
    auto circuit = workloads::randomDynamic(opt);
    Rng er(seed + 100);
    auto dyn = workloads::expandNonAdjacentGates(circuit, 1.0, er);

    auto result = run(dyn, scheme, seed);
    EXPECT_FALSE(result.report.deadlock);
    EXPECT_EQ(result.report.coincidence_violations, 0u);
    EXPECT_EQ(result.report.timing_violations, 0u);
    EXPECT_EQ(result.report.halted_cores,
              net::Topology::grid({.width = dyn.numQubits()})
                      .numControllers() > 0
                  ? result.report.halted_cores
                  : 0u);
    EXPECT_NEAR(result.state.norm(), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDynamicHealthy,
    ::testing::Combine(::testing::Values(1ull, 7ull, 13ull, 29ull),
                       ::testing::Values(SyncScheme::kBisp,
                                         SyncScheme::kDemand,
                                         SyncScheme::kLockStep)),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
               std::string(compiler::toString(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: repetitions preserve health and multiply sync counts.
// ---------------------------------------------------------------------------

class RepetitionSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RepetitionSweep, RegionBarriersScaleWithReps)
{
    const unsigned reps = GetParam();
    auto circuit = workloads::ghz(5);
    auto result = run(circuit, SyncScheme::kBisp, 1, reps);
    ASSERT_FALSE(result.report.deadlock);
    EXPECT_EQ(result.report.timing_violations, 0u);
    EXPECT_EQ(result.report.coincidence_violations, 0u);
    // (reps - 1) barriers x 5 controllers region syncs.
    EXPECT_EQ(result.report.syncs_completed, (reps - 1) * 5u);
}

INSTANTIATE_TEST_SUITE_P(Reps, RepetitionSweep,
                         ::testing::Values(1u, 2u, 4u, 6u),
                         [](const auto &info) {
                             return "reps" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: deterministic workloads give identical measurement outcomes
// under every scheme (the adder's sum is input-determined).
// ---------------------------------------------------------------------------

TEST(SchemeEquivalence, AdderSumAgreesAcrossSchemes)
{
    workloads::AdderOptions opt;
    for (std::uint64_t input_seed : {5ull, 9ull, 21ull}) {
        opt.seed = input_seed;
        const auto circuit = workloads::adder(8, opt);

        std::vector<unsigned> sums;
        for (auto scheme : {SyncScheme::kBisp, SyncScheme::kDemand,
                            SyncScheme::kLockStep}) {
            net::TopologyConfig topo_cfg;
            topo_cfg.width = 2;
            net::Topology topo = net::Topology::grid(topo_cfg);
            CompilerConfig cc;
            cc.scheme = scheme;
            cc.qubits_per_controller = 4;
            compiler::Compiler comp(topo, cc);
            auto compiled = comp.compile(circuit);
            auto mc = compiler::machineConfigFor(topo_cfg, cc, 8, true, 3);
            mc.fabric.star_messages = (scheme == SyncScheme::kLockStep);
            Machine machine(mc);
            compiled.applyTo(machine);
            auto report = machine.run();
            ASSERT_FALSE(report.deadlock);

            unsigned sum = 0;
            for (const auto &m : machine.device().measurements()) {
                if (m.qubit == 7)
                    sum |= unsigned(m.bit) << 3;
                else
                    sum |= unsigned(m.bit) << ((m.qubit - 2) / 2);
            }
            sums.push_back(sum);
        }
        EXPECT_EQ(sums[0], sums[1]) << "seed " << input_seed;
        EXPECT_EQ(sums[1], sums[2]) << "seed " << input_seed;
    }
}

// ---------------------------------------------------------------------------
// Property: the meas_log decoder maps every slot-keyed device measurement
// record back to the right circuit qubit and occurrence, even when SWAP
// routing moves logical qubits across physical slots and the program
// repeats. The circuits are classical (X flips + measures only), so every
// expected bit is computable by replay: a decode to the wrong qubit OR the
// wrong occurrence shows up as a bit mismatch, not just a count mismatch.
// ---------------------------------------------------------------------------

TEST(MeasLogDecoder, RoutedRepeatedRecordsDecodeToCircuitQubits)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const unsigned n = 6 + unsigned(seed % 5);    // 6..10 qubits
        const unsigned reps = 2 + unsigned(seed % 3); // always > 1
        Rng gen(seed * 71 + 11);
        Circuit circuit(n, "meas_decode_s" + std::to_string(seed));
        unsigned measures = 0;
        for (int op = 0; op < 40 || measures == 0; ++op) {
            const auto q = QubitId(gen.below(n));
            if (gen.coin(0.55)) {
                circuit.gate(q::Gate::kX, q);
            } else {
                circuit.measure(q);
                ++measures;
            }
        }

        // Classical replay, `reps` sequential executions (device state
        // persists across repetitions): per logical qubit, the expected
        // outcome of its k-th measurement in expanded-program order.
        std::vector<int> bits(n, 0);
        std::vector<std::vector<int>> expected(n);
        for (unsigned rep = 0; rep < reps; ++rep) {
            for (const auto &op : circuit.ops()) {
                if (op.isMeasure())
                    expected[op.qubits[0]].push_back(bits[op.qubits[0]]);
                else
                    bits[op.qubits[0]] ^= 1;
            }
        }

        // Over-capacity: half the controllers, SWAP routing.
        const unsigned controllers = (n + 1) / 2;
        net::TopologyConfig topo_cfg;
        topo_cfg.width = controllers;
        net::Topology topo = net::Topology::grid(topo_cfg);
        CompilerConfig cc;
        cc.routing = compiler::RoutingMode::kSwap;
        cc.repetitions = reps;
        compiler::Compiler comp(topo, cc);
        auto compiled = comp.compile(circuit);
        ASSERT_EQ(compiled.meas_log.size(),
                  std::size_t(measures) * reps)
            << "seed " << seed;

        auto mc =
            compiler::machineConfigFor(topo_cfg, cc, compiled, true, seed);
        Machine machine(mc);
        compiled.applyTo(machine);
        const auto report = machine.run();
        ASSERT_FALSE(report.deadlock) << "seed " << seed;

        const auto &records = machine.device().measurements();
        ASSERT_EQ(records.size(), std::size_t(measures) * reps)
            << "seed " << seed;
        std::map<QubitId, std::size_t> slot_occurrence;
        std::vector<std::size_t> logical_occurrence(n, 0);
        for (const auto &m : records) {
            const std::size_t occ = slot_occurrence[m.qubit]++;
            const QubitId logical =
                compiled.logicalMeasQubit(m.qubit, occ);
            ASSERT_NE(logical, kNoQubit)
                << "seed " << seed << ": slot " << unsigned(m.qubit)
                << " occurrence " << occ << " decodes to nothing";
            ASSERT_LT(logical, n) << "seed " << seed;
            const std::size_t k = logical_occurrence[logical]++;
            ASSERT_LT(k, expected[logical].size())
                << "seed " << seed << ": logical qubit "
                << unsigned(logical) << " measured more often than the "
                << "circuit says";
            ASSERT_EQ(m.bit, expected[logical][k])
                << "seed " << seed << ": slot " << unsigned(m.qubit)
                << " occurrence " << occ << " decoded to logical qubit "
                << unsigned(logical) << " occurrence " << k
                << " but the replayed circuit disagrees on the bit — "
                << "the decoder mapped the record to the wrong qubit or "
                << "occurrence";
        }
        for (QubitId q = 0; q < n; ++q) {
            EXPECT_EQ(logical_occurrence[q], expected[q].size())
                << "seed " << seed << ": logical qubit " << unsigned(q)
                << " lost measurement records in the decode";
        }
        // One past the last occurrence on every slot must be a miss.
        for (const auto &[slot, occ] : slot_occurrence) {
            EXPECT_EQ(compiled.logicalMeasQubit(slot, occ), kNoQubit)
                << "seed " << seed << ": slot " << unsigned(slot)
                << " decoded an occurrence past the program's end";
        }
    }
}

TEST(MeasLogDecoder, UnroutedDecodeIsIdentity)
{
    // Without routing a slot IS the logical qubit; the decoder must be
    // the identity for every occurrence, repetitions included.
    auto circuit = workloads::ghz(5, /*measure_all=*/true);
    net::TopologyConfig topo_cfg;
    topo_cfg.width = 5;
    net::Topology topo = net::Topology::grid(topo_cfg);
    CompilerConfig cc;
    cc.repetitions = 3;
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);
    ASSERT_EQ(compiled.meas_log.size(), 15u);
    for (QubitId q = 0; q < 5; ++q) {
        for (std::size_t occ = 0; occ < 3; ++occ)
            EXPECT_EQ(compiled.logicalMeasQubit(q, occ), q);
        EXPECT_EQ(compiled.logicalMeasQubit(q, 3), kNoQubit);
    }
}

// ---------------------------------------------------------------------------
// Property: BISP beats or matches demand-driven, which beats lock-step,
// across feedback densities (tolerating small branch-path noise).
// ---------------------------------------------------------------------------

TEST(SchemeOrdering, HoldsAcrossFeedbackDensities)
{
    for (double frac : {0.25, 0.5, 0.75}) {
        workloads::RandomDynamicOptions opt;
        opt.qubits = 8;
        opt.layers = 10;
        opt.feedback_fraction = frac;
        opt.seed = 17;
        auto circuit = workloads::randomDynamic(opt);
        Rng er(2);
        auto dyn = workloads::expandNonAdjacentGates(circuit, 1.0, er);

        const auto bisp = run(dyn, SyncScheme::kBisp, 4);
        const auto demand = run(dyn, SyncScheme::kDemand, 4);
        const auto lockstep = run(dyn, SyncScheme::kLockStep, 4);
        EXPECT_LE(bisp.report.makespan, demand.report.makespan + 10)
            << "feedback " << frac;
        EXPECT_LT(bisp.report.makespan, lockstep.report.makespan)
            << "feedback " << frac;
    }
}

} // namespace
} // namespace dhisq
