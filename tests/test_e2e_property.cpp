/**
 * @file
 * End-to-end property sweeps across the whole stack: for many seeds,
 * spans and schemes, compiled executions must (a) terminate, (b) keep
 * cycle-level gate coincidence, (c) stay violation-free, and (d) agree
 * with reference state-vector semantics wherever the final state is
 * branch-independent.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "compiler/compiler.hpp"
#include "quantum/state_vector.hpp"
#include "runtime/machine.hpp"
#include "workloads/generators.hpp"
#include "workloads/lrcnot.hpp"

namespace dhisq {
namespace {

using compiler::Circuit;
using compiler::CompilerConfig;
using compiler::SyncScheme;
using runtime::Machine;

struct RunResult
{
    runtime::RunReport report;
    q::StateVector state{1};
    std::vector<q::QuantumDevice::MeasurementRecord> measurements;
};

RunResult
run(const Circuit &circuit, SyncScheme scheme, std::uint64_t seed,
    unsigned repetitions = 1)
{
    net::TopologyConfig topo_cfg;
    topo_cfg.width = circuit.numQubits();
    net::Topology topo = net::Topology::grid(topo_cfg);
    CompilerConfig cc;
    cc.scheme = scheme;
    cc.repetitions = repetitions;
    compiler::Compiler comp(topo, cc);
    auto compiled = comp.compile(circuit);

    auto mc = compiler::machineConfigFor(topo_cfg, cc,
                                         circuit.numQubits(), true, seed);
    mc.fabric.star_messages = (scheme == SyncScheme::kLockStep);
    Machine machine(mc);
    compiled.applyTo(machine);
    RunResult out;
    out.report = machine.run();
    out.state = machine.device().state();
    out.measurements = machine.device().measurements();
    return out;
}

// ---------------------------------------------------------------------------
// Property: the long-range CNOT converges on every branch, for every span,
// seed and scheme combination.
// ---------------------------------------------------------------------------

using LrParam = std::tuple<unsigned, std::uint64_t, SyncScheme>;

class LrCnotEverywhere : public ::testing::TestWithParam<LrParam>
{
};

TEST_P(LrCnotEverywhere, ConvergesToDirectCnot)
{
    const auto [span, seed, scheme] = GetParam();
    const unsigned n = span + 1;
    Circuit circuit(n, "sweep");
    circuit.gate(q::Gate::kH, 0);
    circuit.gate(q::Gate::kT, 0);
    workloads::appendLongRangeCnotLine(circuit, 0, n - 1);

    auto result = run(circuit, scheme, seed);
    ASSERT_FALSE(result.report.deadlock);
    ASSERT_EQ(result.report.coincidence_violations, 0u);
    ASSERT_EQ(result.report.timing_violations, 0u);

    q::StateVector ref(n);
    ref.apply1q(q::Gate::kH, 0);
    ref.apply1q(q::Gate::kT, 0);
    ref.apply2q(q::Gate::kCNOT, 0, n - 1);
    for (const auto &m : result.measurements) {
        if (m.bit)
            ref.apply1q(q::Gate::kX, m.qubit);
    }
    EXPECT_NEAR(result.state.fidelityWith(ref), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LrCnotEverywhere,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 8u),
                       ::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(SyncScheme::kBisp,
                                         SyncScheme::kDemand,
                                         SyncScheme::kLockStep)),
    [](const auto &info) {
        return "span" + std::to_string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param)) + "_" +
               std::string(compiler::toString(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: random dynamic circuits never deadlock, never break timing or
// coincidence, under every scheme.
// ---------------------------------------------------------------------------

using RdParam = std::tuple<std::uint64_t, SyncScheme>;

class RandomDynamicHealthy : public ::testing::TestWithParam<RdParam>
{
};

TEST_P(RandomDynamicHealthy, RunsCleanly)
{
    const auto [seed, scheme] = GetParam();
    workloads::RandomDynamicOptions opt;
    opt.qubits = 10;
    opt.layers = 10;
    opt.feedback_fraction = 0.5;
    opt.feedback_span = 4;
    opt.seed = seed;
    auto circuit = workloads::randomDynamic(opt);
    Rng er(seed + 100);
    auto dyn = workloads::expandNonAdjacentGates(circuit, 1.0, er);

    auto result = run(dyn, scheme, seed);
    EXPECT_FALSE(result.report.deadlock);
    EXPECT_EQ(result.report.coincidence_violations, 0u);
    EXPECT_EQ(result.report.timing_violations, 0u);
    EXPECT_EQ(result.report.halted_cores,
              net::Topology::grid({.width = dyn.numQubits()})
                      .numControllers() > 0
                  ? result.report.halted_cores
                  : 0u);
    EXPECT_NEAR(result.state.norm(), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDynamicHealthy,
    ::testing::Combine(::testing::Values(1ull, 7ull, 13ull, 29ull),
                       ::testing::Values(SyncScheme::kBisp,
                                         SyncScheme::kDemand,
                                         SyncScheme::kLockStep)),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
               std::string(compiler::toString(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: repetitions preserve health and multiply sync counts.
// ---------------------------------------------------------------------------

class RepetitionSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RepetitionSweep, RegionBarriersScaleWithReps)
{
    const unsigned reps = GetParam();
    auto circuit = workloads::ghz(5);
    auto result = run(circuit, SyncScheme::kBisp, 1, reps);
    ASSERT_FALSE(result.report.deadlock);
    EXPECT_EQ(result.report.timing_violations, 0u);
    EXPECT_EQ(result.report.coincidence_violations, 0u);
    // (reps - 1) barriers x 5 controllers region syncs.
    EXPECT_EQ(result.report.syncs_completed, (reps - 1) * 5u);
}

INSTANTIATE_TEST_SUITE_P(Reps, RepetitionSweep,
                         ::testing::Values(1u, 2u, 4u, 6u),
                         [](const auto &info) {
                             return "reps" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: deterministic workloads give identical measurement outcomes
// under every scheme (the adder's sum is input-determined).
// ---------------------------------------------------------------------------

TEST(SchemeEquivalence, AdderSumAgreesAcrossSchemes)
{
    workloads::AdderOptions opt;
    for (std::uint64_t input_seed : {5ull, 9ull, 21ull}) {
        opt.seed = input_seed;
        const auto circuit = workloads::adder(8, opt);

        std::vector<unsigned> sums;
        for (auto scheme : {SyncScheme::kBisp, SyncScheme::kDemand,
                            SyncScheme::kLockStep}) {
            net::TopologyConfig topo_cfg;
            topo_cfg.width = 2;
            net::Topology topo = net::Topology::grid(topo_cfg);
            CompilerConfig cc;
            cc.scheme = scheme;
            cc.qubits_per_controller = 4;
            compiler::Compiler comp(topo, cc);
            auto compiled = comp.compile(circuit);
            auto mc = compiler::machineConfigFor(topo_cfg, cc, 8, true, 3);
            mc.fabric.star_messages = (scheme == SyncScheme::kLockStep);
            Machine machine(mc);
            compiled.applyTo(machine);
            auto report = machine.run();
            ASSERT_FALSE(report.deadlock);

            unsigned sum = 0;
            for (const auto &m : machine.device().measurements()) {
                if (m.qubit == 7)
                    sum |= unsigned(m.bit) << 3;
                else
                    sum |= unsigned(m.bit) << ((m.qubit - 2) / 2);
            }
            sums.push_back(sum);
        }
        EXPECT_EQ(sums[0], sums[1]) << "seed " << input_seed;
        EXPECT_EQ(sums[1], sums[2]) << "seed " << input_seed;
    }
}

// ---------------------------------------------------------------------------
// Property: BISP beats or matches demand-driven, which beats lock-step,
// across feedback densities (tolerating small branch-path noise).
// ---------------------------------------------------------------------------

TEST(SchemeOrdering, HoldsAcrossFeedbackDensities)
{
    for (double frac : {0.25, 0.5, 0.75}) {
        workloads::RandomDynamicOptions opt;
        opt.qubits = 8;
        opt.layers = 10;
        opt.feedback_fraction = frac;
        opt.seed = 17;
        auto circuit = workloads::randomDynamic(opt);
        Rng er(2);
        auto dyn = workloads::expandNonAdjacentGates(circuit, 1.0, er);

        const auto bisp = run(dyn, SyncScheme::kBisp, 4);
        const auto demand = run(dyn, SyncScheme::kDemand, 4);
        const auto lockstep = run(dyn, SyncScheme::kLockStep, 4);
        EXPECT_LE(bisp.report.makespan, demand.report.makespan + 10)
            << "feedback " << frac;
        EXPECT_LT(bisp.report.makespan, lockstep.report.makespan)
            << "feedback " << frac;
    }
}

} // namespace
} // namespace dhisq
